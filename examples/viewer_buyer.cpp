// Viewers and buyers (paper §5.1): the same travel agent serves clients
// of different capabilities, and "a viewer can become at any point a
// buyer" — the client upgrade switches the agent's consistency level at
// run time while nine other agents keep selling the same flight.
//
// Build & run:  ./build/examples/viewer_buyer
#include <cstdio>

#include "airline/reservation_client.hpp"
#include "airline/testbed.hpp"

using namespace flecc;
using namespace flecc::airline;

int main() {
  std::printf("Viewers and buyers over one shared flight\n\n");

  TestbedOptions opts;
  opts.n_agents = 10;
  opts.group_size = 10;       // everyone sells the same flights
  opts.capacity = 200;
  opts.validity_trigger = "false";
  opts.dir_cfg.use_rw_semantics = true;  // browsing stays cheap
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];

  // Agents 1..9: plain buyers selling continuously.
  for (std::size_t i = 1; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(8, flight, 2, /*pull_first=*/true);
  }

  // Agent 0's client starts as a viewer (5 browses), then upgrades to a
  // buyer (5 strong-mode purchases).
  ReservationClient::Config cfg;
  cfg.kind = ClientKind::kViewer;
  cfg.flight = flight;
  cfg.requests = 10;
  cfg.upgrade_at = 5;
  cfg.seats_per_purchase = 3;
  ReservationClient client(tb.agent(0), cfg);
  client.run();
  tb.run();

  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).shutdown();
  }
  tb.run();

  std::printf("client trajectory: started as %s, %s\n", "viewer",
              client.upgraded() ? "upgraded to buyer mid-session"
                                : "never upgraded");
  std::printf("  browses               : %zu (last observed availability "
              "%lld)\n",
              client.browses(),
              static_cast<long long>(client.last_observed_availability()));
  std::printf("  purchase attempts     : %zu\n", client.purchase_attempts());
  std::printf("  seats bought          : %lld\n",
              static_cast<long long>(client.seats_bought()));
  std::printf("  refused purchases     : %zu\n", client.refused_purchases());

  const auto* f = tb.database().find(flight);
  std::printf("\nflight %lld: %lld/%lld seats reserved; rejected %llu "
              "oversold seats at merge\n",
              static_cast<long long>(flight),
              static_cast<long long>(f->reserved),
              static_cast<long long>(f->capacity),
              static_cast<unsigned long long>(
                  tb.database().rejected_seats()));
  std::printf("protocol messages: %llu\n",
              static_cast<unsigned long long>(tb.fabric().sent_count()));
  return 0;
}
