// Quickstart: the Figure-2 protocol walk-through.
//
// An original component C shares property P = {x, y, z}; two strong-mode
// views V1 (P = {x, y}) and V2 (P = {x, z}) are deployed. We run the
// exact interaction of the paper's Figure 2 and print the annotated
// message trace: registration, initial data, V2's activation forcing
// V1's invalidation, and teardown.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <memory>

#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flecc;

/// The component's shared data: three named slots.
class SlotComponent : public core::PrimaryAdapter {
 public:
  [[nodiscard]] core::ObjectImage extract_from_object(
      const props::PropertySet& vpl) const override {
    core::ObjectImage img;
    const props::Domain* scope = vpl.find("P");
    for (const auto& [slot, value] : slots_) {
      if (scope != nullptr && !scope->contains(props::Value{slot})) continue;
      img.set_int("slot." + slot, value);
    }
    return img;
  }
  void merge_into_object(const core::ObjectImage& image,
                         const props::PropertySet&) override {
    for (const auto& [key, value] : image) {
      if (key.rfind("slot.", 0) != 0) continue;
      if (const auto* iv = std::get_if<std::int64_t>(&value)) {
        slots_[key.substr(5)] = *iv;
      }
    }
  }
  [[nodiscard]] props::PropertySet data_properties() const override {
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete({props::Value{std::string{"x"}},
                                         props::Value{std::string{"y"}},
                                         props::Value{std::string{"z"}}}));
    return ps;
  }
  [[nodiscard]] std::int64_t slot(const std::string& s) const {
    auto it = slots_.find(s);
    return it == slots_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::int64_t> slots_{{"x", 1}, {"y", 2}, {"z", 3}};
};

class SlotView : public core::ViewAdapter {
 public:
  explicit SlotView(std::set<props::Value> slots) : mine_(std::move(slots)) {}

  void write(const std::string& slot, std::int64_t v) { local_[slot] = v; }
  [[nodiscard]] std::int64_t read(const std::string& slot) const {
    auto it = local_.find(slot);
    return it == local_.end() ? 0 : it->second;
  }
  [[nodiscard]] props::PropertySet properties() const {
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete(mine_));
    return ps;
  }
  [[nodiscard]] core::ObjectImage extract_from_view(
      const props::PropertySet&) override {
    core::ObjectImage img;
    for (const auto& [slot, value] : local_) {
      img.set_int("slot." + slot, value);
    }
    return img;
  }
  void merge_into_view(const core::ObjectImage& image,
                       const props::PropertySet&) override {
    for (const auto& [key, value] : image) {
      if (key.rfind("slot.", 0) != 0) continue;
      if (const auto* iv = std::get_if<std::int64_t>(&value)) {
        local_[key.substr(5)] = *iv;
      }
    }
  }
  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

 private:
  std::set<props::Value> mine_;
  std::map<std::string, std::int64_t> local_;
  trigger::VariableStore vars_;
};

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

}  // namespace

int main() {
  sim::Simulator simulator;
  std::vector<net::NodeId> hosts;
  net::LinkSpec lan;
  lan.latency = sim::usec(200);
  auto topo = net::Topology::lan(3, lan, &hosts);
  net::SimFabric fabric(simulator, std::move(topo));
  net::TraceRecorder trace;
  trace.attach(fabric);

  SlotComponent component;
  const net::Address dir_addr{hosts[2], 1};
  core::DirectoryManager directory(fabric, dir_addr, component);

  std::printf("Flecc quickstart — reproducing the paper's Figure 2\n");
  std::printf("component C: P = {x, y, z};  V1: P = {x, y};  V2: P = {x, z}\n");

  banner("steps 1-5: V1 deploys, registers, and gets the current data");
  SlotView v1({props::Value{std::string{"x"}}, props::Value{std::string{"y"}}});
  core::CacheManager::Config cfg1;
  cfg1.view_name = "quickstart.View1";
  cfg1.properties = v1.properties();
  cfg1.mode = core::Mode::kStrong;
  core::CacheManager cm1(fabric, net::Address{hosts[0], 1}, dir_addr, v1,
                         cfg1);
  cm1.start_use_image();
  simulator.run();
  std::printf("%s", trace.to_string().c_str());
  std::printf("V1 sees x=%lld y=%lld (exclusive=%d)\n",
              static_cast<long long>(v1.read("x")),
              static_cast<long long>(v1.read("y")), cm1.exclusive());

  banner("steps 6-7: V1 works inside its mutual-exclusion section");
  v1.write("x", 100);
  cm1.end_use_image(/*modified=*/true);
  std::printf("V1 wrote x=100 locally (not yet at the component)\n");

  trace.clear();
  banner("steps 8-19: V2 activates; the directory invalidates V1 first");
  SlotView v2({props::Value{std::string{"x"}}, props::Value{std::string{"z"}}});
  core::CacheManager::Config cfg2;
  cfg2.view_name = "quickstart.View2";
  cfg2.properties = v2.properties();
  cfg2.mode = core::Mode::kStrong;
  core::CacheManager cm2(fabric, net::Address{hosts[1], 1}, dir_addr, v2,
                         cfg2);
  cm2.start_use_image();
  simulator.run();
  std::printf("%s", trace.to_string().c_str());
  std::printf("V2 sees x=%lld z=%lld — V1's update arrived via the "
              "invalidation merge\n",
              static_cast<long long>(v2.read("x")),
              static_cast<long long>(v2.read("z")));
  std::printf("one active view invariant: V1 exclusive=%d, V2 exclusive=%d\n",
              directory.is_exclusive(cm1.id()),
              directory.is_exclusive(cm2.id()));
  cm2.end_use_image(false);

  trace.clear();
  banner("steps 20-21: teardown");
  cm1.kill_image();
  cm2.kill_image();
  simulator.run();
  std::printf("%s", trace.to_string().c_str());
  std::printf("component state: x=%lld y=%lld z=%lld\n",
              static_cast<long long>(component.slot("x")),
              static_cast<long long>(component.slot("y")),
              static_cast<long long>(component.slot("z")));
  std::printf("\ntotal protocol messages: %llu\n",
              static_cast<unsigned long long>(fabric.delivered_count()));
  return 0;
}
