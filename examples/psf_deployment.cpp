// The paper's Figure 1: view deployment across three domains.
//
// Three administrative domains hang off the Internet. Domain 1 hosts the
// original component; clients in domains 2 and 3 want the same service
// under different QoS:
//   * the domain-2 client requires privacy → the planner wraps the
//     insecure Internet hops with encryptor/decryptor pairs;
//   * the domain-3 client requires low latency → the planner deploys a
//     view (travel agent) inside domain 3, and Flecc keeps it coherent.
// The monitoring module then reacts to an environment change by
// triggering re-planning (the PSF adaptation loop of §3.1).
//
// Build & run:  ./build/examples/psf_deployment
#include <cstdio>

#include "psf/deployer.hpp"
#include "psf/monitor.hpp"
#include "psf/planner.hpp"
#include "psf/spec.hpp"

using namespace flecc;

// The declarative specification (§3.1, PSF element (i)): the
// application, the three-domain environment of Figure 1, and the two
// client QoS requests, all in one document.
constexpr const char* kSpec = R"spec(
component air.ReservationSystem
  implements AirlineReservationInterface
  requires DatabaseInterface
  method browse
  method confirmTickets
  data Flights interval 100 199
end

view air.TravelAgent of air.ReservationSystem
  method browse
  method confirmTickets
  data Flights interval 100 149
end

node internet
node domain1.server domain=1
node domain2.client domain=2
node domain3.client domain=3
link domain1.server internet latency=35ms insecure
link domain2.client internet latency=35ms insecure
link domain3.client internet latency=35ms insecure

# domain-2 client: privacy-sensitive buyer
request domain2.client domain1.server interface=AirlineReservationInterface privacy
# domain-3 client: latency-sensitive browser
request domain3.client domain1.server interface=AirlineReservationInterface max_latency=5ms view=air.TravelAgent
)spec";

int main() {
  std::printf("PSF deployment — the paper's Figure 1 scenario\n\n");

  auto spec = psf::parse_spec(kSpec);
  psf::Environment& env = spec.environment;
  std::printf("parsed declarative spec: %zu component(s), %zu view(s), "
              "%zu nodes, %zu requests\n\n",
              spec.app.components.size(), spec.app.views.size(),
              env.node_count(), spec.requests.size());

  const auto d3_uplink =
      static_cast<net::LinkId>(2);  // domain3.client <-> internet (3rd link)

  psf::Planner planner(env);
  const auto privacy_plan = planner.plan(spec.requests[0]);
  std::printf("domain-2 client (privacy QoS):\n%s\n",
              privacy_plan->to_string(env).c_str());
  const auto latency_plan = planner.plan(spec.requests[1]);
  std::printf("domain-3 client (latency QoS):\n%s\n",
              latency_plan->to_string(env).c_str());

  // ---- deploy both plans ----------------------------------------------
  psf::Deployer deployer;
  deployer.register_factory("air.TravelAgent", [](net::NodeId node) {
    // In a full deployment this factory would create the travel agent
    // view plus its Flecc cache manager (see examples/airline_reservation
    // and src/airline/testbed.cpp for exactly that wiring).
    return std::make_unique<psf::ComponentInstance>("air.TravelAgent", node);
  });
  const auto d2 = deployer.deploy(*privacy_plan);
  const auto d3 = deployer.deploy(*latency_plan);
  std::printf("deployed %zu instances for domain 2, %zu for domain 3\n\n",
              d2.size(), d3.size());

  // ---- the monitoring module reacts to environment changes ------------
  psf::Monitor monitor(env);
  monitor.watch(*privacy_plan,
                [&](const psf::DeploymentPlan& broken,
                    const std::string& why) {
                  std::printf("monitor: plan violated (%s) — re-planning\n",
                              why.c_str());
                  const auto fresh = planner.plan(broken.request);
                  if (fresh.has_value()) {
                    std::printf("re-planned:\n%s", fresh->to_string(env).c_str());
                  }
                });
  monitor.watch(*latency_plan, [](const psf::DeploymentPlan&,
                                  const std::string& why) {
    std::printf("monitor: latency plan violated (%s)\n", why.c_str());
  });

  std::printf("simulating an outage of domain 3's uplink...\n");
  env.set_link_up(d3_uplink, false);
  std::printf("(local view keeps serving; no violation for domain 3)\n\n");
  env.set_link_up(d3_uplink, true);

  std::printf("simulating a route change for domain 2 (link drops)...\n");
  env.set_link_up(0, false);  // d1_server <-> internet
  std::printf("\nviolations detected so far: %llu\n",
              static_cast<unsigned long long>(monitor.violations_detected()));
  return 0;
}
