// The paper's Figure 3, transliterated to C++ and actually run.
//
// A travel agent view of the airline reservation system, written as the
// linear sequential program of Figure 3:
//
//   1. create the cache manager (with properties, mode, triggers)
//   2. cm.initImage()
//   3. loop { cm.pullImage(); cm.startUseImage();
//             ars.confirmTickets(1, flight); cm.endUseImage(); }
//   4. cm.killImage()
//
// The linear style needs real threads, so this example runs over
// rt::ThreadFabric: the directory manager, the database, and two agent
// threads execute concurrently, exactly like the paper's Java/RMI
// prototype — with the same protocol code the simulator uses.
//
// Build & run:  ./build/examples/airline_reservation
//
// With `--monitor` the run is traced and the online coherence
// conformance monitor (obs::monitor::InvariantMonitor) checks I1-I4
// live on the concurrent event stream; the example exits non-zero if
// any invariant is violated and prints the monitor's health report.
#include <cstdio>
#include <cstring>
#include <thread>

#include "airline/flight_database.hpp"
#include "airline/travel_agent_view.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "rt/thread_fabric.hpp"

using namespace flecc;

namespace {

/// The travel agent "main" of Figure 3 (one per agent thread).
void travel_agent_main(rt::ThreadFabric& fabric, net::Address self,
                       net::Address directory, airline::FlightNumber flight,
                       int iterations, obs::TraceBuffer* trace) {
  // Lines 7-8: the view's application state.
  airline::TravelAgentView ars({flight});

  // Lines 9-16: create the cache manager with the view's property list,
  // the mode of operation, and the three quality triggers "(t > 1500)".
  core::CacheManager::Config cfg;
  cfg.view_name = "air.TravelAgent";
  cfg.properties = ars.properties();
  cfg.mode = core::Mode::kWeak;
  cfg.push_trigger = "(t > 1500)";
  cfg.pull_trigger = "(t > 1500)";
  cfg.validity_trigger = "(t > 1500)";
  cfg.trace = trace;
  core::CacheManager cm(fabric, self, directory, ars, cfg);

  auto call = [&](auto method) {
    rt::wait_for([&](auto done) {
      fabric.post(self, [&, done = std::move(done)] { method(done); });
    });
  };

  // Line 17: cm.initImage();
  call([&](auto done) { cm.init_image(done); });

  // Lines 18-29: the reservation loops.
  for (int i = 0; i < iterations; ++i) {
    call([&](auto done) { cm.pull_image(done); });      // cm.pullImage()
    call([&](auto done) { cm.start_use_image(done); }); // cm.startUseImage()
    call([&](auto done) {
      ars.confirm_tickets(flight, 1);  // ars.confirmTickets(1, flightNumber)
      cm.end_use_image(true);          // cm.endUseImage()
      done();
    });
  }

  // Line 30: cm.killImage();
  call([&](auto done) { cm.kill_image(done); });

  std::printf("agent %u: confirmed %lld tickets (refused %lld)\n",
              self.node, static_cast<long long>(ars.confirmed_total()),
              static_cast<long long>(ars.refused_total()));
}

}  // namespace

int main(int argc, char** argv) {
  bool monitor = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else {
      std::fprintf(stderr, "usage: %s [--monitor]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Figure 3: travel agents over the threaded runtime\n\n");

  rt::ThreadFabric fabric;

  // Tracing + the online conformance monitor: the agent threads and
  // the directory emit concurrently; the monitor serializes on_event
  // internally. Attach the sink before any endpoint exists (see
  // TraceRecorder::attach_sink for the ordering contract).
  obs::TraceRecorder recorder;
  obs::monitor::InvariantMonitor checker;
  if (monitor) recorder.attach_sink(&checker);
  auto buffer = [&](const char* name) -> obs::TraceBuffer* {
    return monitor ? recorder.make_buffer(name) : nullptr;
  };

  // The original component: the main flight database.
  auto db = airline::FlightDatabase::uniform(/*first=*/100, /*count=*/1,
                                             /*capacity=*/50);
  airline::FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{99, 1};
  core::DirectoryManager::Config dir_cfg;
  dir_cfg.trace = buffer("dm");
  core::DirectoryManager directory(fabric, dir_addr, adapter, dir_cfg);

  // Two travel agents selling the same flight, concurrently.
  std::thread agent1(travel_agent_main, std::ref(fabric),
                     net::Address{1, 1}, dir_addr, 100, 10, buffer("cm.1"));
  std::thread agent2(travel_agent_main, std::ref(fabric),
                     net::Address{2, 1}, dir_addr, 100, 10, buffer("cm.2"));
  agent1.join();
  agent2.join();
  fabric.drain();

  std::printf("\nflight 100: %lld/%lld seats reserved at the database\n",
              static_cast<long long>(db.find(100)->reserved),
              static_cast<long long>(db.find(100)->capacity));
  std::printf("protocol messages exchanged: %llu\n",
              static_cast<unsigned long long>(
                  fabric.counters().get("msg.delivered")));
  if (monitor) {
    checker.finalize();
    std::printf("\n%s", checker.health_report().c_str());
    if (!obs::kTraceEnabled) {
      std::printf("(built with FLECC_TRACE=OFF: the monitor saw no "
                  "events)\n");
    }
    return checker.violations().empty() ? 0 : 1;
  }
  return 0;
}
