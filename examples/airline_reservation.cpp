// The paper's Figure 3, transliterated to C++ and actually run.
//
// A travel agent view of the airline reservation system, written as the
// linear sequential program of Figure 3:
//
//   1. create the cache manager (with properties, mode, triggers)
//   2. cm.initImage()
//   3. loop { cm.pullImage(); cm.startUseImage();
//             ars.confirmTickets(1, flight); cm.endUseImage(); }
//   4. cm.killImage()
//
// The linear style needs real threads, so this example runs over
// rt::ThreadFabric: the directory manager, the database, and two agent
// threads execute concurrently, exactly like the paper's Java/RMI
// prototype — with the same protocol code the simulator uses.
//
// Build & run:  ./build/examples/airline_reservation
//
// With `--monitor` the run is traced and the online coherence
// conformance monitor (obs::monitor::InvariantMonitor) checks I1-I4
// live on the concurrent event stream; the example exits non-zero if
// any invariant is violated and prints the monitor's health report.
// With `--serve PORT` a TelemetryServer exposes live /metrics, /healthz
// and /varz while the agents run; here (no simulator) the hub ticks on
// a wall-clock thread sampling locked fabric-counter snapshots.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "airline/flight_database.hpp"
#include "airline/travel_agent_view.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "net/telemetry_server.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/telemetry.hpp"
#include "rt/thread_fabric.hpp"

using namespace flecc;

namespace {

/// The travel agent "main" of Figure 3 (one per agent thread).
void travel_agent_main(rt::ThreadFabric& fabric, net::Address self,
                       net::Address directory, airline::FlightNumber flight,
                       int iterations, obs::TraceBuffer* trace) {
  // Lines 7-8: the view's application state.
  airline::TravelAgentView ars({flight});

  // Lines 9-16: create the cache manager with the view's property list,
  // the mode of operation, and the three quality triggers "(t > 1500)".
  core::CacheManager::Config cfg;
  cfg.view_name = "air.TravelAgent";
  cfg.properties = ars.properties();
  cfg.mode = core::Mode::kWeak;
  cfg.push_trigger = "(t > 1500)";
  cfg.pull_trigger = "(t > 1500)";
  cfg.validity_trigger = "(t > 1500)";
  cfg.trace = trace;
  core::CacheManager cm(fabric, self, directory, ars, cfg);

  auto call = [&](auto method) {
    rt::wait_for([&](auto done) {
      fabric.post(self, [&, done = std::move(done)] { method(done); });
    });
  };

  // Line 17: cm.initImage();
  call([&](auto done) { cm.init_image(done); });

  // Lines 18-29: the reservation loops.
  for (int i = 0; i < iterations; ++i) {
    call([&](auto done) { cm.pull_image(done); });      // cm.pullImage()
    call([&](auto done) { cm.start_use_image(done); }); // cm.startUseImage()
    call([&](auto done) {
      ars.confirm_tickets(flight, 1);  // ars.confirmTickets(1, flightNumber)
      cm.end_use_image(true);          // cm.endUseImage()
      done();
    });
  }

  // Line 30: cm.killImage();
  call([&](auto done) { cm.kill_image(done); });

  std::printf("agent %u: confirmed %lld tickets (refused %lld)\n",
              self.node, static_cast<long long>(ars.confirmed_total()),
              static_cast<long long>(ars.refused_total()));
}

}  // namespace

int main(int argc, char** argv) {
  bool monitor = false;
  bool serve = false;
  unsigned serve_port = 0;
  unsigned telemetry_interval_ms = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve = true;
      serve_port =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 &&
               i + 1 < argc) {
      telemetry_interval_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (telemetry_interval_ms == 0) telemetry_interval_ms = 100;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--monitor] [--serve PORT] "
                   "[--telemetry-interval MS]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("Figure 3: travel agents over the threaded runtime\n\n");

  rt::ThreadFabric fabric;

  // Live telemetry over the threaded runtime: no simulator to drive
  // the sampler, so a wall-clock thread ticks the hub, and the
  // collector reads a locked snapshot of the fabric counters.
  std::unique_ptr<obs::TelemetryHub> hub;
  std::unique_ptr<net::TelemetryServer> server;
  std::thread ticker;
  std::atomic<bool> ticker_stop{false};
  const auto wall_start = std::chrono::steady_clock::now();
  if (serve) {
    obs::TelemetryOptions topts;
    topts.interval = sim::msec(telemetry_interval_ms);
    hub = std::make_unique<obs::TelemetryHub>(topts);
    hub->registry().add_collector([&fabric](obs::SampleFrame& f) {
      f.counters(fabric.counters_snapshot(), "net.");
    });
    server = std::make_unique<net::TelemetryServer>(
        static_cast<std::uint16_t>(serve_port));
    if (!server->listening()) {
      std::fprintf(stderr, "cannot bind telemetry port %u\n", serve_port);
      return 1;
    }
    net::serve_telemetry(*hub, *server);
    server->serve_background();
    std::printf("telemetry: http://127.0.0.1:%u/metrics (also /healthz, "
                "/varz)\n\n",
                server->port());
    ticker = std::thread([&] {
      while (!ticker_stop.load()) {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        hub->tick(static_cast<sim::Time>(us));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(telemetry_interval_ms));
      }
    });
  }

  // Tracing + the online conformance monitor: the agent threads and
  // the directory emit concurrently; the monitor serializes on_event
  // internally. Attach the sink before any endpoint exists (see
  // TraceRecorder::attach_sink for the ordering contract).
  obs::TraceRecorder recorder;
  obs::monitor::InvariantMonitor checker;
  if (monitor) recorder.attach_sink(&checker);
  auto buffer = [&](const char* name) -> obs::TraceBuffer* {
    return monitor ? recorder.make_buffer(name) : nullptr;
  };

  // The original component: the main flight database.
  auto db = airline::FlightDatabase::uniform(/*first=*/100, /*count=*/1,
                                             /*capacity=*/50);
  airline::FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{99, 1};
  core::DirectoryManager::Config dir_cfg;
  dir_cfg.trace = buffer("dm");
  core::DirectoryManager directory(fabric, dir_addr, adapter, dir_cfg);

  // Two travel agents selling the same flight, concurrently.
  std::thread agent1(travel_agent_main, std::ref(fabric),
                     net::Address{1, 1}, dir_addr, 100, 10, buffer("cm.1"));
  std::thread agent2(travel_agent_main, std::ref(fabric),
                     net::Address{2, 1}, dir_addr, 100, 10, buffer("cm.2"));
  agent1.join();
  agent2.join();
  fabric.drain();

  if (ticker.joinable()) {
    ticker_stop.store(true);
    ticker.join();
    std::printf("\ntelemetry: %llu windows sampled, %llu scrapes served\n",
                static_cast<unsigned long long>(
                    hub->registry().windows_closed()),
                static_cast<unsigned long long>(server->requests_served()));
  }

  std::printf("\nflight 100: %lld/%lld seats reserved at the database\n",
              static_cast<long long>(db.find(100)->reserved),
              static_cast<long long>(db.find(100)->capacity));
  std::printf("protocol messages exchanged: %llu\n",
              static_cast<unsigned long long>(
                  fabric.counters().get("msg.delivered")));
  if (monitor) {
    checker.finalize();
    std::printf("\n%s", checker.health_report().c_str());
    if (!obs::kTraceEnabled) {
      std::printf("(built with FLECC_TRACE=OFF: the monitor saw no "
                  "events)\n");
    }
    return checker.violations().empty() ? 0 : 1;
  }
  return 0;
}
