// Quality-trigger playground.
//
// Demonstrates the trigger expression language of §4.1: parsing,
// variable collection, and evaluation against a view's variable store.
// Pass an expression (and optional name=value bindings) on the command
// line, or run without arguments for a guided tour.
//
//   ./build/examples/trigger_playground
//   ./build/examples/trigger_playground  <expr>  [name=value ...]
//   e.g.  '(t > 1500) && pendingSales >= 3'  t=2000 pendingSales=5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trigger/errors.hpp"
#include "trigger/parser.hpp"
#include "trigger/trigger.hpp"

using namespace flecc::trigger;

namespace {

void show(const std::string& src, const VariableStore& env) {
  std::printf("expression : %s\n", src.c_str());
  try {
    const Trigger trig(src);
    std::printf("parsed     : %s\n", to_string(*parse(src)).c_str());
    std::printf("variables  :");
    for (const auto& v : trig.variables()) std::printf(" %s", v.c_str());
    std::printf("\n");
    try {
      std::printf("result     : %s\n",
                  trig.evaluate(env) ? "true" : "false");
    } catch (const EvalError& e) {
      std::printf("eval error : %s\n", e.what());
    }
  } catch (const ParseError& e) {
    std::printf("parse error: %s\n", e.what());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    VariableStore env;
    for (int i = 2; i < argc; ++i) {
      const std::string binding = argv[i];
      const auto eq = binding.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "ignoring malformed binding '%s'\n",
                     binding.c_str());
        continue;
      }
      env.set(binding.substr(0, eq), std::atof(binding.c_str() + eq + 1));
    }
    show(argv[1], env);
    return 0;
  }

  std::printf("Flecc quality-trigger playground\n");
  std::printf("================================\n\n");

  // The Figure-3 trigger with two time values.
  {
    VariableStore env{{"t", 1000.0}};
    show("(t > 1500)", env);
    env.set("t", 1600.0);
    show("(t > 1500)", env);
  }

  // A push trigger conditioned on application state.
  {
    VariableStore env{{"t", 100.0}, {"pendingSales", 5.0}};
    show("(t > 1500) || (pendingSales >= 3)", env);
  }

  // Validity triggers can use directory metadata (_age, _unseen).
  {
    VariableStore env{{"t", 9000.0}, {"_age", 120.0}, {"_unseen", 2.0}};
    show("(_age < 500) && (_unseen < 5)", env);
  }

  // Arithmetic, precedence, short-circuiting.
  {
    VariableStore env{{"x", 4.0}};
    show("x * x - 1", env);
    show("false && undefinedVariable", env);  // short-circuit: no error
    show("true && undefinedVariable", env);   // eval error surfaced
  }

  // Parse errors are reported with offsets.
  show("(t > ", VariableStore{});
  show("a && && b", VariableStore{});

  return 0;
}
