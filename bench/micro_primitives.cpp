// Microbenchmarks of Flecc's hot primitives (google-benchmark):
// property-set intersection, trigger parse/eval, the event queue, and
// ObjectImage extract/merge round trips.
#include <benchmark/benchmark.h>

#include "core/object_image.hpp"
#include "props/property.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "trigger/parser.hpp"
#include "trigger/trigger.hpp"

using namespace flecc;

namespace {

props::PropertySet make_set(std::size_t n_props, std::int64_t offset) {
  props::PropertySet ps;
  for (std::size_t p = 0; p < n_props; ++p) {
    ps.set("prop" + std::to_string(p),
           props::Domain::interval(offset, offset + 100));
  }
  return ps;
}

void BM_PropertySetConflict(benchmark::State& state) {
  const auto a = make_set(static_cast<std::size_t>(state.range(0)), 0);
  const auto b = make_set(static_cast<std::size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.conflicts_with(b));
  }
}
BENCHMARK(BM_PropertySetConflict)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_PropertySetIntersect(benchmark::State& state) {
  const auto a = make_set(static_cast<std::size_t>(state.range(0)), 0);
  const auto b = make_set(static_cast<std::size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_PropertySetIntersect)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_DiscreteDomainIntersect(benchmark::State& state) {
  const auto n = state.range(0);
  std::set<props::Value> va, vb;
  for (std::int64_t i = 0; i < n; ++i) {
    va.insert(props::Value{i});
    vb.insert(props::Value{i + n / 2});
  }
  const auto a = props::Domain::discrete(std::move(va));
  const auto b = props::Domain::discrete(std::move(vb));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_DiscreteDomainIntersect)->Arg(8)->Arg(64)->Arg(512);

void BM_TriggerParse(benchmark::State& state) {
  const std::string src =
      "(t > 1500) && (pendingSales >= 3 || !urgent) && x * 2 < y + 7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(trigger::parse(src));
  }
}
BENCHMARK(BM_TriggerParse);

void BM_TriggerEval(benchmark::State& state) {
  const trigger::Trigger trig(
      "(t > 1500) && (pendingSales >= 3 || !urgent) && x * 2 < y + 7");
  trigger::VariableStore env{
      {"pendingSales", 5.0}, {"urgent", 0.0}, {"x", 3.0}, {"y", 10.0}};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(trig.evaluate(t, env));
  }
}
BENCHMARK(BM_TriggerEval);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform_int(0, 1 << 20), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().when);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ObjectImageOverlay(benchmark::State& state) {
  const auto n = state.range(0);
  core::ObjectImage base, delta;
  for (std::int64_t i = 0; i < n; ++i) {
    base.set_int("key" + std::to_string(i), i);
    if (i % 4 == 0) delta.set_int("key" + std::to_string(i), i * 2);
  }
  for (auto _ : state) {
    core::ObjectImage copy = base;
    benchmark::DoNotOptimize(copy.overlay(delta));
  }
}
BENCHMARK(BM_ObjectImageOverlay)->Arg(16)->Arg(128)->Arg(1024);

void BM_ObjectImageWireSize(benchmark::State& state) {
  core::ObjectImage img;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    img.set_int("f." + std::to_string(i) + ".res", i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(img.wire_size());
  }
}
BENCHMARK(BM_ObjectImageWireSize)->Arg(16)->Arg(256);

}  // namespace
