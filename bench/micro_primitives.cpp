// Microbenchmarks of Flecc's hot primitives (google-benchmark):
// property-set intersection, trigger parse/eval, the event queue,
// ObjectImage extract/merge round trips, and the end-to-end protocol
// train that PERFORMANCE.md's raw-speed numbers come from.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <vector>

#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "core/object_image.hpp"
#include "net/batch_fabric.hpp"
#include "net/sim_fabric.hpp"
#include "props/property.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trigger/parser.hpp"
#include "trigger/trigger.hpp"

// ---- allocation accounting --------------------------------------------------
//
// Global operator new override so BM_ProtocolTrain can report
// allocations-per-op as a deterministic counter (same sim seed + same
// workload => same count). Everything in the process ticks the counter,
// which is exactly the point: pooling wins must show up end to end.
static std::atomic<std::uint64_t> g_alloc_count{0};

// This TU's replaced operators intentionally pair malloc/posix_memalign
// with free; GCC inlines them into callers and flags the new/free mix
// as a mismatch it is not.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = nullptr;
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     n ? n : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace flecc;

namespace {

props::PropertySet make_set(std::size_t n_props, std::int64_t offset) {
  props::PropertySet ps;
  for (std::size_t p = 0; p < n_props; ++p) {
    ps.set("prop" + std::to_string(p),
           props::Domain::interval(offset, offset + 100));
  }
  return ps;
}

void BM_PropertySetConflict(benchmark::State& state) {
  const auto a = make_set(static_cast<std::size_t>(state.range(0)), 0);
  const auto b = make_set(static_cast<std::size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.conflicts_with(b));
  }
}
BENCHMARK(BM_PropertySetConflict)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_PropertySetIntersect(benchmark::State& state) {
  const auto a = make_set(static_cast<std::size_t>(state.range(0)), 0);
  const auto b = make_set(static_cast<std::size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_PropertySetIntersect)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_DiscreteDomainIntersect(benchmark::State& state) {
  const auto n = state.range(0);
  std::set<props::Value> va, vb;
  for (std::int64_t i = 0; i < n; ++i) {
    va.insert(props::Value{i});
    vb.insert(props::Value{i + n / 2});
  }
  const auto a = props::Domain::discrete(std::move(va));
  const auto b = props::Domain::discrete(std::move(vb));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_DiscreteDomainIntersect)->Arg(8)->Arg(64)->Arg(512);

void BM_TriggerParse(benchmark::State& state) {
  const std::string src =
      "(t > 1500) && (pendingSales >= 3 || !urgent) && x * 2 < y + 7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(trigger::parse(src));
  }
}
BENCHMARK(BM_TriggerParse);

void BM_TriggerEval(benchmark::State& state) {
  const trigger::Trigger trig(
      "(t > 1500) && (pendingSales >= 3 || !urgent) && x * 2 < y + 7");
  trigger::VariableStore env{
      {"pendingSales", 5.0}, {"urgent", 0.0}, {"x", 3.0}, {"y", 10.0}};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(trig.evaluate(t, env));
  }
}
BENCHMARK(BM_TriggerEval);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform_int(0, 1 << 20), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().when);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ObjectImageOverlay(benchmark::State& state) {
  const auto n = state.range(0);
  core::ObjectImage base, delta;
  for (std::int64_t i = 0; i < n; ++i) {
    base.set_int("key" + std::to_string(i), i);
    if (i % 4 == 0) delta.set_int("key" + std::to_string(i), i * 2);
  }
  for (auto _ : state) {
    core::ObjectImage copy = base;
    benchmark::DoNotOptimize(copy.overlay(delta));
  }
}
BENCHMARK(BM_ObjectImageOverlay)->Arg(16)->Arg(128)->Arg(1024);

// ---- end-to-end protocol train ---------------------------------------------
//
// The workload behind PERFORMANCE.md: M weak-mode cache managers
// colocated on ONE node (so their directory trains share node pairs and
// can coalesce) driving push/pull traffic at a directory on another
// node, then a kill wave. Args: (pool_messages, batch_fabric,
// write_buffer_ops). Counters allocs_per_op / hops_per_op are exact
// event counts from a deterministic simulation — bench_gate.py gates on
// them, while wall time is reported for trend-watching only.

constexpr std::int64_t kTrainCells = 32;

class TrainPrimary : public core::PrimaryAdapter {
 public:
  [[nodiscard]] core::ObjectImage extract_from_object(
      const props::PropertySet&) const override {
    core::ObjectImage img;
    for (const auto& [i, v] : cells_) {
      img.set_int("cell." + std::to_string(i), v);
    }
    return img;
  }

  void merge_into_object(const core::ObjectImage& image,
                         const props::PropertySet&) override {
    for (const auto& [key, value] : image) {
      const auto* iv = std::get_if<std::int64_t>(&value);
      if (iv != nullptr && key.rfind("inc.", 0) == 0) {
        cells_[std::stoll(key.substr(4))] += *iv;
      }
    }
  }

  [[nodiscard]] props::PropertySet data_properties() const override {
    props::PropertySet ps;
    ps.set("Cells", props::Domain::interval(0, kTrainCells - 1));
    return ps;
  }

 private:
  std::map<std::int64_t, std::int64_t> cells_;
};

class TrainView : public core::ViewAdapter {
 public:
  void increment(std::int64_t i, std::int64_t by) { pending_[i] += by; }

  [[nodiscard]] props::PropertySet properties() const {
    props::PropertySet ps;
    ps.set("Cells", props::Domain::interval(0, kTrainCells - 1));
    return ps;
  }

  [[nodiscard]] core::ObjectImage extract_from_view(
      const props::PropertySet&) override {
    core::ObjectImage img;
    for (const auto& [i, d] : pending_) {
      if (d != 0) img.set_int("inc." + std::to_string(i), d);
    }
    pending_.clear();
    return img;
  }

  void merge_into_view(const core::ObjectImage&,
                       const props::PropertySet&) override {}

  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

 private:
  std::map<std::int64_t, std::int64_t> pending_;
  trigger::VariableStore vars_;
};

void BM_ProtocolTrain(benchmark::State& state) {
  const bool pool = state.range(0) != 0;
  const bool batch = state.range(1) != 0;
  const auto wbuf = static_cast<std::size_t>(state.range(2));
  constexpr std::size_t kAgents = 8;
  constexpr int kRounds = 16;

  std::uint64_t allocs = 0;
  std::uint64_t hops = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<net::NodeId> hosts;
    net::LinkSpec link;
    link.latency = sim::usec(100);
    auto topo = net::Topology::lan(2, link, &hosts);
    net::SimFabric fabric(sim, std::move(topo), net::SimFabric::Config{});
    std::unique_ptr<net::BatchFabric> batcher;
    if (batch) {
      batcher = std::make_unique<net::BatchFabric>(fabric,
                                                   net::BatchFabric::Config{});
    }
    net::Fabric& proto =
        batcher ? static_cast<net::Fabric&>(*batcher) : fabric;

    TrainPrimary primary;
    core::DirectoryManager::Config dir_cfg;
    dir_cfg.pool_messages = pool;
    const net::Address dir_addr{hosts[1], 1};
    core::DirectoryManager dm(proto, dir_addr, primary, dir_cfg);

    std::vector<std::unique_ptr<TrainView>> views;
    std::vector<std::unique_ptr<core::CacheManager>> cms;
    for (std::size_t i = 0; i < kAgents; ++i) {
      auto view = std::make_unique<TrainView>();
      core::CacheManager::Config cfg;
      cfg.view_name = "bench.Train";
      cfg.properties = view->properties();
      cfg.mode = core::Mode::kWeak;
      cfg.pool_messages = pool;
      cfg.write_buffer_ops = wbuf;
      // All agents on hosts[0]: same node pair toward the directory,
      // the layout where send batching can actually coalesce.
      const net::Address addr{hosts[0],
                              static_cast<net::PortId>(i + 1)};
      cms.push_back(std::make_unique<core::CacheManager>(
          proto, addr, dir_addr, *view, std::move(cfg)));
      views.push_back(std::move(view));
    }
    for (auto& cm : cms) cm->init_image();
    sim.run();

    // Measure the steady-state train, not topology/agent setup.
    const std::uint64_t a0 =
        g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t h0 = fabric.sent_count();
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < kAgents; ++i) {
        views[i]->increment(static_cast<std::int64_t>(
                                (round + static_cast<int>(i)) % kTrainCells),
                            1);
        cms[i]->start_use_image();
        cms[i]->end_use_image(/*modified=*/true);
        cms[i]->push_image();
      }
      if (round % 4 == 3) {
        for (auto& cm : cms) cm->pull_image();
      }
      sim.run();
    }
    for (auto& cm : cms) cm->kill_image();
    sim.run();
    allocs += g_alloc_count.load(std::memory_order_relaxed) - a0;
    hops += fabric.sent_count() - h0;
    ops += kAgents * (kRounds + kRounds / 4 + 1);  // pushes + pulls + kills
  }
  const auto per_op = static_cast<double>(ops);
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs) / per_op);
  state.counters["hops_per_op"] =
      benchmark::Counter(static_cast<double>(hops) / per_op);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
// Args: pool, batch, write_buffer_ops. The first row is the all-off
// baseline the PERFORMANCE.md trajectory is measured against.
BENCHMARK(BM_ProtocolTrain)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 4})
    ->ArgNames({"pool", "batch", "wbuf"})
    ->Unit(benchmark::kMillisecond);

void BM_ObjectImageWireSize(benchmark::State& state) {
  core::ObjectImage img;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    img.set_int("f." + std::to_string(i) + ".res", i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(img.wire_size());
  }
}
BENCHMARK(BM_ObjectImageWireSize)->Arg(16)->Arg(256);

}  // namespace
