// Ablation A5 — centralized (primary-copy) vs decentralized peer merge
// knowledge (the §4.1 design argument).
//
// Flecc is centralized: each view supplies merge/extract knowledge only
// against the original component — O(n) adapter pairs. A decentralized
// (peer-to-peer) protocol needs pairwise reconciliation knowledge —
// O(n²) pairs. We quantify the real registration payloads (bytes of
// property metadata shipped) and the number of application-supplied
// merge/extract hooks as the fleet grows, using the actual wire-size
// accounting of the message layer.
#include <cstdio>
#include <map>
#include <memory>

#include "airline/travel_agent_view.hpp"
#include "airline/workload.hpp"
#include "baselines/peer_to_peer.hpp"
#include "core/messages.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

using namespace flecc;

namespace {

/// Commutative counters for the empirical peer-to-peer measurement.
class CounterApp : public baselines::PeerAdapter {
 public:
  void increment(std::int64_t cell) { pending_[cell] += 1; }
  [[nodiscard]] core::ObjectImage extract_update() override {
    core::ObjectImage img;
    for (const auto& [cell, delta] : pending_) {
      img.set_int("inc." + std::to_string(cell), delta);
    }
    pending_.clear();
    return img;
  }
  void apply_update(const core::ObjectImage&) override {}

 private:
  std::map<std::int64_t, std::int64_t> pending_;
};

struct P2pPoint {
  std::uint64_t messages = 0;
  std::uint64_t log_entries = 0;
};

/// n peers in groups of 10, one update-operation each, full mesh wiring.
P2pPoint run_p2p(std::size_t n) {
  sim::Simulator simulator;
  std::vector<net::NodeId> hosts;
  auto topo = net::Topology::lan(n, net::LinkSpec{}, &hosts);
  net::SimFabric fabric(simulator, std::move(topo));

  const auto ga = airline::assign_flight_groups(n, 10, 5);
  std::vector<std::unique_ptr<CounterApp>> apps;
  std::vector<std::unique_ptr<baselines::Peer>> peers;
  std::vector<props::PropertySet> all_props;
  for (std::size_t i = 0; i < n; ++i) {
    all_props.push_back(
        airline::TravelAgentView(ga.agent_flights[i]).properties());
  }
  for (std::size_t i = 0; i < n; ++i) {
    apps.push_back(std::make_unique<CounterApp>());
    baselines::Peer::Config cfg;
    cfg.properties = all_props[i];
    peers.push_back(std::make_unique<baselines::Peer>(
        fabric, net::Address{hosts[i], 1}, *apps.back(), cfg));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) peers[i]->add_peer(net::Address{hosts[j], 1}, all_props[j]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    peers[i]->do_operation(
        [&apps, i, &ga] {
          apps[i]->increment(ga.agent_flights[i][0]);
        },
        {});
  }
  simulator.run();

  P2pPoint p;
  p.messages = fabric.sent_count();
  for (const auto& peer : peers) p.log_entries += peer->log_size();
  return p;
}

}  // namespace

int main() {
  std::printf("# Ablation A5 — centralized O(n) vs decentralized O(n^2) "
              "application knowledge\n");
  std::printf("# agents serve 5 flights each (groups of 10); bytes = "
              "actual RegisterReq payloads\n\n");
  std::printf("%-8s %16s %16s %18s %18s\n", "agents", "hooks_central",
              "hooks_decentral", "bytes_central", "bytes_decentral");

  for (const std::size_t n : {10u, 20u, 50u, 100u, 200u}) {
    const auto ga = airline::assign_flight_groups(n, 10, 5);

    // Centralized: one extract/merge pair per view (against the primary),
    // plus one registration payload per view.
    std::uint64_t central_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      airline::TravelAgentView view(ga.agent_flights[i]);
      core::msg::RegisterReq req;
      req.view_name = "air.TravelAgent";
      req.properties = view.properties();
      central_bytes += core::msg::wire_size(req);
    }
    const std::uint64_t central_hooks = 2 * n;  // extract+merge per view

    // Decentralized: every pair of peers must exchange the same metadata
    // and the application must supply per-pair reconciliation.
    std::uint64_t decentral_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      airline::TravelAgentView vi(ga.agent_flights[i]);
      core::msg::RegisterReq req;
      req.view_name = "air.TravelAgent";
      req.properties = vi.properties();
      const auto per_peer = core::msg::wire_size(req);
      decentral_bytes += per_peer * (n - 1);
    }
    const std::uint64_t decentral_hooks = n * (n - 1);  // pairwise

    std::printf("%-8zu %16llu %16llu %18llu %18llu\n", n,
                static_cast<unsigned long long>(central_hooks),
                static_cast<unsigned long long>(decentral_hooks),
                static_cast<unsigned long long>(central_bytes),
                static_cast<unsigned long long>(decentral_bytes));
  }

  std::printf("\n# the centralized design keeps application burden and "
              "registration metadata linear\n");
  std::printf("# in the number of views — the reason §4.1 picks the "
              "primary-copy configuration.\n");

  // Empirical check with a real decentralized protocol (src/baselines/
  // peer_to_peer.*): messages per operation are comparable to Flecc's
  // demand fetch, but state (per-peer logs + n² cursors) and application
  // knowledge are what explode.
  std::printf("\n# empirical peer-to-peer run (1 commutative update-op per "
              "peer, groups of 10):\n");
  std::printf("%-8s %14s %18s %18s\n", "peers", "p2p_messages",
              "p2p_log_entries", "p2p_cursors(n^2)");
  for (const std::size_t n : {10u, 20u, 50u, 100u}) {
    const P2pPoint p = run_p2p(n);
    std::printf("%-8zu %14llu %18llu %18zu\n", n,
                static_cast<unsigned long long>(p.messages),
                static_cast<unsigned long long>(p.log_entries),
                n * (n - 1));
  }
  std::printf("\n# peer-to-peer only stayed correct here because counter "
              "updates commute;\n");
  std::printf("# arbitrary component state would need per-pair "
              "reconciliation knowledge.\n");
  return 0;
}
