// Figure 5 — Adaptability: method execution time vs data quality as the
// agents switch WEAK → STRONG → WEAK at run time.
//
// Paper setup (§5.2): ten conflicting travel agents connected to the
// main database in one LAN. They run the reserve-tickets loop in weak
// mode, switch to strong, then switch back to weak. The figure's lower
// band is per-method execution time; the upper band is the data quality
// (number of remote unseen updates) of the data each method ran on.
//
// Expected shape (paper): execution time small in WEAK and large in
// STRONG; data quality degrades over time in WEAK and is always perfect
// (0 unseen updates) in STRONG.
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <vector>

#include "airline/testbed.hpp"
#include "sim/script.hpp"
#include "sim/table.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 10;
constexpr std::size_t kOpsPerPhase = 6;

struct OpRecord {
  sim::Time at = 0;
  std::size_t agent = 0;
  const char* phase = "";
  double latency_us = 0.0;
  std::uint64_t quality = 0;
};

}  // namespace

int main() {
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = kAgents;  // all conflicting
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  opts.think_time = sim::msec(2);  // the method does some work
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const auto flight = tb.assignment().agent_flights[0][0];

  std::vector<OpRecord> records;
  const char* current_phase = "WEAK-1";

  // Probe wiring: quality sampled at execution time, latency at
  // completion (correlated through the shared records vector).
  for (std::size_t i = 0; i < kAgents; ++i) {
    airline::TravelAgent& agent = tb.agent(i);
    agent.set_op_probe([&, i](std::size_t, sim::Time at) {
      OpRecord rec;
      rec.at = at;
      rec.agent = i;
      rec.phase = current_phase;
      rec.quality = tb.directory().quality(agent.cache().id());
      records.push_back(rec);
    });
  }

  // op_latencies accumulate per agent in op order, matching the order of
  // that agent's probe records; harvest walks both in lock-step.
  std::size_t harvested_records = 0;
  std::vector<std::size_t> next_latency(kAgents, 0);
  auto harvest_latencies = [&] {
    for (; harvested_records < records.size(); ++harvested_records) {
      OpRecord& rec = records[harvested_records];
      rec.latency_us =
          tb.agent(rec.agent).op_latencies().samples()[next_latency[rec.agent]++];
    }
  };

  auto run_phase = [&](const char* label, core::Mode mode, bool pull_first) {
    current_phase = label;
    for (std::size_t i = 0; i < kAgents; ++i) {
      airline::TravelAgent& agent = tb.agent(i);
      sim::Script script;
      script.then([&agent, mode](sim::Script::Next next) {
        agent.switch_mode(mode, std::move(next));
      });
      script.repeat(kOpsPerPhase, [&agent, flight, pull_first, mode](
                                      std::size_t, sim::Script::Next next) {
        agent.reserve_once(flight, 1, pull_first, [&agent, mode, next] {
          // In weak mode, publish the update so other agents' quality
          // metric sees it (the paper's agents synchronize with the
          // database after working).
          if (mode == core::Mode::kWeak) {
            agent.push_now(next);
          } else {
            next();
          }
        });
      });
      std::move(script).run();
    }
    tb.run();
    harvest_latencies();
  };

  run_phase("WEAK-1", core::Mode::kWeak, /*pull_first=*/false);
  run_phase("STRONG", core::Mode::kStrong, false);
  run_phase("WEAK-2", core::Mode::kWeak, false);

  std::printf("# Figure 5 — execution time vs data quality across "
              "WEAK -> STRONG -> WEAK\n");
  std::printf("# %zu conflicting agents, %zu reserve ops per agent per "
              "phase\n", kAgents, kOpsPerPhase);
  sim::Table table({"sim_time_ms", "phase", "agent", "exec_time_ms",
                    "quality"});
  for (const auto& rec : records) {
    table.add_row({sim::to_ms(rec.at), std::string(rec.phase),
                   static_cast<std::uint64_t>(rec.agent),
                   rec.latency_us / 1000.0, rec.quality});
  }
  std::printf("%s", table.to_string().c_str());
  // Generated artifacts land in the git-ignored out/ directory.
  std::error_code out_ec;
  std::filesystem::create_directories("out", out_ec);
  if (table.write_csv("out/fig5_adaptability.csv")) {
    std::printf("\n# data also written to out/fig5_adaptability.csv\n");
  }

  // Phase aggregates (the figure's two bands).
  std::printf("\n%-8s %18s %18s\n", "phase", "mean_exec_ms", "mean_quality");
  for (const char* phase : {"WEAK-1", "STRONG", "WEAK-2"}) {
    sim::RunningStat lat, qual;
    for (const auto& rec : records) {
      if (std::string_view(rec.phase) != phase) continue;
      lat.add(rec.latency_us / 1000.0);
      qual.add(static_cast<double>(rec.quality));
    }
    std::printf("%-8s %18.3f %18.2f\n", phase, lat.mean(), qual.mean());
  }
  std::printf("\n# shape check (paper): STRONG has the largest execution "
              "time and quality always 0;\n");
  std::printf("# WEAK phases are fast but accumulate unseen remote "
              "updates.\n");
  return 0;
}
