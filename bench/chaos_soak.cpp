// Chaos soak — the reliability layer under compound failure.
//
// 100 weak-mode travel agents run the airline workload while the
// harness injects, in one run:
//   * 10% uniform message loss (seeded, deterministic),
//   * two silent view crashes (CacheManager::halt(): no teardown),
//   * one network partition/heal cycle cutting a block of agents off
//     from the directory mid-workload,
// with liveness heartbeats and directory-side eviction enabled.
//
// Convergence asserts (the run aborts if any fails):
//   * every surviving agent completes ALL its operations,
//   * no surviving cache manager is wedged (empty queue, nothing in
//     flight),
//   * the database equals the surviving agents' confirmed seats plus
//     whatever the crashed agents managed to surrender before dying
//     (bounded below by the former, above by the sum),
//   * two runs with the same seed produce bit-identical output.
//
// Emits the aggregated reliability counters as chaos_soak.csv. With
// `--trace out.jsonl` the first run also records an obs protocol trace
// (readable with tools/flecc_trace); the recorder is attached to the
// first run only so the two-run determinism check stays meaningful.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "airline/testbed.hpp"
#include "core/flow_control.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/trace_io.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 100;
constexpr std::size_t kOpsPerAgent = 10;
constexpr std::size_t kCrashed[] = {7, 42};
constexpr std::size_t kPartitionLo = 20, kPartitionHi = 29;

bool is_crashed(std::size_t i) {
  return i == kCrashed[0] || i == kCrashed[1];
}

#define SOAK_CHECK(cond, ...)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "CHAOS SOAK FAILED: " __VA_ARGS__);  \
      std::fprintf(stderr, "\n  at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                            \
      std::exit(1);                                             \
    }                                                           \
  } while (0)

/// One full soak; returns the printable result (counters + summary) so
/// the driver can compare two same-seed runs bit for bit. With
/// `crash_dm` the directory itself is crashed and restarted mid-run
/// from its checkpoint (`empty_checkpoint` drops the WAL first, leaving
/// only the generation superblock — the pure CM-assisted rebuild).
std::string run_soak(std::uint64_t seed, obs::TraceRecorder* trace = nullptr,
                     bool crash_dm = false, bool empty_checkpoint = false,
                     bool batch = false, std::size_t wbuf = 0) {
  TestbedOptions opts;
  opts.trace = trace;
  // Raw-speed layer (PERFORMANCE.md): batching implies heartbeat
  // piggybacking — suppressed beacons only make sense when regular
  // traffic is being coalesced toward the directory anyway.
  opts.batch_fabric = batch;
  opts.piggyback_heartbeats = batch;
  opts.write_buffer_ops = wbuf;
  // The reservation loop is pull-driven (deltas reach the database via
  // demand-fetch chasing), so exercising the write buffer needs
  // trigger-fired pushes: idle dirty agents absorb `wbuf` of them
  // locally, then surrender the accumulated delta in one capacity
  // flush. Kill-time extraction flushes whatever remains, so the
  // database audit below is unaffected.
  if (wbuf > 0) opts.push_trigger = "(t > 400)";
  opts.n_agents = kAgents;
  opts.group_size = 10;
  opts.flights_per_group = 5;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  // Demand-fetch rounds chase conflicting dirty views, so crashed
  // agents' deltas can reach the database before they die.
  opts.validity_trigger = "(_age < 500)";
  // Stretch each loop across the chaos window (10 ops x 300 ms think
  // time ~ 3 s of simulated work before loss/partition stalls).
  opts.think_time = sim::msec(300);
  opts.fabric_cfg.loss_probability = 0.10;
  opts.fabric_cfg.seed = seed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 3;
  opts.dir_cfg.liveness_timeout = sim::seconds(2);
  if (crash_dm) {
    opts.durable_directory = true;
    // A warm-but-lagging checkpoint: the crash eats up to 3 buffered
    // WAL appends, so the rebuild round must recover the tail from the
    // cache managers themselves.
    opts.checkpoint_flush_every = 4;
  }
  FleccTestbed tb(opts);
  tb.init_all_agents();

  std::size_t loops_completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(kOpsPerAgent, flight, 1,
                                     /*pull_first=*/true,
                                     [&] { ++loops_completed; });
  }

  // t+1.5s: two agents die silently, mid-loop.
  tb.run_until(tb.simulator().now() + sim::msec(1500));
  for (const std::size_t i : kCrashed) tb.crash_agent(i);

  // t+3s: a block of agents is partitioned away from the directory...
  tb.run_until(tb.simulator().now() + sim::msec(1500));
  std::vector<std::size_t> cut;
  for (std::size_t i = kPartitionLo; i <= kPartitionHi; ++i) cut.push_back(i);
  tb.partition_agents(cut);

  // ...long enough for the directory to evict them, then heals.
  tb.run_until(tb.simulator().now() + sim::seconds(4));
  tb.heal_partition();

  if (crash_dm) {
    // t+~8s: the directory itself dies with rounds in flight. In-flight
    // replies to it vanish; agents retry into the void and start
    // missing heartbeats.
    tb.run_until(tb.simulator().now() + sim::seconds(1));
    tb.crash_directory();
    tb.run_until(tb.simulator().now() + sim::seconds(1));
    if (empty_checkpoint) tb.durability()->drop_all();
    tb.restart_directory();
  }

  // Generous recovery horizon (daemon-paced register retries need
  // run_until), then run the remaining work to quiescence.
  tb.run_until(tb.simulator().now() + sim::seconds(30));
  tb.run();

  // ---- convergence asserts ---------------------------------------------
  std::int64_t survivors_confirmed = 0, crashed_confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    if (is_crashed(i)) {
      crashed_confirmed += tb.agent(i).view().confirmed_total();
      continue;
    }
    survivors_confirmed += tb.agent(i).view().confirmed_total();
    SOAK_CHECK(tb.agent(i).ops_completed() == kOpsPerAgent,
               "agent %zu completed %zu/%zu ops", i,
               tb.agent(i).ops_completed(), kOpsPerAgent);
    SOAK_CHECK(tb.agent(i).cache().queued_ops() == 0,
               "agent %zu has %zu wedged queued ops", i,
               tb.agent(i).cache().queued_ops());
    SOAK_CHECK(!tb.agent(i).cache().op_in_flight(),
               "agent %zu has a wedged in-flight op", i);
  }
  SOAK_CHECK(loops_completed == kAgents - 2,
             "%zu/%zu survivor loops completed", loops_completed,
             kAgents - 2);

  // Surrender survivors' remaining deltas so the database is auditable.
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    if (!tb.crashed(i)) tb.agent(i).shutdown();
  }
  tb.run();

  const std::int64_t db_total = tb.database().total_reserved();
  SOAK_CHECK(db_total >= survivors_confirmed,
             "database lost survivor updates: %lld < %lld",
             static_cast<long long>(db_total),
             static_cast<long long>(survivors_confirmed));
  if (!empty_checkpoint) {
    SOAK_CHECK(db_total <= survivors_confirmed + crashed_confirmed,
               "database over-merged: %lld > %lld + %lld",
               static_cast<long long>(db_total),
               static_cast<long long>(survivors_confirmed),
               static_cast<long long>(crashed_confirmed));
  }
  // With the WAL wiped (empty_checkpoint) the directory loses its
  // exactly-once markers, so unacked pre-crash merges legitimately
  // re-apply when cache managers re-deliver them: delivery degrades to
  // at-least-once. Updates still can't be LOST (the lower bound above
  // holds unconditionally) and the coherence invariants stay green —
  // the monitor grants each pre-crash extraction one re-merge per
  // recovery epoch for exactly this case.

  // ---- aggregate counters ----------------------------------------------
  std::map<std::string, std::uint64_t> agg;
  for (const auto& [k, v] : tb.directory().stats().all()) agg["dm." + k] += v;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const auto& [k, v] : tb.agent(i).cache().stats().all()) {
      agg["cm." + k] += v;
    }
  }
  for (const char* key :
       {"msg.dropped.loss", "msg.dropped.partition", "msg.dropped.unbound",
        "msg.sent", "batch.frames", "batch.subs", "batch.coalesced",
        "batch.flush.window", "batch.flush.capacity", "batch.flush.single",
        "batch.sub.unbound"}) {
    agg[std::string("net.") + key] = tb.fabric().counters().get(key);
  }
  if (batch) {
    SOAK_CHECK(agg["net.batch.frames"] >= 1,
               "batching enabled but no train ever coalesced");
  }
  if (wbuf > 0) {
    SOAK_CHECK(agg["cm.wbuf.absorbed"] >= 1,
               "write buffer enabled but no push was ever absorbed");
  }

  SOAK_CHECK(agg["cm.op.retry"] >= 1, "loss injected but nothing retried");
  SOAK_CHECK(agg["net.msg.dropped.partition"] >= 1,
             "the partition dropped no traffic");
  if (crash_dm) {
    // The restarted incarnation's counters replace the pre-crash ones
    // (they died with the old DirectoryManager), so liveness-eviction
    // counts are not assertable here; recovery completion is.
    SOAK_CHECK(agg["dm.recovery.restart"] >= 1,
               "the directory never restarted from its checkpoint");
    SOAK_CHECK(agg["dm.recovery.completed"] >= 1,
               "directory recovery never completed");
  } else {
    SOAK_CHECK(agg["dm.view.evicted.liveness"] >= 2,
               "crashed views were never evicted");
  }

  std::string out = "counter,value\n";
  for (const auto& [k, v] : agg) {
    out += k + "," + std::to_string(v) + "\n";
  }
  out += "summary.survivors_confirmed," +
         std::to_string(survivors_confirmed) + "\n";
  out += "summary.crashed_confirmed," + std::to_string(crashed_confirmed) +
         "\n";
  out += "summary.db_total," + std::to_string(db_total) + "\n";
  out += "summary.sim_end_us," + std::to_string(tb.simulator().now()) + "\n";
  return out;
}

// ---- overload storm (--overload) -------------------------------------------

constexpr std::size_t kStormAgents = 40;
constexpr std::size_t kStormOps = 8;
/// Per-destination bulk-queue bound for the flow-controlled run. The
/// synchronized storm start alone puts ~kStormAgents bulk requests in
/// flight toward the directory, so the unbounded baseline must exceed
/// this while the bounded run stays at or under it.
constexpr std::size_t kStormQueueBound = 12;

struct OverloadResult {
  std::uint64_t queue_peak = 0;
  std::uint64_t fabric_shed = 0;
  std::uint64_t dm_shed = 0;
  std::uint64_t breaker_opened = 0;
  std::uint64_t degraded = 0;
};

/// One overload storm: every agent conflicts on the same tiny hot
/// flight set (the Zipf head), all start at once with zero think time,
/// and the directory is the slow node (every message to it pays extra
/// queuing delay). With `flow_on` the full ladder is armed — bounded
/// fabric queues, DM admission control, CM breaker + WEAK degradation;
/// without it only the lane classifier is installed so the baseline
/// still reports the same peak-depth metric it is compared on.
std::string run_overload(std::uint64_t seed, obs::TraceRecorder* trace,
                         bool flow_on, OverloadResult* result = nullptr) {
  TestbedOptions opts;
  opts.trace = trace;
  opts.n_agents = kStormAgents;
  opts.group_size = kStormAgents;  // one conflict group: everyone collides
  opts.flights_per_group = 2;      // tiny hot-object set
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kStrong;  // acquire/invalidate amplification
  opts.think_time = 0;              // no pacing: the burst IS the storm
  opts.fabric_cfg.seed = seed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 5;

  core::flow::FlowLimits limits;
  limits.queue_capacity = flow_on ? kStormQueueBound : 0;
  limits.retry_after = sim::msec(50);
  opts.fabric_cfg.flow = core::flow::make_fabric_flow(limits);
  if (flow_on) {
    opts.dir_cfg.max_acquire_queue = 8;
    opts.dir_cfg.max_fetch_rounds = 8;
    opts.dir_cfg.busy_retry_after = sim::msec(50);
    opts.breaker_threshold = 3;
    opts.breaker_open_timeout = sim::msec(200);
    opts.degrade_on_overload = true;
    opts.write_buffer_ops = 4;  // degraded WEAK pushes absorb locally
  }

  FleccTestbed tb(opts);
  // The slow component: every message toward the directory pays extra
  // queuing delay, so the synchronized burst piles up in front of it.
  tb.fabric().set_endpoint_delay(tb.directory().address(), sim::msec(5));
  tb.init_all_agents();

  std::size_t loops_completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(kStormOps, flight, 1,
                                     /*pull_first=*/false,
                                     [&] { ++loops_completed; });
  }
  tb.run();

  // ---- convergence asserts ---------------------------------------------
  SOAK_CHECK(loops_completed == kStormAgents,
             "%zu/%zu storm loops completed", loops_completed, kStormAgents);
  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
    SOAK_CHECK(tb.agent(i).ops_completed() == kStormOps,
               "agent %zu completed %zu/%zu ops", i,
               tb.agent(i).ops_completed(), kStormOps);
    SOAK_CHECK(tb.agent(i).cache().queued_ops() == 0,
               "agent %zu has %zu wedged queued ops", i,
               tb.agent(i).cache().queued_ops());
    SOAK_CHECK(!tb.agent(i).cache().op_in_flight(),
               "agent %zu has a wedged in-flight op", i);
    // Degradation is transient: once the storm drains the breaker
    // closes and the manager climbs back to STRONG.
    SOAK_CHECK(!tb.agent(i).cache().degraded(),
               "agent %zu is still degraded after the storm", i);
    SOAK_CHECK(tb.agent(i).cache().mode() == core::Mode::kStrong,
               "agent %zu never restored STRONG mode", i);
  }

  for (std::size_t i = 0; i < tb.agent_count(); ++i) tb.agent(i).shutdown();
  tb.run();

  const std::int64_t db_total = tb.database().total_reserved();
  SOAK_CHECK(db_total == confirmed,
             "database diverged from confirmations: %lld != %lld",
             static_cast<long long>(db_total),
             static_cast<long long>(confirmed));

  // ---- aggregate counters ----------------------------------------------
  std::map<std::string, std::uint64_t> agg;
  for (const auto& [k, v] : tb.directory().stats().all()) agg["dm." + k] += v;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const auto& [k, v] : tb.agent(i).cache().stats().all()) {
      agg["cm." + k] += v;
    }
  }
  for (const auto& [k, v] : tb.fabric().counters().all()) {
    if (k.rfind("flow.", 0) == 0) agg["net." + k] += v;
  }
  agg["net.msg.sent"] = tb.fabric().counters().get("msg.sent");

  if (result != nullptr) {
    // find(), not operator[]: inserting zero rows here would make the
    // result-collecting run print differently from its determinism twin.
    const auto get = [&agg](const char* k) -> std::uint64_t {
      const auto it = agg.find(k);
      return it == agg.end() ? 0 : it->second;
    };
    result->queue_peak = get("net.flow.queue.peak");
    result->fabric_shed = get("net.flow.shed");
    result->dm_shed = get("dm.shed.acquire") + get("dm.shed.pull");
    result->breaker_opened = get("cm.breaker.open");
    result->degraded = get("cm.breaker.degrade");
  }

  std::string out = "counter,value\n";
  for (const auto& [k, v] : agg) {
    out += k + "," + std::to_string(v) + "\n";
  }
  out += "summary.db_total," + std::to_string(db_total) + "\n";
  out += "summary.sim_end_us," + std::to_string(tb.simulator().now()) + "\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  bool monitor = false;
  bool crash_dm = false;
  bool batch = false;
  bool overload = false;
  std::size_t wbuf = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else if (std::strcmp(argv[i], "--crash-dm") == 0) {
      crash_dm = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--wbuf") == 0 && i + 1 < argc) {
      wbuf = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.jsonl] [--monitor] [--crash-dm] "
                   "[--batch] [--overload] [--wbuf N]\n",
                   argv[0]);
      return 2;
    }
  }

  if (overload) {
    std::printf("# Overload storm — %zu strong-mode agents on one hot "
                "flight group, slow directory, queue bound %zu\n",
                kStormAgents, kStormQueueBound);
    const std::uint64_t seed = 0xc0a5;
    obs::TraceRecorder recorder;
    obs::monitor::InvariantMonitor checker;
    if (monitor) recorder.attach_sink(&checker);
    const bool tracing = trace_path != nullptr || monitor;
    OverloadResult flow_res;
    const std::string first = run_overload(
        seed, tracing ? &recorder : nullptr, /*flow_on=*/true, &flow_res);
    const std::string second = run_overload(seed, nullptr, true);
    SOAK_CHECK(first == second,
               "two same-seed overload runs diverged: not deterministic");
    OverloadResult base_res;
    run_overload(seed, nullptr, /*flow_on=*/false, &base_res);

    // The bound held where the baseline blew through it, and every
    // layer of the ladder actually engaged.
    SOAK_CHECK(flow_res.queue_peak <= kStormQueueBound,
               "bounded run peak %llu exceeds bound %zu",
               static_cast<unsigned long long>(flow_res.queue_peak),
               kStormQueueBound);
    SOAK_CHECK(base_res.queue_peak > kStormQueueBound,
               "baseline peak %llu never exceeded the bound %zu — the "
               "storm is not a storm",
               static_cast<unsigned long long>(base_res.queue_peak),
               kStormQueueBound);
    SOAK_CHECK(flow_res.fabric_shed + flow_res.dm_shed >= 1,
               "flow control on but nothing was ever shed");
    SOAK_CHECK(flow_res.breaker_opened >= 1,
               "sustained pressure never opened a breaker");
    SOAK_CHECK(flow_res.degraded >= 1,
               "no STRONG manager ever degraded to buffered WEAK");

    if (monitor) {
      checker.finalize();
      std::fputs(checker.health_report().c_str(), stdout);
      obs::MetricsRegistry reg;
      checker.export_metrics(reg);
      // Surface the overload ladder in the same Prometheus export the
      // monitor writes: flow.*/shed.*/breaker.* families.
      reg.inc("net.flow.queue.peak", flow_res.queue_peak);
      reg.inc("net.flow.shed", flow_res.fabric_shed);
      reg.inc("dm.shed", flow_res.dm_shed);
      reg.inc("cm.breaker.open", flow_res.breaker_opened);
      reg.inc("cm.breaker.degrade", flow_res.degraded);
      if (reg.write_prometheus("flecc_metrics.prom")) {
        std::printf("# monitor metrics -> flecc_metrics.prom\n");
      }
      SOAK_CHECK(checker.violations().empty(),
                 "online monitor reported %zu invariant violation(s)",
                 checker.violations().size());
    }
    if (trace_path != nullptr) {
      const auto events = recorder.snapshot();
      if (!obs::write_jsonl(events, trace_path)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path);
        return 1;
      }
      std::printf("# trace: %zu events -> %s\n", events.size(), trace_path);
    }
    std::printf("%s", first.c_str());
    std::printf("# peak bulk queue depth: bounded %llu <= %zu, unbounded "
                "baseline %llu\n",
                static_cast<unsigned long long>(flow_res.queue_peak),
                kStormQueueBound,
                static_cast<unsigned long long>(base_res.queue_peak));
    if (std::FILE* f = std::fopen("chaos_soak.csv", "w")) {
      std::fputs(first.c_str(), f);
      std::fclose(f);
      std::printf("\n# data also written to chaos_soak.csv\n");
    }
    std::printf("# overload storm converged; two same-seed runs were "
                "bit-identical\n");
    return 0;
  }

  std::printf("# Chaos soak — %zu agents, 10%% loss, partition of agents "
              "[%zu,%zu], crashes {%zu,%zu}%s%s%s\n",
              kAgents, kPartitionLo, kPartitionHi, kCrashed[0], kCrashed[1],
              crash_dm ? ", directory crash-restart" : "",
              batch ? ", send batching + piggybacked heartbeats" : "",
              wbuf > 0 ? ", CM write buffer" : "");

  const std::uint64_t seed = 0xc0a5;
  obs::TraceRecorder recorder;
  const bool tracing = trace_path != nullptr || monitor;
  // The online conformance monitor consumes events inline as they are
  // emitted; attach it before the run so no buffer exists without the
  // sink (see TraceRecorder::attach_sink for the ordering contract).
  obs::monitor::InvariantMonitor checker;
  if (monitor) recorder.attach_sink(&checker);
  // The recorder rides along on the first run only; the second stays
  // bare so the bit-identical comparison proves tracing (and the
  // monitor) never perturbs the protocol.
  const std::string first = run_soak(seed, tracing ? &recorder : nullptr,
                                     crash_dm, false, batch, wbuf);
  const std::string second =
      run_soak(seed, nullptr, crash_dm, false, batch, wbuf);
  SOAK_CHECK(first == second,
             "two same-seed runs diverged: the soak is not deterministic");

  if (monitor) {
    checker.finalize();
    std::fputs(checker.health_report().c_str(), stdout);
    obs::MetricsRegistry reg;
    checker.export_metrics(reg);
    if (reg.write_prometheus("flecc_metrics.prom")) {
      std::printf("# monitor metrics -> flecc_metrics.prom\n");
    }
    SOAK_CHECK(checker.violations().empty(),
               "online monitor reported %zu invariant violation(s)",
               checker.violations().size());
    SOAK_CHECK(checker.unresolved_recovery_epochs() == 0,
               "a directory recovery epoch never resolved");
  }

  if (crash_dm) {
    // Second scenario: the checkpoint is wiped before the restart, so
    // only the generation superblock survives and the state comes back
    // purely via CM re-registration (heartbeats fenced with
    // known=false). Same determinism bar as the warm variant.
    std::printf("# crash-dm: warm-checkpoint variant converged; running "
                "empty-checkpoint variant\n");
    obs::TraceRecorder empty_rec;
    obs::monitor::InvariantMonitor empty_checker;
    if (monitor) empty_rec.attach_sink(&empty_checker);
    const std::string e1 = run_soak(seed, monitor ? &empty_rec : nullptr,
                                    /*crash_dm=*/true,
                                    /*empty_checkpoint=*/true, batch, wbuf);
    const std::string e2 = run_soak(seed, nullptr, true, true, batch, wbuf);
    SOAK_CHECK(e1 == e2, "empty-checkpoint runs diverged");
    if (monitor) {
      empty_checker.finalize();
      SOAK_CHECK(empty_checker.violations().empty(),
                 "empty-checkpoint variant: %zu invariant violation(s)",
                 empty_checker.violations().size());
      SOAK_CHECK(empty_checker.unresolved_recovery_epochs() == 0,
                 "empty-checkpoint variant: recovery epoch never resolved");
    }
    std::printf("# crash-dm: empty-checkpoint variant converged\n");
  }

  if (trace_path != nullptr) {
    const auto events = recorder.snapshot();
    if (!obs::write_jsonl(events, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    std::printf("# trace: %zu events (%llu recorded, %llu lost to ring "
                "wraparound) -> %s\n",
                events.size(),
                static_cast<unsigned long long>(recorder.total_emitted()),
                static_cast<unsigned long long>(recorder.total_dropped()),
                trace_path);
    if (!obs::kTraceEnabled) {
      std::printf("# (built with FLECC_TRACE=OFF: the trace is empty)\n");
    }
  }

  std::printf("%s", first.c_str());
  if (std::FILE* f = std::fopen("chaos_soak.csv", "w")) {
    std::fputs(first.c_str(), f);
    std::fclose(f);
    std::printf("\n# data also written to chaos_soak.csv\n");
  }
  std::printf("# all convergence checks passed; two same-seed runs were "
              "bit-identical\n");
  return 0;
}
