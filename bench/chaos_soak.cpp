// Chaos soak — the reliability layer under compound failure.
//
// 100 weak-mode travel agents run the airline workload while the
// harness injects, in one run:
//   * 10% uniform message loss (seeded, deterministic),
//   * two silent view crashes (CacheManager::halt(): no teardown),
//   * one network partition/heal cycle cutting a block of agents off
//     from the directory mid-workload,
// with liveness heartbeats and directory-side eviction enabled.
//
// Convergence asserts (the run aborts if any fails):
//   * every surviving agent completes ALL its operations,
//   * no surviving cache manager is wedged (empty queue, nothing in
//     flight),
//   * the database equals the surviving agents' confirmed seats plus
//     whatever the crashed agents managed to surrender before dying
//     (bounded below by the former, above by the sum),
//   * two runs with the same seed produce bit-identical output.
//
// Emits the aggregated reliability counters as chaos_soak.csv. With
// `--trace out.jsonl` the first run also records an obs protocol trace
// (readable with tools/flecc_trace); the recorder is attached to the
// first run only so the two-run determinism check stays meaningful.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "airline/testbed.hpp"
#include "core/flow_control.hpp"
#include "net/telemetry_server.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/prom.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_io.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 100;
constexpr std::size_t kOpsPerAgent = 10;
constexpr std::size_t kCrashed[] = {7, 42};
constexpr std::size_t kPartitionLo = 20, kPartitionHi = 29;

bool is_crashed(std::size_t i) {
  return i == kCrashed[0] || i == kCrashed[1];
}

/// Generated artifacts (CSV, Prometheus export, traces named by the
/// caller) land in the git-ignored out/ directory.
std::string out_path(const char* name) {
  std::error_code ec;
  std::filesystem::create_directories("out", ec);
  return std::string("out/") + name;
}

#define SOAK_CHECK(cond, ...)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "CHAOS SOAK FAILED: " __VA_ARGS__);  \
      std::fprintf(stderr, "\n  at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                            \
      std::exit(1);                                             \
    }                                                           \
  } while (0)

/// One full soak; returns the printable result (counters + summary) so
/// the driver can compare two same-seed runs bit for bit. With
/// `crash_dm` the directory itself is crashed and restarted mid-run
/// from its checkpoint (`empty_checkpoint` drops the WAL first, leaving
/// only the generation superblock — the pure CM-assisted rebuild).
std::string run_soak(std::uint64_t seed, obs::TraceRecorder* trace = nullptr,
                     bool crash_dm = false, bool empty_checkpoint = false,
                     bool batch = false, std::size_t wbuf = 0,
                     obs::TelemetryHub* hub = nullptr) {
  TestbedOptions opts;
  opts.trace = trace;
  // Telemetry rides the FIRST run only (like the trace recorder), so
  // the two-run comparison below also proves the live pipeline never
  // perturbs the protocol.
  opts.telemetry = hub;
  // Raw-speed layer (PERFORMANCE.md): batching implies heartbeat
  // piggybacking — suppressed beacons only make sense when regular
  // traffic is being coalesced toward the directory anyway.
  opts.batch_fabric = batch;
  opts.piggyback_heartbeats = batch;
  opts.write_buffer_ops = wbuf;
  // The reservation loop is pull-driven (deltas reach the database via
  // demand-fetch chasing), so exercising the write buffer needs
  // trigger-fired pushes: idle dirty agents absorb `wbuf` of them
  // locally, then surrender the accumulated delta in one capacity
  // flush. Kill-time extraction flushes whatever remains, so the
  // database audit below is unaffected.
  if (wbuf > 0) opts.push_trigger = "(t > 400)";
  opts.n_agents = kAgents;
  opts.group_size = 10;
  opts.flights_per_group = 5;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  // Demand-fetch rounds chase conflicting dirty views, so crashed
  // agents' deltas can reach the database before they die.
  opts.validity_trigger = "(_age < 500)";
  // Stretch each loop across the chaos window (10 ops x 300 ms think
  // time ~ 3 s of simulated work before loss/partition stalls).
  opts.think_time = sim::msec(300);
  opts.fabric_cfg.loss_probability = 0.10;
  opts.fabric_cfg.seed = seed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 3;
  opts.dir_cfg.liveness_timeout = sim::seconds(2);
  if (crash_dm) {
    opts.durable_directory = true;
    // A warm-but-lagging checkpoint: the crash eats up to 3 buffered
    // WAL appends, so the rebuild round must recover the tail from the
    // cache managers themselves.
    opts.checkpoint_flush_every = 4;
  }
  FleccTestbed tb(opts);
  tb.init_all_agents();

  std::size_t loops_completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(kOpsPerAgent, flight, 1,
                                     /*pull_first=*/true,
                                     [&] { ++loops_completed; });
  }

  // t+1.5s: two agents die silently, mid-loop.
  tb.run_until(tb.simulator().now() + sim::msec(1500));
  for (const std::size_t i : kCrashed) tb.crash_agent(i);

  // t+3s: a block of agents is partitioned away from the directory...
  tb.run_until(tb.simulator().now() + sim::msec(1500));
  std::vector<std::size_t> cut;
  for (std::size_t i = kPartitionLo; i <= kPartitionHi; ++i) cut.push_back(i);
  tb.partition_agents(cut);

  // ...long enough for the directory to evict them, then heals.
  tb.run_until(tb.simulator().now() + sim::seconds(4));
  tb.heal_partition();

  if (crash_dm) {
    // t+~8s: the directory itself dies with rounds in flight. In-flight
    // replies to it vanish; agents retry into the void and start
    // missing heartbeats.
    tb.run_until(tb.simulator().now() + sim::seconds(1));
    tb.crash_directory();
    tb.run_until(tb.simulator().now() + sim::seconds(1));
    if (empty_checkpoint) tb.durability()->drop_all();
    tb.restart_directory();
  }

  // Generous recovery horizon (daemon-paced register retries need
  // run_until), then run the remaining work to quiescence.
  tb.run_until(tb.simulator().now() + sim::seconds(30));
  tb.run();

  // ---- convergence asserts ---------------------------------------------
  std::int64_t survivors_confirmed = 0, crashed_confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    if (is_crashed(i)) {
      crashed_confirmed += tb.agent(i).view().confirmed_total();
      continue;
    }
    survivors_confirmed += tb.agent(i).view().confirmed_total();
    SOAK_CHECK(tb.agent(i).ops_completed() == kOpsPerAgent,
               "agent %zu completed %zu/%zu ops", i,
               tb.agent(i).ops_completed(), kOpsPerAgent);
    SOAK_CHECK(tb.agent(i).cache().queued_ops() == 0,
               "agent %zu has %zu wedged queued ops", i,
               tb.agent(i).cache().queued_ops());
    SOAK_CHECK(!tb.agent(i).cache().op_in_flight(),
               "agent %zu has a wedged in-flight op", i);
  }
  SOAK_CHECK(loops_completed == kAgents - 2,
             "%zu/%zu survivor loops completed", loops_completed,
             kAgents - 2);

  // Surrender survivors' remaining deltas so the database is auditable.
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    if (!tb.crashed(i)) tb.agent(i).shutdown();
  }
  tb.run();

  const std::int64_t db_total = tb.database().total_reserved();
  SOAK_CHECK(db_total >= survivors_confirmed,
             "database lost survivor updates: %lld < %lld",
             static_cast<long long>(db_total),
             static_cast<long long>(survivors_confirmed));
  if (!empty_checkpoint) {
    SOAK_CHECK(db_total <= survivors_confirmed + crashed_confirmed,
               "database over-merged: %lld > %lld + %lld",
               static_cast<long long>(db_total),
               static_cast<long long>(survivors_confirmed),
               static_cast<long long>(crashed_confirmed));
  }
  // With the WAL wiped (empty_checkpoint) the directory loses its
  // exactly-once markers, so unacked pre-crash merges legitimately
  // re-apply when cache managers re-deliver them: delivery degrades to
  // at-least-once. Updates still can't be LOST (the lower bound above
  // holds unconditionally) and the coherence invariants stay green —
  // the monitor grants each pre-crash extraction one re-merge per
  // recovery epoch for exactly this case.

  // ---- aggregate counters ----------------------------------------------
  std::map<std::string, std::uint64_t> agg;
  for (const auto& [k, v] : tb.directory().stats().all()) agg["dm." + k] += v;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const auto& [k, v] : tb.agent(i).cache().stats().all()) {
      agg["cm." + k] += v;
    }
  }
  for (const char* key :
       {"msg.dropped.loss", "msg.dropped.partition", "msg.dropped.unbound",
        "msg.sent", "batch.frames", "batch.subs", "batch.coalesced",
        "batch.flush.window", "batch.flush.capacity", "batch.flush.single",
        "batch.sub.unbound"}) {
    agg[std::string("net.") + key] = tb.fabric().counters().get(key);
  }
  if (batch) {
    SOAK_CHECK(agg["net.batch.frames"] >= 1,
               "batching enabled but no train ever coalesced");
  }
  if (wbuf > 0) {
    SOAK_CHECK(agg["cm.wbuf.absorbed"] >= 1,
               "write buffer enabled but no push was ever absorbed");
  }

  SOAK_CHECK(agg["cm.op.retry"] >= 1, "loss injected but nothing retried");
  SOAK_CHECK(agg["net.msg.dropped.partition"] >= 1,
             "the partition dropped no traffic");
  if (crash_dm) {
    // The restarted incarnation's counters replace the pre-crash ones
    // (they died with the old DirectoryManager), so liveness-eviction
    // counts are not assertable here; recovery completion is.
    SOAK_CHECK(agg["dm.recovery.restart"] >= 1,
               "the directory never restarted from its checkpoint");
    SOAK_CHECK(agg["dm.recovery.completed"] >= 1,
               "directory recovery never completed");
  } else {
    SOAK_CHECK(agg["dm.view.evicted.liveness"] >= 2,
               "crashed views were never evicted");
  }

  std::string out = "counter,value\n";
  for (const auto& [k, v] : agg) {
    out += k + "," + std::to_string(v) + "\n";
  }
  out += "summary.survivors_confirmed," +
         std::to_string(survivors_confirmed) + "\n";
  out += "summary.crashed_confirmed," + std::to_string(crashed_confirmed) +
         "\n";
  out += "summary.db_total," + std::to_string(db_total) + "\n";
  out += "summary.sim_end_us," + std::to_string(tb.simulator().now()) + "\n";
  return out;
}

// ---- overload storm (--overload) -------------------------------------------

constexpr std::size_t kStormAgents = 40;
constexpr std::size_t kStormOps = 8;
/// Per-destination bulk-queue bound for the flow-controlled run. The
/// synchronized storm start alone puts ~kStormAgents bulk requests in
/// flight toward the directory, so the unbounded baseline must exceed
/// this while the bounded run stays at or under it.
constexpr std::size_t kStormQueueBound = 12;

struct OverloadResult {
  std::uint64_t queue_peak = 0;
  std::uint64_t fabric_shed = 0;
  std::uint64_t dm_shed = 0;
  std::uint64_t breaker_opened = 0;
  std::uint64_t degraded = 0;
};

/// One overload storm: every agent conflicts on the same tiny hot
/// flight set (the Zipf head), all start at once with zero think time,
/// and the directory is the slow node (every message to it pays extra
/// queuing delay). With `flow_on` the full ladder is armed — bounded
/// fabric queues, DM admission control, CM breaker + WEAK degradation;
/// without it only the lane classifier is installed so the baseline
/// still reports the same peak-depth metric it is compared on. With
/// `crash_dm` the slow directory additionally dies mid-storm and
/// restarts from its checkpoint — overload plus crash recovery in one
/// run.
std::string run_overload(std::uint64_t seed, obs::TraceRecorder* trace,
                         bool flow_on, OverloadResult* result = nullptr,
                         bool crash_dm = false,
                         obs::TelemetryHub* hub = nullptr) {
  TestbedOptions opts;
  opts.trace = trace;
  opts.telemetry = hub;
  opts.n_agents = kStormAgents;
  opts.group_size = kStormAgents;  // one conflict group: everyone collides
  opts.flights_per_group = 2;      // tiny hot-object set
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kStrong;  // acquire/invalidate amplification
  opts.think_time = 0;              // no pacing: the burst IS the storm
  opts.fabric_cfg.seed = seed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 5;
  if (crash_dm) {
    // Fully-flushed WAL: every exactly-once merge marker is durable, so
    // the strict db == confirmed equality below must survive the crash
    // (the lagging-checkpoint / at-least-once regime is covered by the
    // main soak's --crash-dm variants).
    opts.durable_directory = true;
    opts.checkpoint_flush_every = 1;
  }

  core::flow::FlowLimits limits;
  limits.queue_capacity = flow_on ? kStormQueueBound : 0;
  limits.retry_after = sim::msec(50);
  opts.fabric_cfg.flow = core::flow::make_fabric_flow(limits);
  if (flow_on) {
    opts.dir_cfg.max_acquire_queue = 8;
    opts.dir_cfg.max_fetch_rounds = 8;
    opts.dir_cfg.busy_retry_after = sim::msec(50);
    opts.breaker_threshold = 3;
    opts.breaker_open_timeout = sim::msec(200);
    opts.degrade_on_overload = true;
    opts.write_buffer_ops = 4;  // degraded WEAK pushes absorb locally
  }

  FleccTestbed tb(opts);
  // The slow component: every message toward the directory pays extra
  // queuing delay, so the synchronized burst piles up in front of it.
  tb.fabric().set_endpoint_delay(tb.directory().address(), sim::msec(5));
  tb.init_all_agents();

  std::size_t loops_completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(kStormOps, flight, 1,
                                     /*pull_first=*/false,
                                     [&] { ++loops_completed; });
  }
  if (crash_dm) {
    // The overloaded slow node dies at the height of the pile-up, takes
    // its queue down with it, and restarts from the lagging checkpoint
    // while every agent is still retrying into the void.
    tb.run_until(tb.simulator().now() + sim::msec(400));
    tb.crash_directory();
    tb.run_until(tb.simulator().now() + sim::msec(500));
    tb.restart_directory();
  }
  tb.run();

  // ---- convergence asserts ---------------------------------------------
  SOAK_CHECK(loops_completed == kStormAgents,
             "%zu/%zu storm loops completed", loops_completed, kStormAgents);
  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
    SOAK_CHECK(tb.agent(i).ops_completed() == kStormOps,
               "agent %zu completed %zu/%zu ops", i,
               tb.agent(i).ops_completed(), kStormOps);
    SOAK_CHECK(tb.agent(i).cache().queued_ops() == 0,
               "agent %zu has %zu wedged queued ops", i,
               tb.agent(i).cache().queued_ops());
    SOAK_CHECK(!tb.agent(i).cache().op_in_flight(),
               "agent %zu has a wedged in-flight op", i);
    // Degradation is transient: once the storm drains the breaker
    // closes and the manager climbs back to STRONG.
    SOAK_CHECK(!tb.agent(i).cache().degraded(),
               "agent %zu is still degraded after the storm", i);
    SOAK_CHECK(tb.agent(i).cache().mode() == core::Mode::kStrong,
               "agent %zu never restored STRONG mode", i);
  }

  for (std::size_t i = 0; i < tb.agent_count(); ++i) tb.agent(i).shutdown();
  tb.run();

  const std::int64_t db_total = tb.database().total_reserved();
  SOAK_CHECK(db_total == confirmed,
             "database diverged from confirmations: %lld != %lld",
             static_cast<long long>(db_total),
             static_cast<long long>(confirmed));

  // ---- aggregate counters ----------------------------------------------
  std::map<std::string, std::uint64_t> agg;
  for (const auto& [k, v] : tb.directory().stats().all()) agg["dm." + k] += v;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const auto& [k, v] : tb.agent(i).cache().stats().all()) {
      agg["cm." + k] += v;
    }
  }
  for (const auto& [k, v] : tb.fabric().counters().all()) {
    if (k.rfind("flow.", 0) == 0) agg["net." + k] += v;
  }
  agg["net.msg.sent"] = tb.fabric().counters().get("msg.sent");
  if (crash_dm) {
    SOAK_CHECK(agg["dm.recovery.restart"] >= 1,
               "the directory never restarted from its checkpoint");
    SOAK_CHECK(agg["dm.recovery.completed"] >= 1,
               "directory recovery never completed under overload");
  }

  if (result != nullptr) {
    // find(), not operator[]: inserting zero rows here would make the
    // result-collecting run print differently from its determinism twin.
    const auto get = [&agg](const char* k) -> std::uint64_t {
      const auto it = agg.find(k);
      return it == agg.end() ? 0 : it->second;
    };
    result->queue_peak = get("net.flow.queue.peak");
    result->fabric_shed = get("net.flow.shed");
    result->dm_shed = get("dm.shed.acquire") + get("dm.shed.pull");
    result->breaker_opened = get("cm.breaker.open");
    result->degraded = get("cm.breaker.degrade");
  }

  std::string out = "counter,value\n";
  for (const auto& [k, v] : agg) {
    out += k + "," + std::to_string(v) + "\n";
  }
  out += "summary.db_total," + std::to_string(db_total) + "\n";
  out += "summary.sim_end_us," + std::to_string(tb.simulator().now()) + "\n";
  return out;
}

// ---- live migration soak (--migrate) ---------------------------------------

constexpr std::size_t kMigAgents = 24;
constexpr std::size_t kMigOps = 12;        // bystanders: still working
constexpr std::size_t kMigVictimOps = 4;   // victims: quiescent early
constexpr std::size_t kMigVictims[] = {3, 11};
constexpr std::size_t kMigSpares = 2;

bool is_mig_victim(std::size_t i) {
  return i == kMigVictims[0] || i == kMigVictims[1];
}

/// Who the chaos hook kills when the migration FSM reaches the armed
/// phase (kTargetNone = warm run, no sabotage).
enum MigrateCrashTarget { kTargetNone = 0, kTargetSource, kTargetDest };

struct MigrateVariant {
  const char* name;
  MigrateCrashTarget target;
  int phase;  ///< core::DirectoryManager::MigratePhase to strike at
};

/// Shared state for the on_migrate_phase chaos hook. Declared before
/// the testbed so the callback outlives every component that fires it.
struct MigrateChaos {
  FleccTestbed* tb = nullptr;
  MigrateCrashTarget target = kTargetNone;
  int phase = -1;
  /// view id -> agent index / spare slot of the two armed migrations.
  std::map<std::uint64_t, std::size_t> victim_of_view;
  std::map<std::uint64_t, std::size_t> spare_of_view;
  /// Views already sabotaged: the retry migration runs unharmed.
  std::set<std::uint64_t> struck_views;
  /// Spare slots currently holding a crashed destination.
  std::set<std::size_t> crashed_spares;
  std::size_t crashes = 0;
};

/// One live-migration soak: 24 journaled weak-mode agents work under
/// 5% loss while two early-quiescent victims are migrated onto spare
/// hosts. Per variant the chaos hook kills the source or destination
/// cache manager at a chosen FSM phase; crashed sources restart from
/// their write-ahead journals, aborted moves are retried onto a fresh
/// destination. The database must end EXACTLY equal to every life's
/// confirmed sales — zero lost updates, zero double merges.
std::string run_migrate(std::uint64_t seed, obs::TraceRecorder* trace,
                        const MigrateVariant& variant,
                        obs::TelemetryHub* hub = nullptr) {
  MigrateChaos chaos;
  chaos.target = variant.target;
  chaos.phase = variant.phase;

  TestbedOptions opts;
  opts.trace = trace;
  opts.telemetry = hub;
  opts.n_agents = kMigAgents;
  opts.group_size = 8;
  opts.flights_per_group = 4;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  // Demand-fetch chasing keeps deltas flowing toward the database while
  // the write buffer makes sure some WEAK updates are still buffered
  // CM-side whenever a crash or a handoff strikes.
  opts.validity_trigger = "(_age < 500)";
  opts.write_buffer_ops = 4;
  opts.push_trigger = "(t > 400)";
  opts.think_time = sim::msec(300);
  opts.fabric_cfg.loss_probability = 0.05;
  opts.fabric_cfg.seed = seed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 3;
  opts.dir_cfg.liveness_timeout = sim::seconds(2);
  opts.cm_journal = true;
  opts.cm_journal_flush_every = 1;
  opts.spare_hosts = kMigSpares;
  // The chaos hook fires synchronously inside directory processing at
  // every FSM transition — deterministic under the simulated fabric.
  opts.dir_cfg.on_migrate_phase = [&chaos](core::ViewId v, int phase) {
    if (chaos.tb == nullptr || chaos.target == kTargetNone) return;
    if (phase != chaos.phase) return;
    if (chaos.struck_views.count(v) != 0) return;
    const auto vit = chaos.victim_of_view.find(v);
    if (vit == chaos.victim_of_view.end()) return;
    chaos.struck_views.insert(v);
    ++chaos.crashes;
    if (chaos.target == kTargetSource) {
      chaos.tb->crash_agent(vit->second);
    } else {
      const std::size_t slot = chaos.spare_of_view.at(v);
      chaos.tb->crash_spare(slot);
      chaos.crashed_spares.insert(slot);
    }
  };

  FleccTestbed tb(opts);
  chaos.tb = &tb;
  tb.init_all_agents();

  std::size_t loops_completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    const std::size_t ops = is_mig_victim(i) ? kMigVictimOps : kMigOps;
    tb.agent(i).run_reservation_loop(ops, flight, 1, /*pull_first=*/true,
                                     [&] { ++loops_completed; });
  }

  // The victims' short loops drain first; migrate their (quiescent)
  // views live while the bystanders are still mid-workload.
  tb.run_until(tb.simulator().now() + sim::msec(2500));
  for (std::size_t k = 0; k < kMigSpares; ++k) {
    const std::size_t v = kMigVictims[k];
    SOAK_CHECK(tb.agent(v).ops_completed() == kMigVictimOps,
               "victim %zu not quiescent before migration (%zu/%zu ops)", v,
               tb.agent(v).ops_completed(), kMigVictimOps);
    tb.spawn_destination(v, k);
    const std::uint64_t view = tb.agent(v).cache().id();
    chaos.victim_of_view[view] = v;
    chaos.spare_of_view[view] = k;
    SOAK_CHECK(tb.migrate_agent(v, k),
               "directory rejected migration of view %llu",
               static_cast<unsigned long long>(view));
  }

  // Let the moves — and, in the crash variants, their per-phase
  // timeouts — fully resolve while the bystander workload continues.
  tb.run_until(tb.simulator().now() + sim::seconds(8));
  if (variant.target != kTargetNone) {
    SOAK_CHECK(chaos.crashes >= 1,
               "variant '%s' armed but the chaos hook never fired",
               variant.name);
  }

  // Repairs. Crashed sources restart on the same address and journal:
  // the new life replays buffered writes and strong intents, resumes
  // its view (or is fenced onto a fresh registration when the view
  // already moved) and re-delivers every update exactly once. Aborted
  // moves get a fresh destination and a second, unharmed attempt.
  if (variant.target == kTargetSource) {
    for (const std::size_t v : kMigVictims) {
      if (tb.crashed(v)) tb.restart_agent(v);
    }
  } else if (variant.target == kTargetDest) {
    for (std::size_t k = 0; k < kMigSpares; ++k) {
      const std::size_t v = kMigVictims[k];
      if (!tb.agent(v).cache().moved()) {
        tb.spawn_destination(v, k);
        chaos.crashed_spares.erase(k);
        SOAK_CHECK(tb.migrate_agent(v, k),
                   "directory rejected the retry migration of agent %zu", v);
      }
      // moved() && crashed spare: the handoff completed and THEN the
      // destination died — liveness eviction reclaims the view; its
      // delta already merged at handoff, so nothing is lost.
    }
  }

  tb.run_until(tb.simulator().now() + sim::seconds(20));
  tb.run();

  // ---- convergence asserts ---------------------------------------------
  SOAK_CHECK(loops_completed == kMigAgents, "%zu/%zu loops completed",
             loops_completed, kMigAgents);
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    SOAK_CHECK(!tb.crashed(i), "agent %zu left crashed", i);
    SOAK_CHECK(tb.agent(i).cache().queued_ops() == 0,
               "agent %zu has %zu wedged queued ops", i,
               tb.agent(i).cache().queued_ops());
    SOAK_CHECK(!tb.agent(i).cache().op_in_flight(),
               "agent %zu has a wedged in-flight op", i);
  }

  // Surrender the remaining deltas so the database is auditable. Moved
  // managers are inert (their view lives at the destination now);
  // killing the destination instead surrenders the migrated copy.
  std::int64_t live_confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    live_confirmed += tb.agent(i).view().confirmed_total();
    if (!tb.agent(i).cache().moved()) tb.agent(i).shutdown();
  }
  for (std::size_t k = 0; k < kMigSpares; ++k) {
    const std::size_t v = kMigVictims[k];
    if (tb.has_spare(k) && chaos.crashed_spares.count(k) == 0 &&
        tb.agent(v).cache().moved()) {
      live_confirmed += tb.spare(k).view().confirmed_total();
      tb.spare(k).shutdown();
    }
  }
  tb.run();

  // Zero lost updates, zero double merges: the database equals every
  // life's confirmed sales EXACTLY — across crashes, journal replays,
  // handoffs, aborted moves and re-pushed deltas.
  const std::int64_t db_total = tb.database().total_reserved();
  const std::int64_t expected = live_confirmed + tb.retired_confirmed();
  SOAK_CHECK(db_total == expected,
             "lost-update accounting failed: database %lld != confirmed %lld"
             " (live %lld + retired %lld)",
             static_cast<long long>(db_total),
             static_cast<long long>(expected),
             static_cast<long long>(live_confirmed),
             static_cast<long long>(tb.retired_confirmed()));
  SOAK_CHECK(db_total > 0, "the workload confirmed nothing");

  // ---- aggregate counters ----------------------------------------------
  std::map<std::string, std::uint64_t> agg;
  for (const auto& [k, v] : tb.directory().stats().all()) agg["dm." + k] += v;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const auto& [k, v] : tb.agent(i).cache().stats().all()) {
      agg["cm." + k] += v;
    }
  }
  for (std::size_t k = 0; k < kMigSpares; ++k) {
    if (!tb.has_spare(k)) continue;
    for (const auto& [key, v] : tb.spare(k).cache().stats().all()) {
      agg["cm." + key] += v;
    }
  }
  for (const char* key : {"msg.dropped.loss", "msg.dropped.unbound",
                          "msg.sent"}) {
    agg[std::string("net.") + key] = tb.fabric().counters().get(key);
  }

  SOAK_CHECK(agg["cm.wbuf.absorbed"] >= 1,
             "write buffer enabled but no push was ever absorbed");
  switch (variant.target) {
    case kTargetNone:
      SOAK_CHECK(agg["dm.migrate.done"] >= kMigSpares,
                 "warm variant: not every migration completed");
      break;
    case kTargetSource:
      SOAK_CHECK(agg["cm.journal.replay"] >= 1,
                 "a source crashed but no journal was ever replayed");
      if (variant.phase == core::DirectoryManager::kMigrateQuiesce) {
        SOAK_CHECK(agg["dm.migrate.aborted"] >= 1,
                   "source died at quiesce but nothing aborted");
      } else {
        // The handoff had already merged: the move completes without
        // the source, whose restarted life is fenced onto a fresh
        // registration instead of stealing the view back.
        SOAK_CHECK(agg["dm.migrate.done"] >= kMigSpares,
                   "post-handoff source crash should not stop the move");
        SOAK_CHECK(agg["dm.register.fenced.moved"] >= 1,
                   "restarted source was never fenced off its moved view");
      }
      break;
    case kTargetDest:
      if (variant.phase == core::DirectoryManager::kMigrateDone) {
        SOAK_CHECK(agg["dm.migrate.done"] >= kMigSpares,
                   "dest died after done: the move itself should complete");
        SOAK_CHECK(agg["dm.view.evicted.liveness"] >= 1,
                   "dead destination was never evicted");
      } else {
        SOAK_CHECK(agg["dm.migrate.aborted"] >= 1,
                   "dest died mid-move but nothing aborted");
        SOAK_CHECK(agg["dm.migrate.done"] >= kMigSpares,
                   "the retry migration never completed");
      }
      break;
  }

  std::string out = "counter,value\n";
  for (const auto& [k, v] : agg) {
    out += k + "," + std::to_string(v) + "\n";
  }
  out += "summary.live_confirmed," + std::to_string(live_confirmed) + "\n";
  out += "summary.retired_confirmed," +
         std::to_string(tb.retired_confirmed()) + "\n";
  out += "summary.db_total," + std::to_string(db_total) + "\n";
  out += "summary.sim_end_us," + std::to_string(tb.simulator().now()) + "\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  bool monitor = false;
  bool crash_dm = false;
  bool batch = false;
  bool overload = false;
  bool migrate = false;
  std::size_t wbuf = 0;
  bool serve = false;
  unsigned serve_port = 0;
  unsigned telemetry_interval_ms = 250;
  unsigned pace_ms = 0;
  bool telemetry = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else if (std::strcmp(argv[i], "--crash-dm") == 0) {
      crash_dm = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--migrate") == 0) {
      migrate = true;
    } else if (std::strcmp(argv[i], "--wbuf") == 0 && i + 1 < argc) {
      wbuf = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve = telemetry = true;
      serve_port =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 &&
               i + 1 < argc) {
      telemetry = true;
      telemetry_interval_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (telemetry_interval_ms == 0) telemetry_interval_ms = 250;
    } else if (std::strcmp(argv[i], "--pace") == 0 && i + 1 < argc) {
      telemetry = true;
      pace_ms = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.jsonl] [--monitor] [--crash-dm] "
                   "[--batch] [--overload] [--migrate] [--wbuf N] "
                   "[--serve PORT] [--telemetry-interval MS] [--pace MS]\n",
                   argv[0]);
      return 2;
    }
  }

  // Live telemetry: a hub sampled on simulated time by the first run's
  // testbed, optionally served over HTTP while the soak executes. The
  // SLO rules below are tuned to the chaos the soak injects, so every
  // telemetry-enabled run demonstrates the full alert lifecycle:
  // retries/breakers fire the rules mid-chaos, the long recovery
  // horizon drains them, and the run ends with zero active alerts.
  std::unique_ptr<obs::TelemetryHub> hub;
  std::unique_ptr<net::TelemetryServer> server;
  if (telemetry) {
    obs::TelemetryOptions topts;
    topts.interval = sim::msec(telemetry_interval_ms);
    topts.pace_ms = pace_ms;
    hub = std::make_unique<obs::TelemetryHub>(topts);
    std::string rule_err;
    for (const char* rule :
         {"retransmit-storm: cm.op.retry/s > 0",
          "breaker-open: cm.breaker.open/s > 0",
          "directory-down: health.dm.down >= 1"}) {
      SOAK_CHECK(hub->alerts().add_rule(rule, &rule_err), "bad SLO rule: %s",
                 rule_err.c_str());
    }
    if (serve) {
      server = std::make_unique<net::TelemetryServer>(
          static_cast<std::uint16_t>(serve_port));
      SOAK_CHECK(server->listening(), "cannot bind telemetry port %u",
                 serve_port);
      net::serve_telemetry(*hub, *server);
      server->serve_background();
      std::printf("# telemetry: http://127.0.0.1:%u/metrics (also /healthz, "
                  "/varz)\n",
                  server->port());
    }
  }

  // Every mode runs twice with the same seed and compares output bit
  // for bit; the hub (like the trace recorder) rides the first run
  // only, so the comparison also proves telemetry never perturbs the
  // protocol. These checks run after the mode finishes.
  const auto check_telemetry = [&] {
    if (hub == nullptr) return;
    SOAK_CHECK(hub->registry().windows_closed() >= 1,
               "telemetry enabled but no window ever closed");
    SOAK_CHECK(hub->alerts().raised_total() >= 1,
               "chaos injected but no SLO alert ever fired");
    SOAK_CHECK(hub->alerts().cleared_total() == hub->alerts().raised_total(),
               "%llu alert(s) still active after the recovery horizon",
               static_cast<unsigned long long>(hub->alerts().raised_total() -
                                               hub->alerts().cleared_total()));
    const auto issues = obs::prom::validate(hub->render_metrics());
    for (const auto& issue : issues) {
      std::fprintf(stderr, "prom: %s\n", issue.to_string().c_str());
    }
    SOAK_CHECK(issues.empty(), "/metrics failed exposition validation");
    std::printf("# telemetry: %llu windows, %llu series, alerts raised=%llu "
                "cleared=%llu, /metrics validator-clean\n",
                static_cast<unsigned long long>(
                    hub->registry().windows_closed()),
                static_cast<unsigned long long>(hub->registry().series_count()),
                static_cast<unsigned long long>(hub->alerts().raised_total()),
                static_cast<unsigned long long>(hub->alerts().cleared_total()));
  };

  if (migrate) {
    std::printf("# Migration soak — %zu journaled agents, 5%% loss, two live "
                "view moves onto spare hosts, crash matrix over every "
                "migration phase\n",
                kMigAgents);
    const std::uint64_t seed = 0xc0a5;
    static const MigrateVariant kVariants[] = {
        {"warm", kTargetNone, -1},
        {"src-quiesce", kTargetSource, core::DirectoryManager::kMigrateQuiesce},
        {"src-handoff", kTargetSource, core::DirectoryManager::kMigrateHandoff},
        {"src-done", kTargetSource, core::DirectoryManager::kMigrateDone},
        {"dest-quiesce", kTargetDest, core::DirectoryManager::kMigrateQuiesce},
        {"dest-handoff", kTargetDest, core::DirectoryManager::kMigrateHandoff},
        {"dest-done", kTargetDest, core::DirectoryManager::kMigrateDone},
    };
    std::string all;
    for (const auto& v : kVariants) {
      obs::TraceRecorder recorder;
      obs::monitor::InvariantMonitor checker;
      if (monitor) recorder.attach_sink(&checker);
      const bool tracing = trace_path != nullptr || monitor;
      const std::string first =
          run_migrate(seed, tracing ? &recorder : nullptr, v, hub.get());
      const std::string second = run_migrate(seed, nullptr, v);
      SOAK_CHECK(first == second,
                 "variant '%s': two same-seed runs diverged", v.name);
      if (monitor) {
        checker.finalize();
        SOAK_CHECK(checker.violations().empty(),
                   "variant '%s': %zu invariant violation(s)", v.name,
                   checker.violations().size());
        SOAK_CHECK(checker.unresolved_migration_epochs() == 0,
                   "variant '%s': a migration epoch never settled", v.name);
        SOAK_CHECK(checker.unresolved_recovery_epochs() == 0,
                   "variant '%s': a recovery epoch never resolved", v.name);
        obs::MetricsRegistry reg;
        checker.export_metrics(reg);
        reg.write_prometheus(out_path("flecc_metrics.prom").c_str());
      }
      if (trace_path != nullptr) {
        obs::write_jsonl(recorder.snapshot(), trace_path);
      }
      std::printf("# migrate variant %-13s converged; twin bit-identical\n",
                  v.name);
      all += std::string("# variant ") + v.name + "\n" + first;
    }
    std::printf("%s", all.c_str());
    const std::string csv = out_path("chaos_soak.csv");
    if (std::FILE* f = std::fopen(csv.c_str(), "w")) {
      std::fputs(all.c_str(), f);
      std::fclose(f);
      std::printf("\n# data also written to %s\n", csv.c_str());
    }
    check_telemetry();
    std::printf("# all migration variants converged; every twin was "
                "bit-identical\n");
    return 0;
  }

  if (overload) {
    std::printf("# Overload storm — %zu strong-mode agents on one hot "
                "flight group, slow directory, queue bound %zu%s\n",
                kStormAgents, kStormQueueBound,
                crash_dm ? ", directory crash-restart mid-storm" : "");
    const std::uint64_t seed = 0xc0a5;
    obs::TraceRecorder recorder;
    obs::monitor::InvariantMonitor checker;
    if (monitor) recorder.attach_sink(&checker);
    const bool tracing = trace_path != nullptr || monitor;
    OverloadResult flow_res;
    const std::string first =
        run_overload(seed, tracing ? &recorder : nullptr, /*flow_on=*/true,
                     &flow_res, crash_dm, hub.get());
    const std::string second =
        run_overload(seed, nullptr, true, nullptr, crash_dm);
    SOAK_CHECK(first == second,
               "two same-seed overload runs diverged: not deterministic");
    OverloadResult base_res;
    run_overload(seed, nullptr, /*flow_on=*/false, &base_res, crash_dm);

    // The bound held where the baseline blew through it, and every
    // layer of the ladder actually engaged.
    SOAK_CHECK(flow_res.queue_peak <= kStormQueueBound,
               "bounded run peak %llu exceeds bound %zu",
               static_cast<unsigned long long>(flow_res.queue_peak),
               kStormQueueBound);
    SOAK_CHECK(base_res.queue_peak > kStormQueueBound,
               "baseline peak %llu never exceeded the bound %zu — the "
               "storm is not a storm",
               static_cast<unsigned long long>(base_res.queue_peak),
               kStormQueueBound);
    SOAK_CHECK(flow_res.fabric_shed + flow_res.dm_shed >= 1,
               "flow control on but nothing was ever shed");
    SOAK_CHECK(flow_res.breaker_opened >= 1,
               "sustained pressure never opened a breaker");
    SOAK_CHECK(flow_res.degraded >= 1,
               "no STRONG manager ever degraded to buffered WEAK");

    if (monitor) {
      checker.finalize();
      std::fputs(checker.health_report().c_str(), stdout);
      obs::MetricsRegistry reg;
      checker.export_metrics(reg);
      // Surface the overload ladder in the same Prometheus export the
      // monitor writes: flow.*/shed.*/breaker.* families.
      reg.inc("net.flow.queue.peak", flow_res.queue_peak);
      reg.inc("net.flow.shed", flow_res.fabric_shed);
      reg.inc("dm.shed", flow_res.dm_shed);
      reg.inc("cm.breaker.open", flow_res.breaker_opened);
      reg.inc("cm.breaker.degrade", flow_res.degraded);
      const std::string prom = out_path("flecc_metrics.prom");
      if (reg.write_prometheus(prom.c_str())) {
        std::printf("# monitor metrics -> %s\n", prom.c_str());
      }
      SOAK_CHECK(checker.violations().empty(),
                 "online monitor reported %zu invariant violation(s)",
                 checker.violations().size());
    }
    if (trace_path != nullptr) {
      const auto events = recorder.snapshot();
      if (!obs::write_jsonl(events, trace_path)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path);
        return 1;
      }
      std::printf("# trace: %zu events -> %s\n", events.size(), trace_path);
    }
    std::printf("%s", first.c_str());
    std::printf("# peak bulk queue depth: bounded %llu <= %zu, unbounded "
                "baseline %llu\n",
                static_cast<unsigned long long>(flow_res.queue_peak),
                kStormQueueBound,
                static_cast<unsigned long long>(base_res.queue_peak));
    const std::string csv = out_path("chaos_soak.csv");
    if (std::FILE* f = std::fopen(csv.c_str(), "w")) {
      std::fputs(first.c_str(), f);
      std::fclose(f);
      std::printf("\n# data also written to %s\n", csv.c_str());
    }
    check_telemetry();
    std::printf("# overload storm converged; two same-seed runs were "
                "bit-identical\n");
    return 0;
  }

  std::printf("# Chaos soak — %zu agents, 10%% loss, partition of agents "
              "[%zu,%zu], crashes {%zu,%zu}%s%s%s\n",
              kAgents, kPartitionLo, kPartitionHi, kCrashed[0], kCrashed[1],
              crash_dm ? ", directory crash-restart" : "",
              batch ? ", send batching + piggybacked heartbeats" : "",
              wbuf > 0 ? ", CM write buffer" : "");

  const std::uint64_t seed = 0xc0a5;
  obs::TraceRecorder recorder;
  const bool tracing = trace_path != nullptr || monitor;
  // The online conformance monitor consumes events inline as they are
  // emitted; attach it before the run so no buffer exists without the
  // sink (see TraceRecorder::attach_sink for the ordering contract).
  obs::monitor::InvariantMonitor checker;
  if (monitor) recorder.attach_sink(&checker);
  // The recorder rides along on the first run only; the second stays
  // bare so the bit-identical comparison proves tracing (and the
  // monitor) never perturbs the protocol.
  const std::string first = run_soak(seed, tracing ? &recorder : nullptr,
                                     crash_dm, false, batch, wbuf, hub.get());
  const std::string second =
      run_soak(seed, nullptr, crash_dm, false, batch, wbuf);
  SOAK_CHECK(first == second,
             "two same-seed runs diverged: the soak is not deterministic");

  if (monitor) {
    checker.finalize();
    std::fputs(checker.health_report().c_str(), stdout);
    obs::MetricsRegistry reg;
    checker.export_metrics(reg);
    const std::string prom = out_path("flecc_metrics.prom");
    if (reg.write_prometheus(prom.c_str())) {
      std::printf("# monitor metrics -> %s\n", prom.c_str());
    }
    SOAK_CHECK(checker.violations().empty(),
               "online monitor reported %zu invariant violation(s)",
               checker.violations().size());
    SOAK_CHECK(checker.unresolved_recovery_epochs() == 0,
               "a directory recovery epoch never resolved");
  }

  if (crash_dm) {
    // Second scenario: the checkpoint is wiped before the restart, so
    // only the generation superblock survives and the state comes back
    // purely via CM re-registration (heartbeats fenced with
    // known=false). Same determinism bar as the warm variant.
    std::printf("# crash-dm: warm-checkpoint variant converged; running "
                "empty-checkpoint variant\n");
    obs::TraceRecorder empty_rec;
    obs::monitor::InvariantMonitor empty_checker;
    if (monitor) empty_rec.attach_sink(&empty_checker);
    const std::string e1 = run_soak(seed, monitor ? &empty_rec : nullptr,
                                    /*crash_dm=*/true,
                                    /*empty_checkpoint=*/true, batch, wbuf);
    const std::string e2 = run_soak(seed, nullptr, true, true, batch, wbuf);
    SOAK_CHECK(e1 == e2, "empty-checkpoint runs diverged");
    if (monitor) {
      empty_checker.finalize();
      SOAK_CHECK(empty_checker.violations().empty(),
                 "empty-checkpoint variant: %zu invariant violation(s)",
                 empty_checker.violations().size());
      SOAK_CHECK(empty_checker.unresolved_recovery_epochs() == 0,
                 "empty-checkpoint variant: recovery epoch never resolved");
    }
    std::printf("# crash-dm: empty-checkpoint variant converged\n");
  }

  if (trace_path != nullptr) {
    const auto events = recorder.snapshot();
    if (!obs::write_jsonl(events, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    std::printf("# trace: %zu events (%llu recorded, %llu lost to ring "
                "wraparound) -> %s\n",
                events.size(),
                static_cast<unsigned long long>(recorder.total_emitted()),
                static_cast<unsigned long long>(recorder.total_dropped()),
                trace_path);
    if (!obs::kTraceEnabled) {
      std::printf("# (built with FLECC_TRACE=OFF: the trace is empty)\n");
    }
  }

  std::printf("%s", first.c_str());
  const std::string csv = out_path("chaos_soak.csv");
  if (std::FILE* f = std::fopen(csv.c_str(), "w")) {
    std::fputs(first.c_str(), f);
    std::fclose(f);
    std::printf("\n# data also written to %s\n", csv.c_str());
  }
  check_telemetry();
  std::printf("# all convergence checks passed; two same-seed runs were "
              "bit-identical\n");
  return 0;
}
