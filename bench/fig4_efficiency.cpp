// Figure 4 — Efficiency: number of messages sent between the cache
// managers and the directory manager.
//
// Paper setup (§5.2): 100 travel agents in a LAN connected to the main
// database. Every agent: create cache manager, set weak mode, init data,
// reserve tickets (on the most current data), kill cache manager. The
// number of agents serving similar flights (the conflicting-group size)
// sweeps 10 → 100 in steps of 10.
//
// Compared protocols:
//   * flecc        — demand fetches go only to *conflicting* agents
//   * time-sharing — token-serialized turns (constant control traffic)
//   * multicast    — application-oblivious: asks ALL agents for updates
//
// Expected shape (paper): time-sharing flat and lowest; multicast flat
// and highest; Flecc grows with the group size and meets multicast when
// every agent conflicts with every other (group = 100).
//
// With `--trace` every Flecc run is executed twice — once bare, once
// recording an obs trace — and the bench aborts if the two message
// counts differ: recording must never perturb the protocol. The
// group=100 trace is written to fig4_trace.jsonl.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "airline/testbed.hpp"
#include "net/telemetry_server.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/prom.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_io.hpp"
#include "sim/table.hpp"

using namespace flecc;
using airline::CoherenceTestbed;
using airline::Protocol;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 100;
constexpr int kOpsPerAgent = 1;

// Raw-speed knobs (PERFORMANCE.md), shared by every protocol in the
// sweep so the comparison stays apples-to-apples.
bool g_batch = false;
std::size_t g_wbuf = 0;

/// Full lifecycle message count for one protocol at one group size.
std::uint64_t run_lifecycle(Protocol protocol, std::size_t group_size,
                            obs::TraceRecorder* trace = nullptr,
                            obs::TelemetryHub* hub = nullptr) {
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = group_size;
  opts.flights_per_group = 5;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  opts.trace = trace;
  opts.telemetry = hub;
  opts.batch_fabric = g_batch;
  opts.write_buffer_ops = g_wbuf;
  CoherenceTestbed tb(protocol, opts);

  tb.connect_all();
  for (int op = 0; op < kOpsPerAgent; ++op) {
    for (std::size_t i = 0; i < tb.agent_count(); ++i) {
      const auto flight = tb.assignment().agent_flights[i][0];
      tb.client(i).do_operation(
          [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
    }
    tb.run();
  }
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.client(i).disconnect({});
  }
  tb.run();
  return tb.fabric().sent_count();
}

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  bool monitor = false;
  const char* json_path = nullptr;
  bool serve = false;
  unsigned serve_port = 0;
  unsigned telemetry_interval_ms = 250;
  unsigned pace_ms = 0;
  bool telemetry = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      tracing = true;
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      // The monitor rides on the traced re-runs, so it implies --trace.
      monitor = tracing = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      g_batch = true;
    } else if (std::strcmp(argv[i], "--wbuf") == 0 && i + 1 < argc) {
      g_wbuf = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve = telemetry = true;
      serve_port =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 &&
               i + 1 < argc) {
      telemetry = true;
      telemetry_interval_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (telemetry_interval_ms == 0) telemetry_interval_ms = 250;
    } else if (std::strcmp(argv[i], "--pace") == 0 && i + 1 < argc) {
      telemetry = true;
      pace_ms = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace] [--monitor] [--batch] [--wbuf N] "
                   "[--json out.json] [--serve PORT] "
                   "[--telemetry-interval MS] [--pace MS]\n",
                   argv[0]);
      return 2;
    }
  }

  // Live telemetry rides the BARE Flecc runs; with --trace the traced
  // re-run stays hub-free, so the message-count equality below proves
  // both recording and telemetry leave the protocol untouched.
  std::unique_ptr<obs::TelemetryHub> hub;
  std::unique_ptr<net::TelemetryServer> server;
  if (telemetry) {
    obs::TelemetryOptions topts;
    topts.interval = sim::msec(telemetry_interval_ms);
    topts.pace_ms = pace_ms;
    hub = std::make_unique<obs::TelemetryHub>(topts);
    if (serve) {
      server = std::make_unique<net::TelemetryServer>(
          static_cast<std::uint16_t>(serve_port));
      if (!server->listening()) {
        std::fprintf(stderr, "cannot bind telemetry port %u\n", serve_port);
        return 1;
      }
      net::serve_telemetry(*hub, *server);
      server->serve_background();
      std::printf("# telemetry: http://127.0.0.1:%u/metrics (also /healthz, "
                  "/varz)\n",
                  server->port());
    }
  }

  std::printf("# Figure 4 — messages between cache managers and the "
              "directory manager\n");
  std::printf("# %zu agents, %d reserve op(s) each, full lifecycle "
              "(register/init/op/kill)\n",
              kAgents, kOpsPerAgent);

  sim::Table table({"group_size", "flecc", "time-sharing", "multicast"});
  obs::TraceRecorder last_trace;
  struct Row {
    std::size_t group;
    std::uint64_t flecc, ts, mc;
  };
  std::vector<Row> rows;
  for (std::size_t g = 10; g <= 100; g += 10) {
    const std::uint64_t flecc_msgs =
        run_lifecycle(Protocol::kFlecc, g, nullptr, hub.get());
    if (tracing) {
      // Re-run with a recorder attached; the deterministic simulator
      // must send exactly the same messages with tracing on. Each group
      // size is an independent run (fresh addresses and spans), so the
      // conformance monitor is fresh per group too.
      obs::TraceRecorder rec;
      obs::monitor::InvariantMonitor checker;
      if (monitor) rec.attach_sink(&checker);
      const std::uint64_t traced = run_lifecycle(Protocol::kFlecc, g, &rec);
      if (traced != flecc_msgs) {
        std::fprintf(stderr,
                     "FAIL: tracing perturbed the run at group=%zu: "
                     "%llu msgs traced vs %llu bare\n",
                     g, static_cast<unsigned long long>(traced),
                     static_cast<unsigned long long>(flecc_msgs));
        return 1;
      }
      if (monitor) {
        checker.finalize();
        if (!checker.violations().empty()) {
          std::fprintf(stderr, "FAIL: invariant violations at group=%zu:\n%s",
                       g, checker.health_report().c_str());
          return 1;
        }
      }
      // The checker dies with this iteration; drop its registration
      // before the recorder can outlive it.
      rec.attach_sink(nullptr);
      if (g == 100) last_trace = std::move(rec);
    }
    const std::uint64_t ts_msgs = run_lifecycle(Protocol::kTimeSharing, g);
    const std::uint64_t mc_msgs = run_lifecycle(Protocol::kMulticast, g);
    table.add_row({static_cast<std::int64_t>(g), flecc_msgs, ts_msgs,
                   mc_msgs});
    rows.push_back({g, flecc_msgs, ts_msgs, mc_msgs});
  }
  std::printf("%s", table.to_string().c_str());
  // Generated artifacts land in the git-ignored out/ directory.
  std::error_code out_ec;
  std::filesystem::create_directories("out", out_ec);
  if (table.write_csv("out/fig4_efficiency.csv")) {
    std::printf("\n# data also written to out/fig4_efficiency.csv\n");
  }
  if (json_path != nullptr) {
    // Machine-readable results for scripted before/after comparisons
    // (the PERFORMANCE.md hop-count trajectory): physical fabric hops
    // per protocol and group size, plus the knob settings that
    // produced them.
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f,
                   "{\n  \"batch\": %s,\n  \"write_buffer_ops\": %zu,\n"
                   "  \"rows\": [\n",
                   g_batch ? "true" : "false", g_wbuf);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f,
                     "    {\"group_size\": %zu, \"flecc\": %llu, "
                     "\"time_sharing\": %llu, \"multicast\": %llu}%s\n",
                     rows[i].group,
                     static_cast<unsigned long long>(rows[i].flecc),
                     static_cast<unsigned long long>(rows[i].ts),
                     static_cast<unsigned long long>(rows[i].mc),
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("# hop counts also written to %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  if (monitor) {
    std::printf("\n# monitor check passed: zero invariant violations at "
                "every group size\n");
  }
  if (tracing) {
    std::printf("\n# tracing check passed: message counts identical with "
                "recording on\n");
    const auto events = last_trace.snapshot();
    if (obs::write_jsonl(events, "out/fig4_trace.jsonl")) {
      std::printf("# group=100 trace (%zu events) written to "
                  "out/fig4_trace.jsonl\n",
                  events.size());
    }
  }
  if (hub != nullptr) {
    const auto issues = obs::prom::validate(hub->render_metrics());
    for (const auto& issue : issues) {
      std::fprintf(stderr, "prom: %s\n", issue.to_string().c_str());
    }
    if (!issues.empty() || hub->registry().windows_closed() == 0) {
      std::fprintf(stderr, "FAIL: telemetry exposition check failed\n");
      return 1;
    }
    std::printf("\n# telemetry check passed: %llu windows sampled, /metrics "
                "validator-clean\n",
                static_cast<unsigned long long>(
                    hub->registry().windows_closed()));
  }

  std::printf("\n# shape check (paper): time-sharing flat & lowest; "
              "multicast flat & highest;\n");
  std::printf("# flecc grows with the conflicting-group size and meets "
              "multicast at group=100.\n");
  return 0;
}
