// Figure 4 — Efficiency: number of messages sent between the cache
// managers and the directory manager.
//
// Paper setup (§5.2): 100 travel agents in a LAN connected to the main
// database. Every agent: create cache manager, set weak mode, init data,
// reserve tickets (on the most current data), kill cache manager. The
// number of agents serving similar flights (the conflicting-group size)
// sweeps 10 → 100 in steps of 10.
//
// Compared protocols:
//   * flecc        — demand fetches go only to *conflicting* agents
//   * time-sharing — token-serialized turns (constant control traffic)
//   * multicast    — application-oblivious: asks ALL agents for updates
//
// Expected shape (paper): time-sharing flat and lowest; multicast flat
// and highest; Flecc grows with the group size and meets multicast when
// every agent conflicts with every other (group = 100).
#include <cstdio>

#include "airline/testbed.hpp"
#include "sim/table.hpp"

using namespace flecc;
using airline::CoherenceTestbed;
using airline::Protocol;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 100;
constexpr int kOpsPerAgent = 1;

/// Full lifecycle message count for one protocol at one group size.
std::uint64_t run_lifecycle(Protocol protocol, std::size_t group_size) {
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = group_size;
  opts.flights_per_group = 5;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  CoherenceTestbed tb(protocol, opts);

  tb.connect_all();
  for (int op = 0; op < kOpsPerAgent; ++op) {
    for (std::size_t i = 0; i < tb.agent_count(); ++i) {
      const auto flight = tb.assignment().agent_flights[i][0];
      tb.client(i).do_operation(
          [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
    }
    tb.run();
  }
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.client(i).disconnect({});
  }
  tb.run();
  return tb.fabric().sent_count();
}

}  // namespace

int main() {
  std::printf("# Figure 4 — messages between cache managers and the "
              "directory manager\n");
  std::printf("# %zu agents, %d reserve op(s) each, full lifecycle "
              "(register/init/op/kill)\n",
              kAgents, kOpsPerAgent);

  sim::Table table({"group_size", "flecc", "time-sharing", "multicast"});
  for (std::size_t g = 10; g <= 100; g += 10) {
    table.add_row({static_cast<std::int64_t>(g),
                   run_lifecycle(Protocol::kFlecc, g),
                   run_lifecycle(Protocol::kTimeSharing, g),
                   run_lifecycle(Protocol::kMulticast, g)});
  }
  std::printf("%s", table.to_string().c_str());
  if (table.write_csv("fig4_efficiency.csv")) {
    std::printf("\n# data also written to fig4_efficiency.csv\n");
  }

  std::printf("\n# shape check (paper): time-sharing flat & lowest; "
              "multicast flat & highest;\n");
  std::printf("# flecc grows with the conflicting-group size and meets "
              "multicast at group=100.\n");
  return 0;
}
