// Ablation A2 — property granularity.
//
// The application chooses how precisely its "Flights" property describes
// the data a view actually touches. Coarse properties (one interval over
// the whole database) are cheap to declare but create *false conflicts*:
// the directory chases views that share no real data. Fine-grained
// properties (exactly the flights served) keep fetch rounds minimal.
//
// Setup: 20 agents, each actually serving its own private flight, all
// pulling with validity "false" (always fetch freshest). We sweep the
// declared property from exact to fully coarse and count messages.
#include <cstdio>
#include <memory>
#include <vector>

#include "airline/flight_database.hpp"
#include "airline/travel_agent.hpp"
#include "core/directory_manager.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

using namespace flecc;

namespace {

constexpr std::size_t kAgents = 20;
constexpr int kOpsPerAgent = 3;

struct RunStats {
  std::uint64_t messages = 0;
  std::uint64_t fetches = 0;
  double avg_conflicts = 0.0;
};

/// `slack` = how many extra flights each agent over-declares on each
/// side of the flight it really serves (0 = exact, large = coarse).
RunStats run(std::size_t slack) {
  sim::Simulator simulator;
  std::vector<net::NodeId> hosts;
  net::LinkSpec lan;
  lan.latency = sim::usec(200);
  auto topo = net::Topology::lan(kAgents + 1, lan, &hosts);
  net::SimFabric fabric(simulator, std::move(topo));

  auto db = airline::FlightDatabase::uniform(0, kAgents, 1 << 20);
  airline::FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{hosts.back(), 1};
  core::DirectoryManager directory(fabric, dir_addr, adapter);

  std::vector<std::unique_ptr<airline::TravelAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    airline::TravelAgent::Config cfg;
    // Real data: flight i. Declared data: [i-slack, i+slack] clamped.
    const auto lo = static_cast<airline::FlightNumber>(
        i >= slack ? i - slack : 0);
    const auto hi = static_cast<airline::FlightNumber>(
        std::min(kAgents - 1, i + slack));
    for (airline::FlightNumber f = lo; f <= hi; ++f) {
      cfg.flights.push_back(f);
    }
    cfg.validity_trigger = "false";
    agents.push_back(std::make_unique<airline::TravelAgent>(
        fabric, net::Address{hosts[i], 1}, dir_addr, std::move(cfg)));
  }
  for (auto& a : agents) a->init();
  simulator.run();

  const auto baseline = fabric.sent_count();
  for (int op = 0; op < kOpsPerAgent; ++op) {
    for (std::size_t i = 0; i < kAgents; ++i) {
      agents[i]->reserve_once(static_cast<airline::FlightNumber>(i), 1,
                              /*pull_first=*/true);
    }
    simulator.run();
  }

  RunStats out;
  out.messages = fabric.sent_count() - baseline;
  out.fetches = fabric.counters().get("msg.sent.flecc.fetch_req");
  double conflicts = 0.0;
  for (const auto& a : agents) {
    conflicts += static_cast<double>(
        directory.conflicting_views(a->cache().id()).size());
  }
  out.avg_conflicts = conflicts / static_cast<double>(kAgents);
  return out;
}

}  // namespace

int main() {
  std::printf("# Ablation A2 — property granularity (false conflicts)\n");
  std::printf("# %zu agents, each really serving 1 private flight, "
              "%d fetch-fresh ops each\n\n", kAgents, kOpsPerAgent);
  std::printf("%-22s %14s %12s %16s\n", "declared_slack", "avg_conflicts",
              "messages", "fetch_requests");
  for (const std::size_t slack : {0u, 1u, 2u, 5u, 10u, 20u}) {
    const auto stats = run(slack);
    std::printf("%-22zu %14.1f %12llu %16llu\n", slack, stats.avg_conflicts,
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.fetches));
  }
  std::printf("\n# exact properties (slack 0) ⇒ zero false conflicts and "
              "minimal traffic;\n");
  std::printf("# coarse declarations inflate fetch rounds exactly like an "
              "application-oblivious protocol.\n");
  return 0;
}
