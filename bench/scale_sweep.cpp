// Scalability sweep: how the Flecc directory behaves as the fleet
// grows. The paper evaluates at 100 agents; this bench characterizes
// the implementation beyond that point — messages per operation,
// simulated events processed, and host wall time — with the conflicting
// group size held at the paper's initial value (10).
#include <chrono>
#include <cstdio>

#include "airline/testbed.hpp"

using namespace flecc;
using airline::CoherenceTestbed;
using airline::Protocol;
using airline::TestbedOptions;

namespace {

struct Point {
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::int64_t reserved = 0;
};

Point run(std::size_t n_agents, int ops_per_agent) {
  const auto wall_start = std::chrono::steady_clock::now();

  TestbedOptions opts;
  opts.n_agents = n_agents;
  opts.group_size = 10;
  opts.capacity = 1 << 20;
  CoherenceTestbed tb(Protocol::kFlecc, opts);
  tb.connect_all();
  for (int op = 0; op < ops_per_agent; ++op) {
    for (std::size_t i = 0; i < tb.agent_count(); ++i) {
      const auto flight = tb.assignment().agent_flights[i][0];
      tb.client(i).do_operation(
          [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
    }
    tb.run();
  }
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.client(i).disconnect({});
  }
  tb.run();

  Point p;
  p.messages = tb.fabric().sent_count();
  p.events = tb.simulator().executed_events();
  p.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  p.reserved = tb.database().total_reserved();
  return p;
}

}  // namespace

int main() {
  constexpr int kOps = 3;
  std::printf("# Scalability sweep — Flecc, conflicting groups of 10, "
              "%d fetch-fresh ops/agent\n\n", kOps);
  std::printf("%-8s %12s %14s %12s %12s %10s\n", "agents", "messages",
              "msgs/agent-op", "sim_events", "wall_ms", "reserved");
  for (const std::size_t n : {10u, 50u, 100u, 200u, 400u}) {
    const Point p = run(n, kOps);
    std::printf("%-8zu %12llu %14.1f %12llu %12.1f %10lld\n", n,
                static_cast<unsigned long long>(p.messages),
                static_cast<double>(p.messages) /
                    (static_cast<double>(n) * kOps),
                static_cast<unsigned long long>(p.events), p.wall_ms,
                static_cast<long long>(p.reserved));
  }
  std::printf("\n# with fixed group size, per-op message cost stays flat "
              "as the fleet grows —\n");
  std::printf("# the directory pays for actual sharing, not for fleet "
              "size (contrast Figure 4's multicast).\n");
  return 0;
}
