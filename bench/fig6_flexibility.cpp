// Figure 6 — Flexibility: effect of a time-based pull trigger on data
// quality and message count.
//
// Paper setup (§5.2): ten conflicting travel agents in weak mode. The
// tracked agent executes a sequence of method calls and explicitly
// pulls the current data before four of them; in the second variant the
// same agent additionally defines a time-based pull trigger. The figure
// plots the data quality (remote unseen updates) at every method call;
// the text reports 116 messages without triggers vs 182 with triggers.
//
// Expected shape: without the trigger, quality decays (unseen updates
// pile up) between the four explicit pulls — a sawtooth with four
// resets; with the trigger, auto-pulls keep the unseen count near zero,
// at the price of more messages.
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "airline/testbed.hpp"
#include "sim/script.hpp"
#include "sim/table.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 10;       // 1 tracked + 9 producers
constexpr std::size_t kMethodCalls = 20;  // tracked agent's calls
constexpr sim::Duration kCallGap = sim::msec(100);

struct CallRecord {
  sim::Time at;
  std::uint64_t quality;
  bool explicit_pull;
};

struct RunResult {
  std::vector<CallRecord> calls;
  std::uint64_t messages = 0;
  std::uint64_t auto_pulls = 0;
};

RunResult run_variant(bool with_trigger) {
  // The paper's trigger string is time-based; "(t > 250)" here means
  // "pull if more than 250 ms elapsed since my last pull". Agents are
  // symmetric (as in the paper); we track agent 0.
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = kAgents;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  opts.trigger_poll = sim::msec(50);
  if (with_trigger) opts.pull_trigger = "(t > 250)";
  FleccTestbed tb2(opts);
  tb2.init_all_agents();
  const auto flight = tb2.assignment().agent_flights[0][0];

  RunResult result;
  airline::TravelAgent& tracked = tb2.agent(0);

  // Producers: agents 1..9 keep reserving and pushing on a cadence so
  // remote updates continuously appear at the directory.
  for (std::size_t i = 1; i < kAgents; ++i) {
    airline::TravelAgent& producer = tb2.agent(i);
    for (std::size_t k = 0; k < kMethodCalls; ++k) {
      tb2.simulator().schedule_at(
          sim::msec(40) + static_cast<sim::Time>(k) * kCallGap +
              static_cast<sim::Time>(i) * sim::msec(7),
          [&producer, flight] {
            producer.view().confirm_tickets(flight, 1);
            producer.push_now();
          });
    }
  }

  // The tracked agent's method calls, every kCallGap; explicit pull
  // before calls 0, 5, 10, 15 (the paper's four explicit pulls).
  for (std::size_t k = 0; k < kMethodCalls; ++k) {
    const bool explicit_pull = (k % 5 == 0);
    tb2.simulator().schedule_at(
        sim::msec(60) + static_cast<sim::Time>(k) * kCallGap,
        [&tb2, &tracked, &result, flight, explicit_pull] {
          auto do_call = [&tb2, &tracked, &result, flight, explicit_pull] {
            result.calls.push_back(
                CallRecord{tb2.simulator().now(),
                           tb2.directory().quality(tracked.cache().id()),
                           explicit_pull});
            tracked.view().confirm_tickets(flight, 1);
          };
          if (explicit_pull) {
            tracked.pull_now(do_call);
          } else {
            do_call();
          }
        });
  }

  tb2.run_until(sim::msec(60) + kMethodCalls * kCallGap + sim::msec(200));
  result.messages = tb2.fabric().sent_count();
  result.auto_pulls = tracked.cache().stats().get("auto.pull");
  return result;
}

void print_series(const char* label, const RunResult& r) {
  std::printf("\n## %s\n", label);
  std::printf("%-8s %12s %10s %14s\n", "call", "sim_time_ms", "quality",
              "explicit_pull");
  for (std::size_t k = 0; k < r.calls.size(); ++k) {
    std::printf("%-8zu %12.1f %10llu %14s\n", k, sim::to_ms(r.calls[k].at),
                static_cast<unsigned long long>(r.calls[k].quality),
                r.calls[k].explicit_pull ? "yes" : "no");
  }
}

}  // namespace

int main() {
  std::printf("# Figure 6 — remote updates not seen by a WEAK-mode cache "
              "manager,\n");
  std::printf("# with vs without a time-based pull trigger "
              "(%zu conflicting agents)\n", kAgents);

  const RunResult without = run_variant(false);
  const RunResult with = run_variant(true);

  print_series("explicit pulls only (paper: upper plot)", without);
  print_series("explicit pulls + pull trigger \"(t > 250)\" "
               "(paper: lower plot)", with);

  sim::Table csv({"variant", "call", "sim_time_ms", "quality",
                  "explicit_pull"});
  const std::pair<const RunResult*, const char*> variants[] = {
      {&without, "no-trigger"}, {&with, "with-trigger"}};
  for (const auto& [result, label] : variants) {
    for (std::size_t k = 0; k < result->calls.size(); ++k) {
      csv.add_row({std::string(label), static_cast<std::uint64_t>(k),
                   sim::to_ms(result->calls[k].at), result->calls[k].quality,
                   std::string(result->calls[k].explicit_pull ? "yes"
                                                              : "no")});
    }
  }
  // Generated artifacts land in the git-ignored out/ directory.
  std::error_code out_ec;
  std::filesystem::create_directories("out", out_ec);
  if (csv.write_csv("out/fig6_flexibility.csv")) {
    std::printf("\n# data also written to out/fig6_flexibility.csv\n");
  }

  sim::RunningStat q_without, q_with;
  for (const auto& c : without.calls) {
    q_without.add(static_cast<double>(c.quality));
  }
  for (const auto& c : with.calls) q_with.add(static_cast<double>(c.quality));

  std::printf("\n%-28s %14s %14s %12s\n", "variant", "mean_quality",
              "max_quality", "messages");
  std::printf("%-28s %14.2f %14.0f %12llu\n", "no trigger", q_without.mean(),
              q_without.max(),
              static_cast<unsigned long long>(without.messages));
  std::printf("%-28s %14.2f %14.0f %12llu\n", "with pull trigger",
              q_with.mean(), q_with.max(),
              static_cast<unsigned long long>(with.messages));
  std::printf("\n# paper's run: 116 messages without triggers vs 182 with "
              "triggers;\n");
  std::printf("# shape check: trigger variant has lower quality values "
              "(fresher data) and\n");
  std::printf("# strictly more messages (auto pulls fired: %llu).\n",
              static_cast<unsigned long long>(with.auto_pulls));
  return 0;
}
