// Ablation A6 — update notifications vs pure pull.
//
// Flecc's base protocol is pull-driven: a view learns about remote
// updates only when it pulls (explicitly or via triggers). The
// directory optionally pushes small UpdateNotify messages to conflicting
// active views after every merge (Config::notify_on_update). This
// ablation measures the cost of that eagerness (extra messages) against
// the observability it buys (how quickly a view *could* react),
// across producer rates.
#include <cstdio>

#include "airline/testbed.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 10;

struct Result {
  std::uint64_t messages = 0;
  std::uint64_t notifies = 0;
  double mean_final_quality = 0.0;
};

Result run(bool notify, int pushes_per_producer) {
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = kAgents;
  opts.capacity = 1 << 20;
  opts.dir_cfg.notify_on_update = notify;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const auto flight = tb.assignment().agent_flights[0][0];

  const auto baseline = tb.fabric().sent_count();
  // Half the agents produce (reserve + push); half stay passive.
  for (std::size_t i = 0; i < kAgents / 2; ++i) {
    airline::TravelAgent& producer = tb.agent(i);
    for (int k = 0; k < pushes_per_producer; ++k) {
      tb.simulator().schedule_at(
          sim::msec(10 * (k + 1)) + static_cast<sim::Time>(i), [&producer,
                                                               flight] {
            producer.view().confirm_tickets(flight, 1);
            producer.push_now();
          });
    }
  }
  tb.run();

  Result r;
  r.messages = tb.fabric().sent_count() - baseline;
  sim::RunningStat quality;
  for (std::size_t i = kAgents / 2; i < kAgents; ++i) {
    r.notifies += tb.agent(i).cache().notifies_received();
    quality.add(static_cast<double>(
        tb.directory().quality(tb.agent(i).cache().id())));
  }
  r.mean_final_quality = quality.mean();
  return r;
}

}  // namespace

int main() {
  std::printf("# Ablation A6 — UpdateNotify (eager) vs pure pull (lazy)\n");
  std::printf("# %zu conflicting agents: 5 producers pushing, 5 passive "
              "observers\n\n", kAgents);
  std::printf("%-22s %10s %12s %12s %18s\n", "pushes/producer", "notify",
              "messages", "notifies", "observer_quality");
  for (const int pushes : {5, 20, 50}) {
    for (const bool notify : {false, true}) {
      const Result r = run(notify, pushes);
      std::printf("%-22d %10s %12llu %12llu %18.1f\n", pushes,
                  notify ? "on" : "off",
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.notifies),
                  r.mean_final_quality);
    }
  }
  std::printf("\n# notifications tell every conflicting observer about "
              "every merge (observability)\n");
  std::printf("# at a per-merge fan-out cost; staleness itself is "
              "unchanged until the observer acts.\n");
  return 0;
}
