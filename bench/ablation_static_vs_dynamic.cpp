// Ablation A1 — static map vs dynamic property-intersection conflict
// detection.
//
// The paper's directory consults the static map first and falls back to
// dynConfl (property-set intersection) for entries marked -1. This
// ablation quantifies the trade-off:
//   * decision cost (ns per pair query) as property sets grow,
//   * decision agreement (a correct static map answers exactly like the
//     dynamic computation),
//   * the danger of a stale static map (wrong answers when properties
//     changed at run time but the matrix did not).
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/static_map.hpp"
#include "props/property.hpp"
#include "sim/rng.hpp"

using namespace flecc;

namespace {

props::PropertySet make_props(sim::Rng& rng, std::size_t n_props,
                              std::size_t domain_span) {
  props::PropertySet ps;
  for (std::size_t p = 0; p < n_props; ++p) {
    const auto lo = rng.uniform_int(0, 1000);
    ps.set("prop" + std::to_string(p),
           props::Domain::interval(
               lo, lo + rng.uniform_int(0, static_cast<std::int64_t>(
                                               domain_span))));
  }
  return ps;
}

double time_per_query_ns(const std::function<bool(std::size_t, std::size_t)>&
                             query,
                         std::size_t n, std::size_t rounds) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t hits = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        hits += query(i, j) ? 1 : 0;
      }
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double total_queries =
      static_cast<double>(rounds) * static_cast<double>(n * (n - 1) / 2);
  // Fold `hits` into the output via a volatile to defeat dead-code elim.
  volatile std::size_t sink = hits;
  (void)sink;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         total_queries;
}

}  // namespace

int main() {
  std::printf("# Ablation A1 — static map vs dynamic conflict detection\n");
  std::printf("# 64 views, 1000 pair-query rounds\n\n");
  std::printf("%-10s %16s %16s %12s\n", "props/set", "dynamic_ns/q",
              "static_ns/q", "agreement");

  constexpr std::size_t kViews = 64;
  constexpr std::size_t kRounds = 1000;

  for (const std::size_t n_props : {1u, 2u, 4u, 8u, 16u}) {
    sim::Rng rng(42);
    std::vector<props::PropertySet> sets;
    std::vector<std::string> names;
    sets.reserve(kViews);
    for (std::size_t i = 0; i < kViews; ++i) {
      sets.push_back(make_props(rng, n_props, 200));
      names.push_back("view" + std::to_string(i));
    }

    // A perfect static map precomputed from the dynamic relation.
    core::StaticMap static_map;
    for (std::size_t i = 0; i < kViews; ++i) {
      for (std::size_t j = i + 1; j < kViews; ++j) {
        static_map.set(names[i], names[j],
                       sets[i].conflicts_with(sets[j])
                           ? core::Relation::kConflict
                           : core::Relation::kNoConflict);
      }
    }

    const double dyn_ns = time_per_query_ns(
        [&](std::size_t i, std::size_t j) {
          return sets[i].conflicts_with(sets[j]);
        },
        kViews, kRounds);
    const double sta_ns = time_per_query_ns(
        [&](std::size_t i, std::size_t j) {
          return static_map.query(names[i], names[j]) ==
                 core::Relation::kConflict;
        },
        kViews, kRounds);

    bool agree = true;
    for (std::size_t i = 0; i < kViews && agree; ++i) {
      for (std::size_t j = i + 1; j < kViews && agree; ++j) {
        agree = (static_map.query(names[i], names[j]) ==
                 core::Relation::kConflict) ==
                sets[i].conflicts_with(sets[j]);
      }
    }

    std::printf("%-10zu %16.1f %16.1f %12s\n", n_props, dyn_ns, sta_ns,
                agree ? "100%" : "BROKEN");
  }

  // Staleness hazard: views mutate their property sets at run time; the
  // static matrix cannot follow (-1 entries exist for exactly this).
  std::printf("\n# staleness hazard: after run-time property changes, a "
              "frozen static map\n# mis-answers — the fraction below is "
              "why the paper keeps the -1/dynamic fallback\n");
  std::printf("%-18s %18s\n", "mutated_fraction", "wrong_static_answers");
  for (const double frac : {0.1, 0.3, 0.5}) {
    sim::Rng rng(7);
    std::vector<props::PropertySet> sets;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < kViews; ++i) {
      sets.push_back(make_props(rng, 4, 200));
      names.push_back("view" + std::to_string(i));
    }
    core::StaticMap frozen;
    for (std::size_t i = 0; i < kViews; ++i) {
      for (std::size_t j = i + 1; j < kViews; ++j) {
        frozen.set(names[i], names[j],
                   sets[i].conflicts_with(sets[j])
                       ? core::Relation::kConflict
                       : core::Relation::kNoConflict);
      }
    }
    // Mutate a fraction of the views.
    for (std::size_t i = 0; i < kViews; ++i) {
      if (rng.uniform() < frac) sets[i] = make_props(rng, 4, 200);
    }
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < kViews; ++i) {
      for (std::size_t j = i + 1; j < kViews; ++j) {
        ++total;
        const bool truth = sets[i].conflicts_with(sets[j]);
        const bool stale =
            frozen.query(names[i], names[j]) == core::Relation::kConflict;
        if (truth != stale) ++wrong;
      }
    }
    std::printf("%-18.1f %17.1f%%\n", frac,
                100.0 * static_cast<double>(wrong) /
                    static_cast<double>(total));
  }
  return 0;
}
