// Ablation A3 — read/write semantics (the paper's future-work ext. 1).
//
// "The number of control messages can be further reduced by attaching
// read/write semantics to the shared data" (§6). Our implementation
// annotates pulls with an AccessIntent; with Config::use_rw_semantics
// the directory skips demand fetches for read-only pulls (browsing).
//
// Setup: 10 conflicting agents modelling the viewer/buyer mix of §5.1;
// we sweep the browse (read-only) fraction and compare message counts
// with the extension off and on.
#include <cstdio>
#include <memory>
#include <vector>

#include "airline/testbed.hpp"

using namespace flecc;
using airline::FleccTestbed;
using airline::TestbedOptions;

namespace {

constexpr std::size_t kAgents = 10;
constexpr std::size_t kOpsPerAgent = 10;

std::uint64_t run(double read_fraction, bool rw_semantics) {
  TestbedOptions opts;
  opts.n_agents = kAgents;
  opts.group_size = kAgents;
  opts.capacity = 1 << 20;
  opts.validity_trigger = "false";  // buyers always fetch freshest
  opts.dir_cfg.use_rw_semantics = rw_semantics;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const auto flight = tb.assignment().agent_flights[0][0];

  const auto baseline = tb.fabric().sent_count();
  for (std::size_t op = 0; op < kOpsPerAgent; ++op) {
    for (std::size_t i = 0; i < kAgents; ++i) {
      airline::TravelAgent& agent = tb.agent(i);
      // Deterministic viewer/buyer interleave per the read fraction.
      const bool is_read =
          static_cast<double>((op * kAgents + i) % 100) <
          read_fraction * 100.0;
      agent.cache().set_intent(is_read ? core::AccessIntent::kReadOnly
                                       : core::AccessIntent::kReadWrite);
      if (is_read) {
        // Browse: refresh, look at availability, do not mutate.
        agent.pull_now([&agent, flight] {
          (void)agent.view().available(flight);
        });
      } else {
        agent.reserve_once(flight, 1, /*pull_first=*/true);
      }
    }
    tb.run();
  }
  return tb.fabric().sent_count() - baseline;
}

}  // namespace

int main() {
  std::printf("# Ablation A3 — read/write semantics "
              "(future-work extension 1)\n");
  std::printf("# %zu conflicting agents, %zu ops each; read-only ops are "
              "browses\n\n", kAgents, kOpsPerAgent);
  std::printf("%-16s %16s %16s %10s\n", "read_fraction", "msgs_plain",
              "msgs_rw_ext", "saved");
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const auto plain = run(frac, false);
    const auto ext = run(frac, true);
    std::printf("%-16.2f %16llu %16llu %9.1f%%\n", frac,
                static_cast<unsigned long long>(plain),
                static_cast<unsigned long long>(ext),
                100.0 * (1.0 - static_cast<double>(ext) /
                                   static_cast<double>(plain)));
  }
  std::printf("\n# the more browsing dominates, the more control messages "
              "the extension removes\n");
  std::printf("# (a read-only pull never triggers a demand-fetch round).\n");
  return 0;
}
