// Ablation A4 — two-level hierarchical protocol (future-work ext. 2).
//
// Flat deployment: one component instance; every view in every domain
// attaches to the single directory — all synchronization traffic crosses
// the (slow) inter-domain links.
//
// Hierarchical deployment: one component instance per domain; views
// attach to their local directory (fast LAN traffic), and SyncAgents
// gossip between the instances over the slow links (decentralized — no
// primary among instances).
//
// We measure WAN messages (the scarce resource), total messages, and the
// end state agreement between domains.
#include <cstdio>
#include <memory>
#include <vector>

#include "airline/flight_database.hpp"
#include "airline/travel_agent.hpp"
#include "core/directory_manager.hpp"
#include "core/hierarchy.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

using namespace flecc;

namespace {

constexpr std::size_t kDomains = 3;
constexpr std::size_t kViewsPerDomain = 4;
constexpr int kOpsPerView = 5;
// Each domain's views sell that domain's own flight (single-writer per
// flight), and every instance replicates all flights: the monotone
// state gossip then converges to the true totals.
constexpr airline::FlightNumber kFirstFlight = 100;

struct Result {
  std::uint64_t total_messages = 0;
  std::uint64_t wan_messages = 0;
  std::int64_t reserved_seen_min = 0;  // min over domains' databases
  std::int64_t reserved_seen_max = 0;
};

/// Builds kDomains LANs joined by slow WAN links; host layout per
/// domain: kViewsPerDomain agent hosts + 1 server host.
struct Net {
  sim::Simulator simulator;
  std::unique_ptr<net::SimFabric> fabric;
  std::vector<std::vector<net::NodeId>> domain_hosts;  // [domain][host]
  std::vector<net::NodeId> servers;

  Net() {
    net::Topology topo;
    std::vector<net::NodeId> routers;
    for (std::size_t d = 0; d < kDomains; ++d) {
      const auto router =
          topo.add_node("router" + std::to_string(d));
      routers.push_back(router);
      std::vector<net::NodeId> hosts;
      net::LinkSpec lan;
      lan.latency = sim::usec(100);
      for (std::size_t h = 0; h <= kViewsPerDomain; ++h) {
        // Built via append (not operator+ chaining) to dodge the GCC 12
        // -Wrestrict false positive on rvalue-string concatenation.
        std::string name = "d";
        name += std::to_string(d);
        name += 'h';
        name += std::to_string(h);
        const auto n = topo.add_node(name);
        topo.add_link(n, router, lan);
        hosts.push_back(n);
      }
      servers.push_back(hosts.back());
      hosts.pop_back();
      domain_hosts.push_back(std::move(hosts));
    }
    net::LinkSpec wan;
    wan.latency = sim::msec(30);
    wan.secure = false;
    for (std::size_t d = 0; d < kDomains; ++d) {
      topo.add_link(routers[d], routers[(d + 1) % kDomains], wan);
    }
    fabric = std::make_unique<net::SimFabric>(simulator, std::move(topo));
  }
};

/// WAN crossings are detected by comparing domain of sender/receiver.
std::size_t domain_of(net::NodeId node) {
  // Nodes are created per domain in construction order:
  // router + (kViewsPerDomain + 1) hosts per domain.
  return node / (kViewsPerDomain + 2);
}

Result run_flat() {
  Net nw;
  auto db = airline::FlightDatabase::uniform(kFirstFlight, kDomains, 1 << 20);
  airline::FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{nw.servers[0], 1};
  core::DirectoryManager directory(*nw.fabric, dir_addr, adapter);

  std::uint64_t wan = 0;
  nw.fabric->set_trace_hook([&](const net::TraceEntry& e) {
    if (domain_of(e.from.node) != domain_of(e.to.node)) ++wan;
  });

  std::vector<std::unique_ptr<airline::TravelAgent>> agents;
  for (std::size_t d = 0; d < kDomains; ++d) {
    for (std::size_t v = 0; v < kViewsPerDomain; ++v) {
      airline::TravelAgent::Config cfg;
      cfg.flights = {kFirstFlight + static_cast<airline::FlightNumber>(d)};
      cfg.validity_trigger = "false";
      agents.push_back(std::make_unique<airline::TravelAgent>(
          *nw.fabric, net::Address{nw.domain_hosts[d][v], 1}, dir_addr,
          std::move(cfg)));
    }
  }
  for (auto& a : agents) a->init();
  nw.simulator.run();
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const auto flight =
        kFirstFlight + static_cast<airline::FlightNumber>(i / kViewsPerDomain);
    agents[i]->run_reservation_loop(kOpsPerView, flight, 1,
                                    /*pull_first=*/true);
  }
  nw.simulator.run();
  for (auto& a : agents) a->shutdown();
  nw.simulator.run();

  Result r;
  r.total_messages = nw.fabric->sent_count();
  r.wan_messages = wan;
  r.reserved_seen_min = r.reserved_seen_max = db.total_reserved();
  return r;
}

Result run_hierarchical() {
  Net nw;
  std::vector<std::unique_ptr<airline::FlightDatabase>> dbs;
  std::vector<std::unique_ptr<airline::FlightDatabaseAdapter>> adapters;
  std::vector<std::unique_ptr<core::DirectoryManager>> dirs;
  std::vector<std::unique_ptr<core::SyncAgent>> sync;

  std::uint64_t wan = 0;
  nw.fabric->set_trace_hook([&](const net::TraceEntry& e) {
    if (domain_of(e.from.node) != domain_of(e.to.node)) ++wan;
  });

  props::PropertySet scope;
  scope.set(airline::kFlightsProperty,
            props::Domain::interval(
                kFirstFlight,
                kFirstFlight + static_cast<airline::FlightNumber>(kDomains) -
                    1));

  for (std::size_t d = 0; d < kDomains; ++d) {
    dbs.push_back(std::make_unique<airline::FlightDatabase>(
        airline::FlightDatabase::uniform(kFirstFlight, kDomains, 1 << 20)));
    adapters.push_back(
        std::make_unique<airline::FlightDatabaseAdapter>(*dbs.back()));
    dirs.push_back(std::make_unique<core::DirectoryManager>(
        *nw.fabric, net::Address{nw.servers[d], 1}, *adapters.back()));
    core::SyncAgent::Config cfg;
    cfg.instance = static_cast<core::InstanceId>(d + 1);
    cfg.interval = sim::msec(100);
    sync.push_back(std::make_unique<core::SyncAgent>(
        *nw.fabric, net::Address{nw.servers[d], 2}, *adapters.back(), scope,
        cfg));
  }
  for (std::size_t d = 0; d < kDomains; ++d) {
    for (std::size_t p = 0; p < kDomains; ++p) {
      if (p != d) sync[d]->add_peer(net::Address{nw.servers[p], 2});
    }
    sync[d]->start();
  }

  std::vector<std::unique_ptr<airline::TravelAgent>> agents;
  for (std::size_t d = 0; d < kDomains; ++d) {
    for (std::size_t v = 0; v < kViewsPerDomain; ++v) {
      airline::TravelAgent::Config cfg;
      cfg.flights = {kFirstFlight + static_cast<airline::FlightNumber>(d)};
      cfg.validity_trigger = "false";
      agents.push_back(std::make_unique<airline::TravelAgent>(
          *nw.fabric, net::Address{nw.domain_hosts[d][v], 1},
          net::Address{nw.servers[d], 1}, std::move(cfg)));
    }
  }
  for (auto& a : agents) a->init();
  nw.simulator.run_until(sim::msec(50));
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const auto flight =
        kFirstFlight + static_cast<airline::FlightNumber>(i / kViewsPerDomain);
    agents[i]->run_reservation_loop(kOpsPerView, flight, 1,
                                    /*pull_first=*/true);
  }
  // Let work finish and gossip settle, then stop gossip.
  nw.simulator.run_until(nw.simulator.now() + sim::seconds(2));
  for (auto& a : agents) a->shutdown();
  nw.simulator.run_until(nw.simulator.now() + sim::seconds(1));
  for (auto& s : sync) s->stop();
  nw.simulator.run();

  Result r;
  r.total_messages = nw.fabric->sent_count();
  r.wan_messages = wan;
  r.reserved_seen_min = r.reserved_seen_max = dbs[0]->total_reserved();
  for (const auto& db : dbs) {
    const auto seen = db->total_reserved();
    r.reserved_seen_min = std::min(r.reserved_seen_min, seen);
    r.reserved_seen_max = std::max(r.reserved_seen_max, seen);
  }
  return r;
}

}  // namespace

int main() {
  std::printf("# Ablation A4 — flat vs two-level hierarchical Flecc "
              "(future-work extension 2)\n");
  std::printf("# %zu domains x %zu views, %d fetch-fresh ops per view, "
              "30ms WAN hops\n\n", kDomains, kViewsPerDomain, kOpsPerView);

  const Result flat = run_flat();
  const Result hier = run_hierarchical();

  std::printf("%-14s %14s %14s %22s\n", "config", "total_msgs", "wan_msgs",
              "reserved(min..max)");
  std::printf("%-14s %14llu %14llu %15lld..%lld\n", "flat",
              static_cast<unsigned long long>(flat.total_messages),
              static_cast<unsigned long long>(flat.wan_messages),
              static_cast<long long>(flat.reserved_seen_min),
              static_cast<long long>(flat.reserved_seen_max));
  std::printf("%-14s %14llu %14llu %15lld..%lld\n", "hierarchical",
              static_cast<unsigned long long>(hier.total_messages),
              static_cast<unsigned long long>(hier.wan_messages),
              static_cast<long long>(hier.reserved_seen_min),
              static_cast<long long>(hier.reserved_seen_max));

  std::printf("\n# the hierarchy localizes coherence traffic: WAN messages "
              "shrink to the gossip\n");
  std::printf("# exchange, at the cost of eventual (not immediate) "
              "agreement between domains.\n");
  return 0;
}
