#!/usr/bin/env python3
"""Record / check the micro_primitives perf baseline (BENCH_micro.json).

Workflow (see PERFORMANCE.md):

    build/bench/micro_primitives --benchmark_filter=ProtocolTrain \
        --benchmark_format=json --benchmark_out=results.json
    scripts/bench_gate.py --record results.json     # refresh baseline
    scripts/bench_gate.py --check  results.json     # CI gate

The gate compares only *deterministic* counters (allocs_per_op,
hops_per_op): the protocol train is a fixed workload on a seeded
simulator, so these are exact event counts, reproducible across
machines. Wall-clock times are reported as warnings only — CI runners
are too noisy to gate on them.

Beyond the regression tolerance, --check asserts the raw-speed pass
still pays for itself *within* the fresh results:

  * the full stack (pool=1, batch=1, wbuf=4) cuts allocs_per_op by
    >= 25% vs the all-off row;
  * batching (batch=1) cuts hops_per_op by >= 20% vs the all-off row.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "BENCH_micro.json"

# Relative drift allowed on deterministic counters before the gate
# fails. They should not normally move at all; the head-room absorbs
# intentional small protocol changes without constant baseline churn.
TOLERANCE = 0.10

# Cross-variant improvement floors (the raw-speed acceptance criteria).
MIN_ALLOC_REDUCTION = 0.25  # full stack vs the all-off row
MIN_HOP_REDUCTION = 0.20    # batch=1 vs the all-off row

GATED_COUNTERS = ("allocs_per_op", "hops_per_op")
BASELINE_ROW = "BM_ProtocolTrain/pool:0/batch:0/wbuf:0"
BATCHED_ROW = "BM_ProtocolTrain/pool:1/batch:1/wbuf:0"
FULL_ROW = "BM_ProtocolTrain/pool:1/batch:1/wbuf:4"

REGEN_HINT = (
    "regenerate with: build/bench/micro_primitives "
    "--benchmark_filter=ProtocolTrain --benchmark_format=json "
    "--benchmark_out=results.json && "
    "scripts/bench_gate.py --record results.json"
)


def fail(message: str) -> int:
    """One actionable line on stderr, no traceback; exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    print(REGEN_HINT, file=sys.stderr)
    return 2


def load_rows(path: pathlib.Path) -> dict[str, dict]:
    """name -> {counter: value, time: ns} for every ProtocolTrain row."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if "ProtocolTrain" not in name:
            continue
        row = {c: b[c] for c in GATED_COUNTERS if c in b}
        row["real_time"] = b.get("real_time", 0.0)
        row["time_unit"] = b.get("time_unit", "ns")
        rows[name] = row
    return rows


def check_improvements(rows: dict[str, dict]) -> list[str]:
    errors = []
    base = rows.get(BASELINE_ROW)
    full = rows.get(FULL_ROW)
    batched = rows.get(BATCHED_ROW)
    if not base or not full or not batched:
        return [f"missing ProtocolTrain rows (need {BASELINE_ROW}, "
                f"{BATCHED_ROW}, {FULL_ROW})"]

    alloc_cut = 1.0 - full["allocs_per_op"] / base["allocs_per_op"]
    if alloc_cut < MIN_ALLOC_REDUCTION:
        errors.append(
            f"the full raw-speed stack cuts allocs_per_op by only "
            f"{alloc_cut:.1%} (floor {MIN_ALLOC_REDUCTION:.0%}): "
            f"{base['allocs_per_op']:.2f} -> {full['allocs_per_op']:.2f}")
    else:
        print(f"ok: full stack cuts allocs_per_op by {alloc_cut:.1%} "
              f"({base['allocs_per_op']:.2f} -> {full['allocs_per_op']:.2f})")

    hop_cut = 1.0 - batched["hops_per_op"] / base["hops_per_op"]
    if hop_cut < MIN_HOP_REDUCTION:
        errors.append(
            f"batching cuts hops_per_op by only {hop_cut:.1%} "
            f"(floor {MIN_HOP_REDUCTION:.0%}): "
            f"{base['hops_per_op']:.2f} -> {batched['hops_per_op']:.2f}")
    else:
        print(f"ok: batching cuts hops_per_op by {hop_cut:.1%} "
              f"({base['hops_per_op']:.2f} -> {batched['hops_per_op']:.2f})")
    return errors


def check_against_baseline(rows: dict[str, dict],
                           baseline: dict[str, dict]) -> list[str]:
    errors = []
    for name, ref in sorted(baseline.items()):
        cur = rows.get(name)
        if cur is None:
            errors.append(f"{name}: present in baseline, missing from run")
            continue
        for counter in GATED_COUNTERS:
            if counter not in ref:
                continue
            want, got = ref[counter], cur.get(counter)
            if got is None:
                errors.append(f"{name}: counter {counter} disappeared")
                continue
            if want == 0:
                continue
            drift = (got - want) / want
            if drift > TOLERANCE:
                errors.append(
                    f"{name}: {counter} regressed {drift:+.1%} "
                    f"({want:.2f} -> {got:.2f}, tolerance {TOLERANCE:.0%})")
            else:
                print(f"ok: {name} {counter} {want:.2f} -> {got:.2f} "
                      f"({drift:+.1%})")
        # Time is advisory: flag, never fail.
        if ref.get("real_time") and cur.get("real_time"):
            tdrift = (cur["real_time"] - ref["real_time"]) / ref["real_time"]
            if tdrift > 0.25:
                print(f"warn: {name} real_time {tdrift:+.1%} "
                      f"({ref['real_time']:.0f} -> {cur['real_time']:.0f} "
                      f"{cur['time_unit']}) — advisory only", file=sys.stderr)
    for name in sorted(set(rows) - set(baseline)):
        print(f"note: new row {name} not in baseline (record to adopt)")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", type=pathlib.Path,
                    help="google-benchmark JSON from micro_primitives")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help="write the baseline from these results")
    mode.add_argument("--check", action="store_true",
                      help="fail on counter regressions vs the baseline")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=DEFAULT_BASELINE)
    args = ap.parse_args()

    try:
        rows = load_rows(args.results)
    except FileNotFoundError:
        return fail(f"results file {args.results} does not exist")
    except json.JSONDecodeError as exc:
        return fail(f"results file {args.results} is not valid JSON "
                    f"(line {exc.lineno}: {exc.msg})")
    except KeyError as exc:
        return fail(f"results file {args.results} is missing benchmark "
                    f"key {exc} — not google-benchmark JSON output?")
    if not rows:
        return fail(f"no ProtocolTrain rows in {args.results}")

    errors = check_improvements(rows)

    if args.record:
        if errors:
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
            print("refusing to record a baseline that misses the "
                  "improvement floors", file=sys.stderr)
            return 1
        args.baseline.write_text(json.dumps(rows, indent=2, sort_keys=True)
                                 + "\n", encoding="utf-8")
        print(f"recorded {len(rows)} rows -> {args.baseline}")
        return 0

    if not args.baseline.exists():
        return fail(f"baseline {args.baseline} missing (record it first)")
    try:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return fail(f"baseline {args.baseline} is not valid JSON "
                    f"(line {exc.lineno}: {exc.msg})")
    if not isinstance(baseline, dict):
        return fail(f"baseline {args.baseline} is not a row mapping")
    errors += check_against_baseline(rows, baseline)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print("bench gate: all counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
