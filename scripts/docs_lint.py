#!/usr/bin/env python3
"""Documentation lint, run as the CI `docs` job.

Checks that the prose reference docs cannot silently drift from the
headers they document:

1. Every public struct/class in src/core/messages.hpp and src/obs/*.hpp
   carries a Doxygen-style doc comment (`///` or `/** ... */`).
2. Every message struct defined in src/core/messages.hpp is mentioned
   in PROTOCOL.md (the "Message reference" table).
3. Every EventKind wire name and every exported `trace.*` metric prefix
   appears in OBSERVABILITY.md.
4. Every raw-speed knob documented in PERFORMANCE.md names a real
   Config field in its defining header (and vice versa: the raw-speed
   Config fields all appear in PERFORMANCE.md), and every `batch.*` /
   `wbuf.*` counter emitted by the code is documented there.
5. The overload-resilience knobs (flow control, admission control,
   circuit breaker) appear in PROTOCOL.md ("Flow control & overload"),
   and every `flow.*` / `shed.*` / `breaker.*` counter emitted by the
   code appears in OBSERVABILITY.md ("Flow control counter families").

Exit status 0 = clean, 1 = violations (each printed as file:line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_COMMENT_FILES = [
    "src/core/messages.hpp",
    *sorted(str(p.relative_to(REPO)) for p in (REPO / "src/obs").glob("*.hpp")),
    *sorted(str(p.relative_to(REPO))
            for p in (REPO / "src/obs/monitor").glob("*.hpp")),
]

# `struct Name {` / `class Name final {` at any nesting; not forward
# declarations (`struct Name;`) and not `enum class`.
DECL_RE = re.compile(r"^\s*(?:struct|class)\s+([A-Za-z_]\w*)\b(?!.*;\s*$)")

errors: list[str] = []


def check_doc_comments(rel: str) -> list[str]:
    """Return the undocumented struct/class names declared in `rel`."""
    lines = (REPO / rel).read_text().splitlines()
    missing = []
    for i, line in enumerate(lines):
        if re.match(r"^\s*enum\b", line):
            continue
        m = DECL_RE.match(line)
        if not m:
            continue
        # Walk back over template<>/attribute lines to the nearest
        # non-blank line; it must close or be a doc comment.
        j = i - 1
        while j >= 0 and re.match(r"^\s*(template\s*<|\[\[)", lines[j]):
            j -= 1
        prev = lines[j].strip() if j >= 0 else ""
        if not (prev.startswith("///") or prev.endswith("*/")):
            missing.append(f"{rel}:{i + 1}: undocumented '{m.group(1)}' "
                           "(add a /// doc comment)")
    return missing


def struct_names(rel: str) -> list[tuple[str, int]]:
    names = []
    for i, line in enumerate((REPO / rel).read_text().splitlines()):
        if re.match(r"^\s*enum\b", line):
            continue
        m = DECL_RE.match(line)
        if m:
            names.append((m.group(1), i + 1))
    return names


def main() -> int:
    for rel in DOC_COMMENT_FILES:
        errors.extend(check_doc_comments(rel))

    protocol = (REPO / "PROTOCOL.md").read_text()
    for name, lineno in struct_names("src/core/messages.hpp"):
        if name not in protocol:
            errors.append(f"src/core/messages.hpp:{lineno}: struct '{name}' "
                          "is not mentioned in PROTOCOL.md")

    observability = (REPO / "OBSERVABILITY.md").read_text()
    trace_hpp = (REPO / "src/obs/trace.hpp").read_text()
    kind_block = re.search(
        r"to_string\(EventKind.*?\n\}", trace_hpp, re.DOTALL)
    if not kind_block:
        errors.append("src/obs/trace.hpp: cannot find to_string(EventKind)")
    else:
        for wire in re.findall(r'return "([a-z_]+)";', kind_block.group(0)):
            if wire == "unknown":
                continue
            if f"`{wire}`" not in observability:
                errors.append(f"src/obs/trace.hpp: event kind '{wire}' is "
                              "not documented in OBSERVABILITY.md")

    analysis_cpp = (REPO / "src/obs/analysis.cpp").read_text()
    for metric in sorted(set(re.findall(r'"(trace\.[a-z_.]+)"', analysis_cpp))):
        if metric.rstrip(".") not in observability:
            errors.append(f"src/obs/analysis.cpp: metric '{metric}' is not "
                          "documented in OBSERVABILITY.md")

    monitor_cpp = (REPO / "src/obs/monitor/invariant_monitor.cpp").read_text()
    for metric in sorted(
            set(re.findall(r'"(monitor\.[a-z_.0-9]+)"', monitor_cpp))):
        if metric.rstrip(".") not in observability:
            errors.append(
                f"src/obs/monitor/invariant_monitor.cpp: metric '{metric}' "
                "is not documented in OBSERVABILITY.md")

    performance = (REPO / "PERFORMANCE.md").read_text()
    # Knob <-> header cross-check: each (header, field) pair below is a
    # raw-speed Config knob; PERFORMANCE.md must name every one, and
    # each must still exist in its defining header.
    knobs = [
        ("src/core/cache_manager.hpp",
         ["pool_messages", "write_buffer_ops", "piggyback_heartbeats"]),
        ("src/core/directory_manager.hpp", ["pool_messages"]),
        ("src/net/batch_fabric.hpp", ["batch_window", "max_batch"]),
        ("src/airline/testbed.hpp",
         ["batch_fabric", "pool_messages", "write_buffer_ops",
          "piggyback_heartbeats"]),
    ]
    for rel, fields in knobs:
        header = (REPO / rel).read_text()
        for field in fields:
            if not re.search(rf"\b{field}\b\s*=", header):
                errors.append(f"{rel}: raw-speed knob '{field}' named in "
                              "docs_lint.py no longer exists in the header")
            if f"`{field}`" not in performance:
                errors.append(f"{rel}: knob '{field}' is not documented in "
                              "PERFORMANCE.md")

    # Counter families: everything the code emits under batch.* / wbuf.*
    # must be documented (OBSERVABILITY.md documents the families too,
    # but PERFORMANCE.md is the canonical knob/counter reference).
    perf_sources = {
        "src/net/batch_fabric.cpp": r'"(batch\.[a-z_.]+)"',
        "src/core/cache_manager.cpp": r'"(wbuf\.[a-z_.]+)"',
    }
    for rel, pattern in perf_sources.items():
        text = (REPO / rel).read_text()
        for counter in sorted(set(re.findall(pattern, text))):
            if f"`{counter}`" not in performance:
                errors.append(f"{rel}: counter '{counter}' is not "
                              "documented in PERFORMANCE.md")

    # Overload-resilience knobs live in PROTOCOL.md ("Flow control &
    # overload"): same two-way check as the raw-speed knobs above.
    overload_knobs = [
        ("src/core/flow_control.hpp", ["queue_capacity", "retry_after"]),
        ("src/core/cache_manager.hpp",
         ["breaker_threshold", "breaker_open_timeout",
          "degrade_on_overload"]),
        ("src/core/directory_manager.hpp",
         ["max_fetch_rounds", "max_view_rounds", "max_acquire_queue",
          "busy_retry_after"]),
        ("src/core/reliability.hpp", ["deadline"]),
    ]
    for rel, fields in overload_knobs:
        header = (REPO / rel).read_text()
        for field in fields:
            if not re.search(rf"\b{field}\b\s*=", header):
                errors.append(f"{rel}: overload knob '{field}' named in "
                              "docs_lint.py no longer exists in the header")
            if f"`{field}`" not in protocol:
                errors.append(f"{rel}: knob '{field}' is not documented in "
                              "PROTOCOL.md")

    # Flow-control counter families: everything emitted under flow.* /
    # shed.* / breaker.* must appear in OBSERVABILITY.md ("Flow control
    # counter families"). The doc lists them with role prefixes
    # (net./dm./cm.), so this is a substring match on the bare name.
    flow_sources = {
        "src/net/sim_fabric.cpp": r'"(flow\.[a-z_.]+)"',
        "src/rt/thread_fabric.cpp": r'"(flow\.[a-z_.]+)"',
        "src/core/directory_manager.cpp": r'"((?:flow|shed)\.[a-z_.]+)"',
        "src/core/cache_manager.cpp": r'"((?:flow|breaker)\.[a-z_.]+)"',
    }
    for rel, pattern in flow_sources.items():
        text = (REPO / rel).read_text()
        for counter in sorted(set(re.findall(pattern, text))):
            counter = counter.rstrip(".")  # inc_cat prefixes
            if counter.count(".") == 0:
                continue  # a bare family prefix, not a counter name
            if counter not in observability:
                errors.append(f"{rel}: counter '{counter}' is not "
                              "documented in OBSERVABILITY.md")

    # Live telemetry (OBSERVABILITY.md "Live telemetry"): the hub
    # knobs, the scrape routes, the alerts.* counter family, and the
    # bench serving flags must stay documented.
    telemetry_hpp = (REPO / "src/obs/telemetry.hpp").read_text()
    for field in ["interval", "window_capacity", "varz_windows", "pace_ms"]:
        if not re.search(rf"\b{field}\b\s*=", telemetry_hpp):
            errors.append("src/obs/telemetry.hpp: telemetry knob "
                          f"'{field}' named in docs_lint.py no longer "
                          "exists in the header")
        if f"`{field}`" not in observability:
            errors.append(f"src/obs/telemetry.hpp: knob '{field}' is not "
                          "documented in OBSERVABILITY.md")
    server_cpp = (REPO / "src/net/telemetry_server.cpp").read_text()
    for route in sorted(set(re.findall(r'route\("(/[a-z]*)"', server_cpp))):
        if f"`{route}`" not in observability:
            errors.append(f"src/net/telemetry_server.cpp: endpoint "
                          f"'{route}' is not documented in OBSERVABILITY.md")
    alerts_cpp = (REPO / "src/obs/alerts.cpp").read_text()
    for counter in sorted(set(re.findall(r'"(alerts\.[a-z_.]+)"',
                                         alerts_cpp))):
        if f"`{counter}`" not in observability:
            errors.append(f"src/obs/alerts.cpp: counter '{counter}' is not "
                          "documented in OBSERVABILITY.md")
    readme = (REPO / "README.md").read_text()
    for flag in ["--serve", "--telemetry-interval", "--pace"]:
        if flag not in observability:
            errors.append(f"telemetry flag '{flag}' is not documented in "
                          "OBSERVABILITY.md")
    if "--serve" not in readme or "flecc_top" not in readme:
        errors.append("README.md: the live-telemetry quickstart "
                      "(--serve + flecc_top) is missing")

    if errors:
        print(f"docs lint: {len(errors)} problem(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print("docs lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
