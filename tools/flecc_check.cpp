// flecc_check — offline coherence invariant checker for obs JSONL
// traces. Runs the same engine as the online monitor
// (obs::monitor::InvariantMonitor) over a recorded trace and exits
// non-zero when any invariant (I1-I4, causality; see PROTOCOL.md
// "Invariants") is violated.
//
// Exit codes: 0 clean, 1 invariant violation(s), 2 usage error, 3 no
// violations but the trace ends with an unresolved directory recovery
// (a recovery_begin without its recovery_end — the run stopped
// mid-rebuild, so the final state was never re-validated), 4 no
// violations but the trace ends with an unresolved view migration
// (a migrate_begin that reached neither migrate_done nor
// migrate_aborted — a view's ownership is indeterminate).
//
// Usage:
//   flecc_check <trace.jsonl>                 health report to stdout;
//                                             exit 1 on violations
//   flecc_check <trace.jsonl> --quiet         only the verdict line
//   flecc_check <trace.jsonl> --max-op-age N  warn on ops pending > N us
//   flecc_check <trace.jsonl> --metrics <out> also write monitor metrics
//                                             as a MetricsRegistry CSV
//   flecc_check <trace.jsonl> --prom <out>    also write Prometheus text
//
// Traces come from the benches' --trace flag (chaos_soak,
// fig4_efficiency) or the airline testbed. Ring-buffer truncation is
// fine: the monitor never reports a violation for history it did not
// see (pre-trace extractions merge silently; end-of-trace leftovers
// are warnings, not violations).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/trace_io.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--quiet] [--max-op-age <us>] "
               "[--metrics <out.csv>] [--prom <out.prom>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];

  bool quiet = false;
  std::string metrics_path;
  std::string prom_path;
  flecc::obs::monitor::InvariantMonitor::Config cfg;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--max-op-age" && i + 1 < argc) {
      cfg.max_op_age =
          static_cast<flecc::sim::Duration>(std::strtoull(argv[++i],
                                                          nullptr, 10));
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--prom" && i + 1 < argc) {
      prom_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  std::size_t bad_lines = 0;
  auto events = flecc::obs::read_jsonl_file(path, &bad_lines);
  if (events.empty() && bad_lines == 0) {
    std::fprintf(stderr, "%s: empty or unreadable trace: %s\n", argv[0],
                 path.c_str());
    return 1;
  }
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed line(s)\n",
                 bad_lines);
  }

  // The engine assumes time order (JSONL exports are sorted, but be
  // robust to concatenated or hand-edited traces).
  std::stable_sort(events.begin(), events.end(),
                   [](const flecc::obs::TraceEvent& x,
                      const flecc::obs::TraceEvent& y) { return x.at < y.at; });

  flecc::obs::monitor::InvariantMonitor mon(cfg);
  mon.run(events);

  const auto& viol = mon.violations();
  const std::uint64_t unresolved = mon.unresolved_recovery_epochs();
  const std::uint64_t unsettled = mon.unresolved_migration_epochs();
  if (quiet) {
    if (!viol.empty()) {
      std::printf("monitor: %zu violation(s)\n", viol.size());
    } else if (unresolved != 0) {
      std::printf("monitor: %llu unresolved recovery epoch(s)\n",
                  static_cast<unsigned long long>(unresolved));
    } else if (unsettled != 0) {
      std::printf("monitor: %llu unresolved migration epoch(s)\n",
                  static_cast<unsigned long long>(unsettled));
    } else {
      std::printf("monitor: PASS (%llu events, %zu warning(s))\n",
                  static_cast<unsigned long long>(mon.events_seen()),
                  mon.warnings().size());
    }
  } else {
    std::fputs(mon.health_report().c_str(), stdout);
  }

  if (!metrics_path.empty() || !prom_path.empty()) {
    flecc::obs::MetricsRegistry reg;
    mon.export_metrics(reg);
    if (!metrics_path.empty() && !reg.write_csv(metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    if (!prom_path.empty() && !reg.write_prometheus(prom_path)) {
      std::fprintf(stderr, "cannot write %s\n", prom_path.c_str());
      return 1;
    }
  }

  if (!viol.empty()) return 1;
  if (unresolved != 0) return 3;
  return unsettled != 0 ? 4 : 0;
}
