// flecc_trace — offline analyzer for obs JSONL traces.
//
// Usage:
//   flecc_trace <trace.jsonl>                 default report: per-op latency
//                                             breakdown + reliability tallies
//   flecc_trace <trace.jsonl> --spans [N]     list the top-N spans (default 20)
//   flecc_trace <trace.jsonl> --span <id>     message-sequence view of one op
//   flecc_trace <trace.jsonl> --csv <out>     re-export the events as CSV
//   flecc_trace <trace.jsonl> --metrics <out> write the summary as a
//                                             MetricsRegistry CSV
//
// Traces come from the benches' --trace flag (chaos_soak, fig4_efficiency)
// or from any code that writes obs::write_jsonl. See OBSERVABILITY.md for
// the event vocabulary.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--spans [N] | --span <id> | "
               "--csv <out.csv> | --metrics <out.csv>]\n",
               argv0);
  return 2;
}

int cmd_spans(const std::vector<flecc::obs::TraceEvent>& events,
              std::size_t limit) {
  const auto spans = flecc::obs::list_spans(events);
  std::printf("%-20s %-14s %s\n", "span", "op", "events");
  std::size_t shown = 0;
  for (const auto& s : spans) {
    if (shown++ == limit) break;
    std::printf("%-20llu %-14s %zu\n",
                static_cast<unsigned long long>(s.span), s.label.c_str(),
                s.events);
  }
  if (spans.size() > limit) {
    std::printf("... %zu more (raise the limit: --spans N)\n",
                spans.size() - limit);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];

  std::size_t bad_lines = 0;
  const auto events = flecc::obs::read_jsonl_file(path, &bad_lines);
  if (events.empty() && bad_lines == 0) {
    std::fprintf(stderr, "%s: empty or unreadable trace: %s\n", argv[0],
                 path.c_str());
    return 1;
  }
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed line(s)\n",
                 bad_lines);
  }

  if (argc == 2) {
    const auto summary = flecc::obs::summarize(events);
    std::fputs(flecc::obs::render_report(summary).c_str(), stdout);
    return 0;
  }

  const std::string mode = argv[2];
  if (mode == "--spans") {
    std::size_t limit = 20;
    if (argc > 3) limit = static_cast<std::size_t>(std::strtoull(argv[3],
                                                                 nullptr, 10));
    return cmd_spans(events, limit);
  }
  if (mode == "--span" && argc > 3) {
    const std::uint64_t span = std::strtoull(argv[3], nullptr, 10);
    const std::string seq = flecc::obs::render_sequence(events, span);
    if (seq.empty()) {
      std::fprintf(stderr, "no events carry span %llu (try --spans)\n",
                   static_cast<unsigned long long>(span));
      return 1;
    }
    std::fputs(seq.c_str(), stdout);
    return 0;
  }
  if (mode == "--csv" && argc > 3) {
    if (!flecc::obs::write_csv(events, argv[3])) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote %zu events to %s\n", events.size(), argv[3]);
    return 0;
  }
  if (mode == "--metrics" && argc > 3) {
    const auto summary = flecc::obs::summarize(events);
    flecc::obs::MetricsRegistry reg;
    flecc::obs::export_metrics(summary, reg);
    if (!reg.write_csv(argv[3])) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote metrics to %s\n", argv[3]);
    return 0;
  }
  return usage(argv[0]);
}
