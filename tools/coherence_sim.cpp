// coherence_sim — command-line driver for the simulated airline testbed.
//
// Runs a configurable fleet of travel agents over any of the three
// coherence protocols and reports traffic, reservation outcomes, and
// (for Flecc) data-quality statistics. This is the "try the system on
// your own parameters" entry point a release ships alongside the fixed
// figure benches.
//
//   coherence_sim --protocol flecc --agents 40 --group 10 --ops 5
//                 --validity '(_unseen == 0)' --csv run.csv
//   (single command line; wrapped here for readability)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "airline/testbed.hpp"
#include "sim/table.hpp"

using namespace flecc;
using airline::CoherenceTestbed;
using airline::Protocol;
using airline::TestbedOptions;

namespace {

struct CliOptions {
  Protocol protocol = Protocol::kFlecc;
  std::size_t agents = 20;
  std::size_t group = 10;
  std::size_t flights_per_group = 5;
  std::int64_t capacity = 1 << 20;
  int ops = 5;
  core::Mode mode = core::Mode::kWeak;
  std::string push_trigger;
  std::string pull_trigger;
  std::string validity_trigger;
  sim::Duration lan_latency = sim::usec(200);
  std::string csv_path;
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0, const char* complaint = nullptr) {
  if (complaint != nullptr) std::fprintf(stderr, "error: %s\n\n", complaint);
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --protocol flecc|time-sharing|multicast  (default flecc)\n"
               "  --agents N            fleet size (default 20)\n"
               "  --group G             conflicting-group size (default 10)\n"
               "  --flights F           flights per group (default 5)\n"
               "  --capacity C          seats per flight (default 2^20)\n"
               "  --ops K               reserve ops per agent (default 5)\n"
               "  --mode weak|strong    consistency mode (default weak)\n"
               "  --push-trigger EXPR   e.g. '(t > 1500)'\n"
               "  --pull-trigger EXPR\n"
               "  --validity EXPR       e.g. 'false' or '(_unseen == 0)'\n"
               "  --lan-latency-us L    host-to-host latency (default 200)\n"
               "  --csv FILE            write the summary table as CSV\n"
               "  --verbose             per-agent breakdown\n",
               argv0);
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], "missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--protocol") {
      const std::string v = need_value(i);
      if (v == "flecc") {
        opt.protocol = Protocol::kFlecc;
      } else if (v == "time-sharing") {
        opt.protocol = Protocol::kTimeSharing;
      } else if (v == "multicast") {
        opt.protocol = Protocol::kMulticast;
      } else {
        usage(argv[0], "unknown protocol");
      }
    } else if (arg == "--agents") {
      opt.agents = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--group") {
      opt.group = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--flights") {
      opt.flights_per_group =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--capacity") {
      opt.capacity = std::atoll(need_value(i));
    } else if (arg == "--ops") {
      opt.ops = std::atoi(need_value(i));
    } else if (arg == "--mode") {
      const std::string v = need_value(i);
      if (v == "weak") {
        opt.mode = core::Mode::kWeak;
      } else if (v == "strong") {
        opt.mode = core::Mode::kStrong;
      } else {
        usage(argv[0], "unknown mode");
      }
    } else if (arg == "--push-trigger") {
      opt.push_trigger = need_value(i);
    } else if (arg == "--pull-trigger") {
      opt.pull_trigger = need_value(i);
    } else if (arg == "--validity") {
      opt.validity_trigger = need_value(i);
    } else if (arg == "--lan-latency-us") {
      opt.lan_latency = sim::usec(std::atoll(need_value(i)));
    } else if (arg == "--csv") {
      opt.csv_path = need_value(i);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown option '" + arg + "'").c_str());
    }
  }
  if (opt.agents == 0 || opt.group == 0 || opt.ops < 0) {
    usage(argv[0], "agents/group must be > 0 and ops >= 0");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);

  TestbedOptions opts;
  opts.n_agents = cli.agents;
  opts.group_size = cli.group;
  opts.flights_per_group = cli.flights_per_group;
  opts.capacity = cli.capacity;
  opts.mode = cli.mode;
  opts.push_trigger = cli.push_trigger;
  opts.pull_trigger = cli.pull_trigger;
  opts.validity_trigger = cli.validity_trigger;
  opts.lan_latency = cli.lan_latency;

  CoherenceTestbed tb(cli.protocol, opts);
  std::printf("protocol=%s agents=%zu group=%zu ops=%d mode=%s\n",
              airline::to_string(cli.protocol), cli.agents, cli.group,
              cli.ops, core::to_string(cli.mode));

  tb.connect_all();
  for (int op = 0; op < cli.ops; ++op) {
    for (std::size_t i = 0; i < tb.agent_count(); ++i) {
      const auto flight = tb.assignment().agent_flights[i][0];
      tb.client(i).do_operation(
          [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
    }
    tb.run();
  }

  // Sample quality before teardown (Flecc only; view ids are assigned
  // sequentially from 1).
  sim::RunningStat quality;
  if (auto* dir = tb.flecc_directory(); dir != nullptr) {
    for (core::ViewId v = 1; v <= tb.agent_count(); ++v) {
      if (dir->known(v)) {
        quality.add(static_cast<double>(dir->quality(v)));
      }
    }
  }

  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.client(i).disconnect({});
  }
  tb.run();

  std::int64_t confirmed = 0, refused = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.view(i).confirmed_total();
    refused += tb.view(i).refused_total();
  }

  sim::Table summary({"metric", "value"});
  summary.add_row({std::string("messages"), tb.fabric().sent_count()});
  summary.add_row({std::string("bytes"),
                   tb.fabric().counters().get("bytes.sent")});
  summary.add_row({std::string("sim_time_ms"),
                   sim::to_ms(tb.simulator().now())});
  summary.add_row({std::string("sim_events"),
                   static_cast<std::uint64_t>(
                       tb.simulator().executed_events())});
  summary.add_row({std::string("seats_confirmed"), confirmed});
  summary.add_row({std::string("seats_refused_locally"), refused});
  summary.add_row({std::string("seats_in_database"),
                   tb.database().total_reserved()});
  summary.add_row({std::string("seats_rejected_at_merge"),
                   tb.database().rejected_seats()});
  if (quality.count() > 0) {
    summary.add_row({std::string("quality_mean_unseen"), quality.mean()});
    summary.add_row({std::string("quality_max_unseen"), quality.max()});
  }
  std::printf("\n%s", summary.to_string().c_str());

  if (cli.verbose) {
    sim::Table per_agent({"agent", "confirmed", "refused", "pending"});
    for (std::size_t i = 0; i < tb.agent_count(); ++i) {
      per_agent.add_row({static_cast<std::uint64_t>(i),
                         tb.view(i).confirmed_total(),
                         tb.view(i).refused_total(),
                         tb.view(i).pending_total()});
    }
    std::printf("\n%s", per_agent.to_string().c_str());

    std::printf("\nmessage breakdown:\n");
    for (const auto& [name, count] : tb.fabric().counters().all()) {
      if (name.rfind("msg.sent.", 0) == 0) {
        std::printf("  %-32s %llu\n", name.c_str() + 9,
                    static_cast<unsigned long long>(count));
      }
    }
  }

  if (!cli.csv_path.empty()) {
    if (summary.write_csv(cli.csv_path)) {
      std::printf("\nsummary written to %s\n", cli.csv_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", cli.csv_path.c_str());
      return 1;
    }
  }
  return 0;
}
