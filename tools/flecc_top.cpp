// flecc_top — a terminal dashboard over a live telemetry endpoint.
//
// Scrapes /varz and /healthz from a running bench or testbed (e.g.
// `chaos_soak --serve 9464 --pace 40`) and repaints an ANSI screen
// every interval: health status, windowed per-second rates for the
// hottest series, the hot-object set (flights by reservation delta),
// per-view breaker states, and the active SLO alerts.
//
//   ./build/tools/flecc_top --port 9464
//   ./build/tools/flecc_top --port 9464 --once   # one plain snapshot
//
// No curses dependency: plain ANSI clear+repaint, so it works in any
// terminal and degrades to a sequential printout when piped.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/telemetry_server.hpp"

namespace {

// ---- minimal JSON reader ---------------------------------------------------
// Just enough for the /varz and /healthz documents the TelemetryHub
// renders (objects, arrays, strings, numbers, bools, null). Not a
// general-purpose parser; malformed input yields nullopt.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, Json>> object;
  std::vector<Json> array;

  [[nodiscard]] const Json* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  [[nodiscard]] const std::string& str_or(const std::string& fallback) const {
    return type == Type::kString ? str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<Json> parse() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // The hub never emits \u escapes; skip the four digits.
            pos_ = std::min(pos_ + 4, s_.size());
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    const char c = s_[pos_];
    Json v;
    if (c == '{') {
      ++pos_;
      v.type = Json::Type::kObject;
      skip_ws();
      if (eat('}')) return v;
      while (true) {
        auto key = string();
        if (!key || !eat(':')) return std::nullopt;
        auto elem = value();
        if (!elem) return std::nullopt;
        v.object.emplace_back(std::move(*key), std::move(*elem));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = Json::Type::kArray;
      skip_ws();
      if (eat(']')) return v;
      while (true) {
        auto elem = value();
        if (!elem) return std::nullopt;
        v.array.push_back(std::move(*elem));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto str = string();
      if (!str) return std::nullopt;
      v.type = Json::Type::kString;
      v.str = std::move(*str);
      return v;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.type = Json::Type::kBool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    char* end = nullptr;
    const double num = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return std::nullopt;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    v.type = Json::Type::kNumber;
    v.number = num;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- dashboard -------------------------------------------------------------

struct SeriesRow {
  std::string name;
  std::string labels;  // "view=3" rendering
  double value = 0.0;
  double delta = 0.0;
  double rate = 0.0;
};

std::string render_labels(const Json& labels) {
  std::string out;
  for (const auto& [k, v] : labels.object) {
    if (!out.empty()) out += ",";
    out += k + "=" + v.str_or("?");
  }
  return out;
}

const char* breaker_name(double state) {
  if (state == 1.0) return "OPEN";
  if (state == 2.0) return "half-open";
  return "closed";
}

const char* status_color(const std::string& status) {
  if (status == "ok") return "\x1b[32m";        // green
  if (status == "degraded") return "\x1b[33m";  // yellow
  return "\x1b[31m";                            // red (alerting / unknown)
}

/// One snapshot, rendered to stdout. Returns false if the endpoint was
/// unreachable or the payload unparseable.
bool paint(const std::string& host, std::uint16_t port, bool ansi) {
  const auto varz_text = flecc::net::http_get(host, port, "/varz");
  const auto healthz_text = flecc::net::http_get(host, port, "/healthz");
  if (!varz_text || !healthz_text) return false;
  const auto varz = JsonParser(*varz_text).parse();
  const auto healthz = JsonParser(*healthz_text).parse();
  if (!varz || !healthz) return false;

  if (ansi) std::printf("\x1b[H\x1b[2J");  // home + clear

  const std::string status = healthz->get("status") != nullptr
                                 ? healthz->get("status")->str_or("?")
                                 : "?";
  const double now_us =
      varz->get("now_us") != nullptr ? varz->get("now_us")->num_or(0) : 0;
  const double windows = varz->get("windows_closed") != nullptr
                             ? varz->get("windows_closed")->num_or(0)
                             : 0;
  std::printf("flecc_top — %s:%u   status: %s%s%s   sim t=%.2fs   "
              "windows=%.0f\n",
              host.c_str(), port, ansi ? status_color(status) : "",
              status.c_str(), ansi ? "\x1b[0m" : "", now_us / 1e6, windows);

  // Latest window = last element of varz.windows.
  const Json* windows_arr = varz->get("windows");
  if (windows_arr == nullptr || windows_arr->array.empty()) {
    std::printf("\n  (no closed telemetry window yet)\n");
    return true;
  }
  const Json& w = windows_arr->array.back();

  std::vector<SeriesRow> counters;
  std::vector<SeriesRow> flights;
  std::vector<SeriesRow> breakers;
  if (const Json* series = w.get("series")) {
    for (const Json& s : series->array) {
      SeriesRow row;
      row.name = s.get("name") != nullptr ? s.get("name")->str_or("?") : "?";
      if (const Json* labels = s.get("labels")) {
        row.labels = render_labels(*labels);
      }
      row.value = s.get("value") != nullptr ? s.get("value")->num_or(0) : 0;
      row.delta = s.get("delta") != nullptr ? s.get("delta")->num_or(0) : 0;
      row.rate = s.get("rate") != nullptr ? s.get("rate")->num_or(0) : 0;
      const bool counter =
          s.get("kind") != nullptr && s.get("kind")->str_or("") == "counter";
      if (row.name == "airline.flight.reserved") {
        flights.push_back(row);
      } else if (row.name == "view.breaker") {
        if (row.value != 0.0) breakers.push_back(row);
      } else if (counter) {
        counters.push_back(row);
      }
    }
  }

  std::printf("\n  %-44s %12s %10s %14s\n", "RATES (top by /s)", "rate/s",
              "delta", "total");
  std::sort(counters.begin(), counters.end(),
            [](const SeriesRow& a, const SeriesRow& b) {
              return a.rate > b.rate;
            });
  std::size_t shown = 0;
  for (const SeriesRow& r : counters) {
    if (shown++ >= 12) break;
    std::string name = r.name;
    if (!r.labels.empty()) name += "{" + r.labels + "}";
    std::printf("  %-44s %12.1f %10.0f %14.0f\n", name.c_str(), r.rate,
                r.delta, r.value);
  }
  if (counters.empty()) std::printf("  (no counter series)\n");

  if (!flights.empty()) {
    std::sort(flights.begin(), flights.end(),
              [](const SeriesRow& a, const SeriesRow& b) {
                return a.delta > b.delta || (a.delta == b.delta &&
                                             a.value > b.value);
              });
    std::printf("\n  HOT OBJECTS (flights by reservation delta)\n");
    shown = 0;
    for (const SeriesRow& r : flights) {
      if (shown++ >= 5) break;
      std::printf("  %-24s +%-8.0f total %.0f\n", r.labels.c_str(), r.delta,
                  r.value);
    }
  }

  if (!breakers.empty()) {
    std::printf("\n  BREAKERS (non-closed)\n");
    for (const SeriesRow& r : breakers) {
      std::printf("  %-24s %s\n", r.labels.c_str(), breaker_name(r.value));
    }
  }

  const Json* alerts = healthz->get("alerts");
  const Json* active =
      alerts != nullptr ? alerts->get("active") : nullptr;
  std::printf("\n  ALERTS raised=%.0f cleared=%.0f active=%zu\n",
              alerts != nullptr && alerts->get("raised") != nullptr
                  ? alerts->get("raised")->num_or(0)
                  : 0.0,
              alerts != nullptr && alerts->get("cleared") != nullptr
                  ? alerts->get("cleared")->num_or(0)
                  : 0.0,
              active != nullptr ? active->array.size() : 0);
  if (active != nullptr) {
    for (const Json& a : active->array) {
      std::printf("  %s!%s %s on %s%s%s (value %.1f)\n",
                  ansi ? "\x1b[31m" : "", ansi ? "\x1b[0m" : "",
                  a.get("rule") != nullptr ? a.get("rule")->str_or("?").c_str()
                                           : "?",
                  a.get("metric") != nullptr
                      ? a.get("metric")->str_or("?").c_str()
                      : "?",
                  a.get("labels") != nullptr &&
                          !a.get("labels")->object.empty()
                      ? ("{" + render_labels(*a.get("labels")) + "}").c_str()
                      : "",
                  "",
                  a.get("value") != nullptr ? a.get("value")->num_or(0) : 0.0);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned port = 9464;
  unsigned interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (interval_ms == 0) interval_ms = 1000;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port P] [--interval MS] "
                   "[--once]\n",
                   argv[0]);
      return 2;
    }
  }

  if (once) {
    if (!paint(host, static_cast<std::uint16_t>(port), /*ansi=*/false)) {
      std::fprintf(stderr, "flecc_top: no telemetry at %s:%u\n", host.c_str(),
                   port);
      return 1;
    }
    return 0;
  }

  // Live mode: repaint until interrupted; keep retrying through
  // connection failures (the serving bench may still be starting, or
  // between runs).
  bool ever_connected = false;
  while (true) {
    if (!paint(host, static_cast<std::uint16_t>(port), /*ansi=*/true)) {
      std::printf("%sflecc_top: waiting for telemetry at %s:%u...\n",
                  ever_connected ? "" : "\x1b[H\x1b[2J", host.c_str(), port);
    } else {
      ever_connected = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
