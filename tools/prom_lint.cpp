// prom_lint — validate Prometheus text exposition (format 0.0.4).
//
// Reads an exposition from a file (or stdin with no argument / "-"),
// runs the in-repo validator (obs::prom::validate — the same checks
// the tests and chaos_soak apply to live /metrics output), and prints
// one line per issue. Exit status: 0 clean, 1 issues found, 2 usage.
//
//   ./build/tools/prom_lint out/flecc_metrics.prom
//   curl -s localhost:9464/metrics | ./build/tools/prom_lint
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/prom.hpp"

int main(int argc, char** argv) {
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-") == 0) {
      continue;  // explicit stdin
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: %s [exposition.prom]\n", argv[0]);
      return 2;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [exposition.prom]\n", argv[0]);
      return 2;
    }
  }

  std::string text;
  if (path != nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "prom_lint: cannot read %s\n", path);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  }

  const auto issues = flecc::obs::prom::validate(text);
  for (const auto& issue : issues) {
    std::printf("%s\n", issue.to_string().c_str());
  }
  if (issues.empty()) {
    std::fprintf(stderr, "prom_lint: OK (%zu bytes)\n", text.size());
    return 0;
  }
  std::fprintf(stderr, "prom_lint: %zu issue(s)\n", issues.size());
  return 1;
}
