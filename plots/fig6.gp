# gnuplot script for Figure 6 (run bench/fig6_flexibility first):
#   ./build/bench/fig6_flexibility && gnuplot plots/fig6.gp
set datafile separator ","
set terminal pngcairo size 800,500
set output "fig6_flexibility.png"
set title "Figure 6 — unseen remote updates per method call"
set xlabel "simulated time (ms)"
set ylabel "data quality (unseen updates)"
set key top left
plot "< awk -F, '$1==\"no-trigger\"'   out/fig6_flexibility.csv" \
         using 3:4 with linespoints title "explicit pulls only", \
     "< awk -F, '$1==\"with-trigger\"' out/fig6_flexibility.csv" \
         using 3:4 with linespoints title "with pull trigger"
