# gnuplot script for Figure 5 (run bench/fig5_adaptability first):
#   ./build/bench/fig5_adaptability && gnuplot plots/fig5.gp
set datafile separator ","
set terminal pngcairo size 800,600
set output "fig5_adaptability.png"
set multiplot layout 2,1 title \
    "Figure 5 — WEAK/STRONG/WEAK trade-off (10 conflicting agents)"
set xlabel ""
set ylabel "data quality (unseen updates)"
plot "out/fig5_adaptability.csv" using 1:5 with points pt 7 ps 0.6 notitle
set xlabel "simulated time (ms)"
set ylabel "method execution time (ms)"
plot "out/fig5_adaptability.csv" using 1:4 with points pt 7 ps 0.6 notitle
unset multiplot
