# gnuplot script for Figure 4 (run bench/fig4_efficiency first):
#   ./build/bench/fig4_efficiency && gnuplot plots/fig4.gp
set datafile separator ","
set terminal pngcairo size 800,500
set output "fig4_efficiency.png"
set title "Figure 4 — messages between cache managers and directory manager"
set xlabel "agents serving similar flights (conflicting-group size)"
set ylabel "total messages"
set key top left
plot "out/fig4_efficiency.csv" using 1:2 with linespoints title "Flecc", \
     "out/fig4_efficiency.csv" using 1:3 with linespoints title "time-sharing", \
     "out/fig4_efficiency.csv" using 1:4 with linespoints title "multicast"
