#include "psf/spec.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <sstream>
#include <utility>

namespace flecc::psf {

const ComponentType* ApplicationSpec::find_component(
    const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const ViewSpec* ApplicationSpec::find_view(const std::string& name) const {
  for (const auto& v : views) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

namespace {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream is(line);
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

/// Parse "35ms", "200us", "2s" into microseconds.
sim::Duration parse_duration(const std::string& text, std::size_t line) {
  std::size_t suffix = text.size();
  while (suffix > 0 && !(text[suffix - 1] >= '0' && text[suffix - 1] <= '9')) {
    --suffix;
  }
  const std::string unit = text.substr(suffix);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + suffix, value);
  if (ec != std::errc() || ptr != text.data() + suffix || suffix == 0) {
    throw SpecError("malformed duration '" + text + "'", line);
  }
  if (unit == "us") return sim::usec(value);
  if (unit == "ms") return sim::msec(value);
  if (unit == "s") return sim::seconds(value);
  throw SpecError("unknown duration unit '" + unit + "' (use us/ms/s)", line);
}

std::int64_t parse_int(const std::string& text, std::size_t line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw SpecError("malformed integer '" + text + "'", line);
  }
  return value;
}

double parse_real(const std::string& text, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw SpecError("malformed number '" + text + "'", line);
  }
}

/// key=value attribute; returns nullopt for bare flags.
std::optional<std::pair<std::string, std::string>> split_attr(
    const std::string& word) {
  const auto eq = word.find('=');
  if (eq == std::string::npos) return std::nullopt;
  return std::make_pair(word.substr(0, eq), word.substr(eq + 1));
}

/// Shared parser for "data <name> interval <lo> <hi>" and
/// "data <name> values <v1> <v2> ...".
void parse_data_line(const std::vector<std::string>& words, std::size_t line,
                     props::PropertySet& out) {
  if (words.size() < 3) {
    throw SpecError("data needs: data <name> interval|values ...", line);
  }
  const std::string& prop_name = words[1];
  const std::string& kind = words[2];
  if (kind == "interval") {
    if (words.size() != 5) {
      throw SpecError("interval needs: data <name> interval <lo> <hi>", line);
    }
    const auto lo = parse_int(words[3], line);
    const auto hi = parse_int(words[4], line);
    if (lo > hi) throw SpecError("interval lo > hi", line);
    out.set(prop_name, props::Domain::interval(lo, hi));
    return;
  }
  if (kind == "values") {
    if (words.size() < 4) {
      throw SpecError("values needs at least one value", line);
    }
    std::set<props::Value> values;
    for (std::size_t i = 3; i < words.size(); ++i) {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(
          words[i].data(), words[i].data() + words[i].size(), v);
      if (ec == std::errc() && ptr == words[i].data() + words[i].size()) {
        values.insert(props::Value{v});
      } else {
        values.insert(props::Value{words[i]});
      }
    }
    out.set(prop_name, props::Domain::discrete(std::move(values)));
    return;
  }
  throw SpecError("unknown data domain kind '" + kind + "'", line);
}

}  // namespace

DeploymentSpec parse_spec(std::string_view text) {
  DeploymentSpec spec;

  enum class Section { kTop, kComponent, kView };
  Section section = Section::kTop;
  ComponentType current_component;
  ViewSpec current_view;

  auto close_section = [&](std::size_t line) {
    if (section == Section::kComponent) {
      if (spec.app.find_component(current_component.name) != nullptr) {
        throw SpecError(
            "duplicate component '" + current_component.name + "'", line);
      }
      spec.app.components.push_back(std::move(current_component));
      current_component = {};
    } else if (section == Section::kView) {
      const ComponentType* base =
          spec.app.find_component(current_view.of_component);
      if (base == nullptr) {
        throw SpecError("view '" + current_view.name +
                            "' references unknown component '" +
                            current_view.of_component + "'",
                        line);
      }
      std::string reason;
      if (!is_deployable_view(current_view, *base, &reason)) {
        throw SpecError("view '" + current_view.name + "': " + reason, line);
      }
      if (spec.app.find_view(current_view.name) != nullptr) {
        throw SpecError("duplicate view '" + current_view.name + "'", line);
      }
      spec.app.views.push_back(std::move(current_view));
      current_view = {};
    }
    section = Section::kTop;
  };

  auto node_id = [&](const std::string& name,
                     std::size_t line) -> net::NodeId {
    auto it = spec.node_ids.find(name);
    if (it == spec.node_ids.end()) {
      throw SpecError("unknown node '" + name + "'", line);
    }
    return it->second;
  };

  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto words = split_words(raw);
    if (words.empty()) continue;
    const std::string& head = words[0];

    // ---- section bodies --------------------------------------------------
    if (section == Section::kComponent || section == Section::kView) {
      if (head == "end") {
        close_section(line_no);
        continue;
      }
      if (head == "method") {
        if (words.size() != 2) throw SpecError("method needs a name", line_no);
        (section == Section::kComponent ? current_component.methods
                                        : current_view.methods)
            .push_back(words[1]);
        continue;
      }
      if (head == "data") {
        parse_data_line(words, line_no,
                        section == Section::kComponent
                            ? current_component.data
                            : current_view.data);
        continue;
      }
      if (section == Section::kComponent) {
        if (head == "implements") {
          if (words.size() != 2) {
            throw SpecError("implements needs an interface name", line_no);
          }
          current_component.implements.push_back(
              InterfaceDesc{words[1], props::PropertySet{}});
          continue;
        }
        if (head == "requires") {
          if (words.size() != 2) {
            throw SpecError("requires needs an interface name", line_no);
          }
          current_component.requires_ifaces.push_back(words[1]);
          continue;
        }
      }
      throw SpecError("unexpected '" + head + "' inside " +
                          (section == Section::kComponent ? "component"
                                                          : "view") +
                          " block",
                      line_no);
    }

    // ---- top level ---------------------------------------------------------
    if (head == "component") {
      if (words.size() != 2) {
        throw SpecError("component needs a name", line_no);
      }
      current_component = {};
      current_component.name = words[1];
      section = Section::kComponent;
      continue;
    }
    if (head == "view") {
      if (words.size() != 4 || words[2] != "of") {
        throw SpecError("view needs: view <name> of <component>", line_no);
      }
      current_view = {};
      current_view.name = words[1];
      current_view.of_component = words[3];
      section = Section::kView;
      continue;
    }
    if (head == "node") {
      if (words.size() < 2) throw SpecError("node needs a name", line_no);
      if (spec.node_ids.count(words[1]) != 0) {
        throw SpecError("duplicate node '" + words[1] + "'", line_no);
      }
      std::map<std::string, std::string> attrs;
      for (std::size_t i = 2; i < words.size(); ++i) {
        const auto attr = split_attr(words[i]);
        if (!attr.has_value()) {
          throw SpecError("node attributes must be key=value", line_no);
        }
        attrs[attr->first] = attr->second;
      }
      spec.node_ids[words[1]] =
          spec.environment.add_node(words[1], std::move(attrs));
      continue;
    }
    if (head == "link") {
      if (words.size() < 3) {
        throw SpecError("link needs: link <a> <b> [attrs]", line_no);
      }
      net::LinkSpec link;
      for (std::size_t i = 3; i < words.size(); ++i) {
        if (words[i] == "insecure") {
          link.secure = false;
          continue;
        }
        if (words[i] == "secure") {
          link.secure = true;
          continue;
        }
        const auto attr = split_attr(words[i]);
        if (!attr.has_value()) {
          throw SpecError("unknown link flag '" + words[i] + "'", line_no);
        }
        if (attr->first == "latency") {
          link.latency = parse_duration(attr->second, line_no);
        } else if (attr->first == "bandwidth") {
          link.bandwidth_bytes_per_us = parse_real(attr->second, line_no);
        } else {
          throw SpecError("unknown link attribute '" + attr->first + "'",
                          line_no);
        }
      }
      spec.environment.connect(node_id(words[1], line_no),
                               node_id(words[2], line_no), link);
      continue;
    }
    if (head == "request") {
      if (words.size() < 3) {
        throw SpecError("request needs: request <client> <origin> [attrs]",
                        line_no);
      }
      ServiceRequest req;
      req.client = node_id(words[1], line_no);
      req.origin = node_id(words[2], line_no);
      for (std::size_t i = 3; i < words.size(); ++i) {
        if (words[i] == "privacy") {
          req.privacy_required = true;
          continue;
        }
        const auto attr = split_attr(words[i]);
        if (!attr.has_value()) {
          throw SpecError("unknown request flag '" + words[i] + "'", line_no);
        }
        if (attr->first == "interface") {
          req.interface_name = attr->second;
        } else if (attr->first == "max_latency") {
          req.max_latency = parse_duration(attr->second, line_no);
        } else if (attr->first == "view") {
          if (spec.app.find_view(attr->second) == nullptr) {
            throw SpecError("request references unknown view '" +
                                attr->second + "'",
                            line_no);
          }
          req.view_component = attr->second;
        } else {
          throw SpecError("unknown request attribute '" + attr->first + "'",
                          line_no);
        }
      }
      spec.requests.push_back(std::move(req));
      continue;
    }
    if (head == "end") {
      throw SpecError("'end' without an open component/view block", line_no);
    }
    throw SpecError("unknown directive '" + head + "'", line_no);
  }

  if (section != Section::kTop) {
    throw SpecError("unterminated block (missing 'end')", line_no);
  }
  return spec;
}

}  // namespace flecc::psf
