#include "psf/component.hpp"

#include <algorithm>

namespace flecc::psf {

bool ComponentType::implements_interface(const std::string& iface) const {
  return std::any_of(implements.begin(), implements.end(),
                     [&](const InterfaceDesc& d) { return d.name == iface; });
}

bool ComponentType::has_method(const std::string& method) const {
  return std::find(methods.begin(), methods.end(), method) != methods.end();
}

bool is_view_of(const ViewSpec& v, const ComponentType& c) {
  if (v.of_component != c.name) return false;
  const bool shares_methods = std::any_of(
      v.methods.begin(), v.methods.end(),
      [&](const std::string& m) { return c.has_method(m); });
  if (shares_methods) return true;
  return v.data.conflicts_with(c.data);  // V_v ∩ V_c ≠ ∅
}

bool is_deployable_view(const ViewSpec& v, const ComponentType& c,
                        std::string* reason) {
  auto fail = [&](std::string why) {
    if (reason != nullptr) *reason = std::move(why);
    return false;
  };
  if (v.of_component != c.name) {
    return fail("view does not derive from component '" + c.name + "'");
  }
  if (!is_view_of(v, c)) {
    return fail("view shares neither functionality nor data with component");
  }
  for (const std::string& m : v.methods) {
    if (!c.has_method(m)) {
      return fail("view method '" + m + "' does not exist on component");
    }
  }
  if (!v.data.subset_of(c.data)) {
    return fail("view data is not a subset of component data");
  }
  return true;
}

}  // namespace flecc::psf
