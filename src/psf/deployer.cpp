#include "psf/deployer.hpp"

#include <stdexcept>
#include <utility>

namespace flecc::psf {

Deployment::~Deployment() { stop_all(); }

Deployment& Deployment::operator=(Deployment&& other) noexcept {
  if (this != &other) {
    stop_all();
    instances_ = std::move(other.instances_);
  }
  return *this;
}

void Deployment::stop_all() {
  for (auto it = instances_.rbegin(); it != instances_.rend(); ++it) {
    if (*it) (*it)->stop();
  }
  instances_.clear();
}

void Deployment::add(std::unique_ptr<ComponentInstance> instance) {
  instances_.push_back(std::move(instance));
}

std::vector<const ComponentInstance*> Deployment::instances_of(
    const std::string& type) const {
  std::vector<const ComponentInstance*> out;
  for (const auto& inst : instances_) {
    if (inst->type() == type) out.push_back(inst.get());
  }
  return out;
}

namespace {
/// Default instance for infrastructure components with no behavior
/// beyond existing (encryptors/decryptors in the simulated setting).
class PassthroughInstance : public ComponentInstance {
 public:
  using ComponentInstance::ComponentInstance;
};
}  // namespace

Deployer::Deployer() {
  register_factory(kEncryptorComponent, [](net::NodeId node) {
    return std::make_unique<PassthroughInstance>(kEncryptorComponent, node);
  });
  register_factory(kDecryptorComponent, [](net::NodeId node) {
    return std::make_unique<PassthroughInstance>(kDecryptorComponent, node);
  });
}

void Deployer::register_factory(const std::string& type, Factory factory) {
  factories_[type] = std::move(factory);
}

Deployment Deployer::deploy(const DeploymentPlan& plan) const {
  Deployment out;
  for (const Placement& p : plan.placements) {
    auto it = factories_.find(p.component);
    if (it == factories_.end()) {
      throw std::runtime_error("Deployer: no factory for component type '" +
                               p.component + "'");
    }
    auto instance = it->second(p.node);
    instance->start();
    out.add(std::move(instance));
  }
  return out;
}

}  // namespace flecc::psf
