// The PSF planning module (paper §3.1): assemble a component deployment
// that satisfies the client's QoS requirements given the current
// environment.
//
// Supported QoS knobs mirror the airline scenario (§5.1): transaction
// privacy (wrap every insecure link on the access path with an
// encryptor/decryptor pair) and maximum access latency (if the direct
// path is too slow, deploy a view — e.g. a travel agent — near the
// client).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "psf/environment.hpp"
#include "sim/time.hpp"

namespace flecc::psf {

/// Well-known component type names the planner synthesizes.
inline constexpr const char* kEncryptorComponent = "psf.Encryptor";
inline constexpr const char* kDecryptorComponent = "psf.Decryptor";

struct ServiceRequest {
  /// Where the client runs.
  net::NodeId client = 0;
  /// Where the original component runs.
  net::NodeId origin = 0;
  /// Interface the client needs.
  std::string interface_name;
  /// View component type deployed near the client when latency demands
  /// it (e.g. "air.TravelAgent").
  std::string view_component;
  /// QoS: maximum acceptable one-way access latency.
  sim::Duration max_latency = sim::kTimeInfinity;
  /// QoS: must every traversed link be secure (or wrapped)?
  bool privacy_required = false;
  /// May the planner place a view at the client's node?
  bool allow_local_view = true;
};

struct Placement {
  std::string component;  // component type name
  net::NodeId node = 0;

  friend bool operator==(const Placement&, const Placement&) = default;
};

struct DeploymentPlan {
  ServiceRequest request;
  /// Components to instantiate (encryptor/decryptor pairs, views).
  std::vector<Placement> placements;
  /// Links of the access path client → origin.
  std::vector<net::LinkId> path;
  /// Expected one-way latency along the path.
  sim::Duration expected_latency = 0;
  /// True if the plan satisfies latency by a client-side view.
  bool uses_local_view = false;

  [[nodiscard]] std::string to_string(const Environment& env) const;
};

class Planner {
 public:
  explicit Planner(const Environment& env) : env_(env) {}

  /// Produce a deployment plan, or nullopt if the request is
  /// unsatisfiable (client and origin disconnected, or the latency
  /// budget cannot be met and views are disallowed).
  [[nodiscard]] std::optional<DeploymentPlan> plan(
      const ServiceRequest& req) const;

 private:
  const Environment& env_;
};

}  // namespace flecc::psf
