// Declarative component and view specifications (paper §3.1-3.2).
//
// PSF models components as entities that *implement* and *require*
// interfaces; a view v of component c satisfies F_v ∩ F_c ≠ ∅ (derived
// functionality) or V_v ∩ V_c ≠ ∅ (shared data subset).
#pragma once

#include <string>
#include <vector>

#include "props/property.hpp"

namespace flecc::psf {

/// An interface with associated properties.
struct InterfaceDesc {
  std::string name;
  props::PropertySet properties;
};

/// A component type: implemented/required interfaces, its shared-data
/// property set (V_c), and its method names (F_c).
struct ComponentType {
  std::string name;
  std::vector<InterfaceDesc> implements;
  std::vector<std::string> requires_ifaces;
  props::PropertySet data;            // V_c
  std::vector<std::string> methods;   // F_c

  [[nodiscard]] bool implements_interface(const std::string& iface) const;
  [[nodiscard]] bool has_method(const std::string& method) const;
};

/// A view derived from a component (paper §3.2): a proxy, a safe local
/// customization, or a split local/remote component.
struct ViewSpec {
  std::string name;
  std::string of_component;
  std::vector<std::string> methods;  // F_v
  props::PropertySet data;           // V_v
};

/// The §3.2 definition: v is a view of c iff F_v ∩ F_c ≠ ∅ or
/// V_v ∩ V_c ≠ ∅ (and v claims to derive from c).
bool is_view_of(const ViewSpec& v, const ComponentType& c);

/// Stricter well-formedness used before deployment: every view method
/// exists on the component and the view's data is covered by the
/// component's data (V_v ⊆ V_c).
bool is_deployable_view(const ViewSpec& v, const ComponentType& c,
                        std::string* reason = nullptr);

}  // namespace flecc::psf
