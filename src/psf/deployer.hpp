// The PSF deployment module (paper §3.1): instantiate a plan's
// components onto nodes and manage their lifecycle.
//
// Deployment is factory-based: the application registers one factory per
// component type name (e.g. "air.TravelAgent" creating a view plus its
// cache manager); the deployer instantiates every placement in plan
// order and starts the instances. Encryptor/decryptor components have
// built-in factories.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "psf/planner.hpp"

namespace flecc::psf {

/// A running deployed component.
class ComponentInstance {
 public:
  ComponentInstance(std::string type, net::NodeId node)
      : type_(std::move(type)), node_(node) {}
  virtual ~ComponentInstance() = default;

  [[nodiscard]] const std::string& type() const noexcept { return type_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] bool started() const noexcept { return started_; }

  void start() {
    if (!started_) {
      started_ = true;
      on_start();
    }
  }
  void stop() {
    if (started_) {
      started_ = false;
      on_stop();
    }
  }

 protected:
  virtual void on_start() {}
  virtual void on_stop() {}

 private:
  std::string type_;
  net::NodeId node_;
  bool started_ = false;
};

/// A deployment in progress or complete: owns its instances; stopping
/// happens in reverse deployment order on destruction.
class Deployment {
 public:
  Deployment() = default;
  ~Deployment();
  Deployment(Deployment&&) noexcept = default;
  Deployment& operator=(Deployment&& other) noexcept;

  /// Stop every instance in reverse deployment order and release them.
  void stop_all();

  void add(std::unique_ptr<ComponentInstance> instance);
  [[nodiscard]] std::size_t size() const noexcept { return instances_.size(); }
  [[nodiscard]] ComponentInstance& instance(std::size_t i) {
    return *instances_.at(i);
  }
  [[nodiscard]] std::vector<const ComponentInstance*> instances_of(
      const std::string& type) const;

 private:
  std::vector<std::unique_ptr<ComponentInstance>> instances_;
};

class Deployer {
 public:
  using Factory =
      std::function<std::unique_ptr<ComponentInstance>(net::NodeId)>;

  /// Built-in encryptor/decryptor factories are pre-registered.
  Deployer();

  /// Register (or replace) the factory for a component type.
  void register_factory(const std::string& type, Factory factory);
  [[nodiscard]] bool has_factory(const std::string& type) const {
    return factories_.count(type) != 0;
  }

  /// Instantiate and start every placement of the plan, in order.
  /// Throws std::runtime_error on an unknown component type.
  [[nodiscard]] Deployment deploy(const DeploymentPlan& plan) const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace flecc::psf
