// The PSF environment model: nodes and links with their properties,
// plus change notification feeding the monitoring module (paper §3.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/topology.hpp"

namespace flecc::psf {

class Environment {
 public:
  enum class ChangeKind {
    kNodeAdded,
    kLinkAdded,
    kLinkUp,
    kLinkDown,
    kLinkSecured,
    kLinkUnsecured,
    kLinkLatency,
  };

  struct Change {
    ChangeKind kind;
    net::NodeId node = 0;
    net::LinkId link = 0;
  };

  using Listener = std::function<void(const Change&)>;
  using SubscriptionId = std::uint64_t;

  // ---- construction ----------------------------------------------------

  net::NodeId add_node(std::string name,
                       std::map<std::string, std::string> attrs = {});
  net::LinkId connect(net::NodeId a, net::NodeId b, net::LinkSpec spec = {});

  // ---- run-time mutation (notifies listeners) ---------------------------

  void set_link_up(net::LinkId id, bool up);
  void set_link_secure(net::LinkId id, bool secure);
  void set_link_latency(net::LinkId id, sim::Duration latency);

  // ---- queries ----------------------------------------------------------

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return topo_.node_count();
  }
  /// Node attribute lookup ("domain", "trusted", ...); empty if absent.
  [[nodiscard]] std::string node_attr(net::NodeId id,
                                      const std::string& key) const;

  // ---- change subscription ------------------------------------------------

  SubscriptionId subscribe(Listener listener);
  bool unsubscribe(SubscriptionId id);

 private:
  void notify(const Change& change);

  net::Topology topo_;
  std::map<SubscriptionId, Listener> listeners_;
  SubscriptionId next_sub_ = 1;
};

}  // namespace flecc::psf
