#include "psf/environment.hpp"

#include <utility>

namespace flecc::psf {

net::NodeId Environment::add_node(std::string name,
                                  std::map<std::string, std::string> attrs) {
  const auto id = topo_.add_node(std::move(name), std::move(attrs));
  notify(Change{ChangeKind::kNodeAdded, id, 0});
  return id;
}

net::LinkId Environment::connect(net::NodeId a, net::NodeId b,
                                 net::LinkSpec spec) {
  const auto id = topo_.add_link(a, b, spec);
  notify(Change{ChangeKind::kLinkAdded, 0, id});
  return id;
}

void Environment::set_link_up(net::LinkId id, bool up) {
  const bool was = topo_.link(id).up;
  topo_.set_link_up(id, up);
  if (was != up) {
    notify(Change{up ? ChangeKind::kLinkUp : ChangeKind::kLinkDown, 0, id});
  }
}

void Environment::set_link_secure(net::LinkId id, bool secure) {
  const bool was = topo_.link(id).secure;
  topo_.set_link_secure(id, secure);
  if (was != secure) {
    notify(Change{
        secure ? ChangeKind::kLinkSecured : ChangeKind::kLinkUnsecured, 0,
        id});
  }
}

void Environment::set_link_latency(net::LinkId id, sim::Duration latency) {
  topo_.set_link_latency(id, latency);
  notify(Change{ChangeKind::kLinkLatency, 0, id});
}

std::string Environment::node_attr(net::NodeId id,
                                   const std::string& key) const {
  const auto& attrs = topo_.node(id).attrs;
  auto it = attrs.find(key);
  return it == attrs.end() ? std::string{} : it->second;
}

Environment::SubscriptionId Environment::subscribe(Listener listener) {
  const auto id = next_sub_++;
  listeners_.emplace(id, std::move(listener));
  return id;
}

bool Environment::unsubscribe(SubscriptionId id) {
  return listeners_.erase(id) != 0;
}

void Environment::notify(const Change& change) {
  // Copy so listeners may (un)subscribe from within callbacks.
  const auto snapshot = listeners_;
  for (const auto& [id, listener] : snapshot) {
    (void)id;
    listener(change);
  }
}

}  // namespace flecc::psf
