#include "psf/planner.hpp"

#include <sstream>

namespace flecc::psf {

std::optional<DeploymentPlan> Planner::plan(const ServiceRequest& req) const {
  const auto route = env_.topology().route(req.client, req.origin);
  if (!route.has_value()) return std::nullopt;

  DeploymentPlan out;
  out.request = req;
  out.path = route->links;
  out.expected_latency = route->latency;

  // Privacy: wrap every insecure link on the path with an
  // encryptor/decryptor pair at its two ends (the secure-email example
  // of §3.1 and the transaction-privacy QoS of §5.1).
  if (req.privacy_required) {
    for (const net::LinkId link : route->links) {
      const net::LinkSpec& spec = env_.topology().link(link);
      if (spec.secure) continue;
      const auto [a, b] = env_.topology().link_ends(link);
      out.placements.push_back(Placement{kEncryptorComponent, a});
      out.placements.push_back(Placement{kDecryptorComponent, b});
    }
  }

  // Latency: if the direct path misses the budget, deploy a view at the
  // client's node (the "cache component placed close to a client" of
  // §3.1 / the travel agent of §5.1).
  if (route->latency > req.max_latency) {
    if (!req.allow_local_view || req.view_component.empty()) {
      return std::nullopt;
    }
    out.uses_local_view = true;
    out.placements.push_back(Placement{req.view_component, req.client});
    out.expected_latency = 0;  // local access
  }
  return out;
}

std::string DeploymentPlan::to_string(const Environment& env) const {
  std::ostringstream os;
  os << "plan: client=" << env.topology().node(request.client).name
     << " origin=" << env.topology().node(request.origin).name
     << " latency=" << expected_latency << "us"
     << (uses_local_view ? " (local view)" : "") << "\n";
  for (const auto& p : placements) {
    os << "  place " << p.component << " @ "
       << env.topology().node(p.node).name << "\n";
  }
  os << "  path:";
  for (const auto link : path) {
    const auto [a, b] = env.topology().link_ends(link);
    os << " " << env.topology().node(a).name << "-"
       << env.topology().node(b).name
       << (env.topology().link(link).secure ? "" : "(insecure)");
  }
  os << "\n";
  return os.str();
}

}  // namespace flecc::psf
