#include "psf/monitor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace flecc::psf {

Monitor::Monitor(Environment& env) : env_(env) {
  sub_ = env_.subscribe(
      [this](const Environment::Change& c) { on_change(c); });
}

Monitor::~Monitor() { env_.unsubscribe(sub_); }

Monitor::WatchId Monitor::watch(DeploymentPlan plan, ViolationCallback cb) {
  const auto id = next_watch_++;
  watches_.emplace(id, Watch{std::move(plan), std::move(cb)});
  return id;
}

bool Monitor::unwatch(WatchId id) { return watches_.erase(id) != 0; }

bool Monitor::still_valid(const DeploymentPlan& plan,
                          std::string* reason) const {
  auto fail = [&](std::string why) {
    if (reason != nullptr) *reason = std::move(why);
    return false;
  };

  // A plan satisfied by a local view keeps working as long as the view's
  // node exists; the remote path only matters for synchronization, which
  // Flecc handles (and tolerates outages of).
  if (plan.uses_local_view) return true;

  sim::Duration latency = 0;
  for (const net::LinkId link : plan.path) {
    const net::LinkSpec& spec = env_.topology().link(link);
    if (!spec.up) {
      return fail("link " + std::to_string(link) + " is down");
    }
    if (plan.request.privacy_required && !spec.secure) {
      const bool wrapped = std::any_of(
          plan.placements.begin(), plan.placements.end(),
          [&](const Placement& p) {
            const auto [a, b] = env_.topology().link_ends(link);
            return (p.component == kEncryptorComponent && p.node == a) ||
                   (p.component == kDecryptorComponent && p.node == b);
          });
      if (!wrapped) {
        return fail("link " + std::to_string(link) +
                    " became insecure and is not wrapped");
      }
    }
    latency += spec.latency;
  }
  if (latency > plan.request.max_latency) {
    return fail("path latency " + std::to_string(latency) +
                "us exceeds budget " +
                std::to_string(plan.request.max_latency) + "us");
  }
  return true;
}

void Monitor::on_change(const Environment::Change& change) {
  (void)change;  // any change re-validates everything (small fleets)
  std::vector<std::pair<DeploymentPlan, std::string>> broken;
  std::vector<WatchId> drop;
  for (const auto& [id, w] : watches_) {
    std::string reason;
    if (!still_valid(w.plan, &reason)) {
      ++violations_;
      broken.emplace_back(w.plan, reason);
      drop.push_back(id);
    }
  }
  // Fire callbacks after dropping so a callback may immediately re-watch
  // the re-planned deployment.
  std::vector<ViolationCallback> cbs;
  cbs.reserve(drop.size());
  for (const WatchId id : drop) {
    cbs.push_back(std::move(watches_[id].cb));
    watches_.erase(id);
  }
  for (std::size_t i = 0; i < cbs.size(); ++i) {
    if (cbs[i]) cbs[i](broken[i].first, broken[i].second);
  }
}

}  // namespace flecc::psf
