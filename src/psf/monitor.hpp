// The PSF monitoring module (paper §3.1): track environment changes and
// trigger adaptation when a deployed plan's QoS guarantees break.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "psf/environment.hpp"
#include "psf/planner.hpp"

namespace flecc::psf {

class Monitor {
 public:
  /// Invoked when a watched plan stops satisfying its request; the
  /// receiver typically re-plans and re-deploys.
  using ViolationCallback =
      std::function<void(const DeploymentPlan&, const std::string& reason)>;

  using WatchId = std::uint64_t;

  explicit Monitor(Environment& env);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Watch a deployed plan; `cb` fires (once per violation event) when
  /// the environment changes in a way that breaks the plan.
  WatchId watch(DeploymentPlan plan, ViolationCallback cb);
  bool unwatch(WatchId id);

  [[nodiscard]] std::size_t watched_count() const noexcept {
    return watches_.size();
  }
  [[nodiscard]] std::uint64_t violations_detected() const noexcept {
    return violations_;
  }

  /// Re-validate one plan against the current environment; returns
  /// whether it still satisfies its request (reason set otherwise).
  [[nodiscard]] bool still_valid(const DeploymentPlan& plan,
                                 std::string* reason = nullptr) const;

 private:
  void on_change(const Environment::Change& change);

  struct Watch {
    DeploymentPlan plan;
    ViolationCallback cb;
  };

  Environment& env_;
  Environment::SubscriptionId sub_;
  std::map<WatchId, Watch> watches_;
  WatchId next_watch_ = 1;
  std::uint64_t violations_ = 0;
};

}  // namespace flecc::psf
