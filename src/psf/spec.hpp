// Declarative specifications (paper §3.1: PSF relies on "a declarative
// specification of the application and the environment").
//
// A small line-oriented language describes components (interfaces,
// methods, shared-data properties), views, the environment (nodes,
// links), and client service requests. `parse_spec` validates
// everything (views really are views, links reference known nodes, ...)
// and produces ready-to-use planner inputs.
//
//   # application
//   component air.ReservationSystem
//     implements AirlineReservationInterface
//     requires DatabaseInterface
//     method browse
//     method confirmTickets
//     data Flights interval 100 199
//   end
//
//   view air.TravelAgent of air.ReservationSystem
//     method browse
//     method confirmTickets
//     data Flights interval 100 149
//   end
//
//   # environment
//   node client domain=2
//   node internet
//   node server domain=1
//   link client internet latency=35ms insecure
//   link internet server latency=35ms insecure
//
//   # requests
//   request client server interface=AirlineReservationInterface
//           privacy max_latency=5ms view=air.TravelAgent
//   (one line in the real input; wrapped here for readability)
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "psf/component.hpp"
#include "psf/environment.hpp"
#include "psf/planner.hpp"

namespace flecc::psf {

/// Raised on malformed or inconsistent specifications; carries the
/// 1-based line number of the offending line.
class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& what, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct ApplicationSpec {
  std::vector<ComponentType> components;
  std::vector<ViewSpec> views;

  [[nodiscard]] const ComponentType* find_component(
      const std::string& name) const;
  [[nodiscard]] const ViewSpec* find_view(const std::string& name) const;
};

/// A fully parsed specification: application + environment + requests.
struct DeploymentSpec {
  ApplicationSpec app;
  Environment environment;
  /// Node name → id in `environment`.
  std::map<std::string, net::NodeId> node_ids;
  std::vector<ServiceRequest> requests;
};

/// Parse and validate; throws SpecError on any problem.
DeploymentSpec parse_spec(std::string_view text);

}  // namespace flecc::psf
