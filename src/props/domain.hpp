// Property domains (paper §4.1, "Data properties").
//
// A domain D_p is either an integer interval [lo, hi] or a finite set of
// discrete values {d1, ..., dn}. Intersection over domains is the
// primitive underlying conflict detection (Definition 3).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "props/value.hpp"

namespace flecc::props {

/// Closed integer interval [lo, hi].
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] bool contains(std::int64_t x) const noexcept {
    return lo <= x && x <= hi;
  }
  [[nodiscard]] std::uint64_t width() const noexcept {
    return static_cast<std::uint64_t>(hi - lo) + 1;
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A property domain: interval or discrete value set.
///
/// Invariant: an interval domain has lo <= hi; a discrete domain may be
/// empty (the empty domain intersects nothing).
class Domain {
 public:
  /// Discrete empty domain.
  Domain() = default;

  /// Interval domain [lo, hi]. Throws std::invalid_argument if lo > hi.
  static Domain interval(std::int64_t lo, std::int64_t hi);

  /// Discrete domain from values (duplicates collapse).
  static Domain discrete(std::initializer_list<Value> values);
  static Domain discrete(std::set<Value> values);

  /// Discrete domain of consecutive integers [lo, hi] materialized as a
  /// set — convenient for small enumerations in tests/workloads.
  static Domain discrete_range(std::int64_t lo, std::int64_t hi);

  [[nodiscard]] bool is_interval() const noexcept { return interval_.has_value(); }
  [[nodiscard]] bool is_discrete() const noexcept { return !interval_.has_value(); }

  /// Underlying interval. Precondition: is_interval().
  [[nodiscard]] const Interval& as_interval() const { return interval_.value(); }

  /// Underlying value set. Precondition: is_discrete().
  [[nodiscard]] const std::set<Value>& as_discrete() const;

  /// True for a discrete domain with no values.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of representable values (interval width or set size).
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// Membership test.
  [[nodiscard]] bool contains(const Value& v) const;

  /// True if the two domains share at least one value.
  [[nodiscard]] bool overlaps(const Domain& other) const;

  /// Set intersection. Returns the (possibly empty) common domain.
  /// interval∩interval stays an interval; any mix involving a discrete
  /// domain yields a discrete domain.
  [[nodiscard]] Domain intersect(const Domain& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Domain&, const Domain&) = default;

 private:
  std::optional<Interval> interval_;
  std::set<Value> values_;
};

}  // namespace flecc::props
