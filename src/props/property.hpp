// Properties and property sets (paper §4.1, Definitions 1–3).
//
// A property is a (name, domain) tuple. A PropertySet holds at most one
// property per name (the paper's uniqueness assumption). Two views
// conflict — dynConfl = 1 — iff the intersection of their property sets
// is non-empty, where set intersection collects all non-empty pairwise
// property intersections.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "props/domain.hpp"

namespace flecc::props {

/// A named domain: p = (name_p, D_p).
struct Property {
  std::string name;
  Domain domain;

  /// Definition 3: non-empty only when names match and domains overlap.
  [[nodiscard]] std::optional<Property> intersect(const Property& q) const;

  [[nodiscard]] std::string to_string() const {
    return name + "=" + domain.to_string();
  }
  friend bool operator==(const Property&, const Property&) = default;
};

/// A set of uniquely-named properties describing a view's shared data.
class PropertySet {
 public:
  PropertySet() = default;
  PropertySet(std::initializer_list<Property> props);

  /// Insert or replace the property with this name.
  void set(Property p);
  void set(std::string name, Domain d) { set(Property{std::move(name), std::move(d)}); }

  /// Remove a property; returns true if it existed.
  bool erase(const std::string& name);

  [[nodiscard]] bool has(const std::string& name) const {
    return by_name_.count(name) != 0;
  }
  /// Look up a property's domain; nullptr if absent.
  [[nodiscard]] const Domain* find(const std::string& name) const;

  [[nodiscard]] bool empty() const noexcept { return by_name_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return by_name_.size(); }

  /// Definition 2: all non-empty pairwise property intersections.
  [[nodiscard]] PropertySet intersect(const PropertySet& other) const;

  /// Definition 1: dynConfl — do the two sets share any data?
  /// Equivalent to !intersect(other).empty() but avoids building the
  /// intersection set.
  [[nodiscard]] bool conflicts_with(const PropertySet& other) const;

  /// True if every value of every property here is also covered by
  /// `other` (used to validate that a view's data is a subset of the
  /// original component's data, V_v ⊆ V_c).
  [[nodiscard]] bool subset_of(const PropertySet& other) const;

  [[nodiscard]] std::string to_string() const;

  /// Iteration (name-ordered, deterministic).
  [[nodiscard]] auto begin() const { return by_name_.begin(); }
  [[nodiscard]] auto end() const { return by_name_.end(); }

  friend bool operator==(const PropertySet&, const PropertySet&) = default;

 private:
  std::map<std::string, Domain> by_name_;
};

}  // namespace flecc::props
