#include "props/domain.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace flecc::props {

Domain Domain::interval(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Domain::interval: lo > hi");
  }
  Domain d;
  d.interval_ = Interval{lo, hi};
  return d;
}

Domain Domain::discrete(std::initializer_list<Value> values) {
  Domain d;
  d.values_ = std::set<Value>(values);
  return d;
}

Domain Domain::discrete(std::set<Value> values) {
  Domain d;
  d.values_ = std::move(values);
  return d;
}

Domain Domain::discrete_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Domain::discrete_range: lo > hi");
  }
  Domain d;
  for (std::int64_t x = lo; x <= hi; ++x) d.values_.insert(Value{x});
  return d;
}

const std::set<Value>& Domain::as_discrete() const {
  if (is_interval()) {
    throw std::logic_error("Domain::as_discrete on interval domain");
  }
  return values_;
}

bool Domain::empty() const noexcept {
  return !interval_.has_value() && values_.empty();
}

std::uint64_t Domain::size() const noexcept {
  if (interval_) return interval_->width();
  return values_.size();
}

bool Domain::contains(const Value& v) const {
  if (interval_) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && interval_->contains(*i);
  }
  return values_.count(v) != 0;
}

bool Domain::overlaps(const Domain& other) const {
  if (interval_ && other.interval_) {
    return interval_->lo <= other.interval_->hi &&
           other.interval_->lo <= interval_->hi;
  }
  // At least one side is discrete: scan the smaller discrete set.
  const Domain& discrete_side = is_discrete() ? *this : other;
  const Domain& other_side = is_discrete() ? other : *this;
  if (other_side.is_discrete() &&
      other_side.values_.size() < discrete_side.values_.size()) {
    return other_side.overlaps(discrete_side);
  }
  return std::any_of(
      discrete_side.values_.begin(), discrete_side.values_.end(),
      [&](const Value& v) { return other_side.contains(v); });
}

Domain Domain::intersect(const Domain& other) const {
  if (interval_ && other.interval_) {
    const std::int64_t lo = std::max(interval_->lo, other.interval_->lo);
    const std::int64_t hi = std::min(interval_->hi, other.interval_->hi);
    if (lo > hi) return Domain{};  // empty
    return Domain::interval(lo, hi);
  }
  const Domain& discrete_side = is_discrete() ? *this : other;
  const Domain& other_side = is_discrete() ? other : *this;
  std::set<Value> out;
  for (const Value& v : discrete_side.values_) {
    if (other_side.contains(v)) out.insert(v);
  }
  return Domain::discrete(std::move(out));
}

std::string Domain::to_string() const {
  std::ostringstream os;
  if (interval_) {
    os << "[" << interval_->lo << ", " << interval_->hi << "]";
    return os.str();
  }
  os << "{";
  bool first = true;
  for (const Value& v : values_) {
    if (!first) os << ", ";
    first = false;
    os << props::to_string(v);
  }
  os << "}";
  return os.str();
}

}  // namespace flecc::props
