// Property values.
//
// Flecc is application-neutral: a property value is an opaque scalar the
// protocol can only compare for equality/ordering. We support integers
// (flight numbers, shard ids, price bands) and strings (region names,
// symbolic ids).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace flecc::props {

/// A single property value: integer or string.
using Value = std::variant<std::int64_t, std::string>;

/// Readable rendering ("42" or "\"LAX\"").
inline std::string to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  return "\"" + std::get<std::string>(v) + "\"";
}

}  // namespace flecc::props
