#include "props/property.hpp"

#include <sstream>
#include <utility>

namespace flecc::props {

std::optional<Property> Property::intersect(const Property& q) const {
  if (name != q.name) return std::nullopt;
  Domain common = domain.intersect(q.domain);
  if (common.empty()) return std::nullopt;
  return Property{name, std::move(common)};
}

PropertySet::PropertySet(std::initializer_list<Property> props) {
  for (const auto& p : props) set(p);
}

void PropertySet::set(Property p) {
  by_name_[std::move(p.name)] = std::move(p.domain);
}

bool PropertySet::erase(const std::string& name) {
  return by_name_.erase(name) != 0;
}

const Domain* PropertySet::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

PropertySet PropertySet::intersect(const PropertySet& other) const {
  PropertySet out;
  for (const auto& [name, dom] : by_name_) {
    const Domain* od = other.find(name);
    if (od == nullptr) continue;
    Domain common = dom.intersect(*od);
    if (!common.empty()) out.set(name, std::move(common));
  }
  return out;
}

bool PropertySet::conflicts_with(const PropertySet& other) const {
  // Iterate the smaller set; each lookup is O(log n).
  if (other.size() < size()) return other.conflicts_with(*this);
  for (const auto& [name, dom] : by_name_) {
    const Domain* od = other.find(name);
    if (od != nullptr && dom.overlaps(*od)) return true;
  }
  return false;
}

bool PropertySet::subset_of(const PropertySet& other) const {
  for (const auto& [name, dom] : by_name_) {
    const Domain* od = other.find(name);
    if (od == nullptr) return false;
    // dom ⊆ od  ⇔  dom ∩ od == dom (by size, domains are value sets).
    Domain common = dom.intersect(*od);
    if (common.size() != dom.size()) return false;
  }
  return true;
}

std::string PropertySet::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, dom] : by_name_) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << dom.to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace flecc::props
