// CoherenceClient adapter over the Flecc cache manager, so the Figure-4
// efficiency comparison runs the identical workload over all three
// protocols. A "fresh data" operation maps to the paper's travel-agent
// loop body: pullImage → startUseImage → work → endUseImage, with a
// validity trigger of "false" ("the primary alone is never good
// enough") so every pull demand-fetches the latest updates from
// *conflicting* active views — Flecc's application-aware advantage.
#pragma once

#include <memory>
#include <string>

#include "baselines/coherence_client.hpp"
#include "core/cache_manager.hpp"

namespace flecc::baselines {

class FleccClient : public CoherenceClient {
 public:
  /// `cfg.validity_trigger` defaults to "false" if unset (always fetch).
  FleccClient(net::Fabric& fabric, net::Address self, net::Address directory,
              core::ViewAdapter& view, core::CacheManager::Config cfg);

  void connect(Done done) override;
  void do_operation(WorkFn work, Done done) override;
  void disconnect(Done done) override;

  [[nodiscard]] core::CacheManager& cache_manager() noexcept { return cm_; }

 private:
  core::CacheManager cm_;
};

}  // namespace flecc::baselines
