// The time-sharing baseline (paper §5.2): agents execute one after
// another. A coordinator colocated with the primary grants a global
// turn token FIFO; the grant carries fresh data, the release carries the
// agent's updates. Control traffic per operation is constant (3
// messages) regardless of how many agents share data — the paper's
// "minimum number of control messages" — but execution is fully
// serialized (no concurrency between agents).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "baselines/coherence_client.hpp"
#include "core/adapters.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"

namespace flecc::baselines {

using AgentId = std::uint32_t;

namespace ts_msg {
inline constexpr const char* kRegisterReq = "ts.register_req";
inline constexpr const char* kRegisterAck = "ts.register_ack";
inline constexpr const char* kTurnReq = "ts.turn_req";
inline constexpr const char* kTurnGrant = "ts.turn_grant";
inline constexpr const char* kTurnRelease = "ts.turn_release";
inline constexpr const char* kLeaveReq = "ts.leave_req";
inline constexpr const char* kLeaveAck = "ts.leave_ack";

struct RegisterReq {
  std::string name;
  props::PropertySet properties;
};
struct RegisterAck {
  AgentId agent = 0;
};
struct TurnReq {
  AgentId agent = 0;
};
struct TurnGrant {
  core::ObjectImage image;
};
struct TurnRelease {
  AgentId agent = 0;
  core::ObjectImage image;
  bool dirty = false;
};
struct LeaveReq {
  AgentId agent = 0;
  core::ObjectImage final_image;
  bool dirty = false;
};
struct LeaveAck {};
}  // namespace ts_msg

/// Coordinator colocated with the original component.
class TimeSharingCoordinator : public net::Endpoint {
 public:
  TimeSharingCoordinator(net::Fabric& fabric, net::Address self,
                         core::PrimaryAdapter& primary);
  ~TimeSharingCoordinator() override;

  TimeSharingCoordinator(const TimeSharingCoordinator&) = delete;
  TimeSharingCoordinator& operator=(const TimeSharingCoordinator&) = delete;

  void on_message(const net::Message& m) override;

  [[nodiscard]] std::size_t registered_count() const noexcept {
    return agents_.size();
  }
  [[nodiscard]] std::uint64_t turns_granted() const noexcept {
    return turns_granted_;
  }
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

 private:
  struct AgentRecord {
    AgentId id;
    net::Address addr;
    props::PropertySet properties;
  };

  void pump();

  net::Fabric& fabric_;
  net::Address self_;
  core::PrimaryAdapter& primary_;
  std::map<AgentId, AgentRecord> agents_;
  AgentId next_id_ = 1;
  std::deque<AgentId> turn_queue_;
  std::optional<AgentId> holder_;
  std::uint64_t turns_granted_ = 0;
  sim::CounterSet stats_;
};

/// Agent-side client.
class TimeSharingClient : public net::Endpoint, public CoherenceClient {
 public:
  TimeSharingClient(net::Fabric& fabric, net::Address self,
                    net::Address coordinator, core::ViewAdapter& view,
                    std::string name, props::PropertySet properties);
  ~TimeSharingClient() override;

  TimeSharingClient(const TimeSharingClient&) = delete;
  TimeSharingClient& operator=(const TimeSharingClient&) = delete;

  void connect(Done done) override;
  void do_operation(WorkFn work, Done done) override;
  void disconnect(Done done) override;

  void on_message(const net::Message& m) override;

  [[nodiscard]] AgentId id() const noexcept { return id_; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }

 private:
  net::Fabric& fabric_;
  net::Address self_;
  net::Address coordinator_;
  core::ViewAdapter& view_;
  std::string name_;
  props::PropertySet properties_;

  void pump_ops();

  AgentId id_ = 0;
  bool connected_ = false;
  Done pending_connect_;
  Done pending_disconnect_;
  // Operations queue FIFO; one turn request is outstanding at a time.
  std::deque<std::pair<WorkFn, Done>> ops_;
  bool op_inflight_ = false;
};

}  // namespace flecc::baselines
