#include "baselines/flecc_client.hpp"

#include <utility>

namespace flecc::baselines {

namespace {
core::CacheManager::Config with_default_validity(
    core::CacheManager::Config cfg) {
  if (cfg.validity_trigger.empty()) cfg.validity_trigger = "false";
  return cfg;
}
}  // namespace

FleccClient::FleccClient(net::Fabric& fabric, net::Address self,
                         net::Address directory, core::ViewAdapter& view,
                         core::CacheManager::Config cfg)
    : cm_(fabric, self, directory, view, with_default_validity(std::move(cfg))) {}

void FleccClient::connect(Done done) { cm_.init_image(std::move(done)); }

void FleccClient::do_operation(WorkFn work, Done done) {
  cm_.pull_image([this, work = std::move(work), done = std::move(done)] {
    cm_.start_use_image([this, work = std::move(work),
                         done = std::move(done)] {
      work();
      cm_.end_use_image(/*modified=*/true);
      if (done) done();
    });
  });
}

void FleccClient::disconnect(Done done) { cm_.kill_image(std::move(done)); }

}  // namespace flecc::baselines
