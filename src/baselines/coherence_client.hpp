// A protocol-neutral client interface for the efficiency comparison
// (paper §5.2, Figure 4): the same agent workload runs over Flecc, the
// time-sharing protocol, and the multicast-based protocol, and the
// fabric's message counters are compared.
//
// The unit of work is one "operate on the most current data" step:
// whatever the protocol must do to (a) bring the freshest shared state
// to the agent, (b) run the agent's mutation, and (c) make the mutation
// visible to future operations of other agents.
#pragma once

#include <functional>

namespace flecc::baselines {

class CoherenceClient {
 public:
  using Done = std::function<void()>;
  /// The agent's mutation, executed against its local view object while
  /// the client guarantees the freshest available data underneath it.
  using WorkFn = std::function<void()>;

  virtual ~CoherenceClient() = default;

  /// Register with the coordinator and obtain initial data.
  virtual void connect(Done done) = 0;

  /// One fresh-data operation (see above).
  virtual void do_operation(WorkFn work, Done done) = 0;

  /// Surrender final updates and deregister.
  virtual void disconnect(Done done) = 0;
};

}  // namespace flecc::baselines
