// The multicast-based baseline (paper §5.2): application-oblivious —
// whenever any agent needs fresh data, the directory "does not
// discriminate between cache managers and asks all of them to send
// updates". Message count per operation therefore scales with the total
// number of agents, independent of who actually shares data; this is
// the worst case an application-oblivious protocol pays.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "baselines/coherence_client.hpp"
#include "core/adapters.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"

namespace flecc::baselines {

namespace mc_msg {
inline constexpr const char* kRegisterReq = "mc.register_req";
inline constexpr const char* kRegisterAck = "mc.register_ack";
inline constexpr const char* kSyncReq = "mc.sync_req";
inline constexpr const char* kSyncReply = "mc.sync_reply";
inline constexpr const char* kUpdateReq = "mc.update_req";
inline constexpr const char* kUpdateReply = "mc.update_reply";
inline constexpr const char* kLeaveReq = "mc.leave_req";
inline constexpr const char* kLeaveAck = "mc.leave_ack";

struct RegisterReq {
  std::string name;
  props::PropertySet properties;
};
struct RegisterAck {
  std::uint32_t agent = 0;
};
struct SyncReq {
  std::uint32_t agent = 0;
};
struct SyncReply {
  core::ObjectImage image;
};
struct UpdateReq {
  std::uint64_t token = 0;
};
struct UpdateReply {
  std::uint32_t agent = 0;
  std::uint64_t token = 0;
  core::ObjectImage image;
  bool dirty = false;
};
struct LeaveReq {
  std::uint32_t agent = 0;
  core::ObjectImage final_image;
  bool dirty = false;
};
struct LeaveAck {};
}  // namespace mc_msg

class MulticastDirectory : public net::Endpoint {
 public:
  struct Config {
    sim::Duration update_timeout = sim::msec(500);
  };

  MulticastDirectory(net::Fabric& fabric, net::Address self,
                     core::PrimaryAdapter& primary, Config cfg);
  MulticastDirectory(net::Fabric& fabric, net::Address self,
                     core::PrimaryAdapter& primary)
      : MulticastDirectory(fabric, self, primary, Config{}) {}
  ~MulticastDirectory() override;

  MulticastDirectory(const MulticastDirectory&) = delete;
  MulticastDirectory& operator=(const MulticastDirectory&) = delete;

  void on_message(const net::Message& m) override;

  [[nodiscard]] std::size_t registered_count() const noexcept {
    return agents_.size();
  }
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

 private:
  struct AgentRecord {
    std::uint32_t id;
    net::Address addr;
    props::PropertySet properties;
  };
  struct PendingSync {
    std::uint64_t token = 0;
    std::uint32_t requester = 0;
    std::set<std::uint32_t> outstanding;
    net::TimerId timeout = net::kInvalidTimerId;
  };

  void finish_sync(PendingSync& ps);

  net::Fabric& fabric_;
  net::Address self_;
  core::PrimaryAdapter& primary_;
  Config cfg_;
  std::map<std::uint32_t, AgentRecord> agents_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint64_t, PendingSync> pending_;
  std::uint64_t next_token_ = 1;
  sim::CounterSet stats_;
};

class MulticastClient : public net::Endpoint, public CoherenceClient {
 public:
  MulticastClient(net::Fabric& fabric, net::Address self,
                  net::Address directory, core::ViewAdapter& view,
                  std::string name, props::PropertySet properties);
  ~MulticastClient() override;

  MulticastClient(const MulticastClient&) = delete;
  MulticastClient& operator=(const MulticastClient&) = delete;

  void connect(Done done) override;
  void do_operation(WorkFn work, Done done) override;
  void disconnect(Done done) override;

  void on_message(const net::Message& m) override;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }

 private:
  net::Fabric& fabric_;
  net::Address self_;
  net::Address directory_;
  core::ViewAdapter& view_;
  std::string name_;
  props::PropertySet properties_;

  void pump_ops();

  std::uint32_t id_ = 0;
  bool connected_ = false;
  bool dirty_ = false;
  Done pending_connect_;
  Done pending_disconnect_;
  // Operations queue FIFO; one sync request is outstanding at a time.
  std::deque<std::pair<WorkFn, Done>> ops_;
  bool op_inflight_ = false;
};

}  // namespace flecc::baselines
