#include "baselines/multicast.hpp"

#include <utility>

#include "core/messages.hpp"

namespace flecc::baselines {

namespace {
constexpr std::size_t kHdr = core::msg::kHeaderBytes;
}

// ---- directory --------------------------------------------------------------

MulticastDirectory::MulticastDirectory(net::Fabric& fabric, net::Address self,
                                       core::PrimaryAdapter& primary,
                                       Config cfg)
    : fabric_(fabric), self_(self), primary_(primary), cfg_(cfg) {
  fabric_.bind(self_, *this);
}

MulticastDirectory::~MulticastDirectory() { fabric_.unbind(self_); }

void MulticastDirectory::on_message(const net::Message& m) {
  if (m.type == mc_msg::kRegisterReq) {
    const auto& req = net::payload_as<mc_msg::RegisterReq>(m);
    stats_.inc("op.register");
    AgentRecord rec{next_id_++, m.from, req.properties};
    const auto id = rec.id;
    agents_.emplace(id, std::move(rec));
    mc_msg::RegisterAck ack{id};
    fabric_.send(self_, m.from, mc_msg::kRegisterAck, ack, kHdr);
    return;
  }
  if (m.type == mc_msg::kSyncReq) {
    const auto& req = net::payload_as<mc_msg::SyncReq>(m);
    stats_.inc("op.sync");
    auto it = agents_.find(req.agent);
    if (it == agents_.end()) return;

    PendingSync ps;
    ps.token = next_token_++;
    ps.requester = req.agent;
    // Application-oblivious: ask EVERY other agent for updates.
    for (const auto& [id, rec] : agents_) {
      if (id == req.agent) continue;
      ps.outstanding.insert(id);
      mc_msg::UpdateReq ureq{ps.token};
      fabric_.send(self_, rec.addr, mc_msg::kUpdateReq, ureq, kHdr);
      stats_.inc("op.update_req");
    }
    if (ps.outstanding.empty()) {
      finish_sync(ps);
      return;
    }
    const auto token = ps.token;
    ps.timeout = fabric_.schedule(self_, cfg_.update_timeout, [this, token] {
      auto pit = pending_.find(token);
      if (pit == pending_.end()) return;
      stats_.inc("op.sync.timeout");
      PendingSync done = std::move(pit->second);
      pending_.erase(pit);
      finish_sync(done);
    });
    pending_.emplace(token, std::move(ps));
    return;
  }
  if (m.type == mc_msg::kUpdateReply) {
    const auto& rep = net::payload_as<mc_msg::UpdateReply>(m);
    auto pit = pending_.find(rep.token);
    if (pit == pending_.end()) {
      stats_.inc("op.update.late");
      return;
    }
    if (rep.dirty) {
      auto ait = agents_.find(rep.agent);
      if (ait != agents_.end()) {
        primary_.merge_into_object(rep.image, ait->second.properties);
      }
    }
    pit->second.outstanding.erase(rep.agent);
    if (pit->second.outstanding.empty()) {
      PendingSync done = std::move(pit->second);
      pending_.erase(pit);
      finish_sync(done);
    }
    return;
  }
  if (m.type == mc_msg::kLeaveReq) {
    const auto& req = net::payload_as<mc_msg::LeaveReq>(m);
    stats_.inc("op.leave");
    auto it = agents_.find(req.agent);
    if (it == agents_.end()) return;
    if (req.dirty) {
      primary_.merge_into_object(req.final_image, it->second.properties);
    }
    const net::Address addr = it->second.addr;
    agents_.erase(it);
    // Settle rounds that were waiting on the departed agent.
    std::vector<std::uint64_t> done_tokens;
    for (auto& [token, ps] : pending_) {
      ps.outstanding.erase(req.agent);
      if (ps.outstanding.empty()) done_tokens.push_back(token);
    }
    for (const auto token : done_tokens) {
      auto pit = pending_.find(token);
      PendingSync done = std::move(pit->second);
      pending_.erase(pit);
      finish_sync(done);
    }
    mc_msg::LeaveAck ack;
    fabric_.send(self_, addr, mc_msg::kLeaveAck, ack, kHdr);
    return;
  }
  stats_.inc("msg.unknown");
}

void MulticastDirectory::finish_sync(PendingSync& ps) {
  if (ps.timeout != net::kInvalidTimerId) fabric_.cancel_timer(ps.timeout);
  auto it = agents_.find(ps.requester);
  if (it == agents_.end()) return;
  mc_msg::SyncReply reply;
  reply.image = primary_.extract_from_object(it->second.properties);
  const auto bytes = kHdr + reply.image.wire_size();
  fabric_.send(self_, it->second.addr, mc_msg::kSyncReply, std::move(reply),
               bytes);
  stats_.inc("op.sync_reply");
}

// ---- client -------------------------------------------------------------------

MulticastClient::MulticastClient(net::Fabric& fabric, net::Address self,
                                 net::Address directory,
                                 core::ViewAdapter& view, std::string name,
                                 props::PropertySet properties)
    : fabric_(fabric),
      self_(self),
      directory_(directory),
      view_(view),
      name_(std::move(name)),
      properties_(std::move(properties)) {
  fabric_.bind(self_, *this);
}

MulticastClient::~MulticastClient() { fabric_.unbind(self_); }

void MulticastClient::connect(Done done) {
  pending_connect_ = std::move(done);
  mc_msg::RegisterReq req{name_, properties_};
  const auto bytes = kHdr + name_.size() + core::msg::wire_size(properties_);
  fabric_.send(self_, directory_, mc_msg::kRegisterReq, std::move(req), bytes);
}

void MulticastClient::do_operation(WorkFn work, Done done) {
  ops_.emplace_back(std::move(work), std::move(done));
  pump_ops();
}

void MulticastClient::pump_ops() {
  if (op_inflight_ || ops_.empty() || !connected_) return;
  op_inflight_ = true;
  mc_msg::SyncReq req{id_};
  fabric_.send(self_, directory_, mc_msg::kSyncReq, req, kHdr);
}

void MulticastClient::disconnect(Done done) {
  pending_disconnect_ = std::move(done);
  mc_msg::LeaveReq req;
  req.agent = id_;
  if (dirty_) {
    req.final_image = view_.extract_from_view(properties_);
    req.dirty = !req.final_image.empty();
    dirty_ = false;
  }
  const auto bytes = kHdr + req.final_image.wire_size();
  fabric_.send(self_, directory_, mc_msg::kLeaveReq, std::move(req), bytes);
}

void MulticastClient::on_message(const net::Message& m) {
  if (m.type == mc_msg::kRegisterAck) {
    const auto& ack = net::payload_as<mc_msg::RegisterAck>(m);
    id_ = ack.agent;
    connected_ = true;
    if (pending_connect_) std::exchange(pending_connect_, {})();
    pump_ops();
    return;
  }
  if (m.type == mc_msg::kUpdateReq) {
    const auto& req = net::payload_as<mc_msg::UpdateReq>(m);
    mc_msg::UpdateReply rep;
    rep.agent = id_;
    rep.token = req.token;
    if (dirty_) {
      rep.image = view_.extract_from_view(properties_);
      rep.dirty = !rep.image.empty();
      dirty_ = false;
    }
    const auto bytes = kHdr + rep.image.wire_size();
    fabric_.send(self_, directory_, mc_msg::kUpdateReply, std::move(rep),
                 bytes);
    return;
  }
  if (m.type == mc_msg::kSyncReply) {
    const auto& rep = net::payload_as<mc_msg::SyncReply>(m);
    if (!op_inflight_ || ops_.empty()) return;
    view_.merge_into_view(rep.image, properties_);
    auto [work, done] = std::move(ops_.front());
    ops_.pop_front();
    work();
    dirty_ = true;
    op_inflight_ = false;
    if (done) done();
    pump_ops();
    return;
  }
  if (m.type == mc_msg::kLeaveAck) {
    connected_ = false;
    if (pending_disconnect_) std::exchange(pending_disconnect_, {})();
    return;
  }
}

}  // namespace flecc::baselines
