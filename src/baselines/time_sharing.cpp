#include "baselines/time_sharing.hpp"

#include <utility>

#include "core/messages.hpp"

namespace flecc::baselines {

namespace {
constexpr std::size_t kHdr = core::msg::kHeaderBytes;
}

// ---- coordinator ---------------------------------------------------------

TimeSharingCoordinator::TimeSharingCoordinator(net::Fabric& fabric,
                                               net::Address self,
                                               core::PrimaryAdapter& primary)
    : fabric_(fabric), self_(self), primary_(primary) {
  fabric_.bind(self_, *this);
}

TimeSharingCoordinator::~TimeSharingCoordinator() { fabric_.unbind(self_); }

void TimeSharingCoordinator::on_message(const net::Message& m) {
  if (m.type == ts_msg::kRegisterReq) {
    const auto& req = net::payload_as<ts_msg::RegisterReq>(m);
    stats_.inc("op.register");
    AgentRecord rec{next_id_++, m.from, req.properties};
    const AgentId id = rec.id;
    agents_.emplace(id, std::move(rec));
    ts_msg::RegisterAck ack{id};
    fabric_.send(self_, m.from, ts_msg::kRegisterAck, ack, kHdr);
    return;
  }
  if (m.type == ts_msg::kTurnReq) {
    const auto& req = net::payload_as<ts_msg::TurnReq>(m);
    stats_.inc("op.turn_req");
    if (agents_.count(req.agent) == 0) return;
    turn_queue_.push_back(req.agent);
    pump();
    return;
  }
  if (m.type == ts_msg::kTurnRelease) {
    const auto& rel = net::payload_as<ts_msg::TurnRelease>(m);
    stats_.inc("op.turn_release");
    auto it = agents_.find(rel.agent);
    if (rel.dirty && it != agents_.end()) {
      primary_.merge_into_object(rel.image, it->second.properties);
    }
    if (holder_.has_value() && *holder_ == rel.agent) {
      holder_.reset();
      pump();
    }
    return;
  }
  if (m.type == ts_msg::kLeaveReq) {
    const auto& req = net::payload_as<ts_msg::LeaveReq>(m);
    stats_.inc("op.leave");
    auto it = agents_.find(req.agent);
    if (it == agents_.end()) return;
    if (req.dirty) {
      primary_.merge_into_object(req.final_image, it->second.properties);
    }
    const net::Address addr = it->second.addr;
    agents_.erase(it);
    if (holder_.has_value() && *holder_ == req.agent) holder_.reset();
    ts_msg::LeaveAck ack;
    fabric_.send(self_, addr, ts_msg::kLeaveAck, ack, kHdr);
    pump();
    return;
  }
  stats_.inc("msg.unknown");
}

void TimeSharingCoordinator::pump() {
  while (!holder_.has_value() && !turn_queue_.empty()) {
    const AgentId next = turn_queue_.front();
    turn_queue_.pop_front();
    auto it = agents_.find(next);
    if (it == agents_.end()) continue;  // left while queued
    holder_ = next;
    ++turns_granted_;
    stats_.inc("op.turn_grant");
    ts_msg::TurnGrant grant;
    grant.image = primary_.extract_from_object(it->second.properties);
    const auto bytes = kHdr + grant.image.wire_size();
    fabric_.send(self_, it->second.addr, ts_msg::kTurnGrant, std::move(grant),
                 bytes);
    return;
  }
}

// ---- client ----------------------------------------------------------------

TimeSharingClient::TimeSharingClient(net::Fabric& fabric, net::Address self,
                                     net::Address coordinator,
                                     core::ViewAdapter& view, std::string name,
                                     props::PropertySet properties)
    : fabric_(fabric),
      self_(self),
      coordinator_(coordinator),
      view_(view),
      name_(std::move(name)),
      properties_(std::move(properties)) {
  fabric_.bind(self_, *this);
}

TimeSharingClient::~TimeSharingClient() { fabric_.unbind(self_); }

void TimeSharingClient::connect(Done done) {
  pending_connect_ = std::move(done);
  ts_msg::RegisterReq req{name_, properties_};
  const auto bytes = kHdr + name_.size() + core::msg::wire_size(properties_);
  fabric_.send(self_, coordinator_, ts_msg::kRegisterReq, std::move(req),
               bytes);
}

void TimeSharingClient::do_operation(WorkFn work, Done done) {
  ops_.emplace_back(std::move(work), std::move(done));
  pump_ops();
}

void TimeSharingClient::pump_ops() {
  if (op_inflight_ || ops_.empty() || !connected_) return;
  op_inflight_ = true;
  ts_msg::TurnReq req{id_};
  fabric_.send(self_, coordinator_, ts_msg::kTurnReq, req, kHdr);
}

void TimeSharingClient::disconnect(Done done) {
  pending_disconnect_ = std::move(done);
  ts_msg::LeaveReq req;
  req.agent = id_;
  req.final_image = view_.extract_from_view(properties_);
  req.dirty = !req.final_image.empty();
  const auto bytes = kHdr + req.final_image.wire_size();
  fabric_.send(self_, coordinator_, ts_msg::kLeaveReq, std::move(req), bytes);
}

void TimeSharingClient::on_message(const net::Message& m) {
  if (m.type == ts_msg::kRegisterAck) {
    const auto& ack = net::payload_as<ts_msg::RegisterAck>(m);
    id_ = ack.agent;
    connected_ = true;
    if (pending_connect_) std::exchange(pending_connect_, {})();
    pump_ops();
    return;
  }
  if (m.type == ts_msg::kTurnGrant) {
    const auto& grant = net::payload_as<ts_msg::TurnGrant>(m);
    if (!op_inflight_ || ops_.empty()) return;  // stale grant (we left?)
    view_.merge_into_view(grant.image, properties_);
    auto [work, done] = std::move(ops_.front());
    ops_.pop_front();
    work();
    ts_msg::TurnRelease rel;
    rel.agent = id_;
    rel.image = view_.extract_from_view(properties_);
    rel.dirty = !rel.image.empty();
    const auto bytes = kHdr + rel.image.wire_size();
    fabric_.send(self_, coordinator_, ts_msg::kTurnRelease, std::move(rel),
                 bytes);
    op_inflight_ = false;
    if (done) done();
    pump_ops();
    return;
  }
  if (m.type == ts_msg::kLeaveAck) {
    connected_ = false;
    if (pending_disconnect_) std::exchange(pending_disconnect_, {})();
    return;
  }
}

}  // namespace flecc::baselines
