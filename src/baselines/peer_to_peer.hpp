// A decentralized (peer-to-peer) coherence protocol — the design §4.1
// argues *against* and the reason Flecc is centralized.
//
// Every view is a peer: there is no directory and no primary copy.
// Each peer appends its own updates to a local log; a fresh-data
// operation asks every *conflicting* peer for the log entries this peer
// has not seen (cursor-based anti-entropy) and applies them before
// working. This only works when the application's updates commute
// (increment-style deltas) — in general each *pair* of peers needs its
// own reconciliation knowledge, which is precisely the O(n²) burden the
// paper's centralized design avoids. The implementation demonstrates
// the alternative honestly: it is correct for commutative updates and
// measurably heavier in state (per-peer logs + cursors) while paying
// similar message counts to Flecc's demand fetch.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/object_image.hpp"
#include "net/fabric.hpp"
#include "props/property.hpp"
#include "sim/stats.hpp"

namespace flecc::baselines {

/// Application hooks for peer-to-peer synchronization. Updates must be
/// commutative and idempotent-per-application (each is applied exactly
/// once, but in arbitrary interleavings across peers).
class PeerAdapter {
 public:
  virtual ~PeerAdapter() = default;

  /// Extract this peer's latest local updates as a delta image (empty
  /// if nothing changed since the last extraction).
  [[nodiscard]] virtual core::ObjectImage extract_update() = 0;

  /// Apply another peer's delta.
  virtual void apply_update(const core::ObjectImage& delta) = 0;
};

namespace p2p_msg {
inline constexpr const char* kSyncReq = "p2p.sync_req";
inline constexpr const char* kSyncReply = "p2p.sync_reply";

struct SyncReq {
  std::uint64_t token = 0;
  /// How many of the responder's log entries the requester has seen.
  std::uint64_t seen = 0;
};
struct SyncReply {
  std::uint64_t token = 0;
  /// Entries [req.seen, new_seen) of the responder's log.
  std::vector<core::ObjectImage> entries;
  std::uint64_t new_seen = 0;
};
}  // namespace p2p_msg

class Peer : public net::Endpoint {
 public:
  struct Config {
    std::string name = "peer";
    props::PropertySet properties;
    /// Give up on unresponsive peers after this long.
    sim::Duration sync_timeout = sim::msec(500);
  };

  using Done = std::function<void()>;
  using WorkFn = std::function<void()>;

  Peer(net::Fabric& fabric, net::Address self, PeerAdapter& adapter,
       Config cfg);
  ~Peer() override;

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Static wiring: every peer must learn all others' address and
  /// property set (itself an O(n²) exchange in a real deployment).
  void add_peer(net::Address addr, props::PropertySet properties);

  /// One fresh-data operation: gather unseen updates from every
  /// conflicting peer, apply them, run `work`, then append the local
  /// delta to the log for others to fetch.
  void do_operation(WorkFn work, Done done = {});

  void on_message(const net::Message& m) override;

  [[nodiscard]] std::size_t log_size() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t peer_count() const noexcept {
    return peers_.size();
  }
  [[nodiscard]] std::size_t conflicting_peer_count() const;
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

 private:
  struct PeerInfo {
    net::Address addr;
    props::PropertySet properties;
    bool conflicting = false;
    std::uint64_t seen = 0;  // how many of THEIR log entries we applied
  };

  struct PendingSync {
    std::uint64_t token = 0;
    std::size_t outstanding = 0;
    net::TimerId timeout = net::kInvalidTimerId;
    WorkFn work;
    Done done;
  };

  void finish_sync(PendingSync& ps);
  void pump_ops();

  net::Fabric& fabric_;
  net::Address self_;
  PeerAdapter& adapter_;
  Config cfg_;

  std::vector<PeerInfo> peers_;
  std::map<net::Address, std::size_t> peer_index_;
  std::vector<core::ObjectImage> log_;  // my own updates, append-only

  std::deque<std::pair<WorkFn, Done>> ops_;
  std::optional<PendingSync> inflight_;
  std::uint64_t next_token_ = 1;
  sim::CounterSet stats_;
};

}  // namespace flecc::baselines
