#include "baselines/peer_to_peer.hpp"

#include <utility>

#include "core/messages.hpp"

namespace flecc::baselines {

namespace {
constexpr std::size_t kHdr = core::msg::kHeaderBytes;

std::size_t reply_bytes(const p2p_msg::SyncReply& r) {
  std::size_t bytes = kHdr;
  for (const auto& e : r.entries) bytes += e.wire_size();
  return bytes;
}
}  // namespace

Peer::Peer(net::Fabric& fabric, net::Address self, PeerAdapter& adapter,
           Config cfg)
    : fabric_(fabric), self_(self), adapter_(adapter), cfg_(std::move(cfg)) {
  fabric_.bind(self_, *this);
}

Peer::~Peer() { fabric_.unbind(self_); }

void Peer::add_peer(net::Address addr, props::PropertySet properties) {
  PeerInfo info;
  info.addr = addr;
  info.conflicting = cfg_.properties.conflicts_with(properties);
  info.properties = std::move(properties);
  peer_index_[addr] = peers_.size();
  peers_.push_back(std::move(info));
}

std::size_t Peer::conflicting_peer_count() const {
  std::size_t n = 0;
  for (const auto& p : peers_) {
    if (p.conflicting) ++n;
  }
  return n;
}

void Peer::do_operation(WorkFn work, Done done) {
  ops_.emplace_back(std::move(work), std::move(done));
  pump_ops();
}

void Peer::pump_ops() {
  if (inflight_.has_value() || ops_.empty()) return;
  auto [work, done] = std::move(ops_.front());
  ops_.pop_front();

  PendingSync ps;
  ps.token = next_token_++;
  ps.work = std::move(work);
  ps.done = std::move(done);

  // Anti-entropy round: ask every conflicting peer for what we missed.
  for (const auto& peer : peers_) {
    if (!peer.conflicting) continue;
    ++ps.outstanding;
    p2p_msg::SyncReq req{ps.token, peer.seen};
    fabric_.send(self_, peer.addr, p2p_msg::kSyncReq, req, kHdr);
    stats_.inc("sync.req_sent");
  }

  if (ps.outstanding == 0) {
    finish_sync(ps);
    return;
  }
  const auto token = ps.token;
  ps.timeout =
      fabric_.schedule(self_, cfg_.sync_timeout, [this, token] {
        if (!inflight_.has_value() || inflight_->token != token) return;
        stats_.inc("sync.timeout");
        PendingSync ps2 = std::move(*inflight_);
        inflight_.reset();
        finish_sync(ps2);
      });
  inflight_ = std::move(ps);
}

void Peer::finish_sync(PendingSync& ps) {
  if (ps.timeout != net::kInvalidTimerId) fabric_.cancel_timer(ps.timeout);
  if (ps.work) ps.work();
  // Publish this operation's update for the other peers.
  core::ObjectImage delta = adapter_.extract_update();
  if (!delta.empty()) {
    log_.push_back(std::move(delta));
    stats_.inc("log.appended");
  }
  if (ps.done) ps.done();
  pump_ops();
}

void Peer::on_message(const net::Message& m) {
  if (m.type == p2p_msg::kSyncReq) {
    const auto& req = net::payload_as<p2p_msg::SyncReq>(m);
    p2p_msg::SyncReply reply;
    reply.token = req.token;
    for (std::size_t i = req.seen; i < log_.size(); ++i) {
      reply.entries.push_back(log_[i]);
    }
    reply.new_seen = log_.size();
    const auto bytes = reply_bytes(reply);
    fabric_.send(self_, m.from, p2p_msg::kSyncReply, std::move(reply),
                 bytes);
    stats_.inc("sync.req_served");
    return;
  }
  if (m.type == p2p_msg::kSyncReply) {
    const auto& reply = net::payload_as<p2p_msg::SyncReply>(m);
    if (!inflight_.has_value() || inflight_->token != reply.token) {
      stats_.inc("sync.late_reply");
      return;
    }
    auto it = peer_index_.find(m.from);
    if (it != peer_index_.end()) {
      PeerInfo& peer = peers_[it->second];
      for (const auto& entry : reply.entries) {
        adapter_.apply_update(entry);
        stats_.inc("sync.entries_applied");
      }
      peer.seen = reply.new_seen;
    }
    if (--inflight_->outstanding == 0) {
      PendingSync ps = std::move(*inflight_);
      inflight_.reset();
      finish_sync(ps);
    }
    return;
  }
  stats_.inc("msg.unknown");
}

}  // namespace flecc::baselines
