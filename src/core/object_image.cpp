#include "core/object_image.hpp"

#include <algorithm>
#include <sstream>

namespace flecc::core {

namespace {

/// First field whose key is >= `key` (the vector is key-sorted).
template <typename Fields>
auto field_lower_bound(Fields& fields, const std::string& key) {
  return std::lower_bound(
      fields.begin(), fields.end(), key,
      [](const ObjectImage::Field& f, const std::string& k) {
        return f.first < k;
      });
}

}  // namespace

std::string to_string(const ImageValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return std::to_string(*d);
  return "\"" + std::get<std::string>(v) + "\"";
}

void ObjectImage::set(const std::string& key, ImageValue v) {
  auto it = field_lower_bound(fields_, key);
  if (it != fields_.end() && it->first == key) {
    it->second = std::move(v);
  } else {
    fields_.emplace(it, key, std::move(v));
  }
}

const ImageValue* ObjectImage::find(const std::string& key) const {
  auto it = field_lower_bound(fields_, key);
  return it == fields_.end() || it->first != key ? nullptr : &it->second;
}

bool ObjectImage::erase(const std::string& key) {
  auto it = field_lower_bound(fields_, key);
  if (it == fields_.end() || it->first != key) return false;
  fields_.erase(it);
  return true;
}

std::optional<std::int64_t> ObjectImage::get_int(
    const std::string& key) const {
  const auto* v = find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  return std::nullopt;
}

std::optional<double> ObjectImage::get_real(const std::string& key) const {
  const auto* v = find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

std::optional<std::string> ObjectImage::get_str(const std::string& key) const {
  const auto* v = find(key);
  if (v == nullptr) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return std::nullopt;
}

std::size_t ObjectImage::overlay(const ObjectImage& delta) {
  for (const auto& [k, v] : delta.fields_) set(k, v);
  return delta.fields_.size();
}

std::size_t ObjectImage::wire_size() const {
  std::size_t bytes = 16;  // header: version + count
  for (const auto& [k, v] : fields_) {
    bytes += k.size() + 2;
    if (const auto* s = std::get_if<std::string>(&v)) {
      bytes += s->size() + 2;
    } else {
      bytes += 8;
    }
  }
  return bytes;
}

std::string ObjectImage::to_string() const {
  std::ostringstream os;
  os << "Image(v" << version_ << "){";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) os << ", ";
    first = false;
    os << k << "=" << core::to_string(v);
  }
  os << "}";
  return os.str();
}

}  // namespace flecc::core
