// Durable checkpoint/WAL for the directory manager's recoverable state
// (PROTOCOL.md, "Directory crash-recovery").
//
// The directory appends one WalRecord per state transition it must
// survive a crash with: view registrations and deregistrations, mode
// changes, fetch/invalidate round openings and merges (the settled-round
// archive), and merged push/kill request ids (the idempotency markers).
// On restart it replays load() into a fresh in-memory state, bumps the
// generation, and runs the CM-assisted rebuild round on top.
//
// The store also owns the directory *generation* — the incarnation
// counter behind generation fencing. set_generation() is durable
// immediately (a tiny superblock write), so even a store whose WAL tail
// was lost to a crash remembers which incarnations existed.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/object_image.hpp"
#include "core/types.hpp"
#include "props/property.hpp"

namespace flecc::core {

/// What a WAL record describes.
enum class WalKind : std::uint8_t {
  kRegister,    // view registered / re-announced: full registration data
  kDeregister,  // view killed, superseded, or liveness-evicted
  kModeChange,  // view switched consistency mode
  kRoundOpen,   // fetch/invalidate round opened against one target view
  kRoundMerge,  // that target's extraction merged (exactly-once marker)
  kOpMerged,    // a dirty push/kill request merged (idempotency marker)
  // Cache-manager journal kinds (PROTOCOL.md, "View migration & CM
  // journaling"): the same store interface, written by a CacheManager.
  kCmBind,      // registered/installed under view + incarnation (req)
  kCmWrite,     // cumulative write-buffer snapshot after an absorb
  kCmIntent,    // a dirty push/kill/handoff issued under request id req
  kCmFlush,     // that request id was acked: the intent is durable
  kCmReq,       // request-id ceiling promise: ids below req may be used
};

[[nodiscard]] const char* to_string(WalKind k) noexcept;

/// One append-only log entry. Which fields are meaningful depends on
/// `kind`; unused fields keep their defaults and serialize compactly.
struct WalRecord {
  WalKind kind = WalKind::kRegister;
  ViewId view = kInvalidViewId;
  /// Cache-manager address (kRegister, kOpMerged).
  std::uint32_t node = 0;
  std::uint32_t port = 0;
  /// View name (kRegister).
  std::string name;
  /// Registered properties (kRegister) or the round's property snapshot
  /// for the target view (kRoundOpen).
  props::PropertySet properties;
  Mode mode = Mode::kWeak;  // kRegister, kModeChange
  /// Validity-trigger source (kRegister; empty = none).
  std::string validity;
  /// Round namespace: 0 = fetch token, 1 = invalidate epoch.
  std::uint8_t ns = 0;
  std::uint64_t round = 0;  // kRoundOpen, kRoundMerge
  std::uint64_t req = 0;    // kOpMerged: the merged request id
  /// Journaled delta (kCmWrite: cumulative pending snapshot; kCmIntent:
  /// the extracted op image). Empty for directory-side kinds, and
  /// serialized as the optional 13th token — records without one parse
  /// with an empty image, keeping old checkpoints readable.
  ObjectImage image;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Image (de)serialization for the journal's 13th token.
[[nodiscard]] std::string serialize_image(const ObjectImage& img);
[[nodiscard]] bool parse_image(const std::string& s, ObjectImage& out);

// ---- record (de)serialization ------------------------------------------
// Deterministic single-line text encoding, shared by the file store and
// by tests that want to inspect a checkpoint. Strings are
// percent-escaped so names/triggers cannot break the line framing.

[[nodiscard]] std::string serialize_properties(const props::PropertySet& ps);
[[nodiscard]] bool parse_properties(const std::string& s,
                                    props::PropertySet& out);
[[nodiscard]] std::string serialize_record(const WalRecord& rec);
[[nodiscard]] bool parse_record(const std::string& line, WalRecord& out);

/// Where the directory persists its recoverable state. Implementations
/// must keep append order; load() returns records in that order.
class DurabilityStore {
 public:
  virtual ~DurabilityStore() = default;

  /// Append one record. May buffer; only flush() makes it crash-proof.
  virtual void append(const WalRecord& rec) = 0;
  /// Make all buffered appends durable.
  virtual void flush() = 0;
  /// All durable records, oldest first. Opening the store for replay —
  /// a clean (non-crash) restart sees buffered appends too.
  [[nodiscard]] virtual std::vector<WalRecord> load() = 0;
  /// Replace the whole log with a compacted snapshot (durable at once).
  virtual void compact(const std::vector<WalRecord>& snapshot) = 0;

  /// Durably record the directory incarnation (independent of the WAL
  /// tail: survives even when buffered appends are lost).
  virtual void set_generation(std::uint64_t gen) = 0;
  [[nodiscard]] virtual std::uint64_t generation() const = 0;

  /// Records currently in the log (durable + buffered).
  [[nodiscard]] virtual std::size_t entry_count() const = 0;
};

/// In-memory store for tests and deterministic chaos runs. Checkpoint
/// lag is modeled in appends: records become durable every
/// `flush_every` appends (1 = every append, i.e. no lag), and crash()
/// drops whatever was still buffered.
class MemoryDurabilityStore final : public DurabilityStore {
 public:
  explicit MemoryDurabilityStore(std::size_t flush_every = 1)
      : flush_every_(flush_every == 0 ? 1 : flush_every) {}

  void append(const WalRecord& rec) override;
  void flush() override;
  [[nodiscard]] std::vector<WalRecord> load() override;
  void compact(const std::vector<WalRecord>& snapshot) override;
  void set_generation(std::uint64_t gen) override { generation_ = gen; }
  [[nodiscard]] std::uint64_t generation() const override {
    return generation_;
  }
  [[nodiscard]] std::size_t entry_count() const override {
    return durable_.size() + buffered_.size();
  }

  /// Simulate the host crashing: buffered (unflushed) appends are lost.
  void crash() { buffered_.clear(); }
  /// Simulate checkpoint loss: every record is gone but the generation
  /// superblock survives (the pure CM-assisted-rebuild scenario).
  void drop_all() {
    durable_.clear();
    buffered_.clear();
  }

  [[nodiscard]] std::size_t compactions() const noexcept {
    return compactions_;
  }

 private:
  std::size_t flush_every_;
  std::vector<WalRecord> durable_;
  std::vector<WalRecord> buffered_;
  std::uint64_t generation_ = 0;
  std::size_t compactions_ = 0;
};

/// File-backed store: one serialized record per line, appended to
/// `path`; the generation is a `G <n>` line (last one wins) written
/// through immediately. No external dependencies — plain text I/O.
class FileDurabilityStore final : public DurabilityStore {
 public:
  explicit FileDurabilityStore(std::string path);

  void append(const WalRecord& rec) override;
  void flush() override;
  [[nodiscard]] std::vector<WalRecord> load() override;
  void compact(const std::vector<WalRecord>& snapshot) override;
  void set_generation(std::uint64_t gen) override;
  [[nodiscard]] std::uint64_t generation() const override {
    return generation_;
  }
  [[nodiscard]] std::size_t entry_count() const override {
    return entry_count_;
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void reopen_append();

  std::string path_;
  std::ofstream out_;
  std::uint64_t generation_ = 0;
  std::size_t entry_count_ = 0;
};

}  // namespace flecc::core
