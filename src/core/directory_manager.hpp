// The Flecc directory manager (paper §4.2).
//
// One directory manager is colocated with the original component. It
// tracks every registered view, decides which views conflict (static map
// first, dynamic property intersection as fallback), arbitrates
// strong-mode exclusivity via invalidations, serves weak-mode pulls
// (honoring validity triggers with demand fetches from conflicting
// active views), merges pushed updates into the primary copy, and keeps
// the merge log from which the data-quality metric is computed.
//
// Reliability layer (PROTOCOL.md, "Fault model & reliability layer"):
// the directory is idempotent under request replay. Every framed request
// (req != 0) is tracked in a bounded per-sender dedup window keyed by
// (cache address, request id); a retransmission of a completed request
// re-sends the cached reply instead of re-executing (no double merge, no
// double-queued acquire), and one still in progress is dropped.
// Directory-originated commands (InvalidateReq, FetchReq) are
// retransmitted a bounded number of times within the round timeout.
// Optional liveness tracking evicts views whose cache manager has gone
// silent, settling any round waiting on them.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/adapters.hpp"
#include "core/durability.hpp"
#include "core/merge_log.hpp"
#include "core/messages.hpp"
#include "core/static_map.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "net/pool.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "trigger/trigger.hpp"

namespace flecc::core {

class DirectoryManager : public net::Endpoint {
 public:
  struct Config {
    /// How long to wait for FetchReply/InvalidateAck stragglers before
    /// proceeding with what arrived (crash resilience).
    sim::Duration fetch_timeout = sim::msec(500);
    /// Send UpdateNotify to conflicting active views after each merge.
    bool notify_on_update = false;
    /// Honor AccessIntent::kReadOnly (future-work extension 1): read-only
    /// pulls skip demand fetches, read-only acquires skip invalidations.
    bool use_rw_semantics = false;
    /// Prune the merge log when it exceeds this many records.
    std::size_t merge_log_cap = 1 << 16;
    /// Replies cached per sender for idempotent replay of retransmitted
    /// requests. 0 disables the dedup window.
    std::size_t dedup_window = 8;
    /// Extra transmissions of InvalidateReq/FetchReq spread across
    /// fetch_timeout before the round timeout settles it. 0 = single
    /// shot (the seed behavior).
    std::size_t command_retries = 2;
    /// Evict views silent for longer than this (missed heartbeats);
    /// 0 disables liveness tracking. Should be several cache-manager
    /// heartbeat intervals.
    sim::Duration liveness_timeout = 0;
    /// Optional protocol trace sink (not owned); nullptr = no tracing.
    /// See OBSERVABILITY.md for the events the directory emits.
    obs::TraceBuffer* trace = nullptr;
    /// Durable checkpoint/WAL (not owned); nullptr disables durability
    /// and crash-recovery (the directory then runs as generation 1
    /// forever — the seed behavior). With a store, construction replays
    /// the checkpoint, bumps the generation, and — when the previous
    /// generation left checkpointed views behind — runs the CM-assisted
    /// rebuild round (PROTOCOL.md, "Directory crash-recovery").
    DurabilityStore* durability = nullptr;
    /// How long a restarted directory waits for RebuildReply
    /// re-announcements before dropping checkpointed views that stayed
    /// silent (they reconnect via heartbeat `known == false`).
    sim::Duration rebuild_window = sim::msec(500);
    /// Compact the WAL after this many appends since the last
    /// compaction (0 disables compaction).
    std::size_t compact_threshold = 4096;
    /// Message-payload pooling (PERFORMANCE.md): replies and commands
    /// are built in recycled ObjectPool slots (net/pool.hpp) and travel
    /// as 8-byte PoolPtr handles instead of deep-copied std::any boxes.
    /// The dedup window caches the same handle, so replay costs one
    /// refcount bump instead of a payload copy. Protocol-neutral.
    bool pool_messages = true;
    /// Fault-injection knob (monitor mutation tests ONLY): treat every
    /// pair of views as non-conflicting when arbitrating strong-mode
    /// acquires, so grants go out without invalidating the previous
    /// holder — the exact bug the monitor's I1 (STRONG exclusivity)
    /// check catches.
    bool chaos_ignore_conflicts = false;
    // ---- admission control (PROTOCOL.md "Flow control & overload") ----
    /// Global cap on concurrently open demand-fetch rounds. A pull that
    /// would open a round past the cap is answered with msg::Busy
    /// instead (shed.pull counter); pulls that need no fetch round are
    /// always served. 0 = unlimited (the seed behavior).
    std::size_t max_fetch_rounds = 0;
    /// Per-requesting-view cap on open fetch rounds, so one hot view
    /// cannot monopolize the global budget. 0 = unlimited.
    std::size_t max_view_rounds = 0;
    /// Cap on queued strong-mode acquires (the in-flight one excluded).
    /// An acquire past the cap is answered with msg::Busy (shed.acquire
    /// counter). 0 = unlimited.
    std::size_t max_acquire_queue = 0;
    /// retry_after hint stamped into Busy replies. Cache managers back
    /// off (jittered) at least this long before re-issuing.
    sim::Duration busy_retry_after = sim::msec(100);
    // ---- view migration (PROTOCOL.md "View migration & CM journaling") --
    /// Per-phase wait before retransmitting ViewMoveReq/ViewMoveInstall.
    sim::Duration migrate_timeout = sim::msec(250);
    /// Retransmissions per migration phase before the move aborts and
    /// the view stays bound to its source.
    std::size_t migrate_resends = 4;
    /// Chaos/test hook fired at every migration phase transition
    /// (MigratePhase below), synchronously inside directory processing —
    /// deterministic under the simulated fabric. Not owned.
    std::function<void(ViewId view, int phase)> on_migrate_phase;
  };

  /// Migration FSM phases, reported through Config::on_migrate_phase.
  enum MigratePhase : int {
    kMigrateQuiesce = 0,  ///< ViewMoveReq sent; awaiting HandoffState
    kMigrateHandoff = 1,  ///< handoff merged; ViewMoveInstall sent
    kMigrateDone = 2,     ///< destination acked; record rebound
    kMigrateAborted = 3,  ///< a phase timed out; view stays at the source
  };

  DirectoryManager(net::Fabric& fabric, net::Address self,
                   PrimaryAdapter& primary, Config cfg);
  DirectoryManager(net::Fabric& fabric, net::Address self,
                   PrimaryAdapter& primary)
      : DirectoryManager(fabric, self, primary, Config{}) {}
  ~DirectoryManager() override;

  DirectoryManager(const DirectoryManager&) = delete;
  DirectoryManager& operator=(const DirectoryManager&) = delete;

  /// Install statically-known sharing relationships (entries default to
  /// Relation::kDynamic).
  void set_static_map(StaticMap m) { static_map_ = std::move(m); }

  /// Open a live migration of view `v` to the cache manager awaiting
  /// installation at `dest` (PROTOCOL.md, "View migration & CM
  /// journaling"). Returns false — and counts migrate.rejected — when
  /// the view is unknown, already migrating, or the directory is mid
  /// rebuild. The move runs asynchronously; outcome is observable via
  /// the migrate.* counters and Config::on_migrate_phase.
  bool begin_migration(ViewId v, net::Address dest);

  /// Migrations currently in flight (tests/benches).
  [[nodiscard]] std::size_t migrations_inflight() const noexcept {
    return migrations_.size();
  }

  void on_message(const net::Message& m) override;

  // ---- out-of-band introspection (no protocol messages) --------------

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] Version version() const noexcept { return version_; }
  /// Directory incarnation (generation fencing). 1 on first boot,
  /// bumped on every restart from a DurabilityStore.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  /// True while the post-restart rebuild round is still collecting
  /// RebuildReply re-announcements (acquires queue, nothing is granted).
  [[nodiscard]] bool rebuilding() const noexcept { return rebuilding_; }
  [[nodiscard]] std::size_t registered_count() const noexcept {
    return views_.size();
  }
  [[nodiscard]] bool known(ViewId v) const { return views_.count(v) != 0; }
  [[nodiscard]] bool is_active(ViewId v) const;
  [[nodiscard]] bool is_exclusive(ViewId v) const;
  [[nodiscard]] Mode mode_of(ViewId v) const;

  /// Remote unseen updates for `v` right now (the paper's data-quality
  /// metric; Figures 5 and 6 sample this).
  [[nodiscard]] std::uint64_t quality(ViewId v) const;

  /// Views whose data conflicts with `v` (static map or dynConfl).
  [[nodiscard]] std::vector<ViewId> conflicting_views(ViewId v) const;

  /// Do two registered views conflict?
  [[nodiscard]] bool conflicts(ViewId a, ViewId b) const;

  /// Directory-local operation counters (op.pull, op.fetch_round, ...).
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

  [[nodiscard]] const MergeLog& merge_log() const noexcept { return log_; }

 private:
  struct ViewRecord {
    ViewId id = kInvalidViewId;
    net::Address cache_addr;
    std::string name;
    props::PropertySet properties;
    Mode mode = Mode::kWeak;
    std::optional<trigger::Trigger> validity;
    std::string validity_src;  // trigger source, kept for checkpointing
    bool active = false;     // holds a valid working copy
    bool exclusive = false;  // strong-mode ownership
    Version last_sync = 0;
    sim::Time last_sync_at = 0;
    sim::Time last_seen_at = 0;  // liveness: last message from this view
    /// Life number of the serving cache manager; a journal-replaying
    /// resume must register with a strictly greater incarnation.
    std::uint64_t incarnation = 1;
  };

  /// One in-flight view migration (per-view FSM; see MigratePhase).
  struct PendingMigration {
    ViewId view = kInvalidViewId;
    std::uint64_t epoch = 0;
    net::Address src;
    net::Address dest;
    int phase = kMigrateQuiesce;
    net::TimerId resend_timer = net::kInvalidTimerId;
    std::size_t resends_left = 0;
  };

  struct PendingPull {
    std::uint64_t token = 0;
    ViewId requester = kInvalidViewId;
    std::set<ViewId> outstanding;
    /// Property snapshot per fetch target: a solicited reply must merge
    /// even if the source was liveness-evicted while it was in flight
    /// (its extracted deltas exist nowhere else).
    std::map<ViewId, props::PropertySet> target_props;
    /// Targets whose dirty image has been merged (reply or echo); the
    /// guard against double-merging the same extraction.
    std::set<ViewId> merged;
    net::TimerId timeout = net::kInvalidTimerId;
    std::uint64_t unseen_before = 0;
    std::uint64_t req = 0;  // request id to echo in the PullReply
    net::TimerId resend_timer = net::kInvalidTimerId;
    std::size_t resends_left = 0;
    /// Trace span of the originating pull (obs::span_id of the
    /// requester's address and req); 0 when tracing is off.
    std::uint64_t span = 0;
  };

  struct PendingAcquire {
    ViewId requester = kInvalidViewId;
    std::uint64_t epoch = 0;
    std::set<ViewId> awaiting;
    /// Property snapshots mirroring PendingPull::target_props.
    std::map<ViewId, props::PropertySet> target_props;
    /// Mirrors PendingPull::merged.
    std::set<ViewId> merged;
    net::TimerId timeout = net::kInvalidTimerId;
    std::uint64_t req = 0;  // request id to echo in the AcquireGrant
    net::TimerId resend_timer = net::kInvalidTimerId;
    std::size_t resends_left = 0;
    /// Trace span of the originating acquire; mirrors PendingPull::span.
    std::uint64_t span = 0;
  };

  /// What a finished fetch/invalidate round leaves behind, kept in a
  /// bounded window so a straggler reply or push-borne echo
  /// (msg::DeltaEcho) of an extraction that never arrived in time can
  /// still be merged exactly once.
  struct SettledRound {
    std::set<ViewId> merged;
    std::map<ViewId, props::PropertySet> target_props;
  };

  /// One slot of the per-sender idempotent-replay window.
  struct DedupEntry {
    std::uint64_t req = 0;
    bool completed = false;  // false: still executing (round in flight)
    std::string type;        // cached reply (valid once completed)
    std::any payload;
    std::size_t bytes = 0;
  };

  // message handlers
  void handle_register(const net::Message& m);
  void handle_init(const net::Message& m);
  void handle_pull(const net::Message& m);
  void handle_push(const net::Message& m);
  void handle_acquire(const net::Message& m);
  void handle_invalidate_ack(const net::Message& m);
  void handle_fetch_reply(const net::Message& m);
  void handle_mode_change(const net::Message& m);
  void handle_kill(const net::Message& m);
  void handle_heartbeat(const net::Message& m);
  void handle_rebuild_reply(const net::Message& m);
  void handle_handoff_state(const net::Message& m);
  void handle_view_move_ack(const net::Message& m);

  // migration helpers
  void send_move_req(const PendingMigration& mig);
  void send_move_install(const PendingMigration& mig);
  void arm_migrate_resend(ViewId v);
  void on_migrate_timeout(ViewId v);
  void abort_migration(ViewId v, const char* why);
  void note_migration_outcome(ViewId v, std::uint64_t epoch, bool aborted);
  [[nodiscard]] bool migrating(ViewId v) const {
    return migrations_.count(v) != 0;
  }

  // helpers
  ViewRecord* find(ViewId v);
  const ViewRecord* find(ViewId v) const;
  void touch(ViewRecord& rec) { rec.last_seen_at = fabric_.now(); }
  /// Merge a dirty image into the primary. `path` labels the protocol
  /// path that delivered the extraction ("push", "kill", "fetch",
  /// "invalidate", the late_/echo. variants); `round` is the fetch
  /// token or invalidate epoch (0 for push/kill); `span` the
  /// originating op's span. All three are trace/monitor metadata only.
  void merge_update(const ObjectImage& image, ViewId source,
                    const props::PropertySet& touched, const char* path,
                    std::uint64_t round, std::uint64_t span);
  void finish_pull(PendingPull& pp);
  void start_next_acquire();
  void finish_acquire(PendingAcquire& pa);
  /// Archive a round that just left pending state (see SettledRound).
  void settle_pull_round(PendingPull& pp);
  void settle_acquire_round(PendingAcquire& pa);
  /// Merge push/kill-borne reply echoes, each at most once.
  void process_echoes(const std::vector<msg::DeltaEcho>& echoes);
  /// Properties to merge `v` with: the live record if any, else the
  /// round's snapshot, else nullptr (round evicted from the window).
  const props::PropertySet* round_props(
      ViewId v, const std::map<ViewId, props::PropertySet>& snap) const;
  void complete_fetch_or_acquire_for_dead_view(ViewId v);
  void maybe_prune_log();
  void send_to_view(const ViewRecord& rec, const char* type, std::any payload,
                    std::size_t bytes);
  /// Type-erase an outgoing payload, through the slot pool when
  /// pooling is enabled (callers compute wire bytes BEFORE boxing).
  template <typename T>
  std::any box(T value) {
    if (!cfg_.pool_messages) return std::any(std::move(value));
    net::PoolPtr<T> slot = pools_.acquire<T>();
    *slot = std::move(value);
    return std::any(std::move(slot));
  }

  // reliability helpers
  DedupEntry* find_dedup(const net::Address& from, std::uint64_t req);
  void note_in_progress(const net::Address& from, std::uint64_t req);
  /// Send a reply and cache it in the sender's dedup window.
  void reply(const net::Address& to, std::uint64_t req, const char* type,
             std::any payload, std::size_t bytes);
  /// Reject a framed request: tell the sender its registration (or
  /// generation) is stale. Never cached — re-execution after
  /// reconnect/retry is the intended path.
  void send_nack(const net::Address& to, ViewId view, std::uint64_t req,
                 const char* reason = "unknown view (stale registration)");
  /// Shed an over-admission request: answer msg::Busy(retry_after).
  /// Like send_nack, never cached in the dedup window — the request did
  /// not execute, and re-executing the retry later is the point.
  void send_busy(const net::Address& to, ViewId view, std::uint64_t req,
                 const char* reason);
  /// Drop the in-progress dedup slot noted for a request we ultimately
  /// shed, so its post-Busy retry is not mistaken for a duplicate of a
  /// round in flight.
  void forget_in_progress(const net::Address& from, std::uint64_t req);
  /// Open fetch rounds requested by view `v`.
  [[nodiscard]] std::size_t open_rounds_of(ViewId v) const;
  void arm_pull_resend(std::uint64_t token);
  void arm_acquire_resend(std::uint64_t epoch);
  void arm_liveness_timer();
  void liveness_sweep();

  // durability / recovery helpers
  /// Append one record to the WAL (no-op without a store); triggers
  /// compaction past cfg_.compact_threshold.
  void wal_append(const WalRecord& rec);
  [[nodiscard]] WalRecord register_record(const ViewRecord& rec) const;
  void wal_deregister(ViewId v);
  /// Record (and persist) that round `round` merged view `v`'s image.
  void note_round_merge(bool invalidate, std::uint64_t round, ViewId v);
  /// Record (and persist) that a dirty push/kill request merged, so a
  /// post-restart re-issue is acked without re-merging.
  void note_op_merged(const net::Address& from, std::uint64_t req);
  [[nodiscard]] bool op_already_merged(const net::Address& from,
                                       std::uint64_t req) const;
  /// Rebuild in-memory state from the checkpoint (constructor only).
  std::size_t replay_checkpoint(const std::vector<WalRecord>& records);
  void compact_wal();
  void start_rebuild();
  void arm_rebuild_resend();
  void finish_rebuild();
  /// A round id minted by a previous incarnation (its generation bits
  /// are below ours)? Only meaningful after a restart.
  [[nodiscard]] bool pre_crash_round(std::uint64_t round) const {
    return generation_ > 1 && (round >> 32) < generation_;
  }
  /// Re-open an archive slot for a pre-crash round the checkpoint lost,
  /// so its straggler replies/echoes merge exactly once per epoch.
  SettledRound& revive_settled(bool invalidate, std::uint64_t round);

  net::Fabric& fabric_;
  net::Address self_;
  PrimaryAdapter& primary_;
  Config cfg_;

  StaticMap static_map_;
  std::map<ViewId, ViewRecord> views_;
  ViewId next_view_id_ = 1;
  Version version_ = 0;
  sim::Time last_merge_at_ = 0;
  MergeLog log_;

  std::map<std::uint64_t, PendingPull> pending_pulls_;
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, SettledRound> settled_pulls_;
  std::deque<std::uint64_t> settled_pull_order_;
  std::map<std::uint64_t, SettledRound> settled_acquires_;
  std::deque<std::uint64_t> settled_acquire_order_;

  // Strong-mode acquires are processed strictly FIFO, one at a time.
  std::vector<msg::AcquireReq> acquire_queue_;
  std::optional<PendingAcquire> acquire_inflight_;
  std::uint64_t next_epoch_ = 1;

  // ---- view migration --------------------------------------------------
  std::map<ViewId, PendingMigration> migrations_;
  /// Recently finished migrations (view -> epoch, aborted), kept in a
  /// bounded window so a source still retransmitting HandoffState after
  /// completion gets its ViewMoveDone replayed instead of a spurious
  /// abort.
  std::map<ViewId, std::pair<std::uint64_t, bool>> migration_outcomes_;
  std::deque<ViewId> migration_outcome_order_;

  /// Idempotent-replay windows, keyed by cache-manager address (stable
  /// across reconnects, unlike view ids).
  std::unordered_map<net::Address, std::deque<DedupEntry>, net::AddressHash>
      dedup_;
  net::TimerId liveness_timer_ = net::kInvalidTimerId;

  // ---- crash recovery (PROTOCOL.md, "Directory crash-recovery") -------
  /// Incarnation number stamped into every outgoing message. Token,
  /// epoch, and version counters are generation-scoped (counter ids
  /// carry the generation in their top 32 bits) so ids from different
  /// incarnations never collide.
  std::uint64_t generation_ = 1;
  bool rebuilding_ = false;
  std::set<ViewId> rebuild_awaiting_;
  net::TimerId rebuild_timer_ = net::kInvalidTimerId;
  net::TimerId rebuild_resend_timer_ = net::kInvalidTimerId;
  std::size_t rebuild_resends_left_ = 0;
  std::uint64_t reannounced_ = 0;
  std::size_t wal_appends_since_compact_ = 0;
  /// Bounded (address, request id) window of merged push/kill requests,
  /// replayed from the WAL so a post-restart re-issue of an
  /// already-merged request is acked without a double merge.
  using MergedOpKey = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;
  std::set<MergedOpKey> merged_ops_;
  std::deque<MergedOpKey> merged_ops_order_;

  /// Per-payload-type slot pools; only touched when cfg_.pool_messages.
  net::PoolSet pools_;

  sim::CounterSet stats_;
  /// Lamport clock for causal trace stamping; mirrors
  /// CacheManager::clock_ (see there).
  obs::CausalClock clock_;
};

}  // namespace flecc::core
