// The Flecc directory manager (paper §4.2).
//
// One directory manager is colocated with the original component. It
// tracks every registered view, decides which views conflict (static map
// first, dynamic property intersection as fallback), arbitrates
// strong-mode exclusivity via invalidations, serves weak-mode pulls
// (honoring validity triggers with demand fetches from conflicting
// active views), merges pushed updates into the primary copy, and keeps
// the merge log from which the data-quality metric is computed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/merge_log.hpp"
#include "core/messages.hpp"
#include "core/static_map.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"
#include "trigger/trigger.hpp"

namespace flecc::core {

class DirectoryManager : public net::Endpoint {
 public:
  struct Config {
    /// How long to wait for FetchReply/InvalidateAck stragglers before
    /// proceeding with what arrived (crash resilience).
    sim::Duration fetch_timeout = sim::msec(500);
    /// Send UpdateNotify to conflicting active views after each merge.
    bool notify_on_update = false;
    /// Honor AccessIntent::kReadOnly (future-work extension 1): read-only
    /// pulls skip demand fetches, read-only acquires skip invalidations.
    bool use_rw_semantics = false;
    /// Prune the merge log when it exceeds this many records.
    std::size_t merge_log_cap = 1 << 16;
  };

  DirectoryManager(net::Fabric& fabric, net::Address self,
                   PrimaryAdapter& primary, Config cfg);
  DirectoryManager(net::Fabric& fabric, net::Address self,
                   PrimaryAdapter& primary)
      : DirectoryManager(fabric, self, primary, Config{}) {}
  ~DirectoryManager() override;

  DirectoryManager(const DirectoryManager&) = delete;
  DirectoryManager& operator=(const DirectoryManager&) = delete;

  /// Install statically-known sharing relationships (entries default to
  /// Relation::kDynamic).
  void set_static_map(StaticMap m) { static_map_ = std::move(m); }

  void on_message(const net::Message& m) override;

  // ---- out-of-band introspection (no protocol messages) --------------

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] Version version() const noexcept { return version_; }
  [[nodiscard]] std::size_t registered_count() const noexcept {
    return views_.size();
  }
  [[nodiscard]] bool known(ViewId v) const { return views_.count(v) != 0; }
  [[nodiscard]] bool is_active(ViewId v) const;
  [[nodiscard]] bool is_exclusive(ViewId v) const;
  [[nodiscard]] Mode mode_of(ViewId v) const;

  /// Remote unseen updates for `v` right now (the paper's data-quality
  /// metric; Figures 5 and 6 sample this).
  [[nodiscard]] std::uint64_t quality(ViewId v) const;

  /// Views whose data conflicts with `v` (static map or dynConfl).
  [[nodiscard]] std::vector<ViewId> conflicting_views(ViewId v) const;

  /// Do two registered views conflict?
  [[nodiscard]] bool conflicts(ViewId a, ViewId b) const;

  /// Directory-local operation counters (op.pull, op.fetch_round, ...).
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

  [[nodiscard]] const MergeLog& merge_log() const noexcept { return log_; }

 private:
  struct ViewRecord {
    ViewId id = kInvalidViewId;
    net::Address cache_addr;
    std::string name;
    props::PropertySet properties;
    Mode mode = Mode::kWeak;
    std::optional<trigger::Trigger> validity;
    bool active = false;     // holds a valid working copy
    bool exclusive = false;  // strong-mode ownership
    Version last_sync = 0;
    sim::Time last_sync_at = 0;
  };

  struct PendingPull {
    std::uint64_t token = 0;
    ViewId requester = kInvalidViewId;
    std::set<ViewId> outstanding;
    net::TimerId timeout = net::kInvalidTimerId;
    std::uint64_t unseen_before = 0;
  };

  struct PendingAcquire {
    ViewId requester = kInvalidViewId;
    std::uint64_t epoch = 0;
    std::set<ViewId> awaiting;
    net::TimerId timeout = net::kInvalidTimerId;
  };

  // message handlers
  void handle_register(const net::Message& m);
  void handle_init(const net::Message& m);
  void handle_pull(const net::Message& m);
  void handle_push(const net::Message& m);
  void handle_acquire(const net::Message& m);
  void handle_invalidate_ack(const net::Message& m);
  void handle_fetch_reply(const net::Message& m);
  void handle_mode_change(const net::Message& m);
  void handle_kill(const net::Message& m);

  // helpers
  ViewRecord* find(ViewId v);
  const ViewRecord* find(ViewId v) const;
  void merge_update(const ObjectImage& image, ViewId source,
                    const props::PropertySet& touched);
  void finish_pull(PendingPull& pp);
  void start_next_acquire();
  void finish_acquire(PendingAcquire& pa);
  void complete_fetch_or_acquire_for_dead_view(ViewId v);
  void maybe_prune_log();
  void send_to_view(const ViewRecord& rec, const char* type, std::any payload,
                    std::size_t bytes);

  net::Fabric& fabric_;
  net::Address self_;
  PrimaryAdapter& primary_;
  Config cfg_;

  StaticMap static_map_;
  std::map<ViewId, ViewRecord> views_;
  ViewId next_view_id_ = 1;
  Version version_ = 0;
  sim::Time last_merge_at_ = 0;
  MergeLog log_;

  std::map<std::uint64_t, PendingPull> pending_pulls_;
  std::uint64_t next_token_ = 1;

  // Strong-mode acquires are processed strictly FIFO, one at a time.
  std::vector<msg::AcquireReq> acquire_queue_;
  std::optional<PendingAcquire> acquire_inflight_;
  std::uint64_t next_epoch_ = 1;

  sim::CounterSet stats_;
};

}  // namespace flecc::core
