#include "core/durability.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace flecc::core {

const char* to_string(WalKind k) noexcept {
  switch (k) {
    case WalKind::kRegister: return "register";
    case WalKind::kDeregister: return "deregister";
    case WalKind::kModeChange: return "mode_change";
    case WalKind::kRoundOpen: return "round_open";
    case WalKind::kRoundMerge: return "round_merge";
    case WalKind::kOpMerged: return "op_merged";
    case WalKind::kCmBind: return "cm_bind";
    case WalKind::kCmWrite: return "cm_write";
    case WalKind::kCmIntent: return "cm_intent";
    case WalKind::kCmFlush: return "cm_flush";
    case WalKind::kCmReq: return "cm_req";
  }
  return "unknown";
}

namespace {

/// Percent-escape so encoded strings never contain whitespace or the
/// structural characters of the record/property grammar.
std::string escape(const std::string& s) {
  static constexpr const char* kUnsafe = "%=;:, -\t\n\r";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (std::string_view(kUnsafe).find(c) != std::string_view::npos ||
        static_cast<unsigned char>(c) < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return false;
    unsigned code = 0;
    const char* first = s.data() + i + 1;
    const auto [p, ec] = std::from_chars(first, first + 2, code, 16);
    if (ec != std::errc{} || p != first + 2) return false;
    out += static_cast<char>(code & 0xff);
    i += 2;
  }
  return true;
}

/// Empty strings need a stand-in token in space-separated lines.
std::string field(const std::string& s) {
  return s.empty() ? std::string("-") : escape(s);
}

bool unfield(const std::string& tok, std::string& out) {
  if (tok == "-") {
    out.clear();
    return true;
  }
  return unescape(tok, out);
}

template <typename T>
bool parse_num(const std::string& s, T& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [p, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && p == last;
}

std::string serialize_value(const props::Value& v) {
  std::string out;
  if (const auto* iv = std::get_if<std::int64_t>(&v)) {
    out = 'i';
    out += std::to_string(*iv);
  } else {
    out = 's';
    out += escape(std::get<std::string>(v));
  }
  return out;
}

bool parse_value(const std::string& s, props::Value& out) {
  if (s.empty()) return false;
  if (s[0] == 'i') {
    std::int64_t iv = 0;
    if (!parse_num(s.substr(1), iv)) return false;
    out = iv;
    return true;
  }
  if (s[0] == 's') {
    std::string sv;
    if (!unescape(s.substr(1), sv)) return false;
    out = std::move(sv);
    return true;
  }
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::string serialize_properties(const props::PropertySet& ps) {
  // name=interval:lo:hi | name=discrete:v1,v2,...  joined by ';'.
  std::string out;
  for (const auto& [name, domain] : ps) {
    if (!out.empty()) out += ';';
    out += escape(name);
    out += '=';
    if (domain.is_interval()) {
      const auto& iv = domain.as_interval();
      out += "interval:";
      out += std::to_string(iv.lo);
      out += ':';
      out += std::to_string(iv.hi);
    } else {
      out += "discrete:";
      bool first = true;
      for (const auto& v : domain.as_discrete()) {
        if (!first) out += ',';
        out += serialize_value(v);
        first = false;
      }
    }
  }
  return out;
}

bool parse_properties(const std::string& s, props::PropertySet& out) {
  out = {};
  if (s.empty()) return true;
  for (const auto& entry : split(s, ';')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) return false;
    std::string name;
    if (!unescape(entry.substr(0, eq), name)) return false;
    const std::string body = entry.substr(eq + 1);
    if (body.rfind("interval:", 0) == 0) {
      const auto parts = split(body.substr(9), ':');
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      if (parts.size() != 2 || !parse_num(parts[0], lo) ||
          !parse_num(parts[1], hi) || lo > hi) {
        return false;
      }
      out.set(std::move(name), props::Domain::interval(lo, hi));
    } else if (body.rfind("discrete:", 0) == 0) {
      std::set<props::Value> values;
      const std::string list = body.substr(9);
      if (!list.empty()) {
        for (const auto& tok : split(list, ',')) {
          props::Value v;
          if (!parse_value(tok, v)) return false;
          values.insert(std::move(v));
        }
      }
      out.set(std::move(name), props::Domain::discrete(std::move(values)));
    } else {
      return false;
    }
  }
  return true;
}

std::string serialize_image(const ObjectImage& img) {
  // v<version>;key=ival|rval|sval joined by ';' — same escape discipline
  // as property sets, so an image token never breaks line framing.
  std::string out = "v";
  out += std::to_string(img.version());
  for (const auto& [key, value] : img) {
    out += ';';
    out += escape(key);
    out += '=';
    if (const auto* iv = std::get_if<std::int64_t>(&value)) {
      out += 'i';
      out += std::to_string(*iv);
    } else if (const auto* rv = std::get_if<double>(&value)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "r%.17g", *rv);
      out += buf;
    } else {
      out += 's';
      out += escape(std::get<std::string>(value));
    }
  }
  return out;
}

bool parse_image(const std::string& s, ObjectImage& out) {
  out = {};
  if (s.empty() || s[0] != 'v') return false;
  const auto parts = split(s, ';');
  std::uint64_t version = 0;
  if (!parse_num(parts[0].substr(1), version)) return false;
  out.set_version(version);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto eq = parts[i].find('=');
    if (eq == std::string::npos) return false;
    std::string key;
    if (!unescape(parts[i].substr(0, eq), key)) return false;
    const std::string body = parts[i].substr(eq + 1);
    if (body.empty()) return false;
    if (body[0] == 'i') {
      std::int64_t iv = 0;
      if (!parse_num(body.substr(1), iv)) return false;
      out.set_int(key, iv);
    } else if (body[0] == 'r') {
      char* end = nullptr;
      const std::string num = body.substr(1);
      const double rv = std::strtod(num.c_str(), &end);
      if (end == nullptr || *end != '\0') return false;
      out.set_real(key, rv);
    } else if (body[0] == 's') {
      std::string sv;
      if (!unescape(body.substr(1), sv)) return false;
      out.set_str(key, std::move(sv));
    } else {
      return false;
    }
  }
  return true;
}

std::string serialize_record(const WalRecord& rec) {
  std::ostringstream out;
  out << "W " << to_string(rec.kind) << ' ' << rec.view << ' ' << rec.node
      << ' ' << rec.port << ' '
      << (rec.mode == Mode::kStrong ? "strong" : "weak") << ' '
      << static_cast<unsigned>(rec.ns) << ' ' << rec.round << ' ' << rec.req
      << ' ' << field(rec.name) << ' ' << field(rec.validity) << ' '
      << field(serialize_properties(rec.properties));
  // The image token is optional (13th): absent means empty, so every
  // pre-journal checkpoint still parses.
  if (!(rec.image == ObjectImage{})) out << ' ' << serialize_image(rec.image);
  return out.str();
}

bool parse_record(const std::string& line, WalRecord& out) {
  const auto tok = split(line, ' ');
  if ((tok.size() != 12 && tok.size() != 13) || tok[0] != "W") return false;
  out = {};
  bool kind_ok = false;
  for (const WalKind k :
       {WalKind::kRegister, WalKind::kDeregister, WalKind::kModeChange,
        WalKind::kRoundOpen, WalKind::kRoundMerge, WalKind::kOpMerged,
        WalKind::kCmBind, WalKind::kCmWrite, WalKind::kCmIntent,
        WalKind::kCmFlush, WalKind::kCmReq}) {
    if (tok[1] == to_string(k)) {
      out.kind = k;
      kind_ok = true;
      break;
    }
  }
  if (!kind_ok) return false;
  unsigned ns = 0;
  if (!parse_num(tok[2], out.view) || !parse_num(tok[3], out.node) ||
      !parse_num(tok[4], out.port) || !parse_num(tok[6], ns) ||
      !parse_num(tok[7], out.round) || !parse_num(tok[8], out.req)) {
    return false;
  }
  if (tok[5] == "strong") {
    out.mode = Mode::kStrong;
  } else if (tok[5] == "weak") {
    out.mode = Mode::kWeak;
  } else {
    return false;
  }
  out.ns = static_cast<std::uint8_t>(ns);
  std::string props_s;
  if (!unfield(tok[9], out.name) || !unfield(tok[10], out.validity) ||
      !unfield(tok[11], props_s)) {
    return false;
  }
  if (tok.size() == 13 && !parse_image(tok[12], out.image)) return false;
  return parse_properties(props_s, out.properties);
}

// ---- MemoryDurabilityStore ---------------------------------------------

void MemoryDurabilityStore::append(const WalRecord& rec) {
  buffered_.push_back(rec);
  if (buffered_.size() >= flush_every_) flush();
}

void MemoryDurabilityStore::flush() {
  durable_.insert(durable_.end(), buffered_.begin(), buffered_.end());
  buffered_.clear();
}

std::vector<WalRecord> MemoryDurabilityStore::load() {
  flush();  // a clean (non-crash) reopen sees buffered appends
  return durable_;
}

void MemoryDurabilityStore::compact(const std::vector<WalRecord>& snapshot) {
  durable_ = snapshot;
  buffered_.clear();
  ++compactions_;
}

// ---- FileDurabilityStore -----------------------------------------------

FileDurabilityStore::FileDurabilityStore(std::string path)
    : path_(std::move(path)) {
  // Scan any existing log for the generation superblock and count.
  std::ifstream in(path_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("G ", 0) == 0) {
      (void)parse_num(line.substr(2), generation_);
    } else if (!line.empty()) {
      ++entry_count_;
    }
  }
  in.close();
  reopen_append();
}

void FileDurabilityStore::reopen_append() {
  out_.open(path_, std::ios::app);
}

void FileDurabilityStore::append(const WalRecord& rec) {
  out_ << serialize_record(rec) << '\n';
  ++entry_count_;
}

void FileDurabilityStore::flush() { out_.flush(); }

std::vector<WalRecord> FileDurabilityStore::load() {
  flush();
  std::vector<WalRecord> out;
  std::ifstream in(path_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("G ", 0) == 0) {
      (void)parse_num(line.substr(2), generation_);
      continue;
    }
    WalRecord rec;
    if (parse_record(line, rec)) out.push_back(std::move(rec));
  }
  return out;
}

void FileDurabilityStore::compact(const std::vector<WalRecord>& snapshot) {
  out_.close();
  std::ofstream rewrite(path_, std::ios::trunc);
  rewrite << "G " << generation_ << '\n';
  for (const auto& rec : snapshot) rewrite << serialize_record(rec) << '\n';
  rewrite.flush();
  rewrite.close();
  entry_count_ = snapshot.size();
  reopen_append();
}

void FileDurabilityStore::set_generation(std::uint64_t gen) {
  generation_ = gen;
  out_ << "G " << gen << '\n';
  out_.flush();
}

}  // namespace flecc::core
