// Two-level hierarchical Flecc (paper §6, future-work extension 2).
//
// The paper's protocol keeps views of a *single* component instance
// consistent through that instance's directory manager. The proposed
// extension adds a high-level, decentralized protocol between component
// *instances* (no primary copy among instances), while each instance
// keeps running plain Flecc between itself and its views.
//
// We implement the high level as anti-entropy gossip: one SyncAgent per
// instance periodically extracts the instance's state and sends it to
// peers in ring order; receivers apply it through the instance's
// application-provided merge hook if the update is newer than what they
// have already seen from that origin. The exchange is decentralized and
// needs only O(#instances) application merge knowledge — matching the
// §4.1 argument for the low level.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/messages.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"

namespace flecc::core {

/// Instance-level identifier in the high-level protocol.
using InstanceId = std::uint32_t;

namespace msg {
inline constexpr const char* kHierSyncUpdate = "flecc.hier.sync_update";

struct HierSyncUpdate {
  InstanceId origin = 0;
  std::uint64_t seq = 0;  // origin-local sequence number
  ObjectImage image;
};

inline std::size_t wire_size(const HierSyncUpdate& m) {
  return kHeaderBytes + m.image.wire_size();
}
}  // namespace msg

class SyncAgent : public net::Endpoint {
 public:
  struct Config {
    InstanceId instance = 0;
    /// Gossip period.
    sim::Duration interval = sim::msec(500);
    /// Peers contacted per round (ring rotation makes coverage uniform).
    std::size_t fanout = 1;
  };

  /// `scope` is the property set describing the replicated data slice.
  SyncAgent(net::Fabric& fabric, net::Address self, PrimaryAdapter& primary,
            props::PropertySet scope, Config cfg);
  ~SyncAgent() override;

  SyncAgent(const SyncAgent&) = delete;
  SyncAgent& operator=(const SyncAgent&) = delete;

  void add_peer(net::Address peer) { peers_.push_back(peer); }

  /// Begin periodic gossip.
  void start();
  /// Stop gossiping (in-flight messages still apply on receipt).
  void stop();

  /// Force one gossip round immediately (useful in tests).
  void gossip_once();

  void on_message(const net::Message& m) override;

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t ignored_stale() const noexcept {
    return ignored_stale_;
  }
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

 private:
  void tick();

  net::Fabric& fabric_;
  net::Address self_;
  PrimaryAdapter& primary_;
  props::PropertySet scope_;
  Config cfg_;

  std::vector<net::Address> peers_;
  std::size_t next_peer_ = 0;
  std::uint64_t seq_ = 0;
  std::map<InstanceId, std::uint64_t> seen_;
  bool running_ = false;
  net::TimerId timer_ = net::kInvalidTimerId;

  std::uint64_t rounds_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t ignored_stale_ = 0;
  sim::CounterSet stats_;
};

}  // namespace flecc::core
