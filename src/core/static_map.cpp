#include "core/static_map.hpp"

namespace flecc::core {

const char* to_string(Relation r) noexcept {
  switch (r) {
    case Relation::kNoConflict: return "no-conflict";
    case Relation::kConflict: return "conflict";
    case Relation::kDynamic: return "dynamic";
  }
  return "?";
}

std::pair<std::string, std::string> StaticMap::ordered(const std::string& a,
                                                       const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void StaticMap::set(const std::string& a, const std::string& b, Relation r) {
  entries_[ordered(a, b)] = r;
}

Relation StaticMap::query(const std::string& a, const std::string& b) const {
  auto it = entries_.find(ordered(a, b));
  return it == entries_.end() ? Relation::kDynamic : it->second;
}

}  // namespace flecc::core
