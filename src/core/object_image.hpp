// ObjectImage — the application-neutral unit of state transfer.
//
// Flecc never interprets application data; extract/merge functions map
// between the application's objects and this keyed scalar container
// (paper §4.1, "Merge/Extract methods"). Images also serve as *deltas*:
// an application may extract only changed keys and merge them key-wise.
//
// Storage is a flat key-sorted vector rather than a node-based map: a
// whole image lives in one buffer (typical field keys fit the string
// SSO), so copying an image costs one allocation, copy-assigning into a
// pooled message slot reuses the slot's capacity (zero allocations in
// steady state — see net/pool.hpp), and iteration is cache-friendly.
// The trade is O(n) inserts for out-of-order keys; extract paths emit
// keys in sorted order, so building an image stays linear.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/types.hpp"

namespace flecc::core {

using ImageValue = std::variant<std::int64_t, double, std::string>;

std::string to_string(const ImageValue& v);

class ObjectImage {
 public:
  using Field = std::pair<std::string, ImageValue>;

  ObjectImage() = default;

  void set_int(const std::string& key, std::int64_t v) { set(key, ImageValue{v}); }
  void set_real(const std::string& key, double v) { set(key, ImageValue{v}); }
  void set_str(const std::string& key, std::string v) {
    set(key, ImageValue{std::move(v)});
  }
  void set(const std::string& key, ImageValue v);

  [[nodiscard]] bool has(const std::string& key) const {
    return find(key) != nullptr;
  }
  [[nodiscard]] const ImageValue* find(const std::string& key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& key) const;
  [[nodiscard]] std::optional<double> get_real(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get_str(
      const std::string& key) const;

  bool erase(const std::string& key);

  [[nodiscard]] bool empty() const noexcept { return fields_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }

  /// Drop every field and the version, KEEPING the buffer capacity —
  /// pooled-slot reuse depends on this (never use to "free" an image).
  void clear() noexcept {
    fields_.clear();
    version_ = 0;
  }
  /// Pre-size the field buffer (extract paths that know their count).
  void reserve(std::size_t n) { fields_.reserve(n); }

  /// Key-wise overwrite: every field of `delta` replaces/creates the
  /// same field here. Returns the number of fields applied.
  std::size_t overlay(const ObjectImage& delta);

  /// The primary-assigned version this image reflects (0 = unversioned).
  [[nodiscard]] Version version() const noexcept { return version_; }
  void set_version(Version v) noexcept { version_ = v; }

  /// Simulated wire size: per-field key + value costs plus a header.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string to_string() const;

  /// Deterministic (key-sorted) iteration over Field pairs.
  [[nodiscard]] auto begin() const { return fields_.begin(); }
  [[nodiscard]] auto end() const { return fields_.end(); }

  friend bool operator==(const ObjectImage&, const ObjectImage&) = default;

 private:
  /// Sorted by key; invariant maintained by set()/erase().
  std::vector<Field> fields_;
  Version version_ = 0;
};

}  // namespace flecc::core
