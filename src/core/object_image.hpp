// ObjectImage — the application-neutral unit of state transfer.
//
// Flecc never interprets application data; extract/merge functions map
// between the application's objects and this keyed scalar container
// (paper §4.1, "Merge/Extract methods"). Images also serve as *deltas*:
// an application may extract only changed keys and merge them key-wise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "core/types.hpp"

namespace flecc::core {

using ImageValue = std::variant<std::int64_t, double, std::string>;

std::string to_string(const ImageValue& v);

class ObjectImage {
 public:
  ObjectImage() = default;

  void set_int(const std::string& key, std::int64_t v) { fields_[key] = v; }
  void set_real(const std::string& key, double v) { fields_[key] = v; }
  void set_str(const std::string& key, std::string v) {
    fields_[key] = std::move(v);
  }
  void set(const std::string& key, ImageValue v) {
    fields_[key] = std::move(v);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return fields_.count(key) != 0;
  }
  [[nodiscard]] const ImageValue* find(const std::string& key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& key) const;
  [[nodiscard]] std::optional<double> get_real(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get_str(
      const std::string& key) const;

  bool erase(const std::string& key) { return fields_.erase(key) != 0; }

  [[nodiscard]] bool empty() const noexcept { return fields_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }

  /// Key-wise overwrite: every field of `delta` replaces/creates the
  /// same field here. Returns the number of fields applied.
  std::size_t overlay(const ObjectImage& delta);

  /// The primary-assigned version this image reflects (0 = unversioned).
  [[nodiscard]] Version version() const noexcept { return version_; }
  void set_version(Version v) noexcept { version_ = v; }

  /// Simulated wire size: per-field key + value costs plus a header.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string to_string() const;

  /// Deterministic iteration.
  [[nodiscard]] auto begin() const { return fields_.begin(); }
  [[nodiscard]] auto end() const { return fields_.end(); }

  friend bool operator==(const ObjectImage&, const ObjectImage&) = default;

 private:
  std::map<std::string, ImageValue> fields_;
  Version version_ = 0;
};

}  // namespace flecc::core
