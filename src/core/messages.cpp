#include "core/messages.hpp"

namespace flecc::core::msg {

std::size_t wire_size(const props::PropertySet& ps) {
  std::size_t bytes = 4;  // count
  for (const auto& [name, dom] : ps) {
    bytes += name.size() + 2;
    if (dom.is_interval()) {
      bytes += 16;
    } else {
      bytes += 2;
      for (const auto& v : dom.as_discrete()) {
        if (const auto* s = std::get_if<std::string>(&v)) {
          bytes += s->size() + 2;
        } else {
          bytes += 8;
        }
      }
    }
  }
  return bytes;
}

}  // namespace flecc::core::msg
