// Reliable-delivery policy for the request/reply layer (PROTOCOL.md,
// "Fault model & reliability layer").
//
// The paper (§4.1) assumes lossless RMI and a live original component;
// this policy parameterizes the machinery we add underneath the
// protocol so neither assumption is needed: per-request timeouts with
// exponential backoff + deterministic jitter, an attempt cap after
// which the cache manager fails over to reconnect(), and the liveness
// heartbeat cadence. All randomness flows through sim::Rng so runs are
// bit-for-bit reproducible for a given seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace flecc::core {

struct RetryPolicy {
  /// Timeout armed for the first attempt of every request.
  sim::Duration base_timeout = sim::seconds(1);
  /// Multiplier applied per retransmission (exponential backoff).
  double backoff = 2.0;
  /// Ceiling for any single attempt's timeout.
  sim::Duration max_timeout = sim::seconds(8);
  /// Uniform jitter: each timeout is scaled by [1-jitter, 1+jitter].
  double jitter = 0.2;
  /// Total sends per request (first transmission included). The op
  /// fails over to reconnect() once they are exhausted. <= 1 disables
  /// retransmission entirely (the seed's fire-and-forget behavior).
  std::size_t max_attempts = 6;
  /// Seed for the jitter process; mixed with the endpoint address so
  /// every cache manager draws an independent deterministic stream.
  std::uint64_t seed = 0x8e11ab1eULL;
  /// Overall wall-clock budget per operation, measured from its first
  /// transmission across every retransmission, failover, and Busy
  /// back-off. 0 = no deadline (the pre-existing behavior: reconnect()
  /// resets the attempt budget, so an op against a permanently dead
  /// directory retries forever). When the deadline expires the op gives
  /// up terminally: `reliability.exhausted` is counted, a
  /// retry_exhausted trace event is emitted, Config::on_give_up fires,
  /// and the op's completion runs so callers never wedge.
  sim::Duration deadline = 0;

  [[nodiscard]] bool enabled() const noexcept { return max_attempts > 1; }

  /// Timeout for attempt number `attempt` (1-based), jittered.
  [[nodiscard]] sim::Duration timeout_for(std::size_t attempt,
                                          sim::Rng& rng) const noexcept {
    double t = static_cast<double>(base_timeout);
    for (std::size_t i = 1; i < attempt; ++i) t *= backoff;
    t = std::min(t, static_cast<double>(max_timeout));
    if (jitter > 0.0) t *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    return std::max<sim::Duration>(1, static_cast<sim::Duration>(t));
  }
};

}  // namespace flecc::core
