// The static sharing map (paper §4.1, "Data properties").
//
// The paper encodes statically-known sharing relationships in a
// symmetric matrix over views: 1 = share data, 0 = never share,
// -1 = decide dynamically via property intersection. Because views
// register dynamically, our map is keyed by *view name* (the component
// type string, e.g. "air.TravelAgent"); the directory resolves pairs of
// registered views through their names. Unlisted pairs default to
// kDynamic, preserving the paper's fallback behavior.
#pragma once

#include <map>
#include <string>
#include <utility>

namespace flecc::core {

enum class Relation : std::int8_t {
  kNoConflict = 0,  // matrix entry 0
  kConflict = 1,    // matrix entry 1
  kDynamic = -1,    // matrix entry -1: use dynConfl on property sets
};

const char* to_string(Relation r) noexcept;

class StaticMap {
 public:
  /// Record the relation between two view names (symmetric).
  void set(const std::string& a, const std::string& b, Relation r);

  /// Query; unlisted pairs are kDynamic.
  [[nodiscard]] Relation query(const std::string& a,
                               const std::string& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  static std::pair<std::string, std::string> ordered(const std::string& a,
                                                     const std::string& b);
  std::map<std::pair<std::string, std::string>, Relation> entries_;
};

}  // namespace flecc::core
