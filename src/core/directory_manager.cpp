#include "core/directory_manager.hpp"

#include <algorithm>
#include <utility>

#include "trigger/errors.hpp"

namespace flecc::core {

DirectoryManager::DirectoryManager(net::Fabric& fabric, net::Address self,
                                   PrimaryAdapter& primary, Config cfg)
    : fabric_(fabric), self_(self), primary_(primary), cfg_(cfg) {
  fabric_.bind(self_, *this);
}

DirectoryManager::~DirectoryManager() { fabric_.unbind(self_); }

void DirectoryManager::on_message(const net::Message& m) {
  if (m.type == msg::kRegisterReq) return handle_register(m);
  if (m.type == msg::kInitReq) return handle_init(m);
  if (m.type == msg::kPullReq) return handle_pull(m);
  if (m.type == msg::kPushUpdate) return handle_push(m);
  if (m.type == msg::kAcquireReq) return handle_acquire(m);
  if (m.type == msg::kInvalidateAck) return handle_invalidate_ack(m);
  if (m.type == msg::kFetchReply) return handle_fetch_reply(m);
  if (m.type == msg::kModeChangeReq) return handle_mode_change(m);
  if (m.type == msg::kKillReq) return handle_kill(m);
  stats_.inc("msg.unknown");
}

// ---- lookup helpers -----------------------------------------------------

DirectoryManager::ViewRecord* DirectoryManager::find(ViewId v) {
  auto it = views_.find(v);
  return it == views_.end() ? nullptr : &it->second;
}

const DirectoryManager::ViewRecord* DirectoryManager::find(ViewId v) const {
  auto it = views_.find(v);
  return it == views_.end() ? nullptr : &it->second;
}

bool DirectoryManager::is_active(ViewId v) const {
  const auto* r = find(v);
  return r != nullptr && r->active;
}

bool DirectoryManager::is_exclusive(ViewId v) const {
  const auto* r = find(v);
  return r != nullptr && r->exclusive;
}

Mode DirectoryManager::mode_of(ViewId v) const {
  const auto* r = find(v);
  return r == nullptr ? Mode::kWeak : r->mode;
}

std::uint64_t DirectoryManager::quality(ViewId v) const {
  const auto* r = find(v);
  if (r == nullptr) return 0;
  return log_.unseen_if(r->last_sync, [&](const MergeRecord& rec) {
    if (rec.source == v) return false;
    // Live sources go through the full conflict relation (static map
    // first); for departed views fall back to the property snapshot the
    // log kept.
    if (find(rec.source) != nullptr) return conflicts(v, rec.source);
    return rec.touched.conflicts_with(r->properties);
  });
}

bool DirectoryManager::conflicts(ViewId a, ViewId b) const {
  if (a == b) return false;
  const auto* ra = find(a);
  const auto* rb = find(b);
  if (ra == nullptr || rb == nullptr) return false;
  switch (static_map_.query(ra->name, rb->name)) {
    case Relation::kConflict:
      return true;
    case Relation::kNoConflict:
      return false;
    case Relation::kDynamic:
      break;
  }
  // Definition 1: dynConfl via property-set intersection.
  return ra->properties.conflicts_with(rb->properties);
}

std::vector<ViewId> DirectoryManager::conflicting_views(ViewId v) const {
  std::vector<ViewId> out;
  for (const auto& [id, rec] : views_) {
    (void)rec;
    if (id != v && conflicts(v, id)) out.push_back(id);
  }
  return out;
}

void DirectoryManager::send_to_view(const ViewRecord& rec, const char* type,
                                    std::any payload, std::size_t bytes) {
  fabric_.send(self_, rec.cache_addr, type, std::move(payload), bytes);
}

// ---- registration -------------------------------------------------------

void DirectoryManager::handle_register(const net::Message& m) {
  const auto& req = net::payload_as<msg::RegisterReq>(m);
  stats_.inc("op.register");

  auto reject = [&](const std::string& why) {
    stats_.inc("op.register.rejected");
    msg::RegisterAck ack{kInvalidViewId, false, why};
    const auto bytes = msg::wire_size(ack);
    fabric_.send(self_, m.from, msg::kRegisterAck, ack, bytes);
  };

  if (req.view_name.empty()) {
    return reject("view name must be non-empty");
  }
  // A genuine view's shared data is a subset of the component's data
  // (paper §3.2: V_v ∩ V_c ≠ ∅, and the view only shares what the
  // component defines).
  if (!req.properties.subset_of(primary_.data_properties())) {
    return reject("view properties are not a subset of component data");
  }
  std::optional<trigger::Trigger> validity;
  if (!req.validity_trigger.empty()) {
    try {
      validity.emplace(req.validity_trigger);
    } catch (const trigger::ParseError& e) {
      return reject(std::string("bad validity trigger: ") + e.what());
    }
  }

  // A registration from an address we already know supersedes the old
  // record: the cache manager reconnected (fail-safe path) and its
  // previous incarnation is a ghost.
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->second.cache_addr == m.from) {
      const ViewId ghost = it->first;
      it = views_.erase(it);
      complete_fetch_or_acquire_for_dead_view(ghost);
      stats_.inc("op.register.superseded");
    } else {
      ++it;
    }
  }

  ViewRecord rec;
  rec.id = next_view_id_++;
  rec.cache_addr = m.from;
  rec.name = req.view_name;
  rec.properties = req.properties;
  rec.mode = req.mode;
  rec.validity = std::move(validity);
  const ViewId id = rec.id;
  views_.emplace(id, std::move(rec));

  msg::RegisterAck ack{id, true, {}};
  const auto bytes = msg::wire_size(ack);
  fabric_.send(self_, m.from, msg::kRegisterAck, ack, bytes);
}

// ---- init ---------------------------------------------------------------

void DirectoryManager::handle_init(const net::Message& m) {
  const auto& req = net::payload_as<msg::InitReq>(m);
  stats_.inc("op.init");
  auto* rec = find(req.view);
  if (rec == nullptr) return;
  msg::InitReply reply;
  reply.image = primary_.extract_from_object(rec->properties);
  reply.image.set_version(version_);
  rec->active = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  const auto bytes = msg::wire_size(reply);
  send_to_view(*rec, msg::kInitReply, std::move(reply), bytes);
}

// ---- weak-mode pull (with validity-triggered demand fetch) ---------------

void DirectoryManager::handle_pull(const net::Message& m) {
  const auto& req = net::payload_as<msg::PullReq>(m);
  stats_.inc("op.pull");
  auto* rec = find(req.view);
  if (rec == nullptr) return;

  const std::uint64_t unseen = quality(req.view);

  bool need_fetch = false;
  if (rec->validity.has_value()) {
    // Validity trigger: true ⇒ the primary's data is "good enough".
    // Environment: t (global time, ms), _age (ms since last merge into
    // the primary), _unseen (the requester's quality), layered over any
    // variables the primary component exposes.
    trigger::VariableStore meta;
    meta.set("t", sim::to_ms(fabric_.now()));
    meta.set("_age", sim::to_ms(fabric_.now() - last_merge_at_));
    meta.set("_unseen", static_cast<double>(unseen));
    bool good;
    if (const trigger::Env* pv = primary_.variables(); pv != nullptr) {
      trigger::LayeredEnv env(meta, *pv);
      good = rec->validity->evaluate(env);
    } else {
      good = rec->validity->evaluate(meta);
    }
    need_fetch = !good;
  }
  if (cfg_.use_rw_semantics && req.intent == AccessIntent::kReadOnly) {
    // Extension 1 (§6): read-only executions tolerate the primary's
    // current data; never chase conflicting views for updates.
    need_fetch = false;
    stats_.inc("op.pull.ro_shortcut");
  }

  std::set<ViewId> candidates;
  if (need_fetch) {
    for (const auto& [id, other] : views_) {
      if (id == req.view || !other.active) continue;
      if (conflicts(req.view, id)) candidates.insert(id);
    }
  }

  if (candidates.empty()) {
    PendingPull pp;
    pp.requester = req.view;
    pp.unseen_before = unseen;
    finish_pull(pp);
    return;
  }

  stats_.inc("op.pull.fetch_round");
  PendingPull pp;
  pp.token = next_token_++;
  pp.requester = req.view;
  pp.outstanding = candidates;
  pp.unseen_before = unseen;
  const std::uint64_t token = pp.token;
  for (const ViewId id : candidates) {
    stats_.inc("op.fetch.sent");
    msg::FetchReq freq{token};
    send_to_view(views_.at(id), msg::kFetchReq, freq, msg::wire_size(freq));
  }
  pp.timeout = fabric_.schedule(self_, cfg_.fetch_timeout, [this, token] {
    auto it = pending_pulls_.find(token);
    if (it == pending_pulls_.end()) return;
    stats_.inc("op.fetch.timeout");
    PendingPull pp2 = std::move(it->second);
    pending_pulls_.erase(it);
    finish_pull(pp2);
  });
  pending_pulls_.emplace(token, std::move(pp));
}

void DirectoryManager::finish_pull(PendingPull& pp) {
  if (pp.timeout != net::kInvalidTimerId) fabric_.cancel_timer(pp.timeout);
  auto* rec = find(pp.requester);
  if (rec == nullptr) return;  // requester died while we fetched
  msg::PullReply reply;
  reply.image = primary_.extract_from_object(rec->properties);
  reply.image.set_version(version_);
  reply.unseen_before = pp.unseen_before;
  rec->active = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  const auto bytes = msg::wire_size(reply);
  send_to_view(*rec, msg::kPullReply, std::move(reply), bytes);
}

void DirectoryManager::handle_fetch_reply(const net::Message& m) {
  const auto& rep = net::payload_as<msg::FetchReply>(m);
  auto it = pending_pulls_.find(rep.token);
  if (it == pending_pulls_.end()) {
    stats_.inc("op.fetch.late");
    return;
  }
  if (rep.dirty) {
    const auto* src = find(rep.view);
    if (src != nullptr) {
      merge_update(rep.image, rep.view, src->properties);
    }
  }
  it->second.outstanding.erase(rep.view);
  if (it->second.outstanding.empty()) {
    PendingPull pp = std::move(it->second);
    pending_pulls_.erase(it);
    finish_pull(pp);
  }
}

// ---- push ---------------------------------------------------------------

void DirectoryManager::handle_push(const net::Message& m) {
  const auto& req = net::payload_as<msg::PushUpdate>(m);
  stats_.inc("op.push");
  auto* rec = find(req.view);
  if (rec == nullptr) return;
  merge_update(req.image, req.view, rec->properties);
  rec->active = true;
  msg::PushAck ack{version_};
  send_to_view(*rec, msg::kPushAck, ack, msg::wire_size(ack));
}

void DirectoryManager::merge_update(const ObjectImage& image, ViewId source,
                                    const props::PropertySet& touched) {
  primary_.merge_into_object(image, touched);
  ++version_;
  last_merge_at_ = fabric_.now();
  log_.record(MergeRecord{version_, source, touched, fabric_.now()});
  stats_.inc("merge.count");
  maybe_prune_log();

  if (cfg_.notify_on_update) {
    for (const auto& [id, other] : views_) {
      if (id == source || !other.active) continue;
      if (!conflicts(source, id)) continue;
      msg::UpdateNotify note{version_};
      send_to_view(other, msg::kUpdateNotify, note, msg::wire_size(note));
      stats_.inc("op.notify.sent");
    }
  }
}

void DirectoryManager::maybe_prune_log() {
  if (log_.size() <= cfg_.merge_log_cap) return;
  Version floor = version_;
  for (const auto& [id, rec] : views_) {
    (void)id;
    floor = std::min(floor, rec.last_sync);
  }
  log_.prune_below(floor);
}

// ---- strong-mode acquire/invalidate --------------------------------------

void DirectoryManager::handle_acquire(const net::Message& m) {
  const auto& req = net::payload_as<msg::AcquireReq>(m);
  stats_.inc("op.acquire");
  if (find(req.view) == nullptr) return;
  acquire_queue_.push_back(req);
  if (!acquire_inflight_.has_value()) start_next_acquire();
}

void DirectoryManager::start_next_acquire() {
  while (!acquire_queue_.empty()) {
    const msg::AcquireReq req = acquire_queue_.front();
    acquire_queue_.erase(acquire_queue_.begin());
    auto* rec = find(req.view);
    if (rec == nullptr) continue;  // requester died while queued

    PendingAcquire pa;
    pa.requester = req.view;
    pa.epoch = next_epoch_++;

    // Read-only acquires under the read/write-semantics extension can
    // share: they do not invalidate other read-only holders. A plain
    // Flecc acquire invalidates every conflicting active view (paper
    // Fig. 2, steps 12-14).
    const bool ro_share =
        cfg_.use_rw_semantics && req.intent == AccessIntent::kReadOnly;
    for (const auto& [id, other] : views_) {
      if (id == req.view || !other.active) continue;
      if (!conflicts(req.view, id)) continue;
      if (ro_share && !other.exclusive) continue;  // RO can coexist
      pa.awaiting.insert(id);
    }

    if (pa.awaiting.empty()) {
      finish_acquire(pa);
      continue;  // finish_acquire did not set inflight; serve next
    }

    for (const ViewId id : pa.awaiting) {
      stats_.inc("op.acquire.invalidations");
      msg::InvalidateReq inv{pa.epoch};
      send_to_view(views_.at(id), msg::kInvalidateReq, inv,
                   msg::wire_size(inv));
    }
    const std::uint64_t epoch = pa.epoch;
    // Straggler protection: if an invalidated view never acks (crash),
    // proceed after the timeout.
    pa.timeout = fabric_.schedule(self_, cfg_.fetch_timeout, [this, epoch] {
      if (!acquire_inflight_.has_value() ||
          acquire_inflight_->epoch != epoch) {
        return;
      }
      stats_.inc("op.acquire.timeout");
      PendingAcquire pa2 = std::move(*acquire_inflight_);
      acquire_inflight_.reset();
      finish_acquire(pa2);
      if (!acquire_inflight_.has_value()) start_next_acquire();
    });
    acquire_inflight_ = std::move(pa);
    return;
  }
}

void DirectoryManager::finish_acquire(PendingAcquire& pa) {
  if (pa.timeout != net::kInvalidTimerId) fabric_.cancel_timer(pa.timeout);
  auto* rec = find(pa.requester);
  if (rec == nullptr) return;
  rec->active = true;
  rec->exclusive = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  msg::AcquireGrant grant;
  grant.image = primary_.extract_from_object(rec->properties);
  grant.image.set_version(version_);
  const auto bytes = msg::wire_size(grant);
  send_to_view(*rec, msg::kAcquireGrant, std::move(grant), bytes);
}

void DirectoryManager::handle_invalidate_ack(const net::Message& m) {
  const auto& ack = net::payload_as<msg::InvalidateAck>(m);
  if (!acquire_inflight_.has_value() ||
      acquire_inflight_->epoch != ack.epoch) {
    stats_.inc("op.invalidate.stale_ack");
    return;
  }
  if (ack.dirty) {
    const auto* src = find(ack.view);
    if (src != nullptr) merge_update(ack.image, ack.view, src->properties);
  }
  if (auto* rec = find(ack.view); rec != nullptr) {
    rec->active = false;
    rec->exclusive = false;
  }
  acquire_inflight_->awaiting.erase(ack.view);
  if (acquire_inflight_->awaiting.empty()) {
    PendingAcquire pa = std::move(*acquire_inflight_);
    acquire_inflight_.reset();
    finish_acquire(pa);
    if (!acquire_inflight_.has_value()) start_next_acquire();
  }
}

// ---- mode change ----------------------------------------------------------

void DirectoryManager::handle_mode_change(const net::Message& m) {
  const auto& req = net::payload_as<msg::ModeChangeReq>(m);
  stats_.inc("op.mode_change");
  auto* rec = find(req.view);
  if (rec == nullptr) return;
  rec->mode = req.mode;
  if (req.mode == Mode::kWeak) {
    // Leaving strong: surrender exclusivity; the copy stays valid.
    rec->exclusive = false;
  } else {
    // Entering strong: the view must (re)acquire before working.
    rec->active = false;
    rec->exclusive = false;
  }
  msg::ModeChangeAck ack{req.mode};
  send_to_view(*rec, msg::kModeChangeAck, ack, msg::wire_size(ack));
}

// ---- kill -----------------------------------------------------------------

void DirectoryManager::handle_kill(const net::Message& m) {
  const auto& req = net::payload_as<msg::KillReq>(m);
  stats_.inc("op.kill");
  auto* rec = find(req.view);
  if (rec == nullptr) return;
  if (req.dirty) {
    merge_update(req.final_image, req.view, rec->properties);
  }
  const net::Address addr = rec->cache_addr;
  views_.erase(req.view);
  complete_fetch_or_acquire_for_dead_view(req.view);
  msg::KillAck ack;
  fabric_.send(self_, addr, msg::kKillAck, ack, msg::wire_size(ack));
}

void DirectoryManager::complete_fetch_or_acquire_for_dead_view(ViewId v) {
  // A dead view can no longer answer FetchReq/InvalidateReq; settle any
  // round that was waiting on it.
  std::vector<std::uint64_t> done_tokens;
  for (auto& [token, pp] : pending_pulls_) {
    pp.outstanding.erase(v);
    if (pp.outstanding.empty()) done_tokens.push_back(token);
  }
  for (const auto token : done_tokens) {
    auto it = pending_pulls_.find(token);
    PendingPull pp = std::move(it->second);
    pending_pulls_.erase(it);
    finish_pull(pp);
  }

  if (acquire_inflight_.has_value()) {
    if (acquire_inflight_->requester == v) {
      if (acquire_inflight_->timeout != net::kInvalidTimerId) {
        fabric_.cancel_timer(acquire_inflight_->timeout);
      }
      acquire_inflight_.reset();
      start_next_acquire();
    } else {
      acquire_inflight_->awaiting.erase(v);
      if (acquire_inflight_->awaiting.empty()) {
        PendingAcquire pa = std::move(*acquire_inflight_);
        acquire_inflight_.reset();
        finish_acquire(pa);
        if (!acquire_inflight_.has_value()) start_next_acquire();
      }
    }
  }
}

}  // namespace flecc::core
