#include "core/directory_manager.hpp"

#include <algorithm>
#include <utility>

#include "trigger/errors.hpp"

namespace flecc::core {

namespace {

/// Settled fetch/invalidate rounds remembered for straggler replies and
/// push-borne echoes. Sized so a round is still in the window when the
/// echo of its lost reply arrives on the sender's next push (typically
/// within a handful of rounds).
constexpr std::size_t kSettledRoundWindow = 256;

/// Merged push/kill request ids remembered across restarts (per
/// directory, not per sender). Sized like the dedup window but global:
/// it only needs to cover requests whose CM might re-issue them after a
/// crash, i.e. the recent past.
constexpr std::size_t kMergedOpWindow = 1024;

/// Generation stamp of a message; 0 = unknown (legacy/unfenced).
std::uint64_t generation_of(const net::Message& m) {
  if (m.type == msg::kRegisterReq) {
    return net::payload_as<msg::RegisterReq>(m).gen;
  }
  if (m.type == msg::kInitReq) return net::payload_as<msg::InitReq>(m).gen;
  if (m.type == msg::kPullReq) return net::payload_as<msg::PullReq>(m).gen;
  if (m.type == msg::kPushUpdate) {
    return net::payload_as<msg::PushUpdate>(m).gen;
  }
  if (m.type == msg::kAcquireReq) {
    return net::payload_as<msg::AcquireReq>(m).gen;
  }
  if (m.type == msg::kModeChangeReq) {
    return net::payload_as<msg::ModeChangeReq>(m).gen;
  }
  if (m.type == msg::kKillReq) return net::payload_as<msg::KillReq>(m).gen;
  if (m.type == msg::kInvalidateAck) {
    return net::payload_as<msg::InvalidateAck>(m).gen;
  }
  if (m.type == msg::kFetchReply) {
    return net::payload_as<msg::FetchReply>(m).gen;
  }
  if (m.type == msg::kHeartbeat) {
    return net::payload_as<msg::Heartbeat>(m).gen;
  }
  if (m.type == msg::kRebuildReply) {
    return net::payload_as<msg::RebuildReply>(m).gen;
  }
  if (m.type == msg::kHandoffState) {
    return net::payload_as<msg::HandoffState>(m).gen;
  }
  if (m.type == msg::kViewMoveAck) {
    return net::payload_as<msg::ViewMoveAck>(m).gen;
  }
  return 0;
}

/// Request id of a framed cache-manager request; 0 for unframed
/// messages and for non-request types (commands, acks, heartbeats).
std::uint64_t request_id_of(const net::Message& m) {
  if (m.type == msg::kRegisterReq) {
    return net::payload_as<msg::RegisterReq>(m).req;
  }
  if (m.type == msg::kInitReq) return net::payload_as<msg::InitReq>(m).req;
  if (m.type == msg::kPullReq) return net::payload_as<msg::PullReq>(m).req;
  if (m.type == msg::kPushUpdate) {
    return net::payload_as<msg::PushUpdate>(m).req;
  }
  if (m.type == msg::kAcquireReq) {
    return net::payload_as<msg::AcquireReq>(m).req;
  }
  if (m.type == msg::kModeChangeReq) {
    return net::payload_as<msg::ModeChangeReq>(m).req;
  }
  if (m.type == msg::kKillReq) return net::payload_as<msg::KillReq>(m).req;
  return 0;
}

}  // namespace

DirectoryManager::DirectoryManager(net::Fabric& fabric, net::Address self,
                                   PrimaryAdapter& primary, Config cfg)
    : fabric_(fabric), self_(self), primary_(primary), cfg_(cfg) {
  std::size_t replayed = 0;
  bool recovering = false;
  if (cfg_.durability != nullptr) {
    const std::uint64_t prev = cfg_.durability->generation();
    recovering = prev > 0;  // a previous incarnation existed: restart
    generation_ = prev + 1;
    replayed = replay_checkpoint(cfg_.durability->load());
    // Durable immediately: even if every WAL append is later lost, the
    // next incarnation knows this one existed and fences its traffic.
    cfg_.durability->set_generation(generation_);
  }
  // Generation-scoped id spaces: round ids and versions from different
  // incarnations never collide, and a round id reveals which
  // incarnation minted it (pre_crash_round()).
  next_token_ = (generation_ << 32) | 1;
  next_epoch_ = (generation_ << 32) | 1;
  if (generation_ > 1) {
    version_ = generation_ << 32;
    // The Lamport clock is also generation-scoped: jumping forward is
    // always legal, and it keeps this incarnation's stamps past every
    // pre-crash one (the monitor checks per-agent monotonicity).
    clock_.observe(generation_ << 32);
  }

  fabric_.bind(self_, *this);
  fabric_.set_clock(self_, &clock_);
  if (cfg_.trace != nullptr) cfg_.trace->set_clock(&clock_);
  arm_liveness_timer();

  if (recovering) {
    stats_.inc("recovery.restart");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                      obs::EventKind::kRecoveryBegin, obs::Role::kDirectory,
                      obs::agent_key(self_), 0, "restart", generation_,
                      static_cast<std::uint64_t>(replayed));
    if (views_.empty()) {
      // Empty (or fully lost) checkpoint: nobody to probe. Surviving
      // cache managers rebuild the state themselves — their heartbeats
      // are fenced (known == false), they re-register, and their
      // echoes/pushes re-deliver any unconfirmed extractions.
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                        obs::EventKind::kRecoveryEnd, obs::Role::kDirectory,
                        obs::agent_key(self_), 0, "rebuilt", generation_, 0);
      stats_.inc("recovery.completed");
    } else {
      start_rebuild();
    }
  }
}

DirectoryManager::~DirectoryManager() {
  if (liveness_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(liveness_timer_);
  }
  for (auto& [view, mig] : migrations_) {
    (void)view;
    if (mig.resend_timer != net::kInvalidTimerId) {
      fabric_.cancel_timer(mig.resend_timer);
    }
  }
  if (rebuild_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(rebuild_timer_);
  }
  if (rebuild_resend_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(rebuild_resend_timer_);
  }
  fabric_.set_clock(self_, nullptr);
  fabric_.unbind(self_);
}

void DirectoryManager::on_message(const net::Message& m) {
  // Generation fencing: a message stamped by a previous incarnation (or
  // addressed to one) is rejected before the dedup window can replay a
  // cached pre-crash reply. gen == 0 means unfenced (legacy senders and
  // first contact) and passes through.
  if (const std::uint64_t gen = generation_of(m);
      gen != 0 && gen != generation_) {
    stats_.inc("recovery.fenced");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgFenced,
                      obs::Role::kDirectory, obs::agent_key(self_),
                      obs::span_id(m.from, request_id_of(m)), m.type.c_str(),
                      gen, generation_);
    if (m.type == msg::kHeartbeat) {
      // known == false drives the sender into its reconnect path, which
      // re-registers under the current generation.
      const auto& hb = net::payload_as<msg::Heartbeat>(m);
      msg::HeartbeatAck ack{hb.view, hb.seq, false, generation_};
      fabric_.send(self_, m.from, msg::kHeartbeatAck, box(ack),
                   msg::wire_size(ack));
    } else if (const std::uint64_t rid = request_id_of(m); rid != 0) {
      // Framed request: nack (never cached) so the sender aborts the op
      // and re-issues it under the current generation.
      send_nack(m.from, kInvalidViewId, rid, "stale generation");
    }
    return;
  }

  if (m.type == msg::kHeartbeat) return handle_heartbeat(m);

  // Idempotent replay: a framed request we have already seen is either
  // answered from the cached reply (completed) or dropped (a round for
  // it is still in flight; the eventual reply will reach the sender).
  if (const std::uint64_t rid = request_id_of(m); rid != 0) {
    if (DedupEntry* e = find_dedup(m.from, rid); e != nullptr) {
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kDedupHit,
                        obs::Role::kDirectory, obs::agent_key(self_),
                        obs::span_id(m.from, rid), m.type.c_str(),
                        e->completed ? 1 : 0);
      if (e->completed) {
        stats_.inc("msg.duplicate.replayed");
        fabric_.send(self_, m.from, e->type, e->payload, e->bytes);
      } else {
        stats_.inc("msg.duplicate.dropped");
      }
      return;
    }
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kDirectory, obs::agent_key(self_),
                      obs::span_id(m.from, rid), m.type.c_str());
  }

  if (m.type == msg::kRegisterReq) return handle_register(m);
  if (m.type == msg::kInitReq) return handle_init(m);
  if (m.type == msg::kPullReq) return handle_pull(m);
  if (m.type == msg::kPushUpdate) return handle_push(m);
  if (m.type == msg::kAcquireReq) return handle_acquire(m);
  if (m.type == msg::kInvalidateAck) return handle_invalidate_ack(m);
  if (m.type == msg::kFetchReply) return handle_fetch_reply(m);
  if (m.type == msg::kModeChangeReq) return handle_mode_change(m);
  if (m.type == msg::kKillReq) return handle_kill(m);
  if (m.type == msg::kRebuildReply) return handle_rebuild_reply(m);
  if (m.type == msg::kHandoffState) return handle_handoff_state(m);
  if (m.type == msg::kViewMoveAck) return handle_view_move_ack(m);
  if (m.type == msg::kBusy) {
    // A fabric-synthesized Busy for one of our commands: the command's
    // round timeout + resends already cover a slow receiver, so the
    // directory just counts it.
    stats_.inc("flow.busy.ignored");
    return;
  }
  stats_.inc("msg.unknown");
}

// ---- lookup helpers -----------------------------------------------------

DirectoryManager::ViewRecord* DirectoryManager::find(ViewId v) {
  auto it = views_.find(v);
  return it == views_.end() ? nullptr : &it->second;
}

const DirectoryManager::ViewRecord* DirectoryManager::find(ViewId v) const {
  auto it = views_.find(v);
  return it == views_.end() ? nullptr : &it->second;
}

bool DirectoryManager::is_active(ViewId v) const {
  const auto* r = find(v);
  return r != nullptr && r->active;
}

bool DirectoryManager::is_exclusive(ViewId v) const {
  const auto* r = find(v);
  return r != nullptr && r->exclusive;
}

Mode DirectoryManager::mode_of(ViewId v) const {
  const auto* r = find(v);
  return r == nullptr ? Mode::kWeak : r->mode;
}

std::uint64_t DirectoryManager::quality(ViewId v) const {
  const auto* r = find(v);
  if (r == nullptr) return 0;
  return log_.unseen_if(r->last_sync, [&](const MergeRecord& rec) {
    if (rec.source == v) return false;
    // Live sources go through the full conflict relation (static map
    // first); for departed views fall back to the property snapshot the
    // log kept.
    if (find(rec.source) != nullptr) return conflicts(v, rec.source);
    return rec.touched.conflicts_with(r->properties);
  });
}

bool DirectoryManager::conflicts(ViewId a, ViewId b) const {
  if (a == b) return false;
  const auto* ra = find(a);
  const auto* rb = find(b);
  if (ra == nullptr || rb == nullptr) return false;
  switch (static_map_.query(ra->name, rb->name)) {
    case Relation::kConflict:
      return true;
    case Relation::kNoConflict:
      return false;
    case Relation::kDynamic:
      break;
  }
  // Definition 1: dynConfl via property-set intersection.
  return ra->properties.conflicts_with(rb->properties);
}

std::vector<ViewId> DirectoryManager::conflicting_views(ViewId v) const {
  std::vector<ViewId> out;
  for (const auto& [id, rec] : views_) {
    (void)rec;
    if (id != v && conflicts(v, id)) out.push_back(id);
  }
  return out;
}

void DirectoryManager::send_to_view(const ViewRecord& rec, const char* type,
                                    std::any payload, std::size_t bytes) {
  fabric_.send(self_, rec.cache_addr, type, std::move(payload), bytes);
}

// ---- reliability helpers --------------------------------------------------

DirectoryManager::DedupEntry* DirectoryManager::find_dedup(
    const net::Address& from, std::uint64_t req) {
  if (req == 0 || cfg_.dedup_window == 0) return nullptr;
  auto it = dedup_.find(from);
  if (it == dedup_.end()) return nullptr;
  for (auto& e : it->second) {
    if (e.req == req) return &e;
  }
  return nullptr;
}

void DirectoryManager::note_in_progress(const net::Address& from,
                                        std::uint64_t req) {
  if (req == 0 || cfg_.dedup_window == 0) return;
  auto& win = dedup_[from];
  win.push_back(DedupEntry{req, false, {}, {}, 0});
  while (win.size() > cfg_.dedup_window) win.pop_front();
}

void DirectoryManager::reply(const net::Address& to, std::uint64_t req,
                             const char* type, std::any payload,
                             std::size_t bytes) {
  if (req != 0 && cfg_.dedup_window != 0) {
    DedupEntry* e = find_dedup(to, req);
    if (e == nullptr) {
      note_in_progress(to, req);
      e = find_dedup(to, req);
    }
    if (e != nullptr) {
      e->completed = true;
      e->type = type;
      e->payload = payload;
      e->bytes = bytes;
    }
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    obs::span_id(to, req), type);
  fabric_.send(self_, to, type, std::move(payload), bytes);
}

void DirectoryManager::send_nack(const net::Address& to, ViewId view,
                                 std::uint64_t req, const char* reason) {
  stats_.inc("op.nack.sent");
  msg::OpNack nack{view, reason, req, generation_};
  const auto bytes = msg::wire_size(nack);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    obs::span_id(to, req), msg::kOpNack, view);
  fabric_.send(self_, to, msg::kOpNack, box(std::move(nack)), bytes);
}

void DirectoryManager::send_busy(const net::Address& to, ViewId view,
                                 std::uint64_t req, const char* reason) {
  stats_.inc("flow.busy.sent");
  msg::Busy busy{view, reason, cfg_.busy_retry_after, req, generation_};
  const auto bytes = msg::wire_size(busy);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kLoadShed,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    obs::span_id(to, req), reason, view);
  fabric_.send(self_, to, msg::kBusy, box(std::move(busy)), bytes);
}

void DirectoryManager::forget_in_progress(const net::Address& from,
                                          std::uint64_t req) {
  if (req == 0 || cfg_.dedup_window == 0) return;
  auto it = dedup_.find(from);
  if (it == dedup_.end()) return;
  auto& win = it->second;
  for (auto e = win.begin(); e != win.end(); ++e) {
    if (e->req == req && !e->completed) {
      win.erase(e);
      return;
    }
  }
}

std::size_t DirectoryManager::open_rounds_of(ViewId v) const {
  std::size_t n = 0;
  for (const auto& [token, pp] : pending_pulls_) {
    (void)token;
    if (pp.requester == v) ++n;
  }
  return n;
}

void DirectoryManager::arm_liveness_timer() {
  if (cfg_.liveness_timeout <= 0) return;
  // Daemon: liveness sweeps must not keep run-to-quiescence alive.
  liveness_timer_ = fabric_.schedule_daemon(
      self_, std::max<sim::Duration>(1, cfg_.liveness_timeout / 2),
      [this] { liveness_sweep(); });
}

void DirectoryManager::liveness_sweep() {
  liveness_timer_ = net::kInvalidTimerId;
  const sim::Time now = fabric_.now();
  std::vector<ViewId> dead;
  for (const auto& [id, rec] : views_) {
    if (now - rec.last_seen_at > cfg_.liveness_timeout) dead.push_back(id);
  }
  for (const ViewId id : dead) {
    stats_.inc("view.evicted.liveness");
    const bool held_token = views_.at(id).exclusive;
    FLECC_TRACE_EVENT(cfg_.trace, now, obs::EventKind::kViewEvicted,
                      obs::Role::kDirectory, obs::agent_key(self_), 0,
                      views_.at(id).name.c_str(), id,
                      static_cast<std::uint64_t>(now -
                                                 views_.at(id).last_seen_at));
    views_.erase(id);
    complete_fetch_or_acquire_for_dead_view(id);
    if (held_token) {
      // A dead STRONG holder's token is released to the FIFO acquire
      // queue in the same sweep, not left for the next request (or a
      // round timeout) to discover. Traffic from the dead incarnation
      // is fenced at re-registration (stale incarnation/generation).
      stats_.inc("view.evicted.strong_reclaim");
      if (!acquire_inflight_.has_value()) start_next_acquire();
    }
  }
  arm_liveness_timer();
}

void DirectoryManager::handle_heartbeat(const net::Message& m) {
  const auto& hb = net::payload_as<msg::Heartbeat>(m);
  auto* rec = find(hb.view);
  const bool known = rec != nullptr && rec->cache_addr == m.from;
  if (known) {
    touch(*rec);
    stats_.inc("heartbeat.received");
  } else {
    stats_.inc("heartbeat.unknown");
  }
  msg::HeartbeatAck ack{hb.view, hb.seq, known, generation_};
  fabric_.send(self_, m.from, msg::kHeartbeatAck, box(ack),
               msg::wire_size(ack));
}

// ---- registration -------------------------------------------------------

void DirectoryManager::handle_register(const net::Message& m) {
  const auto& req = net::payload_as<msg::RegisterReq>(m);
  stats_.inc("op.register");

  // A (re)registration obsoletes any request still in progress from the
  // same address: its requester has moved on. Completed entries stay so
  // a reconnecting manager re-issuing its abandoned op (same request id)
  // still gets the original reply replayed instead of re-execution.
  if (auto it = dedup_.find(m.from); it != dedup_.end()) {
    auto& win = it->second;
    win.erase(std::remove_if(win.begin(), win.end(),
                             [](const DedupEntry& e) { return !e.completed; }),
              win.end());
  }
  note_in_progress(m.from, req.req);

  auto reject = [&](const std::string& why) {
    stats_.inc("op.register.rejected");
    msg::RegisterAck ack{kInvalidViewId, false, why, req.req, generation_};
    const auto bytes = msg::wire_size(ack);
    reply(m.from, req.req, msg::kRegisterAck, box(std::move(ack)), bytes);
  };

  if (req.view_name.empty()) {
    return reject("view name must be non-empty");
  }
  // A genuine view's shared data is a subset of the component's data
  // (paper §3.2: V_v ∩ V_c ≠ ∅, and the view only shares what the
  // component defines).
  if (!req.properties.subset_of(primary_.data_properties())) {
    return reject("view properties are not a subset of component data");
  }
  std::optional<trigger::Trigger> validity;
  if (!req.validity_trigger.empty()) {
    try {
      validity.emplace(req.validity_trigger);
    } catch (const trigger::ParseError& e) {
      return reject(std::string("bad validity trigger: ") + e.what());
    }
  }

  // Journal-replaying resume: the cache manager restarted with its view
  // id intact and asks for the surviving record back (same view id, no
  // fresh registration) so its replayed pushes land under the identity
  // the exactly-once keys were minted for. Fenced unless the claimed
  // incarnation is strictly newer than the recorded one — a retransmit
  // from the dead life must not steal the view back.
  if (req.resume_view != kInvalidViewId) {
    if (auto* rec = find(req.resume_view);
        rec != nullptr && rec->cache_addr != m.from) {
      // The record moved while this manager was dead: a live migration
      // rebound the view to another address (and reset its incarnation
      // sequence), so an incarnation comparison alone would let the
      // restarted source steal the view back from its new server. A
      // resume is only honored from the record's current home; everyone
      // else falls through to a fresh registration — their replayed
      // pushes still merge exactly once (merged_ops_ is keyed by
      // address, not view).
      stats_.inc("register.fenced.moved");
    } else if (rec != nullptr) {
      if (req.incarnation <= rec->incarnation) {
        stats_.inc("register.fenced.incarnation");
        return reject("stale incarnation");
      }
      if (migrating(req.resume_view)) {
        abort_migration(req.resume_view, "source resumed");
      }
      rec->cache_addr = m.from;
      rec->name = req.view_name;
      rec->properties = req.properties;
      rec->mode = req.mode;
      rec->validity = std::move(validity);
      rec->validity_src = req.validity_trigger;
      rec->incarnation = req.incarnation;
      // Conservative until the resumed manager re-syncs (Init/Pull).
      rec->active = false;
      rec->exclusive = false;
      rec->last_seen_at = fabric_.now();
      wal_append(register_record(*rec));
      stats_.inc("view.resumed");
      msg::RegisterAck ack{req.resume_view, true, {}, req.req, generation_};
      const auto bytes = msg::wire_size(ack);
      reply(m.from, req.req, msg::kRegisterAck, box(std::move(ack)), bytes);
      return;
    } else {
      // Record gone (evicted, killed, or dropped by a directory
      // rebuild): fall through to a fresh registration. The replayed
      // pushes still merge exactly once — merged_ops_ is keyed by
      // address, not view.
      stats_.inc("view.resume_missed");
    }
  }

  // A registration from an address we already know supersedes the old
  // record: the cache manager reconnected (fail-safe path) and its
  // previous incarnation is a ghost.
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->second.cache_addr == m.from) {
      const ViewId ghost = it->first;
      it = views_.erase(it);
      complete_fetch_or_acquire_for_dead_view(ghost);
      stats_.inc("op.register.superseded");
    } else {
      ++it;
    }
  }

  ViewRecord rec;
  rec.id = next_view_id_++;
  rec.cache_addr = m.from;
  rec.name = req.view_name;
  rec.properties = req.properties;
  rec.mode = req.mode;
  rec.validity = std::move(validity);
  rec.validity_src = req.validity_trigger;
  rec.last_seen_at = fabric_.now();
  const ViewId id = rec.id;
  wal_append(register_record(rec));
  views_.emplace(id, std::move(rec));

  msg::RegisterAck ack{id, true, {}, req.req, generation_};
  const auto bytes = msg::wire_size(ack);
  reply(m.from, req.req, msg::kRegisterAck, box(std::move(ack)), bytes);
}

// ---- init ---------------------------------------------------------------

void DirectoryManager::handle_init(const net::Message& m) {
  const auto& req = net::payload_as<msg::InitReq>(m);
  stats_.inc("op.init");
  auto* rec = find(req.view);
  if (rec == nullptr) {
    if (req.req != 0) send_nack(m.from, req.view, req.req);
    return;
  }
  touch(*rec);
  note_in_progress(m.from, req.req);
  msg::InitReply out;
  out.image = primary_.extract_from_object(rec->properties);
  out.image.set_version(version_);
  out.req = req.req;
  out.gen = generation_;
  rec->active = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  const auto bytes = msg::wire_size(out);
  reply(rec->cache_addr, req.req, msg::kInitReply, box(std::move(out)),
        bytes);
}

// ---- weak-mode pull (with validity-triggered demand fetch) ---------------

void DirectoryManager::handle_pull(const net::Message& m) {
  const auto& req = net::payload_as<msg::PullReq>(m);
  stats_.inc("op.pull");
  auto* rec = find(req.view);
  if (rec == nullptr) {
    if (req.req != 0) send_nack(m.from, req.view, req.req);
    return;
  }
  touch(*rec);
  note_in_progress(m.from, req.req);

  const std::uint64_t unseen = quality(req.view);

  bool need_fetch = false;
  if (rec->validity.has_value()) {
    // Validity trigger: true ⇒ the primary's data is "good enough".
    // Environment: t (global time, ms), _age (ms since last merge into
    // the primary), _unseen (the requester's quality), layered over any
    // variables the primary component exposes.
    trigger::VariableStore meta;
    meta.set("t", sim::to_ms(fabric_.now()));
    meta.set("_age", sim::to_ms(fabric_.now() - last_merge_at_));
    meta.set("_unseen", static_cast<double>(unseen));
    bool good;
    if (const trigger::Env* pv = primary_.variables(); pv != nullptr) {
      trigger::LayeredEnv env(meta, *pv);
      good = rec->validity->evaluate(env);
    } else {
      good = rec->validity->evaluate(meta);
    }
    need_fetch = !good;
    if (need_fetch) {
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                        obs::EventKind::kTriggerFired, obs::Role::kDirectory,
                        obs::agent_key(self_), obs::span_id(m.from, req.req),
                        "validity", unseen, req.view);
    }
  }
  if (cfg_.use_rw_semantics && req.intent == AccessIntent::kReadOnly) {
    // Extension 1 (§6): read-only executions tolerate the primary's
    // current data; never chase conflicting views for updates.
    need_fetch = false;
    stats_.inc("op.pull.ro_shortcut");
  }

  std::set<ViewId> candidates;
  if (need_fetch) {
    for (const auto& [id, other] : views_) {
      if (id == req.view || !other.active) continue;
      // A migrating view is sealed: it cannot answer a FetchReq, and
      // its dirty state reaches the primary through the handoff anyway.
      if (migrating(id)) continue;
      if (conflicts(req.view, id)) candidates.insert(id);
    }
  }

  if (candidates.empty()) {
    PendingPull pp;
    pp.requester = req.view;
    pp.unseen_before = unseen;
    pp.req = req.req;
    finish_pull(pp);
    return;
  }

  // Admission control: opening yet another demand-fetch round past the
  // configured budget is refused with Busy — fetch rounds are the
  // invalidation/fetch fan-out amplifier, so this is where overload is
  // cut off. Cheap pulls (no round needed) are always served above.
  // The in-progress dedup slot noted earlier must be forgotten, or the
  // post-Busy retry would be dropped as a duplicate of a round that
  // never opened.
  const bool over_global = cfg_.max_fetch_rounds != 0 &&
                           pending_pulls_.size() >= cfg_.max_fetch_rounds;
  const bool over_view = !over_global && cfg_.max_view_rounds != 0 &&
                         open_rounds_of(req.view) >= cfg_.max_view_rounds;
  if (over_global || over_view) {
    stats_.inc("shed.pull");
    stats_.inc(over_global ? "shed.pull.global" : "shed.pull.view");
    forget_in_progress(m.from, req.req);
    send_busy(m.from, req.view, req.req,
              over_global ? "fetch rounds saturated"
                          : "per-view round budget");
    return;
  }

  stats_.inc("op.pull.fetch_round");
  PendingPull pp;
  pp.token = next_token_++;
  pp.requester = req.view;
  pp.outstanding = candidates;
  for (const ViewId id : candidates) {
    pp.target_props.emplace(id, views_.at(id).properties);
  }
  pp.unseen_before = unseen;
  pp.req = req.req;
  pp.resends_left = cfg_.command_retries;
  FLECC_TRACE_ONLY(pp.span = obs::span_id(m.from, req.req);)
  const std::uint64_t token = pp.token;
  if (cfg_.durability != nullptr) {
    // Checkpoint the round opening per target so a straggler reply or
    // echo arriving after a crash can still merge from the archive.
    for (const auto& [id, props] : pp.target_props) {
      WalRecord w;
      w.kind = WalKind::kRoundOpen;
      w.view = id;
      w.properties = props;
      w.ns = 0;
      w.round = token;
      wal_append(w);
    }
  }
  for (const ViewId id : candidates) {
    stats_.inc("op.fetch.sent");
    msg::FetchReq freq{token, generation_};
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                      obs::Role::kDirectory, obs::agent_key(self_), pp.span,
                      msg::kFetchReq, token, id);
    send_to_view(views_.at(id), msg::kFetchReq, box(freq),
                 msg::wire_size(freq));
  }
  pp.timeout = fabric_.schedule(self_, cfg_.fetch_timeout, [this, token] {
    auto it = pending_pulls_.find(token);
    if (it == pending_pulls_.end()) return;
    stats_.inc("op.fetch.timeout");
    PendingPull pp2 = std::move(it->second);
    pending_pulls_.erase(it);
    settle_pull_round(pp2);
    finish_pull(pp2);
  });
  pending_pulls_.emplace(token, std::move(pp));
  arm_pull_resend(token);
}

void DirectoryManager::arm_pull_resend(std::uint64_t token) {
  auto it = pending_pulls_.find(token);
  if (it == pending_pulls_.end() || it->second.resends_left == 0) return;
  const sim::Duration interval = std::max<sim::Duration>(
      1, cfg_.fetch_timeout /
             static_cast<sim::Duration>(cfg_.command_retries + 1));
  it->second.resend_timer = fabric_.schedule(self_, interval, [this, token] {
    auto it2 = pending_pulls_.find(token);
    if (it2 == pending_pulls_.end()) return;
    it2->second.resend_timer = net::kInvalidTimerId;
    if (it2->second.resends_left == 0) return;
    --it2->second.resends_left;
    for (const ViewId id : it2->second.outstanding) {
      const auto* rec = find(id);
      if (rec == nullptr) continue;
      stats_.inc("op.fetch.retry");
      msg::FetchReq freq{token, generation_};
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                        obs::EventKind::kMsgRetransmitted,
                        obs::Role::kDirectory, obs::agent_key(self_),
                        it2->second.span, msg::kFetchReq, token, id);
      send_to_view(*rec, msg::kFetchReq, box(freq), msg::wire_size(freq));
    }
    arm_pull_resend(token);
  });
}

void DirectoryManager::finish_pull(PendingPull& pp) {
  if (pp.timeout != net::kInvalidTimerId) fabric_.cancel_timer(pp.timeout);
  if (pp.resend_timer != net::kInvalidTimerId) {
    fabric_.cancel_timer(pp.resend_timer);
  }
  auto* rec = find(pp.requester);
  if (rec == nullptr) return;  // requester died while we fetched
  msg::PullReply out;
  out.image = primary_.extract_from_object(rec->properties);
  out.image.set_version(version_);
  out.unseen_before = pp.unseen_before;
  out.req = pp.req;
  out.gen = generation_;
  rec->active = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  const auto bytes = msg::wire_size(out);
  reply(rec->cache_addr, pp.req, msg::kPullReply, box(std::move(out)),
        bytes);
}

void DirectoryManager::settle_pull_round(PendingPull& pp) {
  if (pp.token == 0) return;  // fast-path pull, no fetch round existed
  settled_pulls_.emplace(
      pp.token,
      SettledRound{std::move(pp.merged), std::move(pp.target_props)});
  settled_pull_order_.push_back(pp.token);
  if (settled_pull_order_.size() > kSettledRoundWindow) {
    settled_pulls_.erase(settled_pull_order_.front());
    settled_pull_order_.pop_front();
  }
}

void DirectoryManager::settle_acquire_round(PendingAcquire& pa) {
  settled_acquires_.emplace(
      pa.epoch,
      SettledRound{std::move(pa.merged), std::move(pa.target_props)});
  settled_acquire_order_.push_back(pa.epoch);
  if (settled_acquire_order_.size() > kSettledRoundWindow) {
    settled_acquires_.erase(settled_acquire_order_.front());
    settled_acquire_order_.pop_front();
  }
}

const props::PropertySet* DirectoryManager::round_props(
    ViewId v, const std::map<ViewId, props::PropertySet>& snap) const {
  if (const auto* rec = find(v); rec != nullptr) return &rec->properties;
  auto it = snap.find(v);
  return it == snap.end() ? nullptr : &it->second;
}

void DirectoryManager::process_echoes(
    const std::vector<msg::DeltaEcho>& echoes) {
  for (const auto& e : echoes) {
    if (!e.invalidate) {
      if (auto it = pending_pulls_.find(e.round);
          it != pending_pulls_.end()) {
        // The echo beat (or replaced) the FetchReply for a live round.
        auto& pp = it->second;
        if (pp.merged.count(e.view) != 0) {
          stats_.inc("echo.duplicate");
          continue;
        }
        if (const auto* ps = round_props(e.view, pp.target_props)) {
          merge_update(e.image, e.view, *ps, "echo.fetch", e.round, pp.span);
          pp.merged.insert(e.view);
          note_round_merge(false, e.round, e.view);
          stats_.inc("echo.merged");
        }
        if (pp.outstanding.erase(e.view) != 0 && pp.outstanding.empty()) {
          PendingPull done = std::move(pp);
          pending_pulls_.erase(it);
          settle_pull_round(done);
          finish_pull(done);
        }
        continue;
      }
      if (auto sit = settled_pulls_.find(e.round);
          sit != settled_pulls_.end()) {
        if (sit->second.merged.count(e.view) != 0) {
          stats_.inc("echo.duplicate");
          continue;
        }
        if (const auto* ps = round_props(e.view, sit->second.target_props)) {
          merge_update(e.image, e.view, *ps, "echo.fetch", e.round, 0);
          sit->second.merged.insert(e.view);
          note_round_merge(false, e.round, e.view);
          stats_.inc("echo.merged");
        }
        continue;
      }
      if (pre_crash_round(e.round)) {
        // A round a previous incarnation opened and the checkpoint lost.
        // The echoed extraction may exist nowhere else — re-open an
        // archive slot and merge it exactly once.
        auto& slot = revive_settled(false, e.round);
        if (slot.merged.count(e.view) != 0) {
          stats_.inc("echo.duplicate");
        } else if (const auto* ps = round_props(e.view, slot.target_props)) {
          merge_update(e.image, e.view, *ps, "echo.fetch", e.round, 0);
          slot.merged.insert(e.view);
          note_round_merge(false, e.round, e.view);
          stats_.inc("echo.revived");
        }
        continue;
      }
      // Round evicted from the window: the reply must have been merged
      // long ago — treat as confirmed.
      stats_.inc("echo.unknown");
      continue;
    }

    // Invalidate-epoch namespace.
    if (acquire_inflight_.has_value() && acquire_inflight_->epoch == e.round) {
      auto& pa = *acquire_inflight_;
      if (pa.merged.count(e.view) != 0) {
        stats_.inc("echo.duplicate");
        continue;
      }
      if (const auto* ps = round_props(e.view, pa.target_props)) {
        merge_update(e.image, e.view, *ps, "echo.invalidate", e.round,
                     pa.span);
        pa.merged.insert(e.view);
        note_round_merge(true, e.round, e.view);
        stats_.inc("echo.merged");
      }
      if (auto* rec = find(e.view); rec != nullptr) {
        rec->active = false;  // the echoed extraction invalidated the copy
        rec->exclusive = false;
      }
      if (pa.awaiting.erase(e.view) != 0 && pa.awaiting.empty()) {
        PendingAcquire done = std::move(pa);
        acquire_inflight_.reset();
        settle_acquire_round(done);
        finish_acquire(done);
        if (!acquire_inflight_.has_value()) start_next_acquire();
      }
      continue;
    }
    if (auto sit = settled_acquires_.find(e.round);
        sit != settled_acquires_.end()) {
      if (sit->second.merged.count(e.view) != 0) {
        stats_.inc("echo.duplicate");
        continue;
      }
      if (const auto* ps = round_props(e.view, sit->second.target_props)) {
        merge_update(e.image, e.view, *ps, "echo.invalidate", e.round, 0);
        sit->second.merged.insert(e.view);
        note_round_merge(true, e.round, e.view);
        stats_.inc("echo.merged");
      }
      continue;
    }
    if (pre_crash_round(e.round)) {
      // As on the fetch side: a pre-crash invalidate epoch the
      // checkpoint lost; merge its echoed extraction exactly once.
      auto& slot = revive_settled(true, e.round);
      if (slot.merged.count(e.view) != 0) {
        stats_.inc("echo.duplicate");
      } else if (const auto* ps = round_props(e.view, slot.target_props)) {
        merge_update(e.image, e.view, *ps, "echo.invalidate", e.round, 0);
        slot.merged.insert(e.view);
        note_round_merge(true, e.round, e.view);
        stats_.inc("echo.revived");
      }
      continue;
    }
    stats_.inc("echo.unknown");
  }
}

void DirectoryManager::handle_fetch_reply(const net::Message& m) {
  const auto& rep = net::payload_as<msg::FetchReply>(m);
  if (auto* src = find(rep.view); src != nullptr) touch(*src);
  auto it = pending_pulls_.find(rep.token);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    it != pending_pulls_.end() ? it->second.span : 0,
                    msg::kFetchReply, rep.token, rep.view);
  if (it == pending_pulls_.end()) {
    // The round already settled (timeout, or everyone else answered).
    // If this straggler carries deltas the round never merged, they
    // exist nowhere else — merge them from the settled-round archive.
    stats_.inc("op.fetch.late");
    auto sit = settled_pulls_.find(rep.token);
    if (sit == settled_pulls_.end() && rep.dirty &&
        pre_crash_round(rep.token)) {
      // A gen == 0 straggler from a round the checkpoint lost (stamped
      // replies from the old incarnation are fenced before this point).
      revive_settled(false, rep.token);
      sit = settled_pulls_.find(rep.token);
    }
    if (sit != settled_pulls_.end() && rep.dirty &&
        sit->second.merged.count(rep.view) == 0) {
      if (const auto* ps = round_props(rep.view, sit->second.target_props)) {
        merge_update(rep.image, rep.view, *ps, "late_fetch", rep.token, 0);
        sit->second.merged.insert(rep.view);
        note_round_merge(false, rep.token, rep.view);
        stats_.inc("op.fetch.late.merged");
      }
    }
    return;
  }
  if (it->second.outstanding.count(rep.view) == 0) {
    // Duplicate delivery (command retransmit + original both answered):
    // the first copy was already merged; merging again would
    // double-count the deltas.
    stats_.inc("msg.duplicate.dropped");
    return;
  }
  if (rep.dirty && it->second.merged.count(rep.view) == 0) {
    // Merge from the live record when possible; fall back to the
    // properties snapshotted at round start so a reply from a view
    // liveness-evicted mid-flight still lands.
    if (const auto* ps = round_props(rep.view, it->second.target_props)) {
      merge_update(rep.image, rep.view, *ps, "fetch", rep.token,
                   it->second.span);
      it->second.merged.insert(rep.view);
      note_round_merge(false, rep.token, rep.view);
    }
  }
  it->second.outstanding.erase(rep.view);
  if (it->second.outstanding.empty()) {
    PendingPull pp = std::move(it->second);
    pending_pulls_.erase(it);
    settle_pull_round(pp);
    finish_pull(pp);
  }
}

// ---- push ---------------------------------------------------------------

void DirectoryManager::handle_push(const net::Message& m) {
  const auto& req = net::payload_as<msg::PushUpdate>(m);
  stats_.inc("op.push");
  auto* rec = find(req.view);
  if (rec == nullptr) {
    if (req.req != 0) send_nack(m.from, req.view, req.req);
    return;
  }
  touch(*rec);
  note_in_progress(m.from, req.req);
  process_echoes(req.echoes);
  if (op_already_merged(m.from, req.req)) {
    // A previous incarnation merged this push; the ack was lost to the
    // crash. Ack without re-merging (the within-incarnation equivalent
    // is the dedup window, which did not survive the restart).
    stats_.inc("op.push.replayed_merge");
  } else {
    merge_update(req.image, req.view, rec->properties, "push", 0,
                 obs::span_id(m.from, req.req));
    note_op_merged(m.from, req.req);
  }
  rec->active = true;
  msg::PushAck ack{version_, req.req, generation_};
  reply(rec->cache_addr, req.req, msg::kPushAck, box(ack),
        msg::wire_size(ack));
}

void DirectoryManager::merge_update(const ObjectImage& image, ViewId source,
                                    const props::PropertySet& touched,
                                    [[maybe_unused]] const char* path,
                                    [[maybe_unused]] std::uint64_t round,
                                    [[maybe_unused]] std::uint64_t span) {
  primary_.merge_into_object(image, touched);
  ++version_;
  last_merge_at_ = fabric_.now();
  log_.record(MergeRecord{version_, source, touched, fabric_.now()});
  stats_.inc("merge.count");
  // label = delivery path, a = fetch token / invalidate epoch (0 for
  // push/kill), b = source view: the monitor's exactly-once-merge key.
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMergeApplied,
                    obs::Role::kDirectory, obs::agent_key(self_), span, path,
                    round, source);
  maybe_prune_log();

  if (cfg_.notify_on_update) {
    for (const auto& [id, other] : views_) {
      if (id == source || !other.active) continue;
      if (!conflicts(source, id)) continue;
      msg::UpdateNotify note{version_, generation_};
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                        obs::Role::kDirectory, obs::agent_key(self_), 0,
                        msg::kUpdateNotify, version_, id);
      send_to_view(other, msg::kUpdateNotify, box(note),
                   msg::wire_size(note));
      stats_.inc("op.notify.sent");
    }
  }
}

void DirectoryManager::maybe_prune_log() {
  if (log_.size() <= cfg_.merge_log_cap) return;
  Version floor = version_;
  for (const auto& [id, rec] : views_) {
    (void)id;
    floor = std::min(floor, rec.last_sync);
  }
  log_.prune_below(floor);
}

// ---- strong-mode acquire/invalidate --------------------------------------

void DirectoryManager::handle_acquire(const net::Message& m) {
  const auto& req = net::payload_as<msg::AcquireReq>(m);
  stats_.inc("op.acquire");
  auto* rec = find(req.view);
  if (rec == nullptr) {
    if (req.req != 0) send_nack(m.from, req.view, req.req);
    return;
  }
  touch(*rec);
  // Admission control: a full arbitration queue means every new acquire
  // would wait behind max_acquire_queue invalidation rounds anyway —
  // better to tell the requester to back off than to buffer unboundedly.
  if (cfg_.max_acquire_queue != 0 &&
      acquire_queue_.size() >= cfg_.max_acquire_queue) {
    stats_.inc("shed.acquire");
    send_busy(m.from, req.view, req.req, "acquire queue full");
    return;
  }
  note_in_progress(m.from, req.req);
  acquire_queue_.push_back(req);
  if (!acquire_inflight_.has_value()) start_next_acquire();
}

void DirectoryManager::start_next_acquire() {
  // Strong-mode arbitration is frozen until the post-restart rebuild
  // settles: granting exclusivity against a half-rebuilt sharing set
  // could skip an invalidation. Requests queue; finish_rebuild() drains.
  if (rebuilding_) return;
  // Likewise frozen while any view migration is in flight: a grant
  // racing the atomic rebind could target the sealed source or skip the
  // half-installed destination. Migration completion/abort drains.
  if (!migrations_.empty()) return;
  while (!acquire_queue_.empty()) {
    const msg::AcquireReq req = acquire_queue_.front();
    acquire_queue_.erase(acquire_queue_.begin());
    auto* rec = find(req.view);
    if (rec == nullptr) continue;  // requester died while queued

    PendingAcquire pa;
    pa.requester = req.view;
    pa.epoch = next_epoch_++;
    pa.req = req.req;
    FLECC_TRACE_ONLY(pa.span = obs::span_id(rec->cache_addr, req.req);)

    // Read-only acquires under the read/write-semantics extension can
    // share: they do not invalidate other read-only holders. A plain
    // Flecc acquire invalidates every conflicting active view (paper
    // Fig. 2, steps 12-14).
    const bool ro_share =
        cfg_.use_rw_semantics && req.intent == AccessIntent::kReadOnly;
    if (!cfg_.chaos_ignore_conflicts) {
      for (const auto& [id, other] : views_) {
        if (id == req.view || !other.active) continue;
        if (!conflicts(req.view, id)) continue;
        if (ro_share && !other.exclusive) continue;  // RO can coexist
        pa.awaiting.insert(id);
        pa.target_props.emplace(id, other.properties);
      }
    }

    if (pa.awaiting.empty()) {
      finish_acquire(pa);
      continue;  // finish_acquire did not set inflight; serve next
    }

    if (cfg_.durability != nullptr) {
      // Mirror of the fetch-round checkpointing in handle_pull.
      for (const auto& [id, props] : pa.target_props) {
        WalRecord w;
        w.kind = WalKind::kRoundOpen;
        w.view = id;
        w.properties = props;
        w.ns = 1;
        w.round = pa.epoch;
        wal_append(w);
      }
    }
    for (const ViewId id : pa.awaiting) {
      stats_.inc("op.acquire.invalidations");
      msg::InvalidateReq inv{pa.epoch, generation_};
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                        obs::Role::kDirectory, obs::agent_key(self_), pa.span,
                        msg::kInvalidateReq, pa.epoch, id);
      send_to_view(views_.at(id), msg::kInvalidateReq, box(inv),
                   msg::wire_size(inv));
    }
    const std::uint64_t epoch = pa.epoch;
    pa.resends_left = cfg_.command_retries;
    // Straggler protection: if an invalidated view never acks (crash),
    // proceed after the timeout.
    pa.timeout = fabric_.schedule(self_, cfg_.fetch_timeout, [this, epoch] {
      if (!acquire_inflight_.has_value() ||
          acquire_inflight_->epoch != epoch) {
        return;
      }
      stats_.inc("op.acquire.timeout");
      PendingAcquire pa2 = std::move(*acquire_inflight_);
      acquire_inflight_.reset();
      settle_acquire_round(pa2);
      finish_acquire(pa2);
      if (!acquire_inflight_.has_value()) start_next_acquire();
    });
    acquire_inflight_ = std::move(pa);
    arm_acquire_resend(epoch);
    return;
  }
}

void DirectoryManager::arm_acquire_resend(std::uint64_t epoch) {
  if (!acquire_inflight_.has_value() || acquire_inflight_->epoch != epoch ||
      acquire_inflight_->resends_left == 0) {
    return;
  }
  const sim::Duration interval = std::max<sim::Duration>(
      1, cfg_.fetch_timeout /
             static_cast<sim::Duration>(cfg_.command_retries + 1));
  acquire_inflight_->resend_timer =
      fabric_.schedule(self_, interval, [this, epoch] {
        if (!acquire_inflight_.has_value() ||
            acquire_inflight_->epoch != epoch) {
          return;
        }
        acquire_inflight_->resend_timer = net::kInvalidTimerId;
        if (acquire_inflight_->resends_left == 0) return;
        --acquire_inflight_->resends_left;
        for (const ViewId id : acquire_inflight_->awaiting) {
          const auto* rec = find(id);
          if (rec == nullptr) continue;
          stats_.inc("op.invalidate.retry");
          msg::InvalidateReq inv{epoch, generation_};
          FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                            obs::EventKind::kMsgRetransmitted,
                            obs::Role::kDirectory, obs::agent_key(self_),
                            acquire_inflight_->span, msg::kInvalidateReq,
                            epoch, id);
          send_to_view(*rec, msg::kInvalidateReq, box(inv),
                       msg::wire_size(inv));
        }
        arm_acquire_resend(epoch);
      });
}

void DirectoryManager::finish_acquire(PendingAcquire& pa) {
  if (pa.timeout != net::kInvalidTimerId) fabric_.cancel_timer(pa.timeout);
  if (pa.resend_timer != net::kInvalidTimerId) {
    fabric_.cancel_timer(pa.resend_timer);
  }
  auto* rec = find(pa.requester);
  if (rec == nullptr) return;
  rec->active = true;
  rec->exclusive = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  msg::AcquireGrant grant;
  grant.image = primary_.extract_from_object(rec->properties);
  grant.image.set_version(version_);
  grant.req = pa.req;
  grant.gen = generation_;
  const auto bytes = msg::wire_size(grant);
  reply(rec->cache_addr, pa.req, msg::kAcquireGrant, box(std::move(grant)),
        bytes);
}

void DirectoryManager::handle_invalidate_ack(const net::Message& m) {
  const auto& ack = net::payload_as<msg::InvalidateAck>(m);
  if (auto* src = find(ack.view); src != nullptr) touch(*src);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    acquire_inflight_.has_value() &&
                            acquire_inflight_->epoch == ack.epoch
                        ? acquire_inflight_->span
                        : 0,
                    msg::kInvalidateAck, ack.epoch, ack.view);
  if (!acquire_inflight_.has_value() ||
      acquire_inflight_->epoch != ack.epoch) {
    // The round already settled. A dirty straggler still carries the
    // only copy of its extraction — merge it via the archive, once.
    stats_.inc("op.invalidate.stale_ack");
    auto sit = settled_acquires_.find(ack.epoch);
    if (sit == settled_acquires_.end() && ack.dirty &&
        pre_crash_round(ack.epoch)) {
      // Mirror of the late-fetch revive: a gen == 0 straggler from an
      // epoch the checkpoint lost.
      revive_settled(true, ack.epoch);
      sit = settled_acquires_.find(ack.epoch);
    }
    if (sit != settled_acquires_.end() && ack.dirty &&
        sit->second.merged.count(ack.view) == 0) {
      if (const auto* ps = round_props(ack.view, sit->second.target_props)) {
        merge_update(ack.image, ack.view, *ps, "late_invalidate", ack.epoch,
                     0);
        sit->second.merged.insert(ack.view);
        note_round_merge(true, ack.epoch, ack.view);
        stats_.inc("op.invalidate.late.merged");
      }
    }
    return;
  }
  if (acquire_inflight_->awaiting.count(ack.view) == 0) {
    // Duplicate delivery: this ack's image was already merged.
    stats_.inc("msg.duplicate.dropped");
    return;
  }
  if (ack.dirty && acquire_inflight_->merged.count(ack.view) == 0) {
    // As in handle_fetch_reply: merge evicted-mid-flight acks from the
    // round's property snapshot rather than dropping their deltas.
    if (const auto* ps =
            round_props(ack.view, acquire_inflight_->target_props)) {
      merge_update(ack.image, ack.view, *ps, "invalidate", ack.epoch,
                   acquire_inflight_->span);
      acquire_inflight_->merged.insert(ack.view);
      note_round_merge(true, ack.epoch, ack.view);
    }
  }
  if (auto* rec = find(ack.view); rec != nullptr) {
    rec->active = false;
    rec->exclusive = false;
  }
  acquire_inflight_->awaiting.erase(ack.view);
  if (acquire_inflight_->awaiting.empty()) {
    PendingAcquire pa = std::move(*acquire_inflight_);
    acquire_inflight_.reset();
    settle_acquire_round(pa);
    finish_acquire(pa);
    if (!acquire_inflight_.has_value()) start_next_acquire();
  }
}

// ---- mode change ----------------------------------------------------------

void DirectoryManager::handle_mode_change(const net::Message& m) {
  const auto& req = net::payload_as<msg::ModeChangeReq>(m);
  stats_.inc("op.mode_change");
  auto* rec = find(req.view);
  if (rec == nullptr) {
    if (req.req != 0) send_nack(m.from, req.view, req.req);
    return;
  }
  touch(*rec);
  note_in_progress(m.from, req.req);
  rec->mode = req.mode;
  {
    WalRecord w;
    w.kind = WalKind::kModeChange;
    w.view = req.view;
    w.mode = req.mode;
    wal_append(w);
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kModeSwitch,
                    obs::Role::kDirectory, obs::agent_key(self_),
                    obs::span_id(m.from, req.req),
                    req.mode == Mode::kStrong ? "strong" : "weak",
                    static_cast<std::uint64_t>(req.mode), req.view);
  if (req.mode == Mode::kWeak) {
    // Leaving strong: surrender exclusivity; the copy stays valid.
    rec->exclusive = false;
  } else {
    // Entering strong: the view must (re)acquire before working.
    rec->active = false;
    rec->exclusive = false;
  }
  msg::ModeChangeAck ack{req.mode, req.req, generation_};
  reply(rec->cache_addr, req.req, msg::kModeChangeAck, box(ack),
        msg::wire_size(ack));
}

// ---- kill -----------------------------------------------------------------

void DirectoryManager::handle_kill(const net::Message& m) {
  const auto& req = net::payload_as<msg::KillReq>(m);
  stats_.inc("op.kill");
  // Even a kill for an already-gone view can carry valid echoes.
  process_echoes(req.echoes);
  auto* rec = find(req.view);
  if (rec == nullptr) {
    // Framed kill for a view that is already gone: acking is the
    // idempotent answer (deregistration is what the sender wants), and
    // it covers a replay whose window entry has been evicted. Unframed
    // kills keep the seed's silent-drop behavior.
    if (req.req != 0) {
      msg::KillAck ack{req.req, generation_};
      reply(m.from, req.req, msg::kKillAck, box(ack), msg::wire_size(ack));
    }
    return;
  }
  touch(*rec);
  note_in_progress(m.from, req.req);
  if (req.dirty) {
    if (op_already_merged(m.from, req.req)) {
      // Merged by a previous incarnation; see handle_push.
      stats_.inc("op.kill.replayed_merge");
    } else {
      merge_update(req.final_image, req.view, rec->properties, "kill", 0,
                   obs::span_id(m.from, req.req));
      note_op_merged(m.from, req.req);
    }
  }
  const net::Address addr = rec->cache_addr;
  views_.erase(req.view);
  complete_fetch_or_acquire_for_dead_view(req.view);
  msg::KillAck ack{req.req, generation_};
  reply(addr, req.req, msg::kKillAck, box(ack), msg::wire_size(ack));
}

void DirectoryManager::complete_fetch_or_acquire_for_dead_view(ViewId v) {
  // Every deregistration path (kill, supersede, liveness eviction,
  // rebuild drop) funnels through here: checkpoint the departure and
  // release any rebuild wait on the view.
  wal_deregister(v);
  if (migrating(v)) abort_migration(v, "view departed");
  if (rebuilding_) {
    rebuild_awaiting_.erase(v);
    if (rebuild_awaiting_.empty()) finish_rebuild();
  }

  // A dead view can no longer answer FetchReq/InvalidateReq; settle any
  // round that was waiting on it.
  std::vector<std::uint64_t> done_tokens;
  for (auto& [token, pp] : pending_pulls_) {
    pp.outstanding.erase(v);
    if (pp.outstanding.empty()) done_tokens.push_back(token);
  }
  for (const auto token : done_tokens) {
    auto it = pending_pulls_.find(token);
    PendingPull pp = std::move(it->second);
    pending_pulls_.erase(it);
    settle_pull_round(pp);
    finish_pull(pp);
  }

  if (acquire_inflight_.has_value()) {
    if (acquire_inflight_->requester == v) {
      if (acquire_inflight_->timeout != net::kInvalidTimerId) {
        fabric_.cancel_timer(acquire_inflight_->timeout);
      }
      if (acquire_inflight_->resend_timer != net::kInvalidTimerId) {
        fabric_.cancel_timer(acquire_inflight_->resend_timer);
      }
      // The requester died but invalidated views may already have
      // extracted; archive the round so their echoes still merge.
      PendingAcquire dead = std::move(*acquire_inflight_);
      acquire_inflight_.reset();
      settle_acquire_round(dead);
      start_next_acquire();
    } else {
      acquire_inflight_->awaiting.erase(v);
      if (acquire_inflight_->awaiting.empty()) {
        PendingAcquire pa = std::move(*acquire_inflight_);
        acquire_inflight_.reset();
        settle_acquire_round(pa);
        finish_acquire(pa);
        if (!acquire_inflight_.has_value()) start_next_acquire();
      }
    }
  }
}

// ---- view migration (PROTOCOL.md "View migration & CM journaling") --------

bool DirectoryManager::begin_migration(ViewId v, net::Address dest) {
  auto* rec = find(v);
  if (rec == nullptr || migrating(v) || rebuilding_ ||
      rec->cache_addr == dest) {
    stats_.inc("migrate.rejected");
    return false;
  }
  PendingMigration mig;
  mig.view = v;
  mig.epoch = next_epoch_++;  // shares the invalidate-epoch id space
  mig.src = rec->cache_addr;
  mig.dest = dest;
  mig.phase = kMigrateQuiesce;
  mig.resends_left = cfg_.migrate_resends;
  stats_.inc("migrate.begin");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMigrateBegin,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    rec->name.c_str(), v, mig.epoch);
  auto [it, inserted] = migrations_.emplace(v, std::move(mig));
  (void)inserted;
  send_move_req(it->second);
  arm_migrate_resend(v);
  if (cfg_.on_migrate_phase) cfg_.on_migrate_phase(v, kMigrateQuiesce);
  return true;
}

void DirectoryManager::send_move_req(const PendingMigration& mig) {
  msg::ViewMoveReq req{mig.view, mig.epoch, generation_};
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    msg::kViewMoveReq, mig.epoch, mig.view);
  fabric_.send(self_, mig.src, msg::kViewMoveReq, box(req),
               msg::wire_size(req));
}

void DirectoryManager::send_move_install(const PendingMigration& mig) {
  const auto* rec = find(mig.view);
  if (rec == nullptr) return;
  msg::ViewMoveInstall inst;
  inst.view = mig.view;
  inst.epoch = mig.epoch;
  inst.view_name = rec->name;
  inst.properties = rec->properties;
  inst.mode = rec->mode;
  inst.validity_trigger = rec->validity_src;
  inst.exclusive = rec->exclusive;
  // A fresh primary extraction (the handoff delta is already merged):
  // the destination starts valid without a separate pull round.
  inst.image = primary_.extract_from_object(rec->properties);
  inst.image.set_version(version_);
  inst.gen = generation_;
  const auto bytes = msg::wire_size(inst);
  stats_.inc("migrate.install.sent");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    msg::kViewMoveInstall, mig.epoch, mig.view);
  fabric_.send(self_, mig.dest, msg::kViewMoveInstall, box(std::move(inst)),
               bytes);
}

void DirectoryManager::arm_migrate_resend(ViewId v) {
  auto it = migrations_.find(v);
  if (it == migrations_.end()) return;
  it->second.resend_timer =
      fabric_.schedule(self_, std::max<sim::Duration>(1, cfg_.migrate_timeout),
                       [this, v] { on_migrate_timeout(v); });
}

void DirectoryManager::on_migrate_timeout(ViewId v) {
  auto it = migrations_.find(v);
  if (it == migrations_.end()) return;
  it->second.resend_timer = net::kInvalidTimerId;
  if (it->second.resends_left == 0) {
    abort_migration(v, "phase timeout");
    return;
  }
  --it->second.resends_left;
  stats_.inc("migrate.resend");
  if (it->second.phase == kMigrateQuiesce) {
    send_move_req(it->second);
  } else {
    send_move_install(it->second);
  }
  arm_migrate_resend(v);
}

void DirectoryManager::abort_migration(ViewId v, const char* why) {
  auto it = migrations_.find(v);
  if (it == migrations_.end()) return;
  PendingMigration mig = std::move(it->second);
  migrations_.erase(it);
  if (mig.resend_timer != net::kInvalidTimerId) {
    fabric_.cancel_timer(mig.resend_timer);
  }
  stats_.inc("migrate.aborted");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMigrateAborted,
                    obs::Role::kDirectory, obs::agent_key(self_), 0, why,
                    mig.view, mig.epoch);
  note_migration_outcome(mig.view, mig.epoch, true);
  msg::ViewMoveDone done{mig.view, mig.epoch, true, generation_};
  fabric_.send(self_, mig.src, msg::kViewMoveDone, box(done),
               msg::wire_size(done));
  if (mig.phase == kMigrateHandoff) {
    // The install may already have landed at the destination whose ack
    // we never saw: uninstall it, or the view would be served twice.
    fabric_.send(self_, mig.dest, msg::kViewMoveDone, box(done),
                 msg::wire_size(done));
  }
  if (cfg_.on_migrate_phase) cfg_.on_migrate_phase(v, kMigrateAborted);
  if (migrations_.empty() && !acquire_inflight_.has_value()) {
    start_next_acquire();
  }
}

void DirectoryManager::note_migration_outcome(ViewId v, std::uint64_t epoch,
                                              bool aborted) {
  const bool fresh = migration_outcomes_.count(v) == 0;
  migration_outcomes_[v] = {epoch, aborted};
  if (fresh) {
    migration_outcome_order_.push_back(v);
    while (migration_outcome_order_.size() > kSettledRoundWindow) {
      migration_outcomes_.erase(migration_outcome_order_.front());
      migration_outcome_order_.pop_front();
    }
  }
}

void DirectoryManager::handle_handoff_state(const net::Message& m) {
  const auto& hs = net::payload_as<msg::HandoffState>(m);
  stats_.inc("migrate.handoff");
  // Unconfirmed extraction images ride along exactly as on push/kill.
  process_echoes(hs.echoes);
  auto it = migrations_.find(hs.view);
  if (it == migrations_.end() || it->second.epoch != hs.epoch ||
      it->second.src != m.from) {
    // Retransmit for a migration that already settled: replay the
    // outcome so the source can release (done) or unseal (aborted).
    if (auto oit = migration_outcomes_.find(hs.view);
        oit != migration_outcomes_.end() && oit->second.first == hs.epoch) {
      stats_.inc("migrate.handoff.replayed");
      msg::ViewMoveDone done{hs.view, hs.epoch, oit->second.second,
                             generation_};
      fabric_.send(self_, m.from, msg::kViewMoveDone, box(done),
                   msg::wire_size(done));
    } else {
      stats_.inc("migrate.handoff.unknown");
    }
    return;
  }
  auto& mig = it->second;
  if (mig.phase != kMigrateQuiesce) {
    // Duplicate handoff while the install is in flight: the first copy
    // already merged.
    stats_.inc("msg.duplicate.dropped");
    return;
  }
  auto* rec = find(hs.view);
  if (rec == nullptr) {  // unreachable (eviction aborts), but be safe
    abort_migration(hs.view, "view departed");
    return;
  }
  touch(*rec);
  // Merge the sealed write-buffer delta exactly once under the source's
  // (address, req) key — the same key absorbs a journal-replayed push of
  // this delta after an abort or a source crash, so no path double-merges.
  if (hs.dirty) {
    if (op_already_merged(m.from, hs.req)) {
      stats_.inc("migrate.handoff.replayed_merge");
    } else {
      merge_update(hs.delta, hs.view, rec->properties, "migrate", 0,
                   obs::span_id(m.from, hs.req));
      note_op_merged(m.from, hs.req);
    }
  }
  rec->mode = hs.mode;
  mig.phase = kMigrateHandoff;
  mig.resends_left = cfg_.migrate_resends;
  if (mig.resend_timer != net::kInvalidTimerId) {
    fabric_.cancel_timer(mig.resend_timer);
    mig.resend_timer = net::kInvalidTimerId;
  }
  send_move_install(mig);
  arm_migrate_resend(hs.view);
  if (cfg_.on_migrate_phase) cfg_.on_migrate_phase(hs.view, kMigrateHandoff);
}

void DirectoryManager::handle_view_move_ack(const net::Message& m) {
  const auto& ack = net::payload_as<msg::ViewMoveAck>(m);
  auto it = migrations_.find(ack.view);
  if (it == migrations_.end() || it->second.epoch != ack.epoch ||
      it->second.dest != m.from) {
    stats_.inc("migrate.ack.stale");
    return;
  }
  PendingMigration mig = std::move(it->second);
  migrations_.erase(it);
  if (mig.resend_timer != net::kInvalidTimerId) {
    fabric_.cancel_timer(mig.resend_timer);
  }
  auto* rec = find(ack.view);
  if (rec == nullptr) {  // unreachable (eviction aborts), but be safe
    note_migration_outcome(ack.view, ack.epoch, true);
    msg::ViewMoveDone done{ack.view, ack.epoch, true, generation_};
    fabric_.send(self_, mig.src, msg::kViewMoveDone, box(done),
                 msg::wire_size(done));
    fabric_.send(self_, mig.dest, msg::kViewMoveDone, box(done),
                 msg::wire_size(done));
    return;
  }
  // The atomic rebind: from this statement on, the view IS its
  // destination. The view id (and with it the monitor's ownership
  // bookkeeping) is unchanged; only the serving address moves.
  rec->cache_addr = mig.dest;
  rec->incarnation = 1;  // the destination starts a fresh life sequence
  rec->active = true;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  rec->last_seen_at = fabric_.now();
  wal_append(register_record(*rec));
  stats_.inc("migrate.done");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMigrateDone,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    rec->name.c_str(), ack.view, ack.epoch);
  note_migration_outcome(ack.view, ack.epoch, false);
  msg::ViewMoveDone done{ack.view, ack.epoch, false, generation_};
  fabric_.send(self_, mig.src, msg::kViewMoveDone, box(done),
               msg::wire_size(done));
  if (cfg_.on_migrate_phase) cfg_.on_migrate_phase(ack.view, kMigrateDone);
  if (migrations_.empty() && !acquire_inflight_.has_value()) {
    start_next_acquire();
  }
}

// ---- durability & crash recovery ------------------------------------------

void DirectoryManager::wal_append(const WalRecord& rec) {
  if (cfg_.durability == nullptr) return;
  cfg_.durability->append(rec);
  if (cfg_.compact_threshold != 0 &&
      ++wal_appends_since_compact_ >= cfg_.compact_threshold) {
    compact_wal();
  }
}

WalRecord DirectoryManager::register_record(const ViewRecord& rec) const {
  WalRecord w;
  w.kind = WalKind::kRegister;
  w.view = rec.id;
  w.node = rec.cache_addr.node;
  w.port = rec.cache_addr.port;
  w.name = rec.name;
  w.properties = rec.properties;
  w.mode = rec.mode;
  w.validity = rec.validity_src;
  w.req = rec.incarnation;  // the req slot doubles as the life number
  return w;
}

void DirectoryManager::wal_deregister(ViewId v) {
  if (cfg_.durability == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kDeregister;
  w.view = v;
  wal_append(w);
}

void DirectoryManager::note_round_merge(bool invalidate, std::uint64_t round,
                                        ViewId v) {
  if (cfg_.durability == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kRoundMerge;
  w.view = v;
  w.ns = invalidate ? 1 : 0;
  w.round = round;
  wal_append(w);
}

void DirectoryManager::note_op_merged(const net::Address& from,
                                      std::uint64_t req) {
  if (req == 0) return;
  const MergedOpKey key{from.node, from.port, req};
  if (!merged_ops_.insert(key).second) return;
  merged_ops_order_.push_back(key);
  while (merged_ops_order_.size() > kMergedOpWindow) {
    merged_ops_.erase(merged_ops_order_.front());
    merged_ops_order_.pop_front();
  }
  if (cfg_.durability == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kOpMerged;
  w.node = from.node;
  w.port = from.port;
  w.req = req;
  wal_append(w);
}

bool DirectoryManager::op_already_merged(const net::Address& from,
                                         std::uint64_t req) const {
  if (req == 0) return false;
  return merged_ops_.count(MergedOpKey{from.node, from.port, req}) != 0;
}

std::size_t DirectoryManager::replay_checkpoint(
    const std::vector<WalRecord>& records) {
  auto remember_round = [&](std::uint8_t ns, std::uint64_t round)
      -> SettledRound& {
    auto& rounds = ns == 1 ? settled_acquires_ : settled_pulls_;
    auto& order = ns == 1 ? settled_acquire_order_ : settled_pull_order_;
    auto [it, inserted] = rounds.try_emplace(round);
    if (inserted) {
      order.push_back(round);
      if (order.size() > kSettledRoundWindow && order.front() != round) {
        rounds.erase(order.front());
        order.pop_front();
      }
    }
    return it->second;
  };

  for (const auto& w : records) {
    switch (w.kind) {
      case WalKind::kRegister: {
        ViewRecord rec;
        rec.id = w.view;
        rec.cache_addr = net::Address{w.node, w.port};
        rec.name = w.name;
        rec.properties = w.properties;
        rec.mode = w.mode;
        rec.validity_src = w.validity;
        if (!w.validity.empty()) {
          try {
            rec.validity.emplace(w.validity);
          } catch (const trigger::ParseError&) {
            // Registration validated the source; a corrupt checkpoint
            // line degrades to "no validity trigger", not an abort.
          }
        }
        // Conservative restart state: nothing is active or exclusive
        // until the view re-announces (RebuildReply) or re-syncs.
        rec.active = false;
        rec.exclusive = false;
        rec.last_seen_at = fabric_.now();
        rec.incarnation = w.req == 0 ? 1 : w.req;
        next_view_id_ = std::max(next_view_id_, w.view + 1);
        views_[w.view] = std::move(rec);
        break;
      }
      case WalKind::kDeregister:
        views_.erase(w.view);
        break;
      case WalKind::kModeChange:
        if (auto* rec = find(w.view); rec != nullptr) rec->mode = w.mode;
        break;
      case WalKind::kRoundOpen:
        remember_round(w.ns, w.round).target_props[w.view] = w.properties;
        break;
      case WalKind::kRoundMerge:
        // Creates the slot if kRoundOpen never made it to disk (revived
        // rounds): the exactly-once marker must survive regardless.
        remember_round(w.ns, w.round).merged.insert(w.view);
        break;
      case WalKind::kOpMerged: {
        const MergedOpKey key{w.node, w.port, w.req};
        if (merged_ops_.insert(key).second) {
          merged_ops_order_.push_back(key);
          while (merged_ops_order_.size() > kMergedOpWindow) {
            merged_ops_.erase(merged_ops_order_.front());
            merged_ops_order_.pop_front();
          }
        }
        break;
      }
      case WalKind::kCmBind:
      case WalKind::kCmWrite:
      case WalKind::kCmIntent:
      case WalKind::kCmFlush:
      case WalKind::kCmReq:
        // Cache-manager journal records: a directory pointed at a CM's
        // store (misconfiguration) skips them rather than aborting.
        break;
    }
  }
  return records.size();
}

void DirectoryManager::compact_wal() {
  if (cfg_.durability == nullptr) return;
  wal_appends_since_compact_ = 0;
  std::vector<WalRecord> snap;
  snap.reserve(views_.size() + merged_ops_order_.size());
  for (const auto& [id, rec] : views_) {
    (void)id;
    snap.push_back(register_record(rec));
  }
  // Settled-round archive in insertion order, so replay reconstructs
  // the same eviction order.
  auto dump_rounds = [&](const std::map<std::uint64_t, SettledRound>& rounds,
                         const std::deque<std::uint64_t>& order,
                         std::uint8_t ns) {
    for (const std::uint64_t round : order) {
      auto it = rounds.find(round);
      if (it == rounds.end()) continue;
      for (const auto& [view, props] : it->second.target_props) {
        WalRecord w;
        w.kind = WalKind::kRoundOpen;
        w.view = view;
        w.properties = props;
        w.ns = ns;
        w.round = round;
        snap.push_back(std::move(w));
      }
      for (const ViewId view : it->second.merged) {
        WalRecord w;
        w.kind = WalKind::kRoundMerge;
        w.view = view;
        w.ns = ns;
        w.round = round;
        snap.push_back(std::move(w));
      }
    }
  };
  dump_rounds(settled_pulls_, settled_pull_order_, 0);
  dump_rounds(settled_acquires_, settled_acquire_order_, 1);
  for (const MergedOpKey& key : merged_ops_order_) {
    WalRecord w;
    w.kind = WalKind::kOpMerged;
    w.node = std::get<0>(key);
    w.port = std::get<1>(key);
    w.req = std::get<2>(key);
    snap.push_back(std::move(w));
  }
  stats_.inc("recovery.compactions");
  cfg_.durability->compact(snap);
}

DirectoryManager::SettledRound& DirectoryManager::revive_settled(
    bool invalidate, std::uint64_t round) {
  auto& rounds = invalidate ? settled_acquires_ : settled_pulls_;
  auto& order = invalidate ? settled_acquire_order_ : settled_pull_order_;
  auto [it, inserted] = rounds.try_emplace(round);
  if (inserted) {
    stats_.inc("recovery.revived_round");
    order.push_back(round);
    if (order.size() > kSettledRoundWindow && order.front() != round) {
      rounds.erase(order.front());
      order.pop_front();
    }
  }
  return it->second;
}

void DirectoryManager::start_rebuild() {
  rebuilding_ = true;
  rebuild_awaiting_.clear();
  for (const auto& [id, rec] : views_) {
    (void)rec;
    rebuild_awaiting_.insert(id);
  }
  for (const auto& [id, rec] : views_) {
    stats_.inc("recovery.probe.sent");
    msg::DirectoryRebuild probe{id, generation_};
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                      obs::Role::kDirectory, obs::agent_key(self_), 0,
                      msg::kDirectoryRebuild, generation_, id);
    send_to_view(rec, msg::kDirectoryRebuild, box(probe),
                 msg::wire_size(probe));
  }
  rebuild_resends_left_ = cfg_.command_retries;
  // A plain (non-daemon) timer: the rebuild window must hold the sim
  // open until it closes, even when no other work is scheduled yet.
  rebuild_timer_ =
      fabric_.schedule(self_, std::max<sim::Duration>(1, cfg_.rebuild_window),
                       [this] {
                         rebuild_timer_ = net::kInvalidTimerId;
                         finish_rebuild();
                       });
  arm_rebuild_resend();
}

void DirectoryManager::arm_rebuild_resend() {
  if (!rebuilding_ || rebuild_resends_left_ == 0) return;
  const sim::Duration interval = std::max<sim::Duration>(
      1, cfg_.rebuild_window /
             static_cast<sim::Duration>(cfg_.command_retries + 1));
  rebuild_resend_timer_ = fabric_.schedule(self_, interval, [this] {
    rebuild_resend_timer_ = net::kInvalidTimerId;
    if (!rebuilding_ || rebuild_resends_left_ == 0) return;
    --rebuild_resends_left_;
    for (const ViewId id : rebuild_awaiting_) {
      const auto* rec = find(id);
      if (rec == nullptr) continue;
      stats_.inc("recovery.probe.retry");
      msg::DirectoryRebuild probe{id, generation_};
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                        obs::EventKind::kMsgRetransmitted,
                        obs::Role::kDirectory, obs::agent_key(self_), 0,
                        msg::kDirectoryRebuild, generation_, id);
      send_to_view(*rec, msg::kDirectoryRebuild, box(probe),
                   msg::wire_size(probe));
    }
    arm_rebuild_resend();
  });
}

void DirectoryManager::handle_rebuild_reply(const net::Message& m) {
  const auto& rep = net::payload_as<msg::RebuildReply>(m);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    msg::kRebuildReply, rep.view);
  auto* rec = find(rep.view);
  if (rec == nullptr || rec->cache_addr != m.from) {
    // Not a view we probed (or the address moved): the echoes are still
    // self-contained extractions — merge them, drop the rest.
    stats_.inc("recovery.reply.unknown");
    process_echoes(rep.echoes);
    return;
  }
  touch(*rec);
  if (!rebuilding_ || rebuild_awaiting_.count(rep.view) == 0) {
    stats_.inc("recovery.reply.duplicate");
    process_echoes(rep.echoes);
    return;
  }
  // The cache manager is authoritative over the (possibly stale)
  // checkpoint: adopt its registration data and cached-copy state.
  rec->name = rep.view_name;
  rec->properties = rep.properties;
  rec->mode = rep.mode;
  rec->validity_src = rep.validity_trigger;
  rec->validity.reset();
  if (!rep.validity_trigger.empty()) {
    try {
      rec->validity.emplace(rep.validity_trigger);
    } catch (const trigger::ParseError&) {
      // Same degradation as replay_checkpoint.
    }
  }
  rec->active = rep.active;
  rec->exclusive = rep.exclusive;
  rec->last_sync = version_;
  rec->last_sync_at = fabric_.now();
  wal_append(register_record(*rec));  // fresh checkpoint entry
  ++reannounced_;
  stats_.inc("recovery.reannounced");
  process_echoes(rep.echoes);
  rebuild_awaiting_.erase(rep.view);
  if (rebuild_awaiting_.empty()) finish_rebuild();
}

void DirectoryManager::finish_rebuild() {
  if (!rebuilding_) return;
  rebuilding_ = false;
  if (rebuild_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(rebuild_timer_);
    rebuild_timer_ = net::kInvalidTimerId;
  }
  if (rebuild_resend_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(rebuild_resend_timer_);
    rebuild_resend_timer_ = net::kInvalidTimerId;
  }
  const std::vector<ViewId> silent(rebuild_awaiting_.begin(),
                                   rebuild_awaiting_.end());
  rebuild_awaiting_.clear();
  for (const ViewId v : silent) {
    // Checkpointed but never re-announced: treat as departed. A
    // survivor that merely lost every probe reconnects from scratch via
    // its heartbeat (known == false → re-register).
    stats_.inc("recovery.dropped");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kViewEvicted,
                      obs::Role::kDirectory, obs::agent_key(self_), 0,
                      views_.at(v).name.c_str(), v, generation_);
    views_.erase(v);
    complete_fetch_or_acquire_for_dead_view(v);
  }
  stats_.inc("recovery.completed");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kRecoveryEnd,
                    obs::Role::kDirectory, obs::agent_key(self_), 0,
                    "rebuilt", generation_, reannounced_);
  start_next_acquire();
}

}  // namespace flecc::core
