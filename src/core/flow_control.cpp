#include "core/flow_control.hpp"

#include <utility>

#include "core/messages.hpp"
#include "net/message.hpp"

namespace flecc::core::flow {

bool is_control_lane(std::string_view type) noexcept {
  // Bulk = the four load-generating requests; everything else (acks,
  // replies, grants, heartbeats, invalidations, fetches, recovery,
  // nacks, Busy, mode changes, registration, non-Flecc frames) rides
  // the control lane and is never shed.
  return !(type == msg::kInitReq || type == msg::kPullReq ||
           type == msg::kPushUpdate || type == msg::kAcquireReq);
}

namespace {

/// Recover (view, req) from a sheddable bulk message so the Busy can be
/// matched against the sender's in-flight op. Returns false for types
/// the protocol cannot answer (those are shed silently, counted).
bool shed_identity(const net::Message& shed, ViewId& view,
                   std::uint64_t& req) {
  if (shed.type == msg::kInitReq) {
    const auto& p = net::payload_as<msg::InitReq>(shed);
    view = p.view;
    req = p.req;
    return true;
  }
  if (shed.type == msg::kPullReq) {
    const auto& p = net::payload_as<msg::PullReq>(shed);
    view = p.view;
    req = p.req;
    return true;
  }
  if (shed.type == msg::kPushUpdate) {
    const auto& p = net::payload_as<msg::PushUpdate>(shed);
    view = p.view;
    req = p.req;
    return true;
  }
  if (shed.type == msg::kAcquireReq) {
    const auto& p = net::payload_as<msg::AcquireReq>(shed);
    view = p.view;
    req = p.req;
    return true;
  }
  return false;
}

net::BusyReply make_busy(const net::Message& shed, sim::Duration retry_after) {
  msg::Busy busy;
  if (!shed_identity(shed, busy.view, busy.req)) return {};
  busy.reason = "queue overflow";
  busy.retry_after = retry_after;
  busy.gen = 0;  // fabric-synthesized: no incarnation claim, never fenced

  net::BusyReply reply;
  reply.type = msg::kBusy;
  reply.bytes = msg::wire_size(busy);
  reply.payload = std::move(busy);
  return reply;
}

}  // namespace

net::FlowControl make_fabric_flow(const FlowLimits& limits) {
  net::FlowControl fc;
  fc.queue_capacity = limits.queue_capacity;
  fc.high_watermark = limits.high_watermark;
  fc.low_watermark = limits.low_watermark;
  fc.retry_after = limits.retry_after;
  fc.is_control = [](std::string_view type) { return is_control_lane(type); };
  fc.make_busy = [](const net::Message& shed, sim::Duration retry_after) {
    return make_busy(shed, retry_after);
  };
  return fc;
}

}  // namespace flecc::core::flow
