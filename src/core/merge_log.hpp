// The directory's record of merges into the primary copy, from which
// the data-quality metric of the paper's evaluation is computed:
// quality(v) = number of *remote unseen updates* — merges newer than
// v's last sync, originating from a different view whose data actually
// conflicts with v's (paper §5.2, Figures 5 and 6).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/types.hpp"
#include "props/property.hpp"
#include "sim/time.hpp"

namespace flecc::core {

struct MergeRecord {
  Version version = 0;
  ViewId source = kInvalidViewId;  // kInvalidViewId = direct primary write
  props::PropertySet touched;      // properties covered by the merge
  sim::Time at = 0;
};

class MergeLog {
 public:
  void record(MergeRecord r) { records_.push_back(std::move(r)); }

  /// Count records newer than `since` whose source is not `self` and
  /// whose touched properties conflict with `viewer_props`.
  [[nodiscard]] std::uint64_t unseen_for(
      const props::PropertySet& viewer_props, ViewId self,
      Version since) const;

  /// Count records newer than `since` matching an arbitrary predicate —
  /// used by the directory so the conflict decision can consult the
  /// static map, not only property intersection.
  [[nodiscard]] std::uint64_t unseen_if(
      Version since,
      const std::function<bool(const MergeRecord&)>& pred) const;

  /// Drop records with version <= floor (they are seen by every live
  /// view). Returns the number pruned.
  std::size_t prune_below(Version floor);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const std::deque<MergeRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::deque<MergeRecord> records_;  // version-ordered (append-only)
};

}  // namespace flecc::core
