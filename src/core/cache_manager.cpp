#include "core/cache_manager.hpp"

#include <stdexcept>
#include <utility>

namespace flecc::core {

CacheManager::CacheManager(net::Fabric& fabric, net::Address self,
                           net::Address directory, ViewAdapter& view,
                           Config cfg)
    : fabric_(fabric),
      self_(self),
      directory_(directory),
      view_(view),
      cfg_(std::move(cfg)),
      mode_(cfg_.mode) {
  if (!cfg_.push_trigger.empty()) push_trigger_.emplace(cfg_.push_trigger);
  if (!cfg_.pull_trigger.empty()) pull_trigger_.emplace(cfg_.pull_trigger);
  fabric_.bind(self_, *this);

  msg::RegisterReq req;
  req.view_name = cfg_.view_name;
  req.properties = cfg_.properties;
  req.mode = cfg_.mode;
  req.push_trigger = cfg_.push_trigger;
  req.pull_trigger = cfg_.pull_trigger;
  req.validity_trigger = cfg_.validity_trigger;
  const auto bytes = msg::wire_size(req);
  fabric_.send(self_, directory_, msg::kRegisterReq, std::move(req), bytes);
}

CacheManager::~CacheManager() {
  if (trigger_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(trigger_timer_);
  }
  fabric_.unbind(self_);
}

// ---- public API ------------------------------------------------------------

void CacheManager::init_image(Done done) {
  enqueue(Op{OpKind::kInit, {}, std::move(done)});
}

void CacheManager::pull_image(Done done) {
  enqueue(Op{OpKind::kPull, {}, std::move(done)});
}

void CacheManager::push_image(Done done) {
  enqueue(Op{OpKind::kPush, {}, std::move(done)});
}

void CacheManager::start_use_image(Done done) {
  if (in_use_) {
    throw std::logic_error("CacheManager: startUseImage while already in use");
  }
  // Fast path: a valid copy (exclusive in strong mode) needs no traffic.
  const bool ready =
      mode_ == Mode::kStrong ? (valid_ && exclusive_) : valid_;
  if (ready && queue_.empty() && !current_.has_value()) {
    in_use_ = true;
    stats_.inc("start_use.local");
    if (done) done();
    return;
  }
  stats_.inc("start_use.remote");
  const OpKind kind = mode_ == Mode::kStrong ? OpKind::kAcquire : OpKind::kPull;
  // Wrap the completion to enter the use section once revalidated.
  enqueue(Op{kind, {}, [this, done = std::move(done)] {
               in_use_ = true;
               if (done) done();
             }});
}

void CacheManager::end_use_image(bool modified) {
  if (!in_use_) {
    throw std::logic_error("CacheManager: endUseImage without startUseImage");
  }
  in_use_ = false;
  if (modified) dirty_ = true;
  // Serve commands deferred by the mutual-exclusion section (§4.2: "the
  // view needs to mark the code that processes the data as mutually
  // exclusive" so merges/extracts never interleave with work).
  if (deferred_invalidate_epoch_.has_value()) {
    const auto epoch = *deferred_invalidate_epoch_;
    deferred_invalidate_epoch_.reset();
    serve_invalidate(epoch);
  }
  auto tokens = std::move(deferred_fetch_tokens_);
  deferred_fetch_tokens_.clear();
  for (const auto token : tokens) serve_fetch(token);
}

void CacheManager::set_mode(Mode m, Done done) {
  enqueue(Op{OpKind::kModeChange, m, std::move(done)});
}

void CacheManager::kill_image(Done done) {
  enqueue(Op{OpKind::kKill, {}, std::move(done)});
}

void CacheManager::reconnect(Done done) {
  if (!alive_) {
    if (done) done();
    return;
  }
  // Forget the old incarnation: its replies will never arrive.
  current_.reset();
  registered_ = false;
  rejected_ = false;
  reject_reason_.clear();
  id_ = kInvalidViewId;
  valid_ = false;
  exclusive_ = false;
  deferred_invalidate_epoch_.reset();
  deferred_fetch_tokens_.clear();
  stats_.inc("reconnect");

  // Recovery ops run before anything previously queued: refresh the
  // base image, then surrender locally pending updates.
  const bool need_push = dirty_;
  if (need_push) {
    queue_.push_front(Op{OpKind::kPush, {}, std::move(done)});
    queue_.push_front(Op{OpKind::kInit, {}, {}});
  } else {
    queue_.push_front(Op{OpKind::kInit, {}, std::move(done)});
  }

  msg::RegisterReq req;
  req.view_name = cfg_.view_name;
  req.properties = cfg_.properties;
  req.mode = mode_;
  req.push_trigger = cfg_.push_trigger;
  req.pull_trigger = cfg_.pull_trigger;
  req.validity_trigger = cfg_.validity_trigger;
  const auto bytes = msg::wire_size(req);
  fabric_.send(self_, directory_, msg::kRegisterReq, std::move(req), bytes);
}

// ---- op queue ---------------------------------------------------------------

void CacheManager::enqueue(Op op) {
  if (!alive_ || rejected_) {
    // Registration failed or the manager is dead: complete immediately;
    // callers observe the failure through rejected()/alive().
    if (op.done) op.done();
    return;
  }
  queue_.push_back(std::move(op));
  pump();
}

void CacheManager::pump() {
  if (current_.has_value() || !registered_ || queue_.empty()) return;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  issue(*current_);
}

void CacheManager::issue(Op& op) {
  switch (op.kind) {
    case OpKind::kInit: {
      msg::InitReq req{id_};
      fabric_.send(self_, directory_, msg::kInitReq, req, msg::wire_size(req));
      break;
    }
    case OpKind::kPull: {
      msg::PullReq req{id_, intent_};
      fabric_.send(self_, directory_, msg::kPullReq, req, msg::wire_size(req));
      break;
    }
    case OpKind::kPush: {
      msg::PushUpdate req;
      req.view = id_;
      req.image = extract_dirty();
      const auto bytes = msg::wire_size(req);
      fabric_.send(self_, directory_, msg::kPushUpdate, std::move(req), bytes);
      break;
    }
    case OpKind::kAcquire: {
      msg::AcquireReq req{id_, intent_};
      fabric_.send(self_, directory_, msg::kAcquireReq, req,
                   msg::wire_size(req));
      break;
    }
    case OpKind::kModeChange: {
      msg::ModeChangeReq req{id_, op.new_mode};
      fabric_.send(self_, directory_, msg::kModeChangeReq, req,
                   msg::wire_size(req));
      break;
    }
    case OpKind::kKill: {
      msg::KillReq req;
      req.view = id_;
      req.dirty = dirty_;
      if (dirty_) req.final_image = extract_dirty();
      const auto bytes = msg::wire_size(req);
      fabric_.send(self_, directory_, msg::kKillReq, std::move(req), bytes);
      break;
    }
  }
}

void CacheManager::complete_current() {
  Done done = std::move(current_->done);
  current_.reset();
  if (done) done();
  pump();
}

ObjectImage CacheManager::extract_dirty() {
  ObjectImage image = view_.extract_from_view(cfg_.properties);
  return image;
}

// ---- message handling -------------------------------------------------------

void CacheManager::on_message(const net::Message& m) {
  if (m.type == msg::kRegisterAck) {
    const auto& ack = net::payload_as<msg::RegisterAck>(m);
    if (ack.accepted) {
      registered_ = true;
      id_ = ack.view;
      arm_trigger_timer();
      pump();
    } else {
      rejected_ = true;
      reject_reason_ = ack.reason;
      // Flush queued ops so callers do not hang.
      std::deque<Op> q = std::move(queue_);
      queue_.clear();
      for (auto& op : q) {
        if (op.done) op.done();
      }
    }
    return;
  }

  if (m.type == msg::kInvalidateReq) {
    const auto& req = net::payload_as<msg::InvalidateReq>(m);
    if (in_use_) {
      deferred_invalidate_epoch_ = req.epoch;  // ack after endUseImage
      stats_.inc("invalidate.deferred");
    } else {
      serve_invalidate(req.epoch);
    }
    return;
  }

  if (m.type == msg::kFetchReq) {
    const auto& req = net::payload_as<msg::FetchReq>(m);
    if (in_use_) {
      deferred_fetch_tokens_.push_back(req.token);
      stats_.inc("fetch.deferred");
    } else {
      serve_fetch(req.token);
    }
    return;
  }

  if (m.type == msg::kUpdateNotify) {
    ++notifies_received_;
    stats_.inc("notify.received");
    return;
  }

  // Replies to the in-flight operation.
  if (!current_.has_value()) {
    stats_.inc("msg.unexpected");
    return;
  }

  if (m.type == msg::kInitReply && current_->kind == OpKind::kInit) {
    const auto& reply = net::payload_as<msg::InitReply>(m);
    view_.merge_into_view(reply.image, cfg_.properties);
    valid_ = true;
    dirty_ = false;
    last_version_ = reply.image.version();
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kPullReply && current_->kind == OpKind::kPull) {
    const auto& reply = net::payload_as<msg::PullReply>(m);
    view_.merge_into_view(reply.image, cfg_.properties);
    valid_ = true;
    last_version_ = reply.image.version();
    last_pull_unseen_ = reply.unseen_before;
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kPushAck && current_->kind == OpKind::kPush) {
    const auto& ack = net::payload_as<msg::PushAck>(m);
    last_version_ = ack.version;
    dirty_ = false;
    last_push_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kAcquireGrant && current_->kind == OpKind::kAcquire) {
    const auto& grant = net::payload_as<msg::AcquireGrant>(m);
    view_.merge_into_view(grant.image, cfg_.properties);
    valid_ = true;
    exclusive_ = true;
    // dirty_ is deliberately preserved: updates made before the acquire
    // (e.g. in weak mode just before a mode switch) still need to be
    // surrendered on the next invalidation/push/kill.
    last_version_ = grant.image.version();
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kModeChangeAck &&
      current_->kind == OpKind::kModeChange) {
    const auto& ack = net::payload_as<msg::ModeChangeAck>(m);
    mode_ = ack.mode;
    if (mode_ == Mode::kStrong) {
      // Must re-acquire before the next use section.
      valid_ = false;
      exclusive_ = false;
    } else {
      exclusive_ = false;  // copy stays valid in weak mode
    }
    complete_current();
    return;
  }
  if (m.type == msg::kKillAck && current_->kind == OpKind::kKill) {
    alive_ = false;
    registered_ = false;
    valid_ = false;
    exclusive_ = false;
    dirty_ = false;
    if (trigger_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(trigger_timer_);
      trigger_timer_ = net::kInvalidTimerId;
    }
    // Any ops queued behind kill can never complete remotely.
    std::deque<Op> q = std::move(queue_);
    queue_.clear();
    complete_current();
    for (auto& op : q) {
      if (op.done) op.done();
    }
    return;
  }
  stats_.inc("msg.unexpected");
}

void CacheManager::serve_invalidate(std::uint64_t epoch) {
  ++invalidations_served_;
  stats_.inc("invalidate.served");
  msg::InvalidateAck ack;
  ack.view = id_;
  ack.epoch = epoch;
  ack.dirty = dirty_ && valid_;
  if (ack.dirty) ack.image = extract_dirty();
  valid_ = false;
  exclusive_ = false;
  dirty_ = false;
  const auto bytes = msg::wire_size(ack);
  fabric_.send(self_, directory_, msg::kInvalidateAck, std::move(ack), bytes);
}

void CacheManager::serve_fetch(std::uint64_t token) {
  stats_.inc("fetch.served");
  msg::FetchReply reply;
  reply.view = id_;
  reply.token = token;
  reply.dirty = dirty_ && valid_;
  if (reply.dirty) {
    reply.image = extract_dirty();
    dirty_ = false;  // our updates are now at the primary
  }
  const auto bytes = msg::wire_size(reply);
  fabric_.send(self_, directory_, msg::kFetchReply, std::move(reply), bytes);
}

// ---- quality triggers --------------------------------------------------------

void CacheManager::arm_trigger_timer() {
  if (!push_trigger_.has_value() && !pull_trigger_.has_value()) return;
  if (trigger_timer_ != net::kInvalidTimerId) return;  // already armed
  // Daemon timer: the recurring poll must not keep a run-to-quiescence
  // simulation alive forever.
  trigger_timer_ = fabric_.schedule_daemon(self_, cfg_.trigger_poll,
                                           [this] { poll_triggers(); });
}

void CacheManager::poll_triggers() {
  trigger_timer_ = net::kInvalidTimerId;
  if (!alive_) return;
  // Quiescent only: triggers never interrupt the mutual-exclusion
  // section or preempt an in-flight operation.
  const bool can_fire =
      !in_use_ && !current_.has_value() && queue_.empty();
  if (can_fire) {
    const trigger::Env& vars = view_.variables();
    if (pull_trigger_.has_value()) {
      const double t_ms = sim::to_ms(fabric_.now() - last_pull_at_);
      if (pull_trigger_->evaluate(t_ms, vars)) {
        stats_.inc("auto.pull");
        pull_image();
      }
    }
    if (push_trigger_.has_value() && dirty_) {
      const double t_ms = sim::to_ms(fabric_.now() - last_push_at_);
      if (push_trigger_->evaluate(t_ms, vars)) {
        stats_.inc("auto.push");
        push_image();
      }
    }
  }
  arm_trigger_timer();
}

}  // namespace flecc::core
