#include "core/cache_manager.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace flecc::core {

namespace {

/// Per-manager jitter stream: mix the policy seed with the endpoint
/// address so colocated managers draw independent deterministic streams.
std::uint64_t mix_seed(std::uint64_t seed, net::Address addr) {
  std::uint64_t s = seed ^ ((static_cast<std::uint64_t>(addr.node) << 32) |
                            static_cast<std::uint64_t>(addr.port));
  return sim::splitmix64(s);
}

constexpr std::size_t kServedFetchWindow = 8;
constexpr std::size_t kUnconfirmedEchoWindow = 32;
constexpr std::size_t kServedInvalidateWindow = 4;

/// Generation stamp of a directory-originated message; 0 = unstamped.
std::uint64_t dm_generation_of(const net::Message& m) {
  if (m.type == msg::kRegisterAck) {
    return net::payload_as<msg::RegisterAck>(m).gen;
  }
  if (m.type == msg::kInitReply) {
    return net::payload_as<msg::InitReply>(m).gen;
  }
  if (m.type == msg::kPullReply) {
    return net::payload_as<msg::PullReply>(m).gen;
  }
  if (m.type == msg::kPushAck) return net::payload_as<msg::PushAck>(m).gen;
  if (m.type == msg::kAcquireGrant) {
    return net::payload_as<msg::AcquireGrant>(m).gen;
  }
  if (m.type == msg::kInvalidateReq) {
    return net::payload_as<msg::InvalidateReq>(m).gen;
  }
  if (m.type == msg::kFetchReq) return net::payload_as<msg::FetchReq>(m).gen;
  if (m.type == msg::kModeChangeAck) {
    return net::payload_as<msg::ModeChangeAck>(m).gen;
  }
  if (m.type == msg::kKillAck) return net::payload_as<msg::KillAck>(m).gen;
  if (m.type == msg::kUpdateNotify) {
    return net::payload_as<msg::UpdateNotify>(m).gen;
  }
  if (m.type == msg::kHeartbeatAck) {
    return net::payload_as<msg::HeartbeatAck>(m).gen;
  }
  if (m.type == msg::kOpNack) return net::payload_as<msg::OpNack>(m).gen;
  if (m.type == msg::kBusy) return net::payload_as<msg::Busy>(m).gen;
  if (m.type == msg::kDirectoryRebuild) {
    return net::payload_as<msg::DirectoryRebuild>(m).gen;
  }
  if (m.type == msg::kViewMoveReq) {
    return net::payload_as<msg::ViewMoveReq>(m).gen;
  }
  if (m.type == msg::kViewMoveInstall) {
    return net::payload_as<msg::ViewMoveInstall>(m).gen;
  }
  if (m.type == msg::kViewMoveDone) {
    return net::payload_as<msg::ViewMoveDone>(m).gen;
  }
  return 0;
}

/// Journal compaction cadence: rewrite the log as a snapshot once this
/// many records accumulated since the last compaction.
constexpr std::size_t kJournalCompactThreshold = 256;
/// How many request ids one kCmReq ceiling promise covers; amortizes
/// the journal traffic of alloc_req() to one record per 64 ids.
constexpr std::uint64_t kReqCeilingStride = 64;

}  // namespace

CacheManager::CacheManager(net::Fabric& fabric, net::Address self,
                           net::Address directory, ViewAdapter& view,
                           Config cfg)
    : fabric_(fabric),
      self_(self),
      directory_(directory),
      view_(view),
      cfg_(std::move(cfg)),
      mode_(cfg_.mode),
      retry_rng_(mix_seed(cfg_.retry.seed, self)) {
  if (!cfg_.push_trigger.empty()) push_trigger_.emplace(cfg_.push_trigger);
  if (!cfg_.pull_trigger.empty()) pull_trigger_.emplace(cfg_.pull_trigger);
  fabric_.bind(self_, *this);
  fabric_.set_clock(self_, &clock_);
  if (cfg_.trace != nullptr) cfg_.trace->set_clock(&clock_);
  breaker_ = flow::CircuitBreaker(flow::CircuitBreaker::Config{
      cfg_.breaker_threshold, cfg_.breaker_open_timeout});
  breaker_.set_transition_hook(
      [this](flow::BreakerState from, flow::BreakerState to) {
        on_breaker_transition(from, to);
      });
  replay_journal();
  if (!cfg_.await_migration || resume_view_ != kInvalidViewId) {
    register_req_ = alloc_req();
    send_register();
  }
  // else: idle migration destination — a ViewMoveInstall adopts us.
}

CacheManager::~CacheManager() {
  if (trigger_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(trigger_timer_);
  }
  if (handoff_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(handoff_timer_);
    handoff_timer_ = net::kInvalidTimerId;
  }
  cancel_op_timer();
  if (register_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(register_timer_);
    register_timer_ = net::kInvalidTimerId;
  }
  stop_heartbeats();
  fabric_.set_clock(self_, nullptr);
  fabric_.unbind(self_);
}

// ---- public API ------------------------------------------------------------

void CacheManager::init_image(Done done) {
  enqueue(Op{OpKind::kInit, {}, std::move(done)});
}

void CacheManager::pull_image(Done done) {
  enqueue(Op{OpKind::kPull, {}, std::move(done)});
}

void CacheManager::push_image(Done done) {
  if (halted_) return;
  if (can_absorb_push()) {
    // Write buffer: the deltas keep accumulating in the view's pending
    // set; the next extraction (a real push, a served fetch or
    // invalidate, or the kill) surrenders them all in one message.
    ++wbuf_streak_;
    stats_.inc("wbuf.absorbed");
    journal_write_buffer();
    if (done) done();
    return;
  }
  if (wbuf_streak_ >= cfg_.write_buffer_ops && cfg_.write_buffer_ops > 0) {
    stats_.inc("wbuf.flush.capacity");
  }
  enqueue(Op{OpKind::kPush, {}, std::move(done)});
}

bool CacheManager::can_absorb_push() const noexcept {
  return cfg_.write_buffer_ops > 0 && mode_ == Mode::kWeak && alive_ &&
         registered_ && !rejected_ && valid_ && dirty_ &&
         wbuf_streak_ < cfg_.write_buffer_ops;
}

void CacheManager::start_use_image(Done done) {
  if (halted_) return;
  if (in_use_) {
    throw std::logic_error("CacheManager: startUseImage while already in use");
  }
  // Fast path: a valid copy (exclusive in strong mode) needs no traffic.
  const bool ready =
      mode_ == Mode::kStrong ? (valid_ && exclusive_) : valid_;
  if (ready && queue_.empty() && !current_.has_value()) {
    in_use_ = true;
    stats_.inc("start_use.local");
    if (done) done();
    return;
  }
  stats_.inc("start_use.remote");
  const OpKind kind = mode_ == Mode::kStrong ? OpKind::kAcquire : OpKind::kPull;
  // Wrap the completion to enter the use section once revalidated.
  enqueue(Op{kind, {}, [this, done = std::move(done)] {
               in_use_ = true;
               if (done) done();
             }});
}

void CacheManager::end_use_image(bool modified) {
  if (halted_) return;
  if (!in_use_) {
    throw std::logic_error("CacheManager: endUseImage without startUseImage");
  }
  in_use_ = false;
  if (modified) dirty_ = true;
  // Serve commands deferred by the mutual-exclusion section (§4.2: "the
  // view needs to mark the code that processes the data as mutually
  // exclusive" so merges/extracts never interleave with work).
  if (deferred_invalidate_epoch_.has_value()) {
    const auto epoch = *deferred_invalidate_epoch_;
    deferred_invalidate_epoch_.reset();
    serve_invalidate(epoch);
  }
  auto tokens = std::move(deferred_fetch_tokens_);
  deferred_fetch_tokens_.clear();
  for (const auto token : tokens) serve_fetch(token);
  try_seal();  // a pending migration may now find us quiescent
}

void CacheManager::set_mode(Mode m, Done done) {
  enqueue(Op{OpKind::kModeChange, m, std::move(done)});
}

void CacheManager::kill_image(Done done) {
  enqueue(Op{OpKind::kKill, {}, std::move(done)});
}

void CacheManager::reconnect(Done done) {
  if (halted_) return;
  if (!alive_) {
    if (done) done();
    return;
  }
  cancel_op_timer();
  if (register_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(register_timer_);
    register_timer_ = net::kInvalidTimerId;
  }
  stop_heartbeats();

  // The in-flight op (if any) is re-issued under the new incarnation
  // with its request id and extracted image intact: if the directory
  // already executed it, the dedup window replays the original reply
  // rather than re-executing, and the op's Done still fires.
  std::optional<Op> abandoned = std::move(current_);
  current_.reset();
  registered_ = false;
  rejected_ = false;
  reject_reason_.clear();
  id_ = kInvalidViewId;
  valid_ = false;
  exclusive_ = false;
  deferred_invalidate_epoch_.reset();
  deferred_fetch_tokens_.clear();
  served_fetches_.clear();
  served_invalidates_.clear();
  stats_.inc("reconnect");

  if (abandoned.has_value()) {
    abandoned->attempts = 0;  // fresh retry budget for the new incarnation
    stats_.inc("op.reissued");
    queue_.push_front(std::move(*abandoned));
  }
  // Recovery ops run before anything previously queued: refresh the
  // base image, then surrender locally pending updates (including any
  // reply echoes the old incarnation never got confirmed).
  const bool need_push = dirty_ || !unconfirmed_echoes_.empty();
  if (need_push) {
    queue_.push_front(Op{OpKind::kPush, {}, std::move(done)});
    queue_.push_front(Op{OpKind::kInit, {}, {}});
  } else {
    queue_.push_front(Op{OpKind::kInit, {}, std::move(done)});
  }

  register_req_ = alloc_req();
  register_attempts_ = 0;
  send_register();
}

// ---- registration -----------------------------------------------------------

void CacheManager::send_register() {
  if (register_attempts_ == 0) register_started_at_ = fabric_.now();
  ++register_attempts_;
  msg::RegisterReq req;
  req.view_name = cfg_.view_name;
  req.properties = cfg_.properties;
  req.mode = mode_;
  req.push_trigger = cfg_.push_trigger;
  req.pull_trigger = cfg_.pull_trigger;
  req.validity_trigger = cfg_.validity_trigger;
  req.resume_view = resume_view_;
  req.incarnation = incarnation_;
  req.req = register_req_;
  req.gen = dir_generation_;
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                    register_attempts_ == 1
                        ? obs::EventKind::kMsgSent
                        : obs::EventKind::kMsgRetransmitted,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, register_req_), msg::kRegisterReq,
                    register_attempts_);
  send_dir(msg::kRegisterReq, std::move(req));
  if (!cfg_.retry.enabled()) return;
  if (register_attempts_ < cfg_.retry.max_attempts) {
    register_timer_ = fabric_.schedule(
        self_, cfg_.retry.timeout_for(register_attempts_, retry_rng_),
        [this] { on_register_timeout(); });
  } else {
    // Attempt cap reached: keep trying, but on a daemon timer at the
    // backoff ceiling so an unreachable directory never wedges a
    // run-to-quiescence simulation — recovery stays self-driving once
    // connectivity returns.
    register_timer_ = fabric_.schedule_daemon(
        self_, cfg_.retry.max_timeout, [this] { on_register_timeout(); });
  }
}

void CacheManager::on_register_timeout() {
  register_timer_ = net::kInvalidTimerId;
  if (!alive_ || registered_ || rejected_) return;
  if (cfg_.retry.deadline > 0 && register_started_at_ >= 0 &&
      fabric_.now() - register_started_at_ >= cfg_.retry.deadline) {
    // The directory stayed unreachable for this incarnation's whole
    // budget: fail registration terminally so queued callers unwedge
    // (they observe the failure through rejected()).
    stats_.inc("reliability.exhausted");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                      obs::EventKind::kRetryExhausted,
                      obs::Role::kCacheManager, obs::agent_key(self_),
                      obs::span_id(self_, register_req_), "register",
                      register_attempts_);
    rejected_ = true;
    reject_reason_ = "registration deadline exhausted";
    if (cfg_.on_give_up) cfg_.on_give_up("register");
    std::deque<Op> q = std::move(queue_);
    queue_.clear();
    for (auto& op : q) {
      if (op.done) op.done();
    }
    return;
  }
  stats_.inc("register.retry");
  send_register();
}

// ---- crash simulation -------------------------------------------------------

void CacheManager::halt() {
  if (halted_) return;
  halted_ = true;
  cancel_op_timer();
  if (register_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(register_timer_);
    register_timer_ = net::kInvalidTimerId;
  }
  stop_heartbeats();
  if (trigger_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(trigger_timer_);
    trigger_timer_ = net::kInvalidTimerId;
  }
  if (handoff_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(handoff_timer_);
    handoff_timer_ = net::kInvalidTimerId;
  }
  current_.reset();  // completions are deliberately NOT invoked
  queue_.clear();
  fabric_.set_clock(self_, nullptr);
  fabric_.unbind(self_);
}

// ---- op queue ---------------------------------------------------------------

void CacheManager::enqueue(Op op) {
  if (halted_) return;  // crashed: nothing runs, nothing completes
  if (!alive_ || rejected_) {
    // Registration failed or the manager is dead: complete immediately;
    // callers observe the failure through rejected()/alive().
    if (op.done) op.done();
    return;
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kOpEnqueued,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    op_label(op.kind), queue_.size());
  queue_.push_back(std::move(op));
  pump();
}

void CacheManager::pump() {
  if (sealed_) return;  // quiesced for migration: nothing issues
  if (current_.has_value() || !registered_ || queue_.empty()) {
    try_seal();  // the queue may just have drained under a move request
    return;
  }
  current_ = std::move(queue_.front());
  queue_.pop_front();
  issue(*current_);
}

void CacheManager::issue(Op& op) {
  if (is_bulk(op.kind) && !breaker_.allow(fabric_.now())) {
    // Breaker open: hold the op locally instead of hammering a drowning
    // directory; the timer re-tries at the window edge (where allow()
    // admits it as the half-open probe). The overall deadline still
    // applies, so a destination that never recovers is terminal.
    if (cfg_.retry.deadline > 0 && op.first_issued_at >= 0 &&
        fabric_.now() - op.first_issued_at >= cfg_.retry.deadline) {
      give_up_current(op_label(op.kind));
      return;
    }
    stats_.inc("breaker.deferred");
    cancel_op_timer();
    op_timer_ =
        fabric_.schedule(self_, breaker_.retry_in(fabric_.now()), [this] {
          op_timer_ = net::kInvalidTimerId;
          if (alive_ && current_.has_value()) issue(*current_);
        });
    return;
  }
  ++op.attempts;
  if (op.req == 0) op.req = alloc_req();
  if (op.attempts == 1) {
    if (op.first_issued_at < 0) op.first_issued_at = fabric_.now();
    // a = our view id: the monitor's agent -> view mapping.
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kOpStarted,
                      obs::Role::kCacheManager, obs::agent_key(self_),
                      obs::span_id(self_, op.req), op_label(op.kind), id_);
  }
  switch (op.kind) {
    case OpKind::kInit: {
      send_dir(msg::kInitReq, msg::InitReq{id_, op.req, dir_generation_});
      break;
    }
    case OpKind::kPull: {
      send_dir(msg::kPullReq,
               msg::PullReq{id_, intent_, op.req, dir_generation_});
      break;
    }
    case OpKind::kPush: {
      // Extraction moves the view's pending deltas, so it happens once;
      // retransmissions resend the cached image under the same req id.
      // Unconfirmed reply echoes are snapshotted alongside it: the
      // PushAck for this req confirms exactly this set.
      if (!op.image.has_value()) {
        op.image = extract_dirty();
        op.echoes.assign(unconfirmed_echoes_.begin(),
                         unconfirmed_echoes_.end());
        journal_intent(op.req, *op.image);
      }
      msg::PushUpdate req;
      req.view = id_;
      req.image = *op.image;
      req.req = op.req;
      req.gen = dir_generation_;
      req.echoes = op.echoes;
      send_dir(msg::kPushUpdate, std::move(req));
      break;
    }
    case OpKind::kAcquire: {
      send_dir(msg::kAcquireReq,
               msg::AcquireReq{id_, intent_, op.req, dir_generation_});
      break;
    }
    case OpKind::kModeChange: {
      send_dir(msg::kModeChangeReq,
               msg::ModeChangeReq{id_, op.new_mode, op.req, dir_generation_});
      break;
    }
    case OpKind::kKill: {
      // op.image doubles as the dirty marker: set at first issue only.
      if (op.attempts == 1) {
        if (dirty_) op.image = extract_dirty();
        op.echoes.assign(unconfirmed_echoes_.begin(),
                         unconfirmed_echoes_.end());
        if (op.image.has_value()) journal_intent(op.req, *op.image);
      }
      msg::KillReq req;
      req.view = id_;
      req.dirty = op.image.has_value();
      if (op.image.has_value()) req.final_image = *op.image;
      req.req = op.req;
      req.gen = dir_generation_;
      req.echoes = op.echoes;
      send_dir(msg::kKillReq, std::move(req));
      break;
    }
  }
  // b = 1 when this op carries an extracted dirty image (push always,
  // kill when dirty): the monitor's exactly-once-merge bookkeeping.
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                    op.attempts == 1 ? obs::EventKind::kMsgSent
                                     : obs::EventKind::kMsgRetransmitted,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, op.req), op_msg_type(op.kind),
                    op.attempts, op.image.has_value() ? 1 : 0);
  cancel_op_timer();
  if (cfg_.retry.enabled()) {
    op_timer_ = fabric_.schedule(
        self_, cfg_.retry.timeout_for(op.attempts, retry_rng_),
        [this] { on_op_timeout(); });
  }
}

void CacheManager::on_op_timeout() {
  op_timer_ = net::kInvalidTimerId;
  if (!alive_ || !current_.has_value()) return;
  if (cfg_.retry.deadline > 0 && current_->first_issued_at >= 0 &&
      fabric_.now() - current_->first_issued_at >= cfg_.retry.deadline) {
    // Overall per-op budget spent across every retransmission, Busy
    // back-off, and reconnect cycle: give up terminally instead of
    // failing over into yet another retry round.
    give_up_current(op_label(current_->kind));
    return;
  }
  if (current_->attempts >= cfg_.retry.max_attempts) {
    // Retry budget exhausted: assume the registration (or the
    // directory) is gone and fail over instead of wedging the queue.
    stats_.inc("op.failover");
    reconnect();
    // After reconnect so the breaker's degradation hook sees the op
    // already parked back on the queue, not still in flight.
    breaker_.on_failure(fabric_.now());
    return;
  }
  stats_.inc("op.retry");
  issue(*current_);
}

void CacheManager::give_up_current(const char* why) {
  stats_.inc("reliability.exhausted");
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                    obs::EventKind::kRetryExhausted,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, current_->req), why,
                    current_->attempts);
  cancel_op_timer();
  Done done = std::move(current_->done);
  current_.reset();
  // After the reset: the breaker hook must not re-park the abandoned op.
  breaker_.on_failure(fabric_.now());
  if (cfg_.on_give_up) cfg_.on_give_up(why);
  if (done) done();
  pump();
}

void CacheManager::on_breaker_transition(flow::BreakerState from,
                                         flow::BreakerState to) {
  stats_.inc_cat("breaker.", flow::to_string(to));
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                    obs::EventKind::kBreakerTransition,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    flow::to_string(to), static_cast<std::uint64_t>(from),
                    static_cast<std::uint64_t>(to));
  if (to == flow::BreakerState::kOpen && cfg_.degrade_on_overload &&
      !degraded_ && mode_ == Mode::kStrong && alive_ && !rejected_) {
    // Degradation ladder: STRONG acquires are what a drowning directory
    // cannot serve, so fall back to WEAK — pushes get absorbed by the
    // write buffer and use sections stop needing exclusivity. The
    // stalled bulk op is parked behind the mode switch (same kind, same
    // req id) and re-issues once the breaker admits traffic again.
    if (current_.has_value() && current_->kind != OpKind::kModeChange &&
        current_->kind != OpKind::kKill) {
      cancel_op_timer();
      queue_.push_front(std::move(*current_));
      current_.reset();
    }
    queue_.push_front(Op{OpKind::kModeChange, Mode::kWeak, {}});
    degraded_ = true;
    stats_.inc("breaker.degrade");
    pump();
  } else if (to == flow::BreakerState::kClosed && degraded_) {
    degraded_ = false;
    stats_.inc("breaker.restore");
    set_mode(Mode::kStrong);
  }
}

bool CacheManager::accept_reply(OpKind kind, std::uint64_t req) {
  if (!current_.has_value()) {
    // A late duplicate of an already-completed exchange (req != 0), or a
    // genuinely unexpected message (req == 0: unframed/forged).
    stats_.inc(req != 0 ? "msg.duplicate.dropped" : "msg.unexpected");
    if (req != 0) {
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kDedupHit,
                        obs::Role::kCacheManager, obs::agent_key(self_),
                        obs::span_id(self_, req), op_reply_type(kind));
    }
    return false;
  }
  if (current_->kind != kind || (req != 0 && req != current_->req)) {
    stats_.inc(req != 0 ? "msg.stale.dropped" : "msg.unexpected");
    if (req != 0) {
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kDedupHit,
                        obs::Role::kCacheManager, obs::agent_key(self_),
                        obs::span_id(self_, req), op_reply_type(kind));
    }
    return false;
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, current_->req), op_reply_type(kind));
  return true;
}

void CacheManager::complete_current() {
  cancel_op_timer();
  // A served bulk request is proof the directory is healthy again; the
  // transition hook un-degrades (kClosed) if overload had demoted us.
  if (is_bulk(current_->kind)) breaker_.on_success();
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kOpCompleted,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, current_->req),
                    op_label(current_->kind), current_->attempts);
  Done done = std::move(current_->done);
  current_.reset();
  if (done) done();
  pump();
}

void CacheManager::cancel_op_timer() {
  if (op_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(op_timer_);
    op_timer_ = net::kInvalidTimerId;
  }
}

ObjectImage CacheManager::extract_dirty() {
  if (wbuf_streak_ > 0) {
    // This extraction carries everything the write buffer absorbed.
    stats_.inc("wbuf.flushed");
    wbuf_streak_ = 0;
  }
  ObjectImage image = view_.extract_from_view(cfg_.properties);
  return image;
}

// ---- heartbeats -------------------------------------------------------------

void CacheManager::start_heartbeats() {
  if (cfg_.heartbeat_interval <= 0) return;
  if (heartbeat_timer_ != net::kInvalidTimerId) return;
  heartbeat_unacked_ = 0;
  heartbeat_timer_ = fabric_.schedule_daemon(
      self_, cfg_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void CacheManager::stop_heartbeats() {
  if (heartbeat_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(heartbeat_timer_);
    heartbeat_timer_ = net::kInvalidTimerId;
  }
  heartbeat_unacked_ = 0;
}

void CacheManager::heartbeat_tick() {
  heartbeat_timer_ = net::kInvalidTimerId;
  if (!alive_ || !registered_) return;
  if (heartbeat_unacked_ > 0) {
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                      obs::EventKind::kHeartbeatMiss,
                      obs::Role::kCacheManager, obs::agent_key(self_), 0,
                      msg::kHeartbeat, heartbeat_unacked_);
  }
  if (heartbeat_unacked_ >= cfg_.heartbeat_miss_limit) {
    // The directory stopped answering: assume our registration is gone
    // (it evicts silent views symmetrically) and re-establish it.
    stats_.inc("heartbeat.failover");
    reconnect();
    return;
  }
  if (cfg_.piggyback_heartbeats && last_dir_traffic_ > 0 &&
      fabric_.now() - last_dir_traffic_ < cfg_.heartbeat_interval) {
    // Regular traffic reached the directory within the interval — it
    // keeps our liveness record fresh exactly like a beacon would, and
    // its replies clear the miss counter (on_message). Skip the
    // redundant send; a dead directory is still caught because idle
    // managers fall back to timed beacons and busy ones hit the
    // request-retry failover first.
    stats_.inc("heartbeat.piggybacked");
  } else {
    msg::Heartbeat hb{id_, ++heartbeat_seq_, dir_generation_};
    ++heartbeat_unacked_;
    stats_.inc("heartbeat.sent");
    send_dir(msg::kHeartbeat, hb);
  }
  heartbeat_timer_ = fabric_.schedule_daemon(
      self_, cfg_.heartbeat_interval, [this] { heartbeat_tick(); });
}

// ---- message handling -------------------------------------------------------

void CacheManager::on_message(const net::Message& m) {
  if (halted_) return;

  // Generation fencing: adopt a newer directory incarnation the moment
  // any of its messages arrives (every subsequent send is stamped with
  // it), and drop messages minted by an older, crashed incarnation —
  // their protocol state (rounds, versions, grants) no longer exists.
  if (const std::uint64_t gen = dm_generation_of(m); gen != 0) {
    if (gen < dir_generation_) {
      stats_.inc("recovery.fenced");
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgFenced,
                        obs::Role::kCacheManager, obs::agent_key(self_), 0,
                        m.type.c_str(), gen, dir_generation_);
      return;
    }
    if (gen > dir_generation_) {
      if (dir_generation_ != 0) stats_.inc("recovery.generation_bump");
      dir_generation_ = gen;
    }
  }

  // Piggyback mode treats every live directory message as a liveness
  // proof — without this, a beacon whose ack happened to be dropped
  // would keep counting misses even while real replies flow, and the
  // miss counter would double-count its way to a spurious reconnect.
  if (cfg_.piggyback_heartbeats) heartbeat_unacked_ = 0;

  if (m.type == msg::kDirectoryRebuild) return handle_rebuild_probe(m);
  if (m.type == msg::kViewMoveReq) return handle_move_req(m);
  if (m.type == msg::kViewMoveInstall) return handle_move_install(m);
  if (m.type == msg::kViewMoveDone) return handle_move_done(m);

  if (m.type == msg::kRegisterAck) {
    const auto& ack = net::payload_as<msg::RegisterAck>(m);
    if (ack.req != 0 && ack.req != register_req_) {
      stats_.inc("msg.stale.dropped");  // ack for a previous incarnation
      return;
    }
    if (registered_ || rejected_) {
      stats_.inc("msg.duplicate.dropped");
      return;
    }
    if (register_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(register_timer_);
      register_timer_ = net::kInvalidTimerId;
    }
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kCacheManager, obs::agent_key(self_),
                      obs::span_id(self_, register_req_), msg::kRegisterAck,
                      ack.accepted ? 1 : 0);
    if (ack.accepted) {
      registered_ = true;
      id_ = ack.view;
      if (resume_view_ != kInvalidViewId) {
        stats_.inc(id_ == resume_view_ ? "journal.resumed"
                                       : "journal.resume_missed");
        resume_view_ = kInvalidViewId;  // later reconnects register fresh
      }
      journal_bind();
      arm_trigger_timer();
      start_heartbeats();
      pump();
    } else {
      rejected_ = true;
      reject_reason_ = ack.reason;
      // Flush queued ops so callers do not hang.
      std::deque<Op> q = std::move(queue_);
      queue_.clear();
      for (auto& op : q) {
        if (op.done) op.done();
      }
    }
    return;
  }

  if (m.type == msg::kHeartbeatAck) {
    const auto& ack = net::payload_as<msg::HeartbeatAck>(m);
    if (!alive_ || !registered_ || ack.view != id_) return;
    if (sealed_) {
      // Mid-migration the record may already point at the destination
      // (known=false for us) — reconnecting now would fresh-register and
      // steal the view back. The ViewMoveDone settles our fate instead.
      heartbeat_unacked_ = 0;
      return;
    }
    if (!ack.known) {
      // The directory does not know us (restart or liveness eviction):
      // our copy can no longer be trusted to be coherent.
      stats_.inc("heartbeat.lost_registration");
      reconnect();
      return;
    }
    heartbeat_unacked_ = 0;
    return;
  }

  if (m.type == msg::kBusy) {
    const auto& busy = net::payload_as<msg::Busy>(m);
    if (!current_.has_value() ||
        (busy.req != 0 && busy.req != current_->req)) {
      // Late Busy for an exchange that already resolved.
      stats_.inc("msg.duplicate.dropped");
      return;
    }
    stats_.inc("flow.busy.received");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kCacheManager, obs::agent_key(self_),
                      obs::span_id(self_, current_->req), msg::kBusy,
                      static_cast<std::uint64_t>(busy.retry_after));
    // An explicit "try later": swap the exponential schedule for the
    // server-suggested retry_after (jittered so a shed burst does not
    // re-arrive in lockstep) and reset the attempt count — Busy proves
    // the destination is alive, so the retransmission budget must not
    // tick toward failover while we politely back off. The overall
    // deadline (first_issued_at) still bounds the total wait.
    current_->attempts = 1;
    cancel_op_timer();
    double delay = static_cast<double>(
        busy.retry_after > 0 ? busy.retry_after : cfg_.retry.base_timeout);
    if (cfg_.retry.jitter > 0.0) {
      delay *= retry_rng_.uniform(1.0, 1.0 + cfg_.retry.jitter);
    }
    op_timer_ = fabric_.schedule(
        self_, std::max<sim::Duration>(1, static_cast<sim::Duration>(delay)),
        [this] { on_op_timeout(); });
    // Last: the breaker's transition hook may park current_ behind a
    // degradation mode switch (which cancels the timer just armed).
    breaker_.on_busy(fabric_.now(), busy.retry_after);
    return;
  }

  if (m.type == msg::kOpNack) {
    const auto& nack = net::payload_as<msg::OpNack>(m);
    if (current_.has_value() &&
        (nack.req == 0 || nack.req == current_->req)) {
      stats_.inc("op.nack");
      reconnect();  // re-registers, then re-issues the nacked op
    } else {
      stats_.inc("msg.duplicate.dropped");
    }
    return;
  }

  if (m.type == msg::kInvalidateReq) {
    const auto& req = net::payload_as<msg::InvalidateReq>(m);
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kCacheManager, obs::agent_key(self_), 0,
                      msg::kInvalidateReq, req.epoch);
    if (in_use_) {
      if (deferred_invalidate_epoch_ == req.epoch) {
        stats_.inc("msg.duplicate.dropped");  // retransmitted command
      } else {
        deferred_invalidate_epoch_ = req.epoch;  // ack after endUseImage
        stats_.inc("invalidate.deferred");
      }
    } else {
      serve_invalidate(req.epoch);
    }
    return;
  }

  if (m.type == msg::kFetchReq) {
    const auto& req = net::payload_as<msg::FetchReq>(m);
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kCacheManager, obs::agent_key(self_), 0,
                      msg::kFetchReq, req.token);
    if (in_use_) {
      const bool deferred =
          std::find(deferred_fetch_tokens_.begin(),
                    deferred_fetch_tokens_.end(),
                    req.token) != deferred_fetch_tokens_.end();
      if (deferred) {
        stats_.inc("msg.duplicate.dropped");  // retransmitted command
      } else {
        deferred_fetch_tokens_.push_back(req.token);
        stats_.inc("fetch.deferred");
      }
    } else {
      serve_fetch(req.token);
    }
    return;
  }

  if (m.type == msg::kUpdateNotify) {
    ++notifies_received_;
    stats_.inc("notify.received");
    return;
  }

  // Replies to the in-flight operation.
  if (m.type == msg::kInitReply) {
    const auto& reply = net::payload_as<msg::InitReply>(m);
    if (!accept_reply(OpKind::kInit, reply.req)) return;
    view_.merge_into_view(reply.image, cfg_.properties);
    valid_ = true;
    dirty_ = false;
    last_version_ = reply.image.version();
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kPullReply) {
    const auto& reply = net::payload_as<msg::PullReply>(m);
    if (!accept_reply(OpKind::kPull, reply.req)) return;
    view_.merge_into_view(reply.image, cfg_.properties);
    valid_ = true;
    last_version_ = reply.image.version();
    last_pull_unseen_ = reply.unseen_before;
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kPushAck) {
    const auto& ack = net::payload_as<msg::PushAck>(m);
    if (!accept_reply(OpKind::kPush, ack.req)) return;
    last_version_ = ack.version;
    dirty_ = false;
    last_push_at_ = fabric_.now();
    confirm_echoes(current_->echoes);
    journal_flush(current_->req);
    complete_current();
    return;
  }
  if (m.type == msg::kAcquireGrant) {
    const auto& grant = net::payload_as<msg::AcquireGrant>(m);
    if (!accept_reply(OpKind::kAcquire, grant.req)) return;
    view_.merge_into_view(grant.image, cfg_.properties);
    valid_ = true;
    exclusive_ = true;
    // dirty_ is deliberately preserved: updates made before the acquire
    // (e.g. in weak mode just before a mode switch) still need to be
    // surrendered on the next invalidation/push/kill.
    last_version_ = grant.image.version();
    last_pull_at_ = fabric_.now();
    complete_current();
    return;
  }
  if (m.type == msg::kModeChangeAck) {
    const auto& ack = net::payload_as<msg::ModeChangeAck>(m);
    if (!accept_reply(OpKind::kModeChange, ack.req)) return;
    mode_ = ack.mode;
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kModeSwitch,
                      obs::Role::kCacheManager, obs::agent_key(self_),
                      obs::span_id(self_, ack.req),
                      mode_ == Mode::kStrong ? "strong" : "weak",
                      static_cast<std::uint64_t>(mode_));
    if (mode_ == Mode::kStrong) {
      // Must re-acquire before the next use section.
      valid_ = false;
      exclusive_ = false;
    } else {
      exclusive_ = false;  // copy stays valid in weak mode
    }
    complete_current();
    return;
  }
  if (m.type == msg::kKillAck) {
    const auto& ack = net::payload_as<msg::KillAck>(m);
    if (!accept_reply(OpKind::kKill, ack.req)) return;
    alive_ = false;
    registered_ = false;
    valid_ = false;
    exclusive_ = false;
    dirty_ = false;
    confirm_echoes(current_->echoes);
    unconfirmed_echoes_.clear();  // nothing after the kill will carry them
    journal_flush(current_->req);
    if (cfg_.journal != nullptr) {
      cfg_.journal->compact({});  // a killed view never resumes
      journal_appends_ = 0;
    }
    if (trigger_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(trigger_timer_);
      trigger_timer_ = net::kInvalidTimerId;
    }
    stop_heartbeats();
    // Any ops queued behind kill can never complete remotely.
    std::deque<Op> q = std::move(queue_);
    queue_.clear();
    complete_current();
    for (auto& op : q) {
      if (op.done) op.done();
    }
    return;
  }
  stats_.inc("msg.unexpected");
}

void CacheManager::handle_rebuild_probe(const net::Message& m) {
  const auto& probe = net::payload_as<msg::DirectoryRebuild>(m);
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kDirectoryRebuild, probe.gen, probe.view);
  if (!alive_ || !registered_ || probe.view != id_) {
    // Killed/superseded incarnation of our address: let the rebuild
    // window drop the checkpointed ghost.
    stats_.inc("rebuild.probe.ignored");
    return;
  }
  if (sealed_) {
    // The directory restarted mid-migration and forgot it (migrations
    // are not checkpointed): abandon the handoff and resume serving —
    // the re-pushed delta dedups against the WAL-persisted merge marker.
    stats_.inc("migrate.abandoned.rebuild");
    unseal_resume();
  }
  stats_.inc("rebuild.reannounced");
  msg::RebuildReply rep;
  rep.view = id_;
  rep.view_name = cfg_.view_name;
  rep.properties = cfg_.properties;
  rep.mode = mode_;
  rep.push_trigger = cfg_.push_trigger;
  rep.pull_trigger = cfg_.pull_trigger;
  rep.validity_trigger = cfg_.validity_trigger;
  rep.active = valid_;
  rep.exclusive = exclusive_;
  rep.dirty = dirty_;
  // Unconfirmed extractions re-deliver with the announcement: the
  // directory merges them via the settled-round archive (or revives the
  // round) exactly once. They stay queued here until a push/kill ack
  // confirms them.
  rep.echoes.assign(unconfirmed_echoes_.begin(), unconfirmed_echoes_.end());
  rep.gen = dir_generation_;
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kRebuildReply, dir_generation_,
                    static_cast<std::uint64_t>(rep.echoes.size()));
  send_dir(msg::kRebuildReply, std::move(rep));
  // The restarted directory lost our in-flight request with its dedup
  // window; re-issue immediately under the new generation instead of
  // waiting out the retransmission backoff.
  if (current_.has_value()) {
    stats_.inc("op.reissued.rebuild");
    issue(*current_);
  }
}

void CacheManager::queue_echo(msg::DeltaEcho e) {
  if (cfg_.chaos_drop_echoes) {
    // Mutation-test fault: pretend the echo was queued but lose it, so
    // the extraction has no second chance if its reply is dropped.
    stats_.inc("echo.chaos_dropped");
    return;
  }
  unconfirmed_echoes_.push_back(std::move(e));
  stats_.inc("echo.queued");
  if (unconfirmed_echoes_.size() > kUnconfirmedEchoWindow) {
    // Backstop against a directory that stays unreachable forever;
    // dropping the oldest can lose its deltas, so count it.
    unconfirmed_echoes_.pop_front();
    stats_.inc("echo.dropped");
  }
}

void CacheManager::confirm_echoes(
    const std::vector<msg::DeltaEcho>& confirmed) {
  if (confirmed.empty() || unconfirmed_echoes_.empty()) return;
  for (const auto& c : confirmed) {
    for (auto it = unconfirmed_echoes_.begin();
         it != unconfirmed_echoes_.end(); ++it) {
      if (it->round == c.round && it->invalidate == c.invalidate) {
        unconfirmed_echoes_.erase(it);
        stats_.inc("echo.confirmed");
        break;
      }
    }
  }
}

void CacheManager::serve_invalidate(std::uint64_t epoch) {
  // Retransmitted command: re-send the original ack (extraction already
  // moved the deltas; re-extracting would lose them).
  for (auto& [e, ack] : served_invalidates_) {
    if (e == epoch) {
      stats_.inc("msg.duplicate.replayed");
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kDedupHit,
                        obs::Role::kCacheManager, obs::agent_key(self_), 0,
                        msg::kInvalidateReq, epoch, /*replayed=*/1);
      ack.gen = dir_generation_;  // re-stamp under the current generation
      send_dir(msg::kInvalidateAck, ack);
      return;
    }
  }
  ++invalidations_served_;
  stats_.inc("invalidate.served");
  msg::InvalidateAck ack;
  ack.view = id_;
  ack.epoch = epoch;
  ack.gen = dir_generation_;
  ack.dirty = dirty_ && valid_;
  if (ack.dirty) {
    ack.image = extract_dirty();
    journal_write_buffer();  // the buffered set left with this reply
    queue_echo(msg::DeltaEcho{epoch, /*invalidate=*/true, id_, ack.image});
  }
  valid_ = false;
  exclusive_ = false;
  dirty_ = false;
  served_invalidates_.emplace_back(epoch, ack);
  if (served_invalidates_.size() > kServedInvalidateWindow) {
    served_invalidates_.pop_front();
  }
  // b = dirty: marks an extraction the directory must merge exactly once.
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kInvalidateAck, epoch, ack.dirty ? 1 : 0);
  send_dir(msg::kInvalidateAck, std::move(ack));
}

void CacheManager::serve_fetch(std::uint64_t token) {
  for (auto& [t, reply] : served_fetches_) {
    if (t == token) {
      stats_.inc("msg.duplicate.replayed");
      FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kDedupHit,
                        obs::Role::kCacheManager, obs::agent_key(self_), 0,
                        msg::kFetchReq, token, /*replayed=*/1);
      reply.gen = dir_generation_;  // re-stamp under the current generation
      send_dir(msg::kFetchReply, reply);
      return;
    }
  }
  stats_.inc("fetch.served");
  msg::FetchReply reply;
  reply.view = id_;
  reply.token = token;
  reply.gen = dir_generation_;
  reply.dirty = dirty_ && valid_;
  if (reply.dirty) {
    reply.image = extract_dirty();
    dirty_ = false;  // our updates are now at the primary
    journal_write_buffer();  // the buffered set left with this reply
    queue_echo(msg::DeltaEcho{token, /*invalidate=*/false, id_, reply.image});
  }
  served_fetches_.emplace_back(token, reply);
  if (served_fetches_.size() > kServedFetchWindow) served_fetches_.pop_front();
  // b = dirty: marks an extraction the directory must merge exactly once.
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kFetchReply, token, reply.dirty ? 1 : 0);
  send_dir(msg::kFetchReply, std::move(reply));
}

// ---- write-ahead journal ----------------------------------------------------

void CacheManager::replay_journal() {
  if (cfg_.journal == nullptr) return;
  const std::vector<WalRecord> records = cfg_.journal->load();
  if (records.empty()) return;
  ViewId resume = kInvalidViewId;
  std::uint64_t last_incarnation = 0;
  std::uint64_t ceiling = 0;
  ObjectImage pending;
  // Ordered by request id, which is issue order: replayed intents go
  // back out in the sequence the pre-crash life sent them.
  std::map<std::uint64_t, ObjectImage> intents;
  for (const auto& w : records) {
    switch (w.kind) {
      case WalKind::kCmBind:
        resume = w.view;
        last_incarnation = std::max(last_incarnation, w.req);
        break;
      case WalKind::kCmWrite:
        pending = w.image;  // cumulative snapshot: last one wins
        break;
      case WalKind::kCmIntent:
        // The buffered set traveled with this extraction.
        intents[w.req] = w.image;
        ceiling = std::max(ceiling, w.req);
        pending.clear();
        break;
      case WalKind::kCmFlush:
        intents.erase(w.req);
        break;
      case WalKind::kCmReq:
        ceiling = std::max(ceiling, w.req);
        break;
      default:
        break;  // directory-side kinds: not ours
    }
  }
  next_req_ = ceiling + 1;
  req_ceiling_ = next_req_;
  if (resume != kInvalidViewId) {
    resume_view_ = resume;
    incarnation_ = last_incarnation + 1;
  }
  const bool have_pending = !pending.empty();
  if (resume != kInvalidViewId || !intents.empty() || have_pending) {
    stats_.inc("journal.replay");
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                      obs::EventKind::kJournalReplay,
                      obs::Role::kCacheManager, obs::agent_key(self_), 0,
                      "replay", resume,
                      intents.size() + (have_pending ? 1 : 0));
  }
  if (intents.empty() && !have_pending) return;
  // Refresh the base image first, then surrender the pre-crash state:
  // one push per unflushed intent under its ORIGINAL request id (the
  // directory's (address, req) key absorbs any that already merged),
  // then the buffered write set under a fresh id. Preset images are
  // never re-extracted — the restarted view starts empty.
  queue_.push_back(Op{OpKind::kInit, Mode::kWeak, {}});
  for (auto& [req, image] : intents) {
    Op op{OpKind::kPush, Mode::kWeak, {}};
    op.req = req;
    op.image = std::move(image);
    queue_.push_back(std::move(op));
    stats_.inc("journal.replayed.intent");
  }
  if (have_pending) {
    Op op{OpKind::kPush, Mode::kWeak, {}};
    op.req = alloc_req();
    op.image = std::move(pending);
    queue_.push_back(std::move(op));
    stats_.inc("journal.replayed.wbuf");
  }
}

void CacheManager::journal_append(WalRecord w) {
  if (cfg_.journal == nullptr) return;
  cfg_.journal->append(w);
  if (++journal_appends_ >= kJournalCompactThreshold) compact_journal();
}

void CacheManager::journal_bind() {
  if (cfg_.journal == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kCmBind;
  w.view = id_;
  w.req = incarnation_;
  journal_append(std::move(w));
}

void CacheManager::journal_intent(std::uint64_t req,
                                  const ObjectImage& image) {
  if (cfg_.journal == nullptr || image.empty()) return;
  WalRecord w;
  w.kind = WalKind::kCmIntent;
  w.view = id_;
  w.req = req;
  w.image = image;
  stats_.inc("journal.intent");
  journal_append(std::move(w));
}

void CacheManager::journal_flush(std::uint64_t req) {
  if (cfg_.journal == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kCmFlush;
  w.req = req;
  journal_append(std::move(w));
}

void CacheManager::journal_write_buffer() {
  if (cfg_.journal == nullptr) return;
  WalRecord w;
  w.kind = WalKind::kCmWrite;
  w.view = id_;
  w.image = view_.peek_from_view(cfg_.properties);
  stats_.inc("journal.write");
  journal_append(std::move(w));
}

void CacheManager::compact_journal() {
  if (cfg_.journal == nullptr) return;
  journal_appends_ = 0;
  std::vector<WalRecord> snapshot;
  if (alive_ && !moved_) {
    if (registered_ && id_ != kInvalidViewId) {
      WalRecord bind;
      bind.kind = WalKind::kCmBind;
      bind.view = id_;
      bind.req = incarnation_;
      snapshot.push_back(std::move(bind));
    }
    WalRecord ceil;
    ceil.kind = WalKind::kCmReq;
    ceil.req = req_ceiling_;
    snapshot.push_back(std::move(ceil));
    const auto add_intent = [&](std::uint64_t req, const ObjectImage& img) {
      if (img.empty()) return;
      WalRecord w;
      w.kind = WalKind::kCmIntent;
      w.view = id_;
      w.req = req;
      w.image = img;
      snapshot.push_back(std::move(w));
    };
    if (current_.has_value() && current_->image.has_value()) {
      add_intent(current_->req, *current_->image);
    }
    for (const auto& op : queue_) {
      if (op.image.has_value() && op.req != 0) {
        add_intent(op.req, *op.image);
      }
    }
    if (sealed_ && handoff_dirty_) add_intent(handoff_req_, handoff_image_);
    WalRecord wb;
    wb.kind = WalKind::kCmWrite;
    wb.view = id_;
    wb.image = view_.peek_from_view(cfg_.properties);
    if (!wb.image.empty()) snapshot.push_back(std::move(wb));
  }
  cfg_.journal->compact(snapshot);
  stats_.inc("journal.compacted");
}

std::uint64_t CacheManager::alloc_req() {
  const std::uint64_t r = next_req_++;
  if (cfg_.journal != nullptr && next_req_ > req_ceiling_) {
    // Promise a stride of ids ahead of time so a restart never re-mints
    // an id the directory may already associate with a merged op.
    req_ceiling_ = next_req_ + kReqCeilingStride;
    WalRecord w;
    w.kind = WalKind::kCmReq;
    w.req = req_ceiling_;
    journal_append(std::move(w));
  }
  return r;
}

// ---- view migration ---------------------------------------------------------

void CacheManager::handle_move_req(const net::Message& m) {
  const auto& req = net::payload_as<msg::ViewMoveReq>(m);
  if (!alive_ || !registered_ || req.view != id_) {
    stats_.inc("migrate.req.ignored");
    return;
  }
  if (sealed_) {
    if (req.epoch != seal_epoch_) {
      // The directory opened a fresh migration attempt for us; the same
      // sealed extraction simply travels under the new epoch (its merge
      // stays keyed by handoff_req_, so no double-merge is possible).
      seal_epoch_ = req.epoch;
      pending_move_epoch_ = req.epoch;
      stats_.inc("migrate.requiesced");
    } else {
      stats_.inc("msg.duplicate.dropped");
    }
    send_handoff();
    return;
  }
  if (move_requested_ && pending_move_epoch_ == req.epoch) {
    stats_.inc("msg.duplicate.dropped");
    return;
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kViewMoveReq, req.epoch);
  move_requested_ = true;
  pending_move_epoch_ = req.epoch;
  stats_.inc("migrate.quiesce");
  try_seal();
}

void CacheManager::try_seal() {
  if (!move_requested_ || sealed_ || !alive_ || !registered_) return;
  if (in_use_ || current_.has_value() || !queue_.empty()) return;
  if (deferred_invalidate_epoch_.has_value() ||
      !deferred_fetch_tokens_.empty()) {
    return;
  }
  seal();
}

void CacheManager::seal() {
  sealed_ = true;
  seal_epoch_ = pending_move_epoch_;
  handoff_dirty_ = dirty_ && valid_;
  handoff_image_ = ObjectImage{};
  handoff_req_ = alloc_req();
  if (handoff_dirty_) {
    // Extracted exactly once; every retransmission (and any post-abort
    // or journal-replayed re-push) resends this same image under
    // handoff_req_.
    handoff_image_ = extract_dirty();
    journal_write_buffer();  // the buffered set left with the handoff
    journal_intent(handoff_req_, handoff_image_);
  }
  handoff_echoes_.assign(unconfirmed_echoes_.begin(),
                         unconfirmed_echoes_.end());
  handoff_attempts_ = 0;
  stats_.inc("migrate.sealed");
  send_handoff();
}

void CacheManager::send_handoff() {
  if (!sealed_ || !alive_) return;
  ++handoff_attempts_;
  msg::HandoffState hs;
  hs.view = id_;
  hs.epoch = seal_epoch_;
  hs.mode = mode_;
  hs.exclusive = exclusive_;
  hs.dirty = handoff_dirty_;
  hs.delta = handoff_image_;
  hs.echoes = handoff_echoes_;
  hs.req = handoff_req_;
  hs.gen = dir_generation_;
  // b = dirty: an extraction the directory must merge exactly once.
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                    handoff_attempts_ == 1 ? obs::EventKind::kMsgSent
                                           : obs::EventKind::kMsgRetransmitted,
                    obs::Role::kCacheManager, obs::agent_key(self_),
                    obs::span_id(self_, handoff_req_), msg::kHandoffState,
                    handoff_attempts_, handoff_dirty_ ? 1 : 0);
  send_dir(msg::kHandoffState, std::move(hs));
  if (handoff_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(handoff_timer_);
    handoff_timer_ = net::kInvalidTimerId;
  }
  if (!cfg_.retry.enabled()) return;
  const sim::Duration delay =
      cfg_.retry.timeout_for(handoff_attempts_, retry_rng_);
  if (handoff_attempts_ < cfg_.retry.max_attempts) {
    handoff_timer_ = fabric_.schedule(self_, delay, [this] {
      handoff_timer_ = net::kInvalidTimerId;
      send_handoff();
    });
  } else {
    // Retransmission budget spent without a ViewMoveDone — the
    // directory likely crashed mid-migration and forgot it. Resume
    // serving; the delta re-pushes under the same request id, which the
    // WAL-persisted merge marker dedups if the handoff did merge.
    handoff_timer_ = fabric_.schedule(self_, delay, [this] {
      handoff_timer_ = net::kInvalidTimerId;
      if (!sealed_) return;
      stats_.inc("migrate.handoff.abandoned");
      unseal_resume();
    });
  }
}

void CacheManager::unseal_resume() {
  if (!sealed_) return;
  if (handoff_timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(handoff_timer_);
    handoff_timer_ = net::kInvalidTimerId;
  }
  sealed_ = false;
  move_requested_ = false;
  stats_.inc("migrate.resumed");
  if (handoff_dirty_) {
    Op op{OpKind::kPush, Mode::kWeak, {}};
    op.req = handoff_req_;
    op.image = std::move(handoff_image_);
    op.echoes = std::move(handoff_echoes_);
    queue_.push_front(std::move(op));
    stats_.inc("migrate.repush");
  }
  handoff_dirty_ = false;
  handoff_image_ = ObjectImage{};
  handoff_echoes_.clear();
  pump();
}

void CacheManager::handle_move_install(const net::Message& m) {
  const auto& ins = net::payload_as<msg::ViewMoveInstall>(m);
  if (!alive_) return;
  if (registered_ && id_ == ins.view && installed_epoch_ == ins.epoch) {
    // Retransmitted install: replay the ack idempotently.
    stats_.inc("msg.duplicate.replayed");
    send_dir(msg::kViewMoveAck,
             msg::ViewMoveAck{id_, ins.epoch, dir_generation_});
    return;
  }
  if (registered_ && id_ != kInvalidViewId && id_ != ins.view) {
    // We already host a different view; the migration aborts by timeout.
    stats_.inc("migrate.install.refused");
    return;
  }
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kViewMoveInstall, ins.epoch, ins.view);
  installed_epoch_ = ins.epoch;
  id_ = ins.view;
  registered_ = true;
  rejected_ = false;
  reject_reason_.clear();
  cfg_.view_name = ins.view_name;
  cfg_.properties = ins.properties;
  cfg_.validity_trigger = ins.validity_trigger;
  mode_ = ins.mode;
  exclusive_ = ins.exclusive;
  view_.merge_into_view(ins.image, cfg_.properties);
  valid_ = true;
  dirty_ = false;
  last_version_ = ins.image.version();
  last_pull_at_ = fabric_.now();
  journal_bind();
  stats_.inc("migrate.installed");
  arm_trigger_timer();
  start_heartbeats();
  FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgSent,
                    obs::Role::kCacheManager, obs::agent_key(self_), 0,
                    msg::kViewMoveAck, ins.epoch);
  send_dir(msg::kViewMoveAck,
           msg::ViewMoveAck{id_, ins.epoch, dir_generation_});
  pump();
}

void CacheManager::handle_move_done(const net::Message& m) {
  const auto& done = net::payload_as<msg::ViewMoveDone>(m);
  if (!alive_) return;
  if (sealed_ && done.view == id_ && done.epoch == seal_epoch_) {
    FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(), obs::EventKind::kMsgReceived,
                      obs::Role::kCacheManager, obs::agent_key(self_), 0,
                      msg::kViewMoveDone, done.epoch, done.aborted ? 1 : 0);
    if (done.aborted) {
      stats_.inc("migrate.aborted.src");
      unseal_resume();
      return;
    }
    // The view now lives at the destination; this manager is done for
    // good. Its journal is wiped so a restart can never resurrect the
    // moved view.
    moved_ = true;
    sealed_ = false;
    move_requested_ = false;
    alive_ = false;
    registered_ = false;
    valid_ = false;
    exclusive_ = false;
    dirty_ = false;
    handoff_dirty_ = false;
    handoff_image_ = ObjectImage{};
    handoff_echoes_.clear();
    unconfirmed_echoes_.clear();
    if (handoff_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(handoff_timer_);
      handoff_timer_ = net::kInvalidTimerId;
    }
    if (trigger_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(trigger_timer_);
      trigger_timer_ = net::kInvalidTimerId;
    }
    stop_heartbeats();
    if (cfg_.journal != nullptr) {
      cfg_.journal->compact({});
      journal_appends_ = 0;
    }
    stats_.inc("migrate.moved");
    std::deque<Op> q = std::move(queue_);
    queue_.clear();
    for (auto& op : q) {
      if (op.done) op.done();
    }
    if (cfg_.on_moved) cfg_.on_moved();
    return;
  }
  if (done.aborted && !sealed_ && move_requested_ && done.view == id_ &&
      done.epoch == pending_move_epoch_) {
    // Aborted before we even quiesced: stand down the move request so
    // triggers resume firing.
    move_requested_ = false;
    stats_.inc("migrate.aborted.src");
    return;
  }
  if (done.aborted && registered_ && done.view == id_ &&
      installed_epoch_ == done.epoch && installed_epoch_ != 0) {
    // Destination side of an aborted migration: uninstall the view our
    // ack never sealed — the source resumes serving it.
    stats_.inc("migrate.uninstalled");
    registered_ = false;
    id_ = kInvalidViewId;
    installed_epoch_ = 0;
    valid_ = false;
    exclusive_ = false;
    dirty_ = false;
    if (trigger_timer_ != net::kInvalidTimerId) {
      fabric_.cancel_timer(trigger_timer_);
      trigger_timer_ = net::kInvalidTimerId;
    }
    stop_heartbeats();
    if (cfg_.journal != nullptr) {
      cfg_.journal->compact({});
      journal_appends_ = 0;
    }
    return;
  }
  stats_.inc("msg.duplicate.dropped");
}

// ---- quality triggers --------------------------------------------------------

void CacheManager::arm_trigger_timer() {
  if (!push_trigger_.has_value() && !pull_trigger_.has_value()) return;
  if (trigger_timer_ != net::kInvalidTimerId) return;  // already armed
  // Daemon timer: the recurring poll must not keep a run-to-quiescence
  // simulation alive forever.
  trigger_timer_ = fabric_.schedule_daemon(self_, cfg_.trigger_poll,
                                           [this] { poll_triggers(); });
}

void CacheManager::poll_triggers() {
  trigger_timer_ = net::kInvalidTimerId;
  if (!alive_) return;
  // Quiescent only: triggers never interrupt the mutual-exclusion
  // section or preempt an in-flight operation.
  const bool can_fire = !in_use_ && !current_.has_value() &&
                        queue_.empty() && !move_requested_;
  if (can_fire && registered_) {
    const trigger::Env& vars = view_.variables();
    if (pull_trigger_.has_value()) {
      const double t_ms = sim::to_ms(fabric_.now() - last_pull_at_);
      if (pull_trigger_->evaluate(t_ms, vars)) {
        stats_.inc("auto.pull");
        FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                          obs::EventKind::kTriggerFired,
                          obs::Role::kCacheManager, obs::agent_key(self_), 0,
                          "pull", static_cast<std::uint64_t>(t_ms));
        pull_image();
      }
    }
    if (push_trigger_.has_value() && dirty_) {
      const double t_ms = sim::to_ms(fabric_.now() - last_push_at_);
      if (push_trigger_->evaluate(t_ms, vars)) {
        stats_.inc("auto.push");
        FLECC_TRACE_EVENT(cfg_.trace, fabric_.now(),
                          obs::EventKind::kTriggerFired,
                          obs::Role::kCacheManager, obs::agent_key(self_), 0,
                          "push", static_cast<std::uint64_t>(t_ms));
        push_image();
      }
    }
  }
  arm_trigger_timer();
}

}  // namespace flecc::core
