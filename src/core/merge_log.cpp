#include "core/merge_log.hpp"

#include <algorithm>

namespace flecc::core {

std::uint64_t MergeLog::unseen_for(const props::PropertySet& viewer_props,
                                   ViewId self, Version since) const {
  return unseen_if(since, [&](const MergeRecord& r) {
    return r.source != self && r.touched.conflicts_with(viewer_props);
  });
}

std::uint64_t MergeLog::unseen_if(
    Version since,
    const std::function<bool(const MergeRecord&)>& pred) const {
  // Records are version-ordered; binary-search the first unseen one.
  auto it = std::lower_bound(
      records_.begin(), records_.end(), since,
      [](const MergeRecord& r, Version v) { return r.version <= v; });
  std::uint64_t n = 0;
  for (; it != records_.end(); ++it) {
    if (pred(*it)) ++n;
  }
  return n;
}

std::size_t MergeLog::prune_below(Version floor) {
  std::size_t pruned = 0;
  while (!records_.empty() && records_.front().version <= floor) {
    records_.pop_front();
    ++pruned;
  }
  return pruned;
}

}  // namespace flecc::core
