// Application-supplied extract/merge hooks (paper §4.1 and Figure 3).
//
// The centralized design means the application provides only O(n)
// adapters: one PrimaryAdapter for the original component and one
// ViewAdapter per view — never per-pair merge logic.
#pragma once

#include "core/object_image.hpp"
#include "props/property.hpp"
#include "trigger/env.hpp"

namespace flecc::core {

/// Hooks for the original component (the primary copy).
/// Mirrors Figure 3's `extractFromObject` / `mergeIntoObject`.
class PrimaryAdapter {
 public:
  virtual ~PrimaryAdapter() = default;

  /// Extract the state covered by `vpl` from the component.
  [[nodiscard]] virtual ObjectImage extract_from_object(
      const props::PropertySet& vpl) const = 0;

  /// Merge a view's update image into the component. The adapter owns
  /// conflict resolution (e.g. applying reservation deltas).
  virtual void merge_into_object(const ObjectImage& image,
                                 const props::PropertySet& vpl) = 0;

  /// Variables exposed for validity-trigger evaluation at the directory.
  /// Default: no variables.
  [[nodiscard]] virtual const trigger::Env* variables() const {
    return nullptr;
  }

  /// The full property set of the component's shared data (V_c). Used to
  /// validate that registering views are genuine views (V_v ⊆ V_c).
  [[nodiscard]] virtual props::PropertySet data_properties() const = 0;
};

/// Hooks for a view. Mirrors Figure 3's `extractFromView` /
/// `mergeIntoView`, plus the variable registry that substitutes for the
/// Java-reflection variable access in the paper's prototype.
class ViewAdapter {
 public:
  virtual ~ViewAdapter() = default;

  /// Extract the view's (possibly delta) update image.
  [[nodiscard]] virtual ObjectImage extract_from_view(
      const props::PropertySet& vpl) = 0;

  /// Merge fresh primary state into the view.
  virtual void merge_into_view(const ObjectImage& image,
                               const props::PropertySet& vpl) = 0;

  /// Non-destructive snapshot of what extract_from_view would return,
  /// WITHOUT consuming the pending deltas. The cache manager's
  /// write-ahead journal uses it to checkpoint buffered WEAK writes
  /// (PROTOCOL.md, "View migration & CM journaling"). Adapters that do
  /// not implement it journal nothing for absorbed writes (the default
  /// returns an empty image), which degrades crash recovery but never
  /// correctness.
  [[nodiscard]] virtual ObjectImage peek_from_view(
      const props::PropertySet& vpl) const {
    (void)vpl;
    return {};
  }

  /// Current values of the view variables referenced by triggers.
  [[nodiscard]] virtual const trigger::Env& variables() const = 0;
};

}  // namespace flecc::core
