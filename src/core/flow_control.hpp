// Flow control & overload (PROTOCOL.md "Flow control & overload").
//
// Three cooperating pieces make overload a first-class, degradable
// state instead of unbounded queue growth:
//
//   * fabric bounding — net::FlowControl (bounded per-destination
//     queues, watermark hysteresis, Busy synthesis); this header
//     provides the canonical Flecc wiring: the control/bulk lane
//     classifier and the Busy factory (make_fabric_flow).
//   * DM admission control — DirectoryManager::Config caps concurrent
//     fetch rounds / the acquire queue and answers excess load with
//     msg::Busy (shed.* counters) instead of opening more rounds.
//   * CM cooperation — the CircuitBreaker below suspends bulk traffic
//     toward a drowning directory (closed -> open -> half-open,
//     honoring Busy's retry_after) and optionally degrades STRONG mode
//     to buffered WEAK writes until the breaker closes again.
//
// Everything here defaults OFF; the lossless default path is untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "net/flow.hpp"
#include "sim/time.hpp"

namespace flecc::core::flow {

// ---- circuit breaker -------------------------------------------------------

/// Breaker states (PROTOCOL.md degradation ladder):
///   kClosed   — traffic flows; consecutive failures are counted.
///   kOpen     — bulk traffic suspended until open_until.
///   kHalfOpen — one probe in flight decides: success closes, another
///               Busy/failure re-opens.
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] constexpr const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

/// Per-destination circuit breaker. Pure state machine — no fabric or
/// clock dependency (callers pass `now`), so it unit-tests in isolation
/// and works under both SimFabric and ThreadFabric time.
///
/// `failure_threshold == 0` disables the breaker entirely: allow()
/// always passes and the event methods are no-ops.
class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive Busy/failure events that trip kClosed -> kOpen.
    /// 0 disables the breaker.
    std::size_t failure_threshold = 0;
    /// Minimum time the breaker stays open; a Busy's retry_after
    /// extends (never shortens) the open window.
    sim::Duration open_timeout = sim::msec(500);
  };

  /// Observes every state transition (old, new) — the CM hangs
  /// breaker.* counters, trace events, and the degradation ladder off
  /// this hook.
  using TransitionHook = std::function<void(BreakerState, BreakerState)>;

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config cfg) : cfg_(cfg) {}

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] bool enabled() const noexcept {
    return cfg_.failure_threshold > 0;
  }
  [[nodiscard]] BreakerState state() const noexcept { return state_; }
  [[nodiscard]] std::size_t consecutive_failures() const noexcept {
    return failures_;
  }

  /// May this bulk request go out now? kOpen past its window flips to
  /// kHalfOpen and admits exactly one probe; further calls are denied
  /// until the probe resolves (on_success / on_busy / on_failure).
  [[nodiscard]] bool allow(sim::Time now) {
    if (!enabled()) return true;
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kOpen:
        if (now < open_until_) return false;
        transition(BreakerState::kHalfOpen);
        probe_in_flight_ = true;
        return true;
      case BreakerState::kHalfOpen:
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  /// The destination answered Busy(retry_after).
  void on_busy(sim::Time now, sim::Duration retry_after) {
    if (!enabled()) return;
    ++failures_;
    const sim::Duration hold =
        retry_after > cfg_.open_timeout ? retry_after : cfg_.open_timeout;
    switch (state_) {
      case BreakerState::kClosed:
        if (failures_ >= cfg_.failure_threshold) {
          open_until_ = now + hold;
          transition(BreakerState::kOpen);
        }
        break;
      case BreakerState::kHalfOpen:
        probe_in_flight_ = false;
        open_until_ = now + hold;
        transition(BreakerState::kOpen);
        break;
      case BreakerState::kOpen:
        // late Busy for an earlier send: extend, never shorten
        if (now + retry_after > open_until_) open_until_ = now + retry_after;
        break;
    }
  }

  /// A non-Busy delivery failure (retry budget exhausted, failover).
  void on_failure(sim::Time now) { on_busy(now, cfg_.open_timeout); }

  /// A bulk request completed normally.
  void on_success() {
    if (!enabled()) return;
    failures_ = 0;
    probe_in_flight_ = false;
    if (state_ != BreakerState::kClosed) transition(BreakerState::kClosed);
  }

  /// Time until allow() could next pass (>= 1 so timers always fire).
  [[nodiscard]] sim::Duration retry_in(sim::Time now) const noexcept {
    if (state_ == BreakerState::kOpen && open_until_ > now) {
      return open_until_ - now;
    }
    return 1;
  }

 private:
  void transition(BreakerState to) {
    const BreakerState from = state_;
    state_ = to;
    if (hook_) hook_(from, to);
  }

  Config cfg_{};
  BreakerState state_ = BreakerState::kClosed;
  std::size_t failures_ = 0;
  sim::Time open_until_ = 0;
  bool probe_in_flight_ = false;
  TransitionHook hook_;
};

// ---- fabric wiring ---------------------------------------------------------

/// Lane classifier for Flecc traffic: bulk (sheddable) requests are the
/// load generators — init/pull/push/acquire. Everything else is control
/// lane and is never shed: acks, replies, grants, heartbeats,
/// invalidations, fetches, recovery probes, nacks, Busy itself, mode
/// changes (the degradation path must get through) and non-Flecc frames
/// (e.g. batch frames, which carry mixed traffic).
[[nodiscard]] bool is_control_lane(std::string_view type) noexcept;

/// Numeric bounds for make_fabric_flow, separated from the hooks so
/// testbeds/benches expose plain knobs.
struct FlowLimits {
  /// Per-destination bulk-queue bound; 0 = flow control off.
  std::size_t queue_capacity = 0;
  /// Watermarks (0 = derive: high = capacity, low = high/2).
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;
  /// retry_after stamped into fabric-synthesized Busy replies.
  sim::Duration retry_after = sim::msec(100);
};

/// The canonical Flecc fabric flow config: installs is_control_lane and
/// a Busy factory that recovers the request id / view from the shed
/// bulk message so the sender's retransmission layer can match it.
[[nodiscard]] net::FlowControl make_fabric_flow(const FlowLimits& limits);

}  // namespace flecc::core::flow
