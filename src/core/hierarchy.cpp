#include "core/hierarchy.hpp"

#include <utility>

namespace flecc::core {

SyncAgent::SyncAgent(net::Fabric& fabric, net::Address self,
                     PrimaryAdapter& primary, props::PropertySet scope,
                     Config cfg)
    : fabric_(fabric),
      self_(self),
      primary_(primary),
      scope_(std::move(scope)),
      cfg_(cfg) {
  fabric_.bind(self_, *this);
}

SyncAgent::~SyncAgent() {
  stop();
  fabric_.unbind(self_);
}

void SyncAgent::start() {
  if (running_) return;
  running_ = true;
  // Daemon timer: periodic gossip must not keep run-to-quiescence alive.
  timer_ = fabric_.schedule_daemon(self_, cfg_.interval, [this] { tick(); });
}

void SyncAgent::stop() {
  running_ = false;
  if (timer_ != net::kInvalidTimerId) {
    fabric_.cancel_timer(timer_);
    timer_ = net::kInvalidTimerId;
  }
}

void SyncAgent::tick() {
  timer_ = net::kInvalidTimerId;
  if (!running_) return;
  gossip_once();
  timer_ =
      fabric_.schedule_daemon(self_, cfg_.interval, [this] { tick(); });
}

void SyncAgent::gossip_once() {
  if (peers_.empty()) return;
  ++rounds_;
  stats_.inc("gossip.rounds");
  msg::HierSyncUpdate update;
  update.origin = cfg_.instance;
  update.seq = ++seq_;
  update.image = primary_.extract_from_object(scope_);
  const std::size_t k = std::min(cfg_.fanout, peers_.size());
  for (std::size_t i = 0; i < k; ++i) {
    const net::Address peer = peers_[next_peer_];
    next_peer_ = (next_peer_ + 1) % peers_.size();
    const auto bytes = msg::wire_size(update);
    fabric_.send(self_, peer, msg::kHierSyncUpdate, update, bytes);
    stats_.inc("gossip.sent");
  }
}

void SyncAgent::on_message(const net::Message& m) {
  if (m.type != msg::kHierSyncUpdate) {
    stats_.inc("msg.unknown");
    return;
  }
  const auto& update = net::payload_as<msg::HierSyncUpdate>(m);
  auto& seen = seen_[update.origin];
  if (update.seq <= seen) {
    ++ignored_stale_;
    stats_.inc("gossip.stale");
    return;
  }
  seen = update.seq;
  primary_.merge_into_object(update.image, scope_);
  ++applied_;
  stats_.inc("gossip.applied");
}

}  // namespace flecc::core
