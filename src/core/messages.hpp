// The Flecc wire protocol between cache managers and the directory
// manager (paper §4.2, Figure 2).
//
// Each payload struct travels as a net::Message whose `type` is the
// matching tag below; tags are what the traffic counters aggregate by.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/object_image.hpp"
#include "core/types.hpp"
#include "props/property.hpp"
#include "sim/time.hpp"

namespace flecc::core::msg {

// ---- type tags --------------------------------------------------------
inline constexpr const char* kRegisterReq = "flecc.register_req";
inline constexpr const char* kRegisterAck = "flecc.register_ack";
inline constexpr const char* kInitReq = "flecc.init_req";
inline constexpr const char* kInitReply = "flecc.init_reply";
inline constexpr const char* kPullReq = "flecc.pull_req";
inline constexpr const char* kPullReply = "flecc.pull_reply";
inline constexpr const char* kPushUpdate = "flecc.push_update";
inline constexpr const char* kPushAck = "flecc.push_ack";
inline constexpr const char* kAcquireReq = "flecc.acquire_req";
inline constexpr const char* kAcquireGrant = "flecc.acquire_grant";
inline constexpr const char* kInvalidateReq = "flecc.invalidate_req";
inline constexpr const char* kInvalidateAck = "flecc.invalidate_ack";
inline constexpr const char* kFetchReq = "flecc.fetch_req";
inline constexpr const char* kFetchReply = "flecc.fetch_reply";
inline constexpr const char* kModeChangeReq = "flecc.mode_change_req";
inline constexpr const char* kModeChangeAck = "flecc.mode_change_ack";
inline constexpr const char* kKillReq = "flecc.kill_req";
inline constexpr const char* kKillAck = "flecc.kill_ack";
inline constexpr const char* kUpdateNotify = "flecc.update_notify";
inline constexpr const char* kHeartbeat = "flecc.heartbeat";
inline constexpr const char* kHeartbeatAck = "flecc.heartbeat_ack";
inline constexpr const char* kOpNack = "flecc.op_nack";
inline constexpr const char* kBusy = "flecc.busy";
inline constexpr const char* kDirectoryRebuild = "flecc.rebuild_probe";
inline constexpr const char* kRebuildReply = "flecc.rebuild_reply";
inline constexpr const char* kViewMoveReq = "flecc.view_move_req";
inline constexpr const char* kHandoffState = "flecc.handoff_state";
inline constexpr const char* kViewMoveInstall = "flecc.view_move_install";
inline constexpr const char* kViewMoveAck = "flecc.view_move_ack";
inline constexpr const char* kViewMoveDone = "flecc.view_move_done";

// ---- request-id framing ------------------------------------------------
//
// Every cache-manager request carries a per-manager monotonically
// increasing request id `req`, echoed verbatim in the reply. The id is
// the idempotency key of the reliability layer (PROTOCOL.md, "Fault
// model"): the cache manager retransmits a timed-out request with the
// same id, and the directory's per-address dedup window replays the
// original reply instead of re-executing. `req == 0` means "unframed"
// (legacy senders / hand-forged test messages) and bypasses both the
// dedup window and reply matching. The id travels inside the 32-byte
// message header (kHeaderBytes), so framing adds no wire bytes.
//
// ---- generation fencing ------------------------------------------------
//
// Every payload also carries `gen`, the directory incarnation number
// (PROTOCOL.md, "Directory crash-recovery"). The directory bumps its
// generation on every restart (persisted through the DurabilityStore);
// cache managers learn the current value from any directory message and
// stamp it on everything they send. A message whose non-zero `gen`
// differs from the receiver's current generation is *stale* — sent
// before a crash (or to a pre-crash incarnation) — and is fenced:
// rejected and counted rather than applied to the rebuilt state.
// `gen == 0` means "unknown" (first contact, legacy traffic) and is
// never fenced. Like `req`, the generation travels inside the header.

// ---- payloads ---------------------------------------------------------

/// View registration (Figure 2, step 2). Carries all the
/// application-specific information of §4.1: the property list, the
/// mode, and the three trigger sources (empty string = absent).
struct RegisterReq {
  std::string view_name;  // component type, e.g. "air.TravelAgent"
  props::PropertySet properties;
  Mode mode = Mode::kWeak;
  std::string push_trigger;
  std::string pull_trigger;
  std::string validity_trigger;
  /// Non-zero = this is a journal-replaying restart of an earlier view:
  /// the directory rebinds the surviving record (same view id) instead
  /// of minting a fresh one (PROTOCOL.md, "View migration & CM
  /// journaling"). 0 = fresh registration.
  ViewId resume_view = kInvalidViewId;
  /// Monotonic per-view life number. A resume whose incarnation is not
  /// strictly greater than the recorded one is a stale retransmit from
  /// a dead life and is fenced.
  std::uint64_t incarnation = 1;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Registration outcome: the assigned view id, or a rejection reason.
struct RegisterAck {
  ViewId view = kInvalidViewId;
  bool accepted = false;
  std::string reason;  // on rejection: why
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Initial data request (Figure 2, steps 3-5).
struct InitReq {
  ViewId view = kInvalidViewId;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};
/// The view's first image, scoped to its registered properties.
struct InitReply {
  ObjectImage image;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Weak-mode refresh. `intent` supports the read/write-semantics
/// extension (§6): read-only pulls never trigger demand fetches.
struct PullReq {
  ViewId view = kInvalidViewId;
  AccessIntent intent = AccessIntent::kReadWrite;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};
/// Fresh image for a pull, after any validity-triggered demand fetches.
struct PullReply {
  ObjectImage image;
  /// Remote updates the view had not seen before this pull (quality).
  std::uint64_t unseen_before = 0;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// A dirty image extracted for a FetchReply or InvalidateAck whose
/// delivery was never confirmed (those replies are fire-and-forget).
/// The cache manager echoes it on its next reliable message
/// (PushUpdate/KillReq) until acked; the directory merges each echo at
/// most once, keyed by the originating round.
struct DeltaEcho {
  std::uint64_t round = 0;   // fetch token or invalidate epoch
  bool invalidate = false;   // selects the round-id namespace
  ViewId view = kInvalidViewId;
  ObjectImage image;
};

/// Update propagation view → primary.
struct PushUpdate {
  ViewId view = kInvalidViewId;
  ObjectImage image;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
  /// Unconfirmed fetch/invalidate images riding along (empty when the
  /// network has been lossless).
  std::vector<DeltaEcho> echoes;
};
/// Confirms a PushUpdate (and its echoes) merged at the primary.
struct PushAck {
  Version version = 0;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Strong-mode activation (the directory serializes conflicting views).
struct AcquireReq {
  ViewId view = kInvalidViewId;
  AccessIntent intent = AccessIntent::kReadWrite;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};
/// Grants strong-mode use: conflicting views have been invalidated and
/// their dirty state merged into the carried image.
struct AcquireGrant {
  ObjectImage image;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Directory → cache: stop working, surrender updates (Fig. 2 step 12).
struct InvalidateReq {
  std::uint64_t epoch = 0;
  std::uint64_t gen = 0;
};
/// Surrender for an InvalidateReq: the view's final state for this
/// epoch (fire-and-forget; recovered via DeltaEcho if lost).
struct InvalidateAck {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  ObjectImage image;  // final extracted state (empty if clean)
  bool dirty = false;
  std::uint64_t gen = 0;
};

/// Directory → cache: demand fetch for a validity-triggered pull.
struct FetchReq {
  std::uint64_t token = 0;
  std::uint64_t gen = 0;
};
/// Extraction for a FetchReq round (fire-and-forget; recovered via
/// DeltaEcho if lost).
struct FetchReply {
  ViewId view = kInvalidViewId;
  std::uint64_t token = 0;
  ObjectImage image;
  bool dirty = false;
  std::uint64_t gen = 0;
};

/// Run-time consistency-level change (§4, "Flecc allows views to ...
/// switch between the strong and weak modes of operation").
struct ModeChangeReq {
  ViewId view = kInvalidViewId;
  Mode mode = Mode::kWeak;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};
/// Confirms the directory now treats the view under the new mode.
struct ModeChangeAck {
  Mode mode = Mode::kWeak;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Teardown (Figure 2, steps 20-21). Carries the final update image so
/// no separate push round trip is needed.
struct KillReq {
  ViewId view = kInvalidViewId;
  ObjectImage final_image;
  bool dirty = false;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
  /// As in PushUpdate: last chance to land unconfirmed reply images.
  std::vector<DeltaEcho> echoes;
};
/// Confirms teardown: the view is deregistered and its image merged.
struct KillAck {
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Optional notification to conflicting views that the primary advanced
/// (off by default; enabled for the notification ablation).
struct UpdateNotify {
  Version version = 0;
  std::uint64_t gen = 0;
};

/// Liveness ping, cache manager -> directory, on a daemon timer.
struct Heartbeat {
  ViewId view = kInvalidViewId;
  std::uint64_t seq = 0;
  std::uint64_t gen = 0;
};
/// `known == false` tells the sender its registration is gone (evicted
/// or the directory restarted): reconnect immediately.
struct HeartbeatAck {
  ViewId view = kInvalidViewId;
  std::uint64_t seq = 0;
  bool known = true;
  std::uint64_t gen = 0;
};

/// Directory -> cache: the request referenced an unknown view (stale
/// registration). Never cached in the dedup window - re-executing after
/// the cache manager reconnects is the intended recovery.
struct OpNack {
  ViewId view = kInvalidViewId;
  std::string reason;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Overload shed (PROTOCOL.md "Flow control & overload"): the request
/// was refused by directory admission control or a bounded fabric
/// queue — retry no earlier than `retry_after`. Sent by the directory
/// (gen == its generation) or synthesized by a fabric on behalf of an
/// overloaded destination (gen == 0, never fenced). Never cached in
/// the dedup window: by definition the request did not execute, and
/// re-executing it later is the intended recovery. Unlike OpNack, a
/// Busy does NOT mean the registration is stale — the receiver backs
/// off instead of reconnecting.
struct Busy {
  ViewId view = kInvalidViewId;
  std::string reason;
  sim::Duration retry_after = 0;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Directory -> cache, after a restart: "I am generation `gen`, my
/// checkpoint says you are view `view` — re-announce yourself."
/// Retransmitted within the rebuild window until answered; cache
/// managers that never answer are dropped when the window closes (they
/// reconnect through the heartbeat `known == false` path).
struct DirectoryRebuild {
  ViewId view = kInvalidViewId;
  std::uint64_t gen = 0;
};

/// A surviving cache manager's re-announcement: everything the rebuilt
/// directory needs to restore the view's record without consensus —
/// registration data, current mode, cache flags, and any unconfirmed
/// extraction images (echoes) from before the crash. Idempotent at the
/// directory; the probe's retransmissions cover reply loss.
struct RebuildReply {
  ViewId view = kInvalidViewId;
  std::string view_name;
  props::PropertySet properties;
  Mode mode = Mode::kWeak;
  std::string push_trigger;
  std::string pull_trigger;
  std::string validity_trigger;
  bool active = false;     // currently using the image (strong grant)
  bool exclusive = false;
  bool dirty = false;      // unpushed local updates exist
  std::vector<DeltaEcho> echoes;
  std::uint64_t gen = 0;
};

/// Directory -> source cache, opening a live view migration (PROTOCOL.md
/// "View migration & CM journaling"): quiesce the view and hand its
/// state off under migration epoch `epoch`. Retransmitted until the
/// HandoffState arrives or the migration aborts.
struct ViewMoveReq {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  std::uint64_t gen = 0;
};

/// Source cache -> directory: the sealed view's serialized state. The
/// dirty write-buffer delta travels as `delta` under the source's own
/// request id, so the directory merges it exactly once (the same
/// `(address, req)` key guards a journal-replayed push after an abort
/// or a source crash). Unconfirmed extraction images ride along as
/// echoes, exactly as on PushUpdate/KillReq. Retransmitted until a
/// ViewMoveDone settles the outcome.
struct HandoffState {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  Mode mode = Mode::kWeak;
  bool exclusive = false;
  bool dirty = false;
  ObjectImage delta;  // unmerged write-buffer state (empty if clean)
  std::vector<DeltaEcho> echoes;
  std::uint64_t req = 0;
  std::uint64_t gen = 0;
};

/// Directory -> destination cache: adopt the migrating view. Carries the
/// registration identity plus a fresh primary extraction, so the
/// destination starts valid without a separate pull. Retransmitted
/// until acked; the destination replays the ack idempotently per epoch.
struct ViewMoveInstall {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  std::string view_name;
  props::PropertySet properties;
  Mode mode = Mode::kWeak;
  std::string validity_trigger;
  bool exclusive = false;
  ObjectImage image;  // fresh primary extraction, versioned
  std::uint64_t gen = 0;
};

/// Destination cache -> directory: the view is installed and serving;
/// rebind the directory record atomically.
struct ViewMoveAck {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  std::uint64_t gen = 0;
};

/// Directory -> source (and, on abort, destination): the migration's
/// outcome. `aborted == false` releases the source (its state now lives
/// at the destination); `aborted == true` tells the source to resume —
/// re-pushing its handoff delta is safe because the directory's
/// exactly-once key absorbs the duplicate if the handoff already
/// merged. Sent to the destination only on abort, to uninstall a view
/// whose ack never arrived.
struct ViewMoveDone {
  ViewId view = kInvalidViewId;
  std::uint64_t epoch = 0;
  bool aborted = false;
  std::uint64_t gen = 0;
};

// ---- wire-size estimation ---------------------------------------------

/// Simulated serialized size of a property set.
std::size_t wire_size(const props::PropertySet& ps);

inline constexpr std::size_t kHeaderBytes = 32;  // ids, type tag, framing

inline std::size_t wire_size(const RegisterReq& m) {
  return kHeaderBytes + m.view_name.size() + wire_size(m.properties) +
         m.push_trigger.size() + m.pull_trigger.size() +
         m.validity_trigger.size();
}
inline std::size_t wire_size(const RegisterAck& m) {
  return kHeaderBytes + m.reason.size();
}
inline std::size_t wire_size(const InitReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const InitReply& m) {
  return kHeaderBytes + m.image.wire_size();
}
inline std::size_t wire_size(const PullReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const PullReply& m) {
  return kHeaderBytes + m.image.wire_size();
}
inline std::size_t wire_size(const DeltaEcho& e) {
  return 16 + e.image.wire_size();  // round id + flags + view id
}
inline std::size_t echoes_wire_size(const std::vector<DeltaEcho>& es) {
  std::size_t total = 0;
  for (const auto& e : es) total += wire_size(e);
  return total;
}
inline std::size_t wire_size(const PushUpdate& m) {
  return kHeaderBytes + m.image.wire_size() + echoes_wire_size(m.echoes);
}
inline std::size_t wire_size(const PushAck&) { return kHeaderBytes; }
inline std::size_t wire_size(const AcquireReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const AcquireGrant& m) {
  return kHeaderBytes + m.image.wire_size();
}
inline std::size_t wire_size(const InvalidateReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const InvalidateAck& m) {
  return kHeaderBytes + m.image.wire_size();
}
inline std::size_t wire_size(const FetchReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const FetchReply& m) {
  return kHeaderBytes + m.image.wire_size();
}
inline std::size_t wire_size(const ModeChangeReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const ModeChangeAck&) { return kHeaderBytes; }
inline std::size_t wire_size(const KillReq& m) {
  return kHeaderBytes + m.final_image.wire_size() +
         echoes_wire_size(m.echoes);
}
inline std::size_t wire_size(const KillAck&) { return kHeaderBytes; }
inline std::size_t wire_size(const UpdateNotify&) { return kHeaderBytes; }
inline std::size_t wire_size(const Heartbeat&) { return kHeaderBytes; }
inline std::size_t wire_size(const HeartbeatAck&) { return kHeaderBytes; }
inline std::size_t wire_size(const OpNack& m) {
  return kHeaderBytes + m.reason.size();
}
inline std::size_t wire_size(const Busy& m) {
  return kHeaderBytes + m.reason.size();
}
inline std::size_t wire_size(const DirectoryRebuild&) { return kHeaderBytes; }
inline std::size_t wire_size(const RebuildReply& m) {
  return kHeaderBytes + m.view_name.size() + wire_size(m.properties) +
         m.push_trigger.size() + m.pull_trigger.size() +
         m.validity_trigger.size() + echoes_wire_size(m.echoes);
}
inline std::size_t wire_size(const ViewMoveReq&) { return kHeaderBytes; }
inline std::size_t wire_size(const HandoffState& m) {
  return kHeaderBytes + m.delta.wire_size() + echoes_wire_size(m.echoes);
}
inline std::size_t wire_size(const ViewMoveInstall& m) {
  return kHeaderBytes + m.view_name.size() + wire_size(m.properties) +
         m.validity_trigger.size() + m.image.wire_size();
}
inline std::size_t wire_size(const ViewMoveAck&) { return kHeaderBytes; }
inline std::size_t wire_size(const ViewMoveDone&) { return kHeaderBytes; }

}  // namespace flecc::core::msg
