// The Flecc cache manager (paper §4.2, Figure 3).
//
// One cache manager accompanies each deployed view. It exposes the
// paper's view-facing API — initImage / pullImage / pushImage /
// startUseImage / endUseImage / killImage plus run-time mode changes —
// forwards requests to the directory manager, executes its commands
// (invalidations, demand fetches), and evaluates the view's push/pull
// quality triggers against the view's variable registry.
//
// All operations are asynchronous: the optional completion callback
// fires when the protocol exchange finishes. Operations are serialized
// FIFO per cache manager (views are sequential programs, Figure 3).
//
// Trigger time semantics: within a push (resp. pull) trigger, the
// builtin `t` is the number of milliseconds since this view's last push
// (resp. pull), so "(t > 1500)" reads "synchronize every 1.5 s".
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/messages.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"
#include "trigger/trigger.hpp"

namespace flecc::core {

class CacheManager : public net::Endpoint {
 public:
  struct Config {
    /// Component type name; the static map is keyed by it.
    std::string view_name = "view";
    /// The view's data properties (which data it shares).
    props::PropertySet properties;
    /// Initial consistency mode.
    Mode mode = Mode::kWeak;
    /// Trigger sources; empty = absent. Validity is evaluated at the
    /// directory; push/pull are evaluated here on a polling timer.
    std::string push_trigger;
    std::string pull_trigger;
    std::string validity_trigger;
    /// How often push/pull triggers are (re)evaluated.
    sim::Duration trigger_poll = sim::msec(100);
  };

  using Done = std::function<void()>;

  /// Construction registers with the directory (Figure 2, steps 1-2);
  /// operations issued before the ack arrives are queued.
  CacheManager(net::Fabric& fabric, net::Address self, net::Address directory,
               ViewAdapter& view, Config cfg);
  ~CacheManager() override;

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // ---- the Figure 3 API ----------------------------------------------

  /// Fetch the initial data image (cm.initImage()).
  void init_image(Done done = {});
  /// Refresh from the primary (cm.pullImage()); honors the validity
  /// trigger at the directory.
  void pull_image(Done done = {});
  /// Send current updates to the primary (explicit push).
  void push_image(Done done = {});
  /// Enter the mutually-exclusive work section (cm.startUseImage()).
  /// In strong mode this acquires exclusivity (invalidating conflicting
  /// active views); in weak mode it revalidates if needed.
  void start_use_image(Done done = {});
  /// Leave the work section; `modified` marks the image dirty. Deferred
  /// invalidations/fetches are served here.
  void end_use_image(bool modified = true);
  /// Change consistency mode at run time.
  void set_mode(Mode m, Done done = {});
  /// Deregister, surrendering final updates (cm.killImage()).
  void kill_image(Done done = {});

  /// Fail-safe recovery (§4.1 notes the centralized protocol assumes a
  /// live original component and that "fail-safe mechanisms can be
  /// implemented"): reconnect to a (re)started directory manager.
  /// Abandons the reply of any in-flight operation, re-registers with
  /// the original configuration, re-initializes the image, and re-pushes
  /// dirty local state; previously queued operations then continue.
  void reconnect(Done done = {});

  /// Read/write-semantics extension (§6): annotate subsequent
  /// pulls/acquires with an access intent.
  void set_intent(AccessIntent intent) noexcept { intent_ = intent; }

  // ---- introspection ----------------------------------------------------

  [[nodiscard]] ViewId id() const noexcept { return id_; }
  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] bool rejected() const noexcept { return rejected_; }
  [[nodiscard]] const std::string& reject_reason() const noexcept {
    return reject_reason_;
  }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] bool exclusive() const noexcept { return exclusive_; }
  [[nodiscard]] bool in_use() const noexcept { return in_use_; }
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] Version last_version() const noexcept { return last_version_; }
  /// Quality reported by the most recent pull (remote unseen updates).
  [[nodiscard]] std::uint64_t last_pull_unseen() const noexcept {
    return last_pull_unseen_;
  }
  [[nodiscard]] std::uint64_t notifies_received() const noexcept {
    return notifies_received_;
  }
  [[nodiscard]] std::uint64_t invalidations_served() const noexcept {
    return invalidations_served_;
  }
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }

  void on_message(const net::Message& m) override;

 private:
  enum class OpKind { kInit, kPull, kPush, kAcquire, kModeChange, kKill };

  struct Op {
    OpKind kind;
    Mode new_mode = Mode::kWeak;  // for kModeChange
    Done done;
  };

  void enqueue(Op op);
  void pump();
  void issue(Op& op);
  void complete_current();
  void serve_invalidate(std::uint64_t epoch);
  void serve_fetch(std::uint64_t token);
  void arm_trigger_timer();
  void poll_triggers();
  ObjectImage extract_dirty();

  net::Fabric& fabric_;
  net::Address self_;
  net::Address directory_;
  ViewAdapter& view_;
  Config cfg_;

  std::optional<trigger::Trigger> push_trigger_;
  std::optional<trigger::Trigger> pull_trigger_;

  ViewId id_ = kInvalidViewId;
  Mode mode_;
  AccessIntent intent_ = AccessIntent::kReadWrite;
  bool registered_ = false;
  bool rejected_ = false;
  std::string reject_reason_;
  bool alive_ = true;
  bool valid_ = false;
  bool exclusive_ = false;
  bool in_use_ = false;
  bool dirty_ = false;
  Version last_version_ = 0;
  std::uint64_t last_pull_unseen_ = 0;
  std::uint64_t notifies_received_ = 0;
  std::uint64_t invalidations_served_ = 0;

  sim::Time last_push_at_ = 0;
  sim::Time last_pull_at_ = 0;

  std::deque<Op> queue_;
  std::optional<Op> current_;

  std::optional<std::uint64_t> deferred_invalidate_epoch_;
  std::vector<std::uint64_t> deferred_fetch_tokens_;

  net::TimerId trigger_timer_ = net::kInvalidTimerId;
  sim::CounterSet stats_;
};

}  // namespace flecc::core
