// The Flecc cache manager (paper §4.2, Figure 3).
//
// One cache manager accompanies each deployed view. It exposes the
// paper's view-facing API — initImage / pullImage / pushImage /
// startUseImage / endUseImage / killImage plus run-time mode changes —
// forwards requests to the directory manager, executes its commands
// (invalidations, demand fetches), and evaluates the view's push/pull
// quality triggers against the view's variable registry.
//
// All operations are asynchronous: the optional completion callback
// fires when the protocol exchange finishes. Operations are serialized
// FIFO per cache manager (views are sequential programs, Figure 3).
//
// Reliability layer (PROTOCOL.md, "Fault model & reliability layer"):
// every request carries a monotonic request id; a per-request timeout
// retransmits with exponential backoff + deterministic jitter up to
// RetryPolicy::max_attempts, after which the op fails over to
// reconnect(). Optional liveness heartbeats detect a dead or restarted
// directory and trigger reconnect() automatically. On the lossless path
// none of this machinery sends a single extra message.
//
// Trigger time semantics: within a push (resp. pull) trigger, the
// builtin `t` is the number of milliseconds since this view's last push
// (resp. pull), so "(t > 1500)" reads "synchronize every 1.5 s".
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/adapters.hpp"
#include "core/durability.hpp"
#include "core/flow_control.hpp"
#include "core/messages.hpp"
#include "core/reliability.hpp"
#include "core/types.hpp"
#include "net/fabric.hpp"
#include "net/pool.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "trigger/trigger.hpp"

namespace flecc::core {

class CacheManager : public net::Endpoint {
 public:
  struct Config {
    /// Component type name; the static map is keyed by it.
    std::string view_name = "view";
    /// The view's data properties (which data it shares).
    props::PropertySet properties;
    /// Initial consistency mode.
    Mode mode = Mode::kWeak;
    /// Trigger sources; empty = absent. Validity is evaluated at the
    /// directory; push/pull are evaluated here on a polling timer.
    std::string push_trigger;
    std::string pull_trigger;
    std::string validity_trigger;
    /// How often push/pull triggers are (re)evaluated.
    sim::Duration trigger_poll = sim::msec(100);
    /// Request retransmission policy (reliable delivery).
    RetryPolicy retry;
    /// Liveness heartbeat cadence; 0 disables heartbeats.
    sim::Duration heartbeat_interval = 0;
    /// Consecutive unacked heartbeats tolerated before reconnect().
    std::size_t heartbeat_miss_limit = 3;
    /// Message-payload pooling (PERFORMANCE.md): requests are built in
    /// recycled ObjectPool slots (net/pool.hpp) and travel as 8-byte
    /// PoolPtr handles instead of deep-copied std::any boxes, making
    /// the steady-state send path allocation-lean. Protocol behavior
    /// is identical; off = plain boxed-by-value payloads (A/B runs).
    bool pool_messages = true;
    /// WEAK-mode write buffer (PERFORMANCE.md): absorb up to this many
    /// consecutive pushes locally — the push completes immediately and
    /// its deltas keep accumulating in the view — before one combined
    /// PushUpdate goes out; 0 disables. Every real extraction (the
    /// next non-absorbed push, a served fetch/invalidate, a kill)
    /// naturally carries the accumulated deltas, so no update is lost
    /// (monitor invariant I3). STRONG-mode pushes are never absorbed.
    std::size_t write_buffer_ops = 0;
    /// Piggyback liveness on regular traffic (PERFORMANCE.md): skip a
    /// timed heartbeat when anything was sent to the directory within
    /// the last heartbeat interval, and let ANY directory-originated
    /// message clear the miss counter (each proves liveness as well as
    /// a HeartbeatAck does — without this dedupe, a lost ack would
    /// keep incrementing the miss counter even while replies flow,
    /// forcing a spurious reconnect). Cuts beacon traffic on busy
    /// managers to ~zero.
    bool piggyback_heartbeats = false;
    /// Circuit breaker toward the directory (PROTOCOL.md "Flow control
    /// & overload"): consecutive Busy replies / retry failovers before
    /// bulk traffic is suspended; 0 disables the breaker.
    std::size_t breaker_threshold = 0;
    /// Minimum time an open breaker suspends bulk traffic; a Busy's
    /// retry_after extends (never shortens) the window.
    sim::Duration breaker_open_timeout = sim::msec(500);
    /// Degradation ladder: when the breaker opens while in STRONG mode,
    /// fall back to buffered WEAK writes (the write buffer keeps pushes
    /// local) until the breaker closes, then restore STRONG.
    bool degrade_on_overload = false;
    /// Observer for terminal give-ups (RetryPolicy::deadline expired);
    /// the argument names the abandoned operation ("pull", ...).
    std::function<void(const char*)> on_give_up;
    /// Optional protocol trace sink (not owned); nullptr = no tracing.
    /// See OBSERVABILITY.md for the events this manager emits.
    obs::TraceBuffer* trace = nullptr;
    /// Fault-injection knob (monitor mutation tests ONLY): silently
    /// discard reply echoes instead of queueing them, so a lost
    /// FetchReply/InvalidateAck loses its extracted deltas for good —
    /// the exact bug the monitor's I3 (no-lost-update) check catches.
    bool chaos_drop_echoes = false;
    // ---- dynamic reconfiguration (PROTOCOL.md "View migration & CM
    // journaling") ---------------------------------------------------
    /// Write-ahead journal (not owned): buffered WEAK writes and
    /// unacked push/kill intents are journaled, so a crashed manager
    /// restarted on the SAME store replays them, resumes its view
    /// (same view id, bumped incarnation), and re-delivers every
    /// buffered update exactly once instead of losing it. nullptr
    /// disables journaling (the seed behavior: a crash loses whatever
    /// the write buffer held).
    DurabilityStore* journal = nullptr;
    /// Start idle as a migration destination: skip registration and
    /// wait for a ViewMoveInstall to adopt a migrating view.
    bool await_migration = false;
    /// Observer fired when a migration moved this manager's view away
    /// (ViewMoveDone, not aborted); the manager is inert afterwards.
    std::function<void()> on_moved;
  };

  using Done = std::function<void()>;

  /// Construction registers with the directory (Figure 2, steps 1-2);
  /// operations issued before the ack arrives are queued.
  CacheManager(net::Fabric& fabric, net::Address self, net::Address directory,
               ViewAdapter& view, Config cfg);
  ~CacheManager() override;

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // ---- the Figure 3 API ----------------------------------------------

  /// Fetch the initial data image (cm.initImage()).
  void init_image(Done done = {});
  /// Refresh from the primary (cm.pullImage()); honors the validity
  /// trigger at the directory.
  void pull_image(Done done = {});
  /// Send current updates to the primary (explicit push).
  void push_image(Done done = {});
  /// Enter the mutually-exclusive work section (cm.startUseImage()).
  /// In strong mode this acquires exclusivity (invalidating conflicting
  /// active views); in weak mode it revalidates if needed.
  void start_use_image(Done done = {});
  /// Leave the work section; `modified` marks the image dirty. Deferred
  /// invalidations/fetches are served here.
  void end_use_image(bool modified = true);
  /// Change consistency mode at run time.
  void set_mode(Mode m, Done done = {});
  /// Deregister, surrendering final updates (cm.killImage()).
  void kill_image(Done done = {});

  /// Fail-safe recovery (§4.1 notes the centralized protocol assumes a
  /// live original component and that "fail-safe mechanisms can be
  /// implemented"): reconnect to a (re)started directory manager.
  /// Re-registers with the original configuration, re-initializes the
  /// image, re-pushes dirty local state, and re-issues the abandoned
  /// in-flight operation (its request id is preserved, so a directory
  /// that already executed it replays the cached reply instead of
  /// re-executing); previously queued operations then continue.
  /// Invoked automatically when a request exhausts its retry budget or
  /// heartbeats report the registration lost.
  void reconnect(Done done = {});

  /// Read/write-semantics extension (§6): annotate subsequent
  /// pulls/acquires with an access intent.
  void set_intent(AccessIntent intent) noexcept { intent_ = intent; }

  /// Simulate a silent process crash (chaos testing): unbind from the
  /// fabric, cancel every timer, drop all queued and in-flight work
  /// without invoking completions, and ignore all future API calls and
  /// messages. No teardown protocol runs — the directory discovers the
  /// death only via liveness eviction or round timeouts.
  void halt();
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  // ---- introspection ----------------------------------------------------

  [[nodiscard]] ViewId id() const noexcept { return id_; }
  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] bool rejected() const noexcept { return rejected_; }
  [[nodiscard]] const std::string& reject_reason() const noexcept {
    return reject_reason_;
  }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] bool exclusive() const noexcept { return exclusive_; }
  [[nodiscard]] bool in_use() const noexcept { return in_use_; }
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] Version last_version() const noexcept { return last_version_; }
  /// Queued (not yet issued) operations — wedge diagnostics.
  [[nodiscard]] std::size_t queued_ops() const noexcept {
    return queue_.size();
  }
  /// True while an operation awaits its reply (or a retransmission).
  [[nodiscard]] bool op_in_flight() const noexcept {
    return current_.has_value();
  }
  /// Quality reported by the most recent pull (remote unseen updates).
  [[nodiscard]] std::uint64_t last_pull_unseen() const noexcept {
    return last_pull_unseen_;
  }
  [[nodiscard]] std::uint64_t notifies_received() const noexcept {
    return notifies_received_;
  }
  /// Highest directory generation observed (generation fencing). 0
  /// until the first stamped directory message arrives.
  [[nodiscard]] std::uint64_t dir_generation() const noexcept {
    return dir_generation_;
  }
  [[nodiscard]] std::uint64_t invalidations_served() const noexcept {
    return invalidations_served_;
  }
  [[nodiscard]] const sim::CounterSet& stats() const noexcept {
    return stats_;
  }
  /// Pushes currently absorbed by the write buffer (deltas pending in
  /// the view, not yet surrendered); resets to 0 at every extraction.
  [[nodiscard]] std::size_t write_buffer_depth() const noexcept {
    return wbuf_streak_;
  }
  /// Circuit-breaker state toward the directory (overload diagnostics).
  [[nodiscard]] flow::BreakerState breaker_state() const noexcept {
    return breaker_.state();
  }
  /// True while overload degraded a STRONG manager to buffered WEAK.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  /// True while quiesced for a view migration (HandoffState in flight).
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// True once a migration moved this manager's view away for good.
  [[nodiscard]] bool moved() const noexcept { return moved_; }
  /// This manager's life number (journal-derived; 1 on a fresh store).
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }
  /// View id the journal asked to resume (kInvalidViewId = fresh).
  [[nodiscard]] ViewId resumed_view() const noexcept { return resume_view_; }

  void on_message(const net::Message& m) override;

 private:
  enum class OpKind { kInit, kPull, kPush, kAcquire, kModeChange, kKill };

  /// Trace labels for op lifecycle events ("pull", "acquire", ...).
  static constexpr const char* op_label(OpKind k) noexcept {
    switch (k) {
      case OpKind::kInit: return "init";
      case OpKind::kPull: return "pull";
      case OpKind::kPush: return "push";
      case OpKind::kAcquire: return "acquire";
      case OpKind::kModeChange: return "mode_change";
      case OpKind::kKill: return "kill";
    }
    return "?";
  }
  /// Wire type an op kind sends (trace labels for msg_sent events).
  static constexpr const char* op_msg_type(OpKind k) noexcept {
    switch (k) {
      case OpKind::kInit: return msg::kInitReq;
      case OpKind::kPull: return msg::kPullReq;
      case OpKind::kPush: return msg::kPushUpdate;
      case OpKind::kAcquire: return msg::kAcquireReq;
      case OpKind::kModeChange: return msg::kModeChangeReq;
      case OpKind::kKill: return msg::kKillReq;
    }
    return "?";
  }
  /// Wire type of the reply an op kind awaits (msg_received labels).
  static constexpr const char* op_reply_type(OpKind k) noexcept {
    switch (k) {
      case OpKind::kInit: return msg::kInitReply;
      case OpKind::kPull: return msg::kPullReply;
      case OpKind::kPush: return msg::kPushAck;
      case OpKind::kAcquire: return msg::kAcquireGrant;
      case OpKind::kModeChange: return msg::kModeChangeAck;
      case OpKind::kKill: return msg::kKillAck;
    }
    return "?";
  }

  struct Op {
    Op(OpKind k, Mode m, Done d)
        : kind(k), new_mode(m), done(std::move(d)) {}
    OpKind kind;
    Mode new_mode = Mode::kWeak;  // for kModeChange
    Done done;
    /// Request id; assigned at first issue, preserved across
    /// retransmissions AND across reconnect() re-issues (the directory
    /// dedup window is keyed by (address, req)).
    std::uint64_t req = 0;
    /// Sends so far (first transmission included).
    std::size_t attempts = 0;
    /// When the first transmission went out; anchors
    /// RetryPolicy::deadline across retransmissions, Busy back-offs,
    /// and reconnect() re-issues. -1 until first issue (0 is a valid
    /// simulated time — ops started at t=0 must still hit deadlines).
    sim::Time first_issued_at = -1;
    /// Push/kill extract the view's pending deltas exactly once; the
    /// image is cached here so retransmissions resend the same deltas
    /// (ViewAdapter::extract_from_view moves them out of the view).
    std::optional<ObjectImage> image;
    /// Push/kill: the unconfirmed reply echoes snapshotted at first
    /// issue; the op's ack confirms exactly these.
    std::vector<msg::DeltaEcho> echoes;
  };

  /// Bulk (sheddable/breaker-gated) op kinds: the load generators.
  static constexpr bool is_bulk(OpKind k) noexcept {
    return k == OpKind::kInit || k == OpKind::kPull || k == OpKind::kPush ||
           k == OpKind::kAcquire;
  }

  void enqueue(Op op);
  void pump();
  void issue(Op& op);
  bool accept_reply(OpKind kind, std::uint64_t req);
  void complete_current();
  void cancel_op_timer();
  void on_op_timeout();
  /// RetryPolicy::deadline expired: abandon the in-flight op terminally
  /// (its completion still fires so callers never wedge).
  void give_up_current(const char* why);
  /// breaker.* counters, trace, and the degradation ladder.
  void on_breaker_transition(flow::BreakerState from, flow::BreakerState to);
  void send_register();
  void on_register_timeout();
  void start_heartbeats();
  void stop_heartbeats();
  void heartbeat_tick();
  void serve_invalidate(std::uint64_t epoch);
  void serve_fetch(std::uint64_t token);
  /// A restarted directory's rebuild probe: re-announce our
  /// registration, cached-copy state, and unconfirmed echoes, then
  /// re-issue the in-flight op under the new generation.
  void handle_rebuild_probe(const net::Message& m);
  /// Track a dirty reply image until the directory confirms it.
  void queue_echo(msg::DeltaEcho e);
  /// An acked push/kill confirms the echoes it carried.
  void confirm_echoes(const std::vector<msg::DeltaEcho>& confirmed);
  void arm_trigger_timer();
  void poll_triggers();
  ObjectImage extract_dirty();
  /// True when an explicit/triggered push may be absorbed by the
  /// write buffer instead of hitting the wire.
  [[nodiscard]] bool can_absorb_push() const noexcept;

  // ---- journaling & view migration (PROTOCOL.md "View migration & CM
  // journaling") -----------------------------------------------------
  /// Rebuild pre-crash state from cfg_.journal (constructor only):
  /// derives resume_view_/incarnation_/next_req_ and re-enqueues one
  /// push per unflushed intent plus one for the buffered write set.
  void replay_journal();
  void journal_append(WalRecord w);
  /// Journal the (view id, incarnation) binding after registration or
  /// install.
  void journal_bind();
  /// Journal an extracted-but-unacked push/kill/handoff image.
  void journal_intent(std::uint64_t req, const ObjectImage& image);
  /// The directory acked request `req`: its intent is durable there.
  void journal_flush(std::uint64_t req);
  /// Journal the cumulative buffered write set (every absorb).
  void journal_write_buffer();
  /// Rewrite the journal as a minimal snapshot of live state.
  void compact_journal();
  /// Allocate a request id, journaling a ceiling promise so a restart
  /// never re-mints an id the directory may already have seen.
  [[nodiscard]] std::uint64_t alloc_req();
  /// Seal for migration once quiescent (no use section, no in-flight or
  /// queued op); called from every place that could drain the last op.
  void try_seal();
  void seal();
  void send_handoff();
  void handle_move_req(const net::Message& m);
  void handle_move_install(const net::Message& m);
  void handle_move_done(const net::Message& m);
  /// Abort path: resume serving and surrender the sealed extraction
  /// through the regular push path under the SAME request id (the
  /// directory's exactly-once key absorbs an already-merged handoff).
  void unseal_resume();
  /// Send `value` to the directory, pooling the payload when enabled,
  /// and record the traffic for heartbeat piggybacking.
  template <typename T>
  void send_dir(const char* type, T value);

  net::Fabric& fabric_;
  net::Address self_;
  net::Address directory_;
  ViewAdapter& view_;
  Config cfg_;

  std::optional<trigger::Trigger> push_trigger_;
  std::optional<trigger::Trigger> pull_trigger_;

  ViewId id_ = kInvalidViewId;
  Mode mode_;
  AccessIntent intent_ = AccessIntent::kReadWrite;
  bool registered_ = false;
  bool rejected_ = false;
  std::string reject_reason_;
  bool alive_ = true;
  bool halted_ = false;
  bool valid_ = false;
  bool exclusive_ = false;
  bool in_use_ = false;
  bool dirty_ = false;
  Version last_version_ = 0;
  std::uint64_t last_pull_unseen_ = 0;
  std::uint64_t notifies_received_ = 0;
  std::uint64_t invalidations_served_ = 0;

  sim::Time last_push_at_ = 0;
  sim::Time last_pull_at_ = 0;

  /// Highest directory generation seen in any stamped message; every
  /// send carries it back. Messages stamped with a lower generation are
  /// fenced (dropped) — they were minted by a crashed incarnation.
  std::uint64_t dir_generation_ = 0;

  std::deque<Op> queue_;
  std::optional<Op> current_;

  std::optional<std::uint64_t> deferred_invalidate_epoch_;
  std::vector<std::uint64_t> deferred_fetch_tokens_;

  // ---- reliability state ------------------------------------------------
  sim::Rng retry_rng_;
  /// Breaker toward the (single) directory destination.
  flow::CircuitBreaker breaker_;
  /// STRONG manager currently degraded to buffered WEAK by overload.
  bool degraded_ = false;
  std::uint64_t next_req_ = 1;
  net::TimerId op_timer_ = net::kInvalidTimerId;
  /// In-flight registration (the register exchange is not an Op: it
  /// gates the op queue). After max_attempts the retry cadence drops to
  /// a daemon timer at max_timeout, so an unreachable directory never
  /// wedges a run-to-quiescence simulation yet recovery stays
  /// self-driving once connectivity returns.
  std::uint64_t register_req_ = 0;
  std::size_t register_attempts_ = 0;
  /// First send of this incarnation's register exchange; anchors
  /// RetryPolicy::deadline for registration (which is not an Op).
  /// -1 = not started (0 is a valid simulated time).
  sim::Time register_started_at_ = -1;
  net::TimerId register_timer_ = net::kInvalidTimerId;
  net::TimerId heartbeat_timer_ = net::kInvalidTimerId;
  std::uint64_t heartbeat_seq_ = 0;
  std::size_t heartbeat_unacked_ = 0;
  /// Replayed command replies: a retransmitted FetchReq/InvalidateReq
  /// must re-send the original reply, not re-extract (extraction moves
  /// deltas out of the view).
  std::deque<std::pair<std::uint64_t, msg::FetchReply>> served_fetches_;
  std::deque<std::pair<std::uint64_t, msg::InvalidateAck>>
      served_invalidates_;
  /// Dirty images extracted for FetchReply/InvalidateAck that the
  /// directory has not yet confirmed. Those replies are fire-and-forget,
  /// so each image also rides the next push/kill (msg::DeltaEcho) until
  /// that op is acked; otherwise a lost reply would silently drop the
  /// deltas (extraction moves them out of the view). Survives
  /// reconnect(): echoes are keyed by round id, not by incarnation.
  std::deque<msg::DeltaEcho> unconfirmed_echoes_;

  net::TimerId trigger_timer_ = net::kInvalidTimerId;

  // ---- dynamic reconfiguration state ------------------------------------
  /// Life number of this manager (1 on a fresh journal; last journaled
  /// binding + 1 after a restart). Sent with resume registrations.
  std::uint64_t incarnation_ = 1;
  /// View id to resume (journal-derived); cleared after the first
  /// successful registration so later reconnects register fresh.
  ViewId resume_view_ = kInvalidViewId;
  /// Highest request id the journal promises was never exceeded; a
  /// restart resumes allocation above it (no (address, req) reuse).
  std::uint64_t req_ceiling_ = 0;
  std::size_t journal_appends_ = 0;
  /// A ViewMoveReq arrived; sealing happens at the next quiescent point.
  bool move_requested_ = false;
  /// Quiesced: HandoffState retransmits until ViewMoveDone settles it.
  bool sealed_ = false;
  /// The view now lives at the migration destination; inert forever.
  bool moved_ = false;
  /// Epoch of the ViewMoveReq we are quiescing for (not yet sealed).
  std::uint64_t pending_move_epoch_ = 0;
  /// Epoch the handoff was extracted and sent under.
  std::uint64_t seal_epoch_ = 0;
  /// The handoff delta travels under this request id: the directory's
  /// (address, req) exactly-once key absorbs any journal-replayed or
  /// post-abort re-push of the same extraction.
  std::uint64_t handoff_req_ = 0;
  bool handoff_dirty_ = false;
  ObjectImage handoff_image_;
  std::vector<msg::DeltaEcho> handoff_echoes_;
  std::size_t handoff_attempts_ = 0;
  net::TimerId handoff_timer_ = net::kInvalidTimerId;
  /// Destination side: epoch of the install we adopted (idempotent ack
  /// replay for retransmitted installs).
  std::uint64_t installed_epoch_ = 0;

  // ---- raw-speed state (PERFORMANCE.md) ---------------------------------
  /// Per-payload-type slot pools; only touched when cfg_.pool_messages.
  net::PoolSet pools_;
  /// Consecutive pushes absorbed by the write buffer since the last
  /// extraction (lifetime totals live in the wbuf.* counters).
  std::size_t wbuf_streak_ = 0;
  /// When traffic last went to the directory (heartbeat piggybacking).
  sim::Time last_dir_traffic_ = 0;

  sim::CounterSet stats_;
  /// Lamport clock for causal trace stamping; registered with the
  /// fabric (sends tick it, deliveries observe the sender's stamp) and
  /// with cfg_.trace (events carry its value). No-op when tracing is
  /// compiled out.
  obs::CausalClock clock_;
};

template <typename T>
void CacheManager::send_dir(const char* type, T value) {
  const std::size_t bytes = msg::wire_size(value);
  last_dir_traffic_ = fabric_.now();
  if (cfg_.pool_messages) {
    net::PoolPtr<T> slot = pools_.acquire<T>();
    *slot = std::move(value);
    fabric_.send(self_, directory_, type, std::move(slot), bytes);
  } else {
    fabric_.send(self_, directory_, type, std::move(value), bytes);
  }
}

}  // namespace flecc::core
