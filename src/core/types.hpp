// Shared identifiers and enumerations of the Flecc protocol.
#pragma once

#include <cstdint>
#include <string>

namespace flecc::core {

/// Identifies a registered view at its directory manager.
using ViewId = std::uint32_t;
inline constexpr ViewId kInvalidViewId = 0;

/// Image/merge version numbers (monotonic at the primary).
using Version = std::uint64_t;

/// Consistency mode of a view (paper §4: strong = one-copy
/// serializability among conflicting views; weak = many active views).
enum class Mode : std::uint8_t { kStrong, kWeak };

inline const char* to_string(Mode m) noexcept {
  return m == Mode::kStrong ? "STRONG" : "WEAK";
}

/// Read/write semantics attached to an operation (future-work extension
/// 1 of the paper §6: the directory can skip invalidations and fetches
/// for read-only activity).
enum class AccessIntent : std::uint8_t { kReadWrite, kReadOnly };

inline const char* to_string(AccessIntent a) noexcept {
  return a == AccessIntent::kReadOnly ? "RO" : "RW";
}

}  // namespace flecc::core
