// Ready-made simulated deployments of the airline system, shared by
// tests, examples, and the figure-reproduction benches.
//
// Physical layout mirrors the paper's experiment: all travel agents and
// the main database in one LAN ("deployed into a LAN and connected to a
// main database running in the same LAN", §5.2).
#pragma once

#include <memory>
#include <vector>

#include "airline/flight_database.hpp"
#include "airline/travel_agent.hpp"
#include "airline/workload.hpp"
#include "baselines/coherence_client.hpp"
#include "baselines/multicast.hpp"
#include "baselines/time_sharing.hpp"
#include "core/directory_manager.hpp"
#include "core/durability.hpp"
#include "net/batch_fabric.hpp"
#include "net/sim_fabric.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace flecc::obs {
class TelemetryHub;
}  // namespace flecc::obs

namespace flecc::airline {

/// Which coherence protocol a CoherenceTestbed deploys (Figure 4).
enum class Protocol { kFlecc, kTimeSharing, kMulticast };

const char* to_string(Protocol p) noexcept;

struct TestbedOptions {
  std::size_t n_agents = 10;
  std::size_t group_size = 10;
  std::size_t flights_per_group = 5;
  std::int64_t capacity = 100000;
  core::Mode mode = core::Mode::kWeak;
  std::string push_trigger;
  std::string pull_trigger;
  std::string validity_trigger;
  sim::Duration think_time = 0;
  sim::Duration trigger_poll = sim::msec(100);
  sim::Duration lan_latency = sim::usec(200);
  core::DirectoryManager::Config dir_cfg{};
  /// Fabric knobs (loss injection, seed) for chaos experiments.
  net::SimFabric::Config fabric_cfg{};
  /// Cache-manager reliability knobs.
  core::RetryPolicy retry{};
  sim::Duration heartbeat_interval = 0;
  std::size_t heartbeat_miss_limit = 3;
  /// Protocol-event recorder (obs layer, not owned; nullptr disables).
  /// The testbed creates one buffer per role: "dm" (directory), "fabric"
  /// (drop events), and "cm.<i>" per agent, so each writer stays
  /// single-threaded and the merged snapshot is time-ordered.
  obs::TraceRecorder* trace = nullptr;
  // ---- raw-speed knobs (PERFORMANCE.md) ---------------------------------
  /// Wrap the simulated fabric in a net::BatchFabric: message trains
  /// between the same pair of nodes travel as one framed hop. All
  /// protocol components (directory, agents, baselines) ride it, so
  /// cross-protocol comparisons stay apples-to-apples.
  bool batch_fabric = false;
  net::BatchFabric::Config batch_cfg{};
  /// Message-payload pooling, applied to every cache manager AND to
  /// dir_cfg.pool_messages (uniform A/B switch).
  bool pool_messages = true;
  /// CM write buffer: pushes absorbed per flush cycle (0 disables).
  std::size_t write_buffer_ops = 0;
  /// CM heartbeat piggybacking on regular directory traffic.
  bool piggyback_heartbeats = false;
  // ---- overload knobs (PROTOCOL.md "Flow control & overload") -----------
  /// CM circuit breaker toward the directory: consecutive Busy/failover
  /// events before bulk traffic is suspended (0 disables). Fabric-level
  /// bounding lives in fabric_cfg.flow; DM admission caps in dir_cfg.
  std::size_t breaker_threshold = 0;
  /// Minimum open window of the CM breaker.
  sim::Duration breaker_open_timeout = sim::msec(500);
  /// Degrade STRONG managers to buffered WEAK writes while their
  /// breaker is open (restored automatically when it closes).
  bool degrade_on_overload = false;
  /// Give the directory an owned in-memory durability store so
  /// crash_directory()/restart_directory() can exercise checkpointed
  /// recovery. Ignored when dir_cfg.durability is already set.
  bool durable_directory = false;
  /// Checkpoint lag: WAL appends between flushes (1 = every append is
  /// durable; larger values leave an unflushed tail that a crash eats,
  /// forcing the rebuild round to recover more from the CMs).
  std::size_t checkpoint_flush_every = 1;
  // ---- dynamic reconfiguration knobs (PROTOCOL.md "View migration &
  // CM journaling") -------------------------------------------------------
  /// Give every agent an owned in-memory write-ahead journal, so
  /// crash_agent()/restart_agent() exercise journaled CM recovery
  /// (buffered WEAK writes and unacked push intents survive the crash).
  bool cm_journal = false;
  /// CM journal appends between flushes (1 = every append durable).
  std::size_t cm_journal_flush_every = 1;
  /// Extra idle LAN hosts reserved as live-migration destinations
  /// (spawn_destination() places an await-migration agent on one).
  std::size_t spare_hosts = 0;
  // ---- live telemetry (OBSERVABILITY.md "Live telemetry") ---------------
  /// Live-telemetry hub (not owned; nullptr disables — zero overhead).
  /// The testbed registers read-only collectors (directory/fabric/CM
  /// counters, per-view and per-flight dimensional series, `health.*`
  /// gauges) and drives hub->tick() from a simulated-time daemon event
  /// every hub interval, so sampling is deterministic and never
  /// perturbs the protocol.
  obs::TelemetryHub* telemetry = nullptr;
};

/// Full-featured Flecc deployment with TravelAgent drivers (Figures 5-6).
class FleccTestbed {
 public:
  explicit FleccTestbed(TestbedOptions opts);
  ~FleccTestbed();

  FleccTestbed(const FleccTestbed&) = delete;
  FleccTestbed& operator=(const FleccTestbed&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::SimFabric& fabric() noexcept { return *fabric_; }
  /// The fabric protocol components are wired to: the BatchFabric when
  /// opts.batch_fabric, the SimFabric otherwise.
  [[nodiscard]] net::Fabric& protocol_fabric() noexcept {
    return batch_ != nullptr ? static_cast<net::Fabric&>(*batch_) : *fabric_;
  }
  [[nodiscard]] net::BatchFabric* batch_fabric() noexcept {
    return batch_.get();
  }
  [[nodiscard]] FlightDatabase& database() noexcept { return db_; }
  [[nodiscard]] core::DirectoryManager& directory() noexcept {
    return *directory_;
  }
  [[nodiscard]] std::size_t agent_count() const noexcept {
    return agents_.size();
  }
  [[nodiscard]] TravelAgent& agent(std::size_t i) { return *agents_.at(i); }
  [[nodiscard]] const GroupAssignment& assignment() const noexcept {
    return assignment_;
  }

  /// Run the simulator until idle.
  void run() { sim_.run(); }
  void run_until(sim::Time t) { sim_.run_until(t); }

  /// Initialize every agent (registration + initImage) and run to idle.
  void init_all_agents();

  // ---- chaos hooks ------------------------------------------------------

  /// Silently crash agent `i`: its endpoint is unbound (messages to it
  /// vanish) and no kill/teardown protocol runs. The TravelAgent object
  /// stays alive for post-mortem inspection but must not be driven.
  /// With cm_journal, the agent's journal store also loses its
  /// unflushed tail (MemoryDurabilityStore::crash).
  void crash_agent(std::size_t i);
  [[nodiscard]] bool crashed(std::size_t i) const {
    return crashed_.at(i);
  }

  /// Restart a crashed agent on the SAME address and journal store: the
  /// new cache manager replays the journal, resumes its view id under a
  /// bumped incarnation, and re-delivers journaled updates exactly
  /// once. The old agent's confirmed sales are folded into
  /// retired_confirmed() before the object is replaced (its view-level
  /// counters die with it). Requires cm_journal.
  TravelAgent& restart_agent(std::size_t i);

  /// Confirmed-minus-cancelled sales of agent lives that were retired
  /// by restart_agent(); add to the surviving agents' totals when
  /// balancing against the database.
  [[nodiscard]] std::int64_t retired_confirmed() const noexcept {
    return retired_confirmed_;
  }

  /// Agent `i`'s journal store (nullptr unless cm_journal).
  [[nodiscard]] core::MemoryDurabilityStore* agent_journal(std::size_t i) {
    return cm_journal_stores_.empty() ? nullptr
                                      : cm_journal_stores_.at(i).get();
  }

  // ---- live view migration ----------------------------------------------

  /// Place an idle await-migration agent on spare host `spare` (0-based,
  /// < opts.spare_hosts), configured with the same flights as source
  /// agent `src` so it can adopt that view's data. Re-spawning on an
  /// occupied slot replaces the previous (e.g. crashed) destination;
  /// its confirmed sales fold into retired_confirmed().
  TravelAgent& spawn_destination(std::size_t src, std::size_t spare);
  [[nodiscard]] TravelAgent& spare(std::size_t i) { return *spares_.at(i); }
  [[nodiscard]] bool has_spare(std::size_t i) const {
    return i < spares_.size() && spares_[i] != nullptr;
  }

  /// Silently crash the destination agent on spare slot `i`.
  void crash_spare(std::size_t i);

  /// Ask the directory to migrate agent `src`'s view to the destination
  /// on spare slot `spare` (which must have been spawned).
  bool migrate_agent(std::size_t src, std::size_t spare);

  /// Cut the given agents off from everyone else (including the
  /// directory) until heal_partition().
  void partition_agents(const std::vector<std::size_t>& agent_indices);
  void heal_partition() { fabric_->heal(); }

  /// Crash the directory: every in-memory table (sharing sets, open
  /// rounds, dedup windows) dies with the DirectoryManager object and
  /// its endpoint unbinds, so in-flight messages to it vanish. The
  /// durability store survives in the testbed, minus any unflushed WAL
  /// tail (MemoryDurabilityStore::crash). Requires durable_directory.
  void crash_directory();

  /// Restart the directory from the surviving checkpoint: the new
  /// incarnation replays the WAL under a bumped generation, probes
  /// surviving agents (DirectoryRebuild), and fences stale traffic.
  void restart_directory();

  [[nodiscard]] bool directory_crashed() const noexcept {
    return dir_crashed_;
  }

  /// The owned durability store (nullptr unless durable_directory).
  [[nodiscard]] core::MemoryDurabilityStore* durability() noexcept {
    return durability_.get();
  }

 private:
  /// Shared agent configuration (constructor + restart_agent).
  TravelAgent::Config agent_config(std::size_t i);
  /// Register the telemetry collectors on opts_.telemetry.
  void wire_telemetry();
  /// Self-rescheduling daemon event calling hub->tick() every interval.
  void schedule_telemetry_tick();

  TestbedOptions opts_;
  GroupAssignment assignment_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimFabric> fabric_;
  /// Optional batching decorator; must outlive everything bound
  /// through it (declared before, hence destroyed after, the protocol
  /// components below).
  std::unique_ptr<net::BatchFabric> batch_;
  FlightDatabase db_;
  std::unique_ptr<FlightDatabaseAdapter> adapter_;
  std::unique_ptr<core::MemoryDurabilityStore> durability_;
  /// Per-agent CM write-ahead journals (empty unless cm_journal); the
  /// stores outlive agent restarts, which is the whole point.
  std::vector<std::unique_ptr<core::MemoryDurabilityStore>> cm_journal_stores_;
  /// Journals for spawned migration destinations, by spare slot.
  std::vector<std::unique_ptr<core::MemoryDurabilityStore>> spare_journals_;
  std::unique_ptr<core::DirectoryManager> directory_;
  std::vector<std::unique_ptr<TravelAgent>> agents_;
  /// Migration destinations, by spare slot (nullptr = not spawned).
  std::vector<std::unique_ptr<TravelAgent>> spares_;
  std::vector<bool> crashed_;
  std::vector<net::NodeId> hosts_;
  net::Address dir_addr_{};
  bool dir_crashed_ = false;
  std::int64_t retired_confirmed_ = 0;
  /// Collector registration on opts_.telemetry (removed on destruction
  /// so a hub shared across consecutive runs never samples a dead
  /// testbed).
  std::size_t telemetry_token_ = 0;
};

/// Protocol-parametric deployment behind the CoherenceClient interface
/// (the Figure-4 efficiency comparison).
class CoherenceTestbed {
 public:
  CoherenceTestbed(Protocol protocol, TestbedOptions opts);
  ~CoherenceTestbed();

  CoherenceTestbed(const CoherenceTestbed&) = delete;
  CoherenceTestbed& operator=(const CoherenceTestbed&) = delete;

  [[nodiscard]] Protocol protocol() const noexcept { return protocol_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::SimFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] FlightDatabase& database() noexcept { return db_; }
  [[nodiscard]] std::size_t agent_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] baselines::CoherenceClient& client(std::size_t i) {
    return *clients_.at(i);
  }
  [[nodiscard]] TravelAgentView& view(std::size_t i) { return *views_.at(i); }
  [[nodiscard]] const GroupAssignment& assignment() const noexcept {
    return assignment_;
  }
  /// Non-null only for Protocol::kFlecc.
  [[nodiscard]] core::DirectoryManager* flecc_directory() noexcept {
    return directory_.get();
  }

  void run() { sim_.run(); }

  /// Connect every client and run to idle.
  void connect_all();

 private:
  /// Minimal telemetry wiring (fabric/db/directory counters) so fig4
  /// runs can serve live metrics too.
  void wire_telemetry();
  void schedule_telemetry_tick();

  Protocol protocol_;
  TestbedOptions opts_;
  GroupAssignment assignment_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimFabric> fabric_;
  /// Optional batching decorator (see FleccTestbed::batch_).
  std::unique_ptr<net::BatchFabric> batch_;
  FlightDatabase db_;
  std::unique_ptr<FlightDatabaseAdapter> adapter_;

  // exactly one of these coordinator sets is populated
  std::unique_ptr<core::DirectoryManager> directory_;
  std::unique_ptr<baselines::TimeSharingCoordinator> ts_coord_;
  std::unique_ptr<baselines::MulticastDirectory> mc_dir_;

  std::vector<std::unique_ptr<TravelAgentView>> views_;
  std::vector<std::unique_ptr<baselines::CoherenceClient>> clients_;
  /// See FleccTestbed::telemetry_token_.
  std::size_t telemetry_token_ = 0;
};

}  // namespace flecc::airline
