// The travel agent's local data view (paper §5.1-5.2, Figure 3).
//
// A travel agent serves a subset of flights (its "Flights" property)
// and keeps:
//   * base_    — the last seat state synchronized from the primary, and
//   * pending_ — reservations confirmed locally but not yet propagated.
// extract_from_view() *moves* the pending deltas into the image (they
// now belong to the coherence layer); merge_into_view() refreshes the
// base without disturbing still-pending local work.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "airline/flight.hpp"
#include "airline/flight_database.hpp"
#include "core/adapters.hpp"
#include "trigger/env.hpp"

namespace flecc::airline {

class TravelAgentView : public core::ViewAdapter {
 public:
  explicit TravelAgentView(std::vector<FlightNumber> flights);

  /// The "Flights" property set for this agent.
  [[nodiscard]] props::PropertySet properties() const;

  // ---- local application operations (Figure 3 work section) ----------

  /// Figure 3's ars.confirmTickets: reserve `count` seats locally if the
  /// view believes they are available. Returns the number confirmed.
  std::int64_t confirm_tickets(FlightNumber flight, std::int64_t count);

  /// Void up to `count` locally confirmed seats that have not yet been
  /// propagated (a sale can be cancelled while still pending at the
  /// agent). Returns the number actually cancelled.
  std::int64_t cancel_tickets(FlightNumber flight, std::int64_t count);

  /// Browse: seats the view currently believes are available.
  [[nodiscard]] std::int64_t available(FlightNumber flight) const;

  /// Reservations confirmed locally but not yet extracted.
  [[nodiscard]] std::int64_t pending_total() const;
  [[nodiscard]] std::int64_t confirmed_total() const noexcept {
    return confirmed_total_;
  }
  [[nodiscard]] std::int64_t refused_total() const noexcept {
    return refused_total_;
  }
  [[nodiscard]] std::int64_t cancelled_total() const noexcept {
    return cancelled_total_;
  }
  /// Seats this view has net-sold: confirmed minus cancelled.
  [[nodiscard]] std::int64_t net_sold() const noexcept {
    return confirmed_total_ - cancelled_total_;
  }
  [[nodiscard]] const std::vector<FlightNumber>& flights() const noexcept {
    return flights_;
  }
  /// Last base seat state synced for `flight` (for tests).
  [[nodiscard]] std::int64_t base_reserved(FlightNumber flight) const;

  // ---- ViewAdapter -----------------------------------------------------

  [[nodiscard]] core::ObjectImage extract_from_view(
      const props::PropertySet& vpl) override;
  [[nodiscard]] core::ObjectImage peek_from_view(
      const props::PropertySet& vpl) const override;
  void merge_into_view(const core::ObjectImage& image,
                       const props::PropertySet& vpl) override;
  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

 private:
  void refresh_vars();

  struct Seats {
    std::int64_t capacity = 0;
    std::int64_t reserved = 0;
  };

  std::vector<FlightNumber> flights_;
  std::map<FlightNumber, Seats> base_;
  std::map<FlightNumber, std::int64_t> pending_;
  std::int64_t confirmed_total_ = 0;
  std::int64_t refused_total_ = 0;
  std::int64_t cancelled_total_ = 0;
  trigger::VariableStore vars_;  // pendingSales, confirmedSales
};

}  // namespace flecc::airline
