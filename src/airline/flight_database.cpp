#include "airline/flight_database.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <utility>

namespace flecc::airline {

std::string key_capacity(FlightNumber n) {
  return "f." + std::to_string(n) + ".cap";
}
std::string key_reserved(FlightNumber n) {
  return "f." + std::to_string(n) + ".res";
}
std::string key_delta(FlightNumber n) { return "d." + std::to_string(n); }

namespace {

/// Parse the flight number out of "f.<n>.res" / "f.<n>.cap" / "d.<n>".
/// Returns false for unrelated keys.
bool parse_key(const std::string& key, FlightNumber& n, char& kind) {
  if (key.size() < 3) return false;
  if (key[0] == 'd' && key[1] == '.') {
    kind = 'd';
    auto [ptr, ec] =
        std::from_chars(key.data() + 2, key.data() + key.size(), n);
    return ec == std::errc() && ptr == key.data() + key.size();
  }
  if (key[0] == 'f' && key[1] == '.') {
    const auto dot = key.rfind('.');
    if (dot == 1 || dot == std::string::npos) return false;
    const std::string tail = key.substr(dot + 1);
    if (tail == "res") {
      kind = 'r';
    } else if (tail == "cap") {
      kind = 'c';
    } else {
      return false;
    }
    auto [ptr, ec] = std::from_chars(key.data() + 2, key.data() + dot, n);
    return ec == std::errc() && ptr == key.data() + dot;
  }
  return false;
}

}  // namespace

// ---- FlightDatabase --------------------------------------------------------

void FlightDatabase::add_flight(Flight f) {
  if (f.capacity < 0 || f.reserved < 0 || f.reserved > f.capacity) {
    throw std::invalid_argument("FlightDatabase::add_flight: bad seat state");
  }
  flights_[f.number] = std::move(f);
}

FlightDatabase FlightDatabase::uniform(FlightNumber first, std::size_t count,
                                       std::int64_t capacity, double price) {
  FlightDatabase db;
  for (std::size_t i = 0; i < count; ++i) {
    Flight f;
    f.number = first + static_cast<FlightNumber>(i);
    f.origin = "ORG";
    f.destination = "DST";
    f.capacity = capacity;
    f.price = price;
    db.add_flight(std::move(f));
  }
  return db;
}

const Flight* FlightDatabase::find(FlightNumber n) const {
  auto it = flights_.find(n);
  return it == flights_.end() ? nullptr : &it->second;
}

std::vector<FlightNumber> FlightDatabase::flight_numbers() const {
  std::vector<FlightNumber> out;
  out.reserve(flights_.size());
  for (const auto& [n, f] : flights_) {
    (void)f;
    out.push_back(n);
  }
  return out;
}

std::int64_t FlightDatabase::reserve(FlightNumber n, std::int64_t count) {
  if (count <= 0) return 0;
  auto it = flights_.find(n);
  if (it == flights_.end()) return 0;
  Flight& f = it->second;
  const std::int64_t accepted = std::min(count, f.available());
  f.reserved += accepted;
  rejected_seats_ += static_cast<std::uint64_t>(count - accepted);
  return accepted;
}

bool FlightDatabase::raise_reserved(FlightNumber n, std::int64_t reserved) {
  auto it = flights_.find(n);
  if (it == flights_.end()) return false;
  Flight& f = it->second;
  f.reserved = std::clamp(std::max(f.reserved, reserved),
                          std::int64_t{0}, f.capacity);
  return true;
}

std::int64_t FlightDatabase::available(FlightNumber n) const {
  const Flight* f = find(n);
  return f == nullptr ? 0 : f->available();
}

std::int64_t FlightDatabase::total_reserved() const {
  std::int64_t total = 0;
  for (const auto& [n, f] : flights_) {
    (void)n;
    total += f.reserved;
  }
  return total;
}

// ---- FlightDatabaseAdapter ---------------------------------------------------

FlightDatabaseAdapter::FlightDatabaseAdapter(FlightDatabase& db)
    : db_(db), env_(db) {}

props::PropertySet FlightDatabaseAdapter::data_properties() const {
  std::set<props::Value> numbers;
  for (const auto& [n, f] : db_) {
    (void)f;
    numbers.insert(props::Value{n});
  }
  props::PropertySet ps;
  ps.set(kFlightsProperty, props::Domain::discrete(std::move(numbers)));
  return ps;
}

core::ObjectImage FlightDatabaseAdapter::extract_from_object(
    const props::PropertySet& vpl) const {
  core::ObjectImage image;
  const props::Domain* scope = vpl.find(kFlightsProperty);
  for (const auto& [n, f] : db_) {
    if (scope != nullptr && !scope->contains(props::Value{n})) continue;
    image.set_int(key_capacity(n), f.capacity);
    image.set_int(key_reserved(n), f.reserved);
  }
  return image;
}

void FlightDatabaseAdapter::merge_into_object(const core::ObjectImage& image,
                                              const props::PropertySet& vpl) {
  const props::Domain* scope = vpl.find(kFlightsProperty);
  for (const auto& [key, value] : image) {
    FlightNumber n = 0;
    char kind = 0;
    if (!parse_key(key, n, kind)) continue;
    if (scope != nullptr && !scope->contains(props::Value{n})) continue;
    const auto* iv = std::get_if<std::int64_t>(&value);
    if (iv == nullptr) continue;
    if (kind == 'd') {
      db_.reserve(n, *iv);  // clamped: the conflict-resolution policy
    } else if (kind == 'r') {
      db_.raise_reserved(n, *iv);  // monotone state merge (gossip)
    }
    // 'c' (capacity) is immutable primary state; ignore inbound writes.
  }
}

std::optional<double> FlightDatabaseAdapter::DbEnv::lookup(
    const std::string& name) const {
  if (name == "_total_reserved") {
    return static_cast<double>(db_.total_reserved());
  }
  constexpr const char* kAvailPrefix = "avail.";
  if (name.rfind(kAvailPrefix, 0) == 0) {
    FlightNumber n = 0;
    const char* first = name.data() + 6;
    const char* last = name.data() + name.size();
    auto [ptr, ec] = std::from_chars(first, last, n);
    if (ec == std::errc() && ptr == last) {
      return static_cast<double>(db_.available(n));
    }
  }
  return std::nullopt;
}

}  // namespace flecc::airline
