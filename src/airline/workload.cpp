#include "airline/workload.hpp"

#include <stdexcept>

namespace flecc::airline {

GroupAssignment assign_flight_groups(std::size_t n_agents,
                                     std::size_t group_size,
                                     std::size_t flights_per_group,
                                     FlightNumber base) {
  if (group_size == 0 || flights_per_group == 0) {
    throw std::invalid_argument(
        "assign_flight_groups: group_size and flights_per_group must be > 0");
  }
  GroupAssignment out;
  out.agent_flights.reserve(n_agents);
  out.agent_group.reserve(n_agents);
  out.group_count = (n_agents + group_size - 1) / group_size;
  out.flight_count = out.group_count * flights_per_group;

  for (std::size_t a = 0; a < n_agents; ++a) {
    const std::size_t g = a / group_size;
    std::vector<FlightNumber> flights;
    flights.reserve(flights_per_group);
    const FlightNumber first =
        base + static_cast<FlightNumber>(g * flights_per_group);
    for (std::size_t i = 0; i < flights_per_group; ++i) {
      flights.push_back(first + static_cast<FlightNumber>(i));
    }
    out.agent_flights.push_back(std::move(flights));
    out.agent_group.push_back(g);
  }
  return out;
}

}  // namespace flecc::airline
