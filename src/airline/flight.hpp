// The airline reservation domain model (paper §5.1).
#pragma once

#include <cstdint>
#include <string>

namespace flecc::airline {

using FlightNumber = std::int64_t;

struct Flight {
  FlightNumber number = 0;
  std::string origin;
  std::string destination;
  std::int64_t capacity = 0;
  std::int64_t reserved = 0;
  double price = 0.0;

  [[nodiscard]] std::int64_t available() const noexcept {
    return capacity - reserved;
  }
};

}  // namespace flecc::airline
