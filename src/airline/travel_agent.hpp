// A travel agent component: a view of the flight database plus its
// Flecc cache manager, driving the Figure-3 workflow in simulation.
//
//   create cache manager → initImage → { pullImage; startUseImage;
//   confirmTickets; endUseImage } * N → killImage
//
// Because simulation-mode code cannot block, each step is asynchronous
// and loops are expressed with sim::Script-style continuations.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "airline/travel_agent_view.hpp"
#include "core/cache_manager.hpp"
#include "net/fabric.hpp"
#include "sim/stats.hpp"

namespace flecc::airline {

class TravelAgent {
 public:
  struct Config {
    /// Flights this agent serves (its "Flights" property).
    std::vector<FlightNumber> flights;
    core::Mode mode = core::Mode::kWeak;
    std::string push_trigger;
    std::string pull_trigger;
    std::string validity_trigger;
    /// Simulated duration of the work inside the use section.
    sim::Duration think_time = 0;
    sim::Duration trigger_poll = sim::msec(100);
    std::string name = "air.TravelAgent";
    /// Reliability knobs, forwarded to the cache manager.
    core::RetryPolicy retry{};
    sim::Duration heartbeat_interval = 0;
    std::size_t heartbeat_miss_limit = 3;
    /// Raw-speed knobs, forwarded to the cache manager (PERFORMANCE.md).
    bool pool_messages = true;
    std::size_t write_buffer_ops = 0;
    bool piggyback_heartbeats = false;
    /// Overload knobs, forwarded to the cache manager (PROTOCOL.md
    /// "Flow control & overload").
    std::size_t breaker_threshold = 0;
    sim::Duration breaker_open_timeout = sim::msec(500);
    bool degrade_on_overload = false;
    /// Protocol-event sink, forwarded to the cache manager (obs layer,
    /// not owned; nullptr disables).
    obs::TraceBuffer* trace = nullptr;
    /// Dynamic-reconfiguration knobs, forwarded to the cache manager
    /// (PROTOCOL.md "View migration & CM journaling"): a write-ahead
    /// journal store (not owned; nullptr disables), whether to start
    /// idle as a migration destination, and an observer fired when a
    /// migration moved this agent's view away.
    core::DurabilityStore* journal = nullptr;
    bool await_migration = false;
    std::function<void()> on_moved;
  };

  using Done = std::function<void()>;

  TravelAgent(net::Fabric& fabric, net::Address self, net::Address directory,
              Config cfg);

  // ---- scripted operations ---------------------------------------------

  /// cm.initImage().
  void init(Done done = {});

  /// One Figure-3 loop body. With `pull_first` (weak mode only) the
  /// agent explicitly pulls before working; in strong mode startUseImage
  /// acquires fresh data regardless. Records latency and fires the op
  /// probe at execution time.
  void reserve_once(FlightNumber flight, std::int64_t seats, bool pull_first,
                    Done done = {});

  /// `iterations` repetitions of reserve_once on `flight`.
  void run_reservation_loop(std::size_t iterations, FlightNumber flight,
                            std::int64_t seats, bool pull_first,
                            Done done = {});

  /// Switch consistency mode at run time (§5.2 "Adaptability").
  void switch_mode(core::Mode m, Done done = {});

  void pull_now(Done done = {});
  void push_now(Done done = {});

  /// cm.killImage().
  void shutdown(Done done = {});

  // ---- accessors / metrics ----------------------------------------------

  [[nodiscard]] TravelAgentView& view() noexcept { return view_; }
  [[nodiscard]] const TravelAgentView& view() const noexcept { return view_; }
  [[nodiscard]] core::CacheManager& cache() noexcept { return cm_; }
  [[nodiscard]] const core::CacheManager& cache() const noexcept {
    return cm_;
  }

  /// Completed reserve_once latencies (simulated microseconds).
  [[nodiscard]] const sim::SampleSet& op_latencies() const noexcept {
    return op_latencies_;
  }
  [[nodiscard]] std::size_t ops_completed() const noexcept {
    return ops_completed_;
  }

  /// Probe invoked at the moment the work executes (after any
  /// revalidation, before confirm_tickets) — benches use it to sample
  /// the directory's data-quality metric per method call.
  void set_op_probe(std::function<void(std::size_t op_index, sim::Time at)> p) {
    op_probe_ = std::move(p);
  }

 private:
  net::Fabric& fabric_;
  Config cfg_;
  TravelAgentView view_;
  core::CacheManager cm_;

  sim::SampleSet op_latencies_;
  std::size_t ops_completed_ = 0;
  std::size_t op_index_ = 0;
  std::function<void(std::size_t, sim::Time)> op_probe_;
};

}  // namespace flecc::airline
