// Reservation clients (paper §5.1): "reservation clients of different
// capabilities (viewers and buyers)".
//
// A viewer browses flight availability and tolerates stale data (weak
// consistency, read-only intent); a buyer needs fresh seat counts to
// make an educated decision (fetch-fresh pulls or strong mode). A
// viewer may upgrade to a buyer at any point — the client switches the
// travel agent's consistency level at run time, exactly the scenario
// the paper's introduction motivates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "airline/travel_agent.hpp"

namespace flecc::airline {

enum class ClientKind : std::uint8_t { kViewer, kBuyer };

const char* to_string(ClientKind k) noexcept;

class ReservationClient {
 public:
  struct Config {
    ClientKind kind = ClientKind::kViewer;
    FlightNumber flight = 0;
    /// Total requests this client issues against its travel agent.
    std::size_t requests = 10;
    /// Seats per purchase request (buyers only).
    std::int64_t seats_per_purchase = 1;
    /// If set, the client upgrades viewer → buyer before this request
    /// index, switching the agent to strong mode.
    std::optional<std::size_t> upgrade_at;
    /// Consistency used while buying: strong mode (default) or weak
    /// with fetch-fresh pulls.
    bool buy_in_strong_mode = true;
  };

  using Done = std::function<void()>;

  /// The client drives (and does not own) the given travel agent.
  ReservationClient(TravelAgent& agent, Config cfg);

  /// Issue all requests asynchronously; `done` fires after the last
  /// request completes. Call once.
  void run(Done done = {});

  // ---- outcomes -------------------------------------------------------

  [[nodiscard]] ClientKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t browses() const noexcept { return browses_; }
  [[nodiscard]] std::size_t purchase_attempts() const noexcept {
    return purchase_attempts_;
  }
  [[nodiscard]] std::int64_t seats_bought() const noexcept {
    return seats_bought_;
  }
  [[nodiscard]] std::size_t refused_purchases() const noexcept {
    return refused_purchases_;
  }
  /// Availability observed by the most recent browse.
  [[nodiscard]] std::int64_t last_observed_availability() const noexcept {
    return last_observed_availability_;
  }
  [[nodiscard]] bool upgraded() const noexcept { return upgraded_; }

 private:
  void browse_once(Done done);
  void buy_once(Done done);
  void upgrade(Done done);

  TravelAgent& agent_;
  Config cfg_;
  ClientKind kind_;
  bool upgraded_ = false;
  bool started_ = false;

  std::size_t browses_ = 0;
  std::size_t purchase_attempts_ = 0;
  std::int64_t seats_bought_ = 0;
  std::size_t refused_purchases_ = 0;
  std::int64_t last_observed_availability_ = 0;
};

}  // namespace flecc::airline
