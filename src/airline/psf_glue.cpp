#include "airline/psf_glue.hpp"

#include <utility>

namespace flecc::airline {

TravelAgentInstance::TravelAgentInstance(net::Fabric& fabric,
                                         net::NodeId node, net::PortId port,
                                         net::Address directory,
                                         TravelAgent::Config cfg)
    : psf::ComponentInstance("air.TravelAgent", node),
      agent_(fabric, net::Address{node, port}, directory, std::move(cfg)) {}

void TravelAgentInstance::on_start() { agent_.init(); }

void TravelAgentInstance::on_stop() {
  if (agent_.cache().alive()) agent_.shutdown();
}

void register_travel_agent_factory(psf::Deployer& deployer,
                                   net::Fabric& fabric,
                                   TravelAgentFactoryOptions options) {
  // The factory hands out consecutive ports so multiple agents can land
  // on the same node without address collisions.
  auto next_port = std::make_shared<net::PortId>(options.first_port);
  deployer.register_factory(
      "air.TravelAgent",
      [&fabric, options, next_port](net::NodeId node)
          -> std::unique_ptr<psf::ComponentInstance> {
        TravelAgent::Config cfg;
        cfg.flights = options.flights;
        cfg.mode = options.mode;
        cfg.push_trigger = options.push_trigger;
        cfg.pull_trigger = options.pull_trigger;
        cfg.validity_trigger = options.validity_trigger;
        return std::make_unique<TravelAgentInstance>(
            fabric, node, (*next_port)++, options.directory, std::move(cfg));
      });
}

}  // namespace flecc::airline
