// Glue between the PSF deployment machinery and the airline/Flecc
// stack: a ComponentInstance that hosts a live TravelAgent (view +
// cache manager), and a factory registration so psf::Deployer can
// instantiate planned "air.TravelAgent" placements onto a Fabric — the
// full Figure-1 story: PSF plans and deploys the view, Flecc keeps it
// coherent.
#pragma once

#include <memory>
#include <vector>

#include "airline/travel_agent.hpp"
#include "psf/deployer.hpp"

namespace flecc::airline {

/// A deployed travel agent. Created stopped-but-constructed; start()
/// issues initImage, stop() issues killImage (both asynchronous — drive
/// the fabric afterwards).
class TravelAgentInstance : public psf::ComponentInstance {
 public:
  TravelAgentInstance(net::Fabric& fabric, net::NodeId node,
                      net::PortId port, net::Address directory,
                      TravelAgent::Config cfg);

  [[nodiscard]] TravelAgent& agent() noexcept { return agent_; }
  [[nodiscard]] const TravelAgent& agent() const noexcept { return agent_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  TravelAgent agent_;
};

/// Factory configuration for travel-agent placements.
struct TravelAgentFactoryOptions {
  net::Address directory;
  std::vector<FlightNumber> flights;
  core::Mode mode = core::Mode::kWeak;
  std::string push_trigger;
  std::string pull_trigger;
  std::string validity_trigger;
  /// Port assigned to the first instance; subsequent instances on any
  /// node get consecutive ports (so several agents may share a node).
  net::PortId first_port = 100;
};

/// Register a factory for component type "air.TravelAgent" (the name
/// used by the §5 scenarios) that instantiates live agents on `fabric`.
void register_travel_agent_factory(psf::Deployer& deployer,
                                   net::Fabric& fabric,
                                   TravelAgentFactoryOptions options);

}  // namespace flecc::airline
