#include "airline/travel_agent.hpp"

#include <utility>

#include "sim/script.hpp"

namespace flecc::airline {

namespace {
core::CacheManager::Config make_cm_config(const TravelAgent::Config& cfg,
                                          const TravelAgentView& view) {
  core::CacheManager::Config out;
  out.view_name = cfg.name;
  out.properties = view.properties();
  out.mode = cfg.mode;
  out.push_trigger = cfg.push_trigger;
  out.pull_trigger = cfg.pull_trigger;
  out.validity_trigger = cfg.validity_trigger;
  out.trigger_poll = cfg.trigger_poll;
  out.retry = cfg.retry;
  out.heartbeat_interval = cfg.heartbeat_interval;
  out.heartbeat_miss_limit = cfg.heartbeat_miss_limit;
  out.pool_messages = cfg.pool_messages;
  out.write_buffer_ops = cfg.write_buffer_ops;
  out.piggyback_heartbeats = cfg.piggyback_heartbeats;
  out.breaker_threshold = cfg.breaker_threshold;
  out.breaker_open_timeout = cfg.breaker_open_timeout;
  out.degrade_on_overload = cfg.degrade_on_overload;
  out.trace = cfg.trace;
  out.journal = cfg.journal;
  out.await_migration = cfg.await_migration;
  out.on_moved = cfg.on_moved;
  return out;
}
}  // namespace

TravelAgent::TravelAgent(net::Fabric& fabric, net::Address self,
                         net::Address directory, Config cfg)
    : fabric_(fabric),
      cfg_(std::move(cfg)),
      view_(cfg_.flights),
      cm_(fabric, self, directory, view_, make_cm_config(cfg_, view_)) {}

void TravelAgent::init(Done done) { cm_.init_image(std::move(done)); }

void TravelAgent::reserve_once(FlightNumber flight, std::int64_t seats,
                               bool pull_first, Done done) {
  const sim::Time started = fabric_.now();
  const std::size_t index = op_index_++;

  auto work_phase = [this, flight, seats, started, index,
                     done = std::move(done)]() mutable {
    cm_.start_use_image([this, flight, seats, started, index,
                         done = std::move(done)]() mutable {
      if (op_probe_) op_probe_(index, fabric_.now());
      view_.confirm_tickets(flight, seats);
      auto finish = [this, started, done = std::move(done)] {
        cm_.end_use_image(/*modified=*/true);
        op_latencies_.add(static_cast<double>(fabric_.now() - started));
        ++ops_completed_;
        if (done) done();
      };
      if (cfg_.think_time > 0) {
        fabric_.schedule(cm_.address(), cfg_.think_time, std::move(finish));
      } else {
        finish();
      }
    });
  };

  if (pull_first && cm_.mode() == core::Mode::kWeak) {
    cm_.pull_image(std::move(work_phase));
  } else {
    work_phase();
  }
}

void TravelAgent::run_reservation_loop(std::size_t iterations,
                                       FlightNumber flight,
                                       std::int64_t seats, bool pull_first,
                                       Done done) {
  sim::Script script;
  script.repeat(iterations,
                [this, flight, seats, pull_first](std::size_t, sim::Script::Next next) {
                  reserve_once(flight, seats, pull_first, std::move(next));
                });
  std::move(script).run(std::move(done));
}

void TravelAgent::switch_mode(core::Mode m, Done done) {
  cm_.set_mode(m, std::move(done));
}

void TravelAgent::pull_now(Done done) { cm_.pull_image(std::move(done)); }
void TravelAgent::push_now(Done done) { cm_.push_image(std::move(done)); }

void TravelAgent::shutdown(Done done) { cm_.kill_image(std::move(done)); }

}  // namespace flecc::airline
