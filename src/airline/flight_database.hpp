// The main flight database — the paper's "original component".
//
// FlightDatabase holds authoritative seat state; FlightDatabaseAdapter
// is its Flecc PrimaryAdapter: it extracts absolute seat state
// ("f.<n>.cap", "f.<n>.res") and merges either reservation *deltas*
// ("d.<n>", clamped at capacity — the application-specific conflict
// resolution of §4.1) or absolute monotone state (used by the
// hierarchical extension's gossip).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "airline/flight.hpp"
#include "core/adapters.hpp"
#include "props/property.hpp"
#include "trigger/env.hpp"

namespace flecc::airline {

/// Name of the shared-data property ("Flights" in §5.2).
inline constexpr const char* kFlightsProperty = "Flights";

/// Image key helpers shared by the primary and view adapters.
std::string key_capacity(FlightNumber n);
std::string key_reserved(FlightNumber n);
std::string key_delta(FlightNumber n);

class FlightDatabase {
 public:
  void add_flight(Flight f);

  /// `count` flights numbered consecutively from `first`, all with the
  /// same capacity/price.
  static FlightDatabase uniform(FlightNumber first, std::size_t count,
                                std::int64_t capacity, double price = 100.0);

  [[nodiscard]] const Flight* find(FlightNumber n) const;
  [[nodiscard]] std::size_t size() const noexcept { return flights_.size(); }
  [[nodiscard]] std::vector<FlightNumber> flight_numbers() const;

  /// Reserve up to `count` seats; returns the accepted count (clamped at
  /// capacity — requests beyond capacity are partially or fully
  /// rejected, and the shortfall is tallied).
  std::int64_t reserve(FlightNumber n, std::int64_t count);

  /// Force the reserved count to at least `reserved` (monotone merge for
  /// state-based synchronization). Returns false if the flight is
  /// unknown.
  bool raise_reserved(FlightNumber n, std::int64_t reserved);

  [[nodiscard]] std::int64_t available(FlightNumber n) const;
  [[nodiscard]] std::int64_t total_reserved() const;
  [[nodiscard]] std::uint64_t rejected_seats() const noexcept {
    return rejected_seats_;
  }

  [[nodiscard]] auto begin() const { return flights_.begin(); }
  [[nodiscard]] auto end() const { return flights_.end(); }

 private:
  std::map<FlightNumber, Flight> flights_;
  std::uint64_t rejected_seats_ = 0;
};

class FlightDatabaseAdapter : public core::PrimaryAdapter {
 public:
  explicit FlightDatabaseAdapter(FlightDatabase& db);

  [[nodiscard]] core::ObjectImage extract_from_object(
      const props::PropertySet& vpl) const override;
  void merge_into_object(const core::ObjectImage& image,
                         const props::PropertySet& vpl) override;
  [[nodiscard]] const trigger::Env* variables() const override {
    return &env_;
  }
  [[nodiscard]] props::PropertySet data_properties() const override;

  [[nodiscard]] const FlightDatabase& database() const noexcept { return db_; }

 private:
  /// Exposes "_total_reserved" and "avail.<n>" to validity triggers.
  class DbEnv : public trigger::Env {
   public:
    explicit DbEnv(const FlightDatabase& db) : db_(db) {}
    [[nodiscard]] std::optional<double> lookup(
        const std::string& name) const override;

   private:
    const FlightDatabase& db_;
  };

  FlightDatabase& db_;
  DbEnv env_;
};

}  // namespace flecc::airline
