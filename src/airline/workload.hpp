// Workload construction for the paper's evaluation scenarios (§5.2).
#pragma once

#include <cstddef>
#include <vector>

#include "airline/flight.hpp"

namespace flecc::airline {

/// Flight assignment for a fleet of agents partitioned into conflicting
/// groups: agents within a group serve the *same* flights (their
/// "Flights" properties intersect ⇒ dynConfl = 1); agents in different
/// groups serve disjoint flights (dynConfl = 0). This realizes the
/// Figure-4 sweep "the number of travel agents that serve similar
/// flights is initially 10, and increases in increments of 10 up to
/// 100".
struct GroupAssignment {
  /// agent index → flights served.
  std::vector<std::vector<FlightNumber>> agent_flights;
  /// agent index → group index.
  std::vector<std::size_t> agent_group;
  std::size_t group_count = 0;
  /// Total distinct flights across all groups.
  std::size_t flight_count = 0;
};

/// Partition `n_agents` into groups of `group_size` (the last group may
/// be smaller); each group serves `flights_per_group` flights numbered
/// consecutively from `base`.
GroupAssignment assign_flight_groups(std::size_t n_agents,
                                     std::size_t group_size,
                                     std::size_t flights_per_group,
                                     FlightNumber base = 100);

}  // namespace flecc::airline
