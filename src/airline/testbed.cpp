#include "airline/testbed.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "baselines/flecc_client.hpp"
#include "obs/telemetry.hpp"

namespace flecc::airline {

const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kFlecc: return "flecc";
    case Protocol::kTimeSharing: return "time-sharing";
    case Protocol::kMulticast: return "multicast";
  }
  return "?";
}

namespace {

constexpr net::PortId kServicePort = 1;

// Role buffer sizing: the directory and the fabric see every agent's
// traffic, so they get much deeper rings than the per-agent default
// (4096). At 100 agents the whole recorder stays around 30 MB.
constexpr std::size_t kDirTraceCapacity = std::size_t{1} << 17;
constexpr std::size_t kFabricTraceCapacity = std::size_t{1} << 15;

net::Topology make_lan(std::size_t n_agents, sim::Duration latency,
                       std::vector<net::NodeId>& hosts) {
  net::LinkSpec link;
  link.latency = latency;
  // +1 host for the database/coordinator node.
  return net::Topology::lan(n_agents + 1, link, &hosts);
}

FlightDatabase make_db(const GroupAssignment& assignment,
                       std::int64_t capacity, FlightNumber base = 100) {
  return FlightDatabase::uniform(
      base, assignment.flight_count, capacity);
}

}  // namespace

// ---- FleccTestbed -----------------------------------------------------------

FleccTestbed::FleccTestbed(TestbedOptions opts)
    : opts_(std::move(opts)),
      assignment_(assign_flight_groups(opts_.n_agents, opts_.group_size,
                                       opts_.flights_per_group)) {
  // Spare hosts sit idle between the agents and the database host until
  // spawn_destination() places a migration target on one.
  auto topo = make_lan(opts_.n_agents + opts_.spare_hosts, opts_.lan_latency,
                       hosts_);
  fabric_ = std::make_unique<net::SimFabric>(sim_, std::move(topo),
                                             opts_.fabric_cfg);
  if (opts_.batch_fabric) {
    batch_ = std::make_unique<net::BatchFabric>(*fabric_, opts_.batch_cfg);
  }
  net::Fabric& proto = protocol_fabric();

  db_ = make_db(assignment_, opts_.capacity);
  adapter_ = std::make_unique<FlightDatabaseAdapter>(db_);

  if (opts_.trace != nullptr) {
    fabric_->set_trace_buffer(
        opts_.trace->make_buffer("fabric", kFabricTraceCapacity));
    opts_.dir_cfg.trace = opts_.trace->make_buffer("dm", kDirTraceCapacity);
  }

  if (opts_.durable_directory && opts_.dir_cfg.durability == nullptr) {
    durability_ = std::make_unique<core::MemoryDurabilityStore>(
        opts_.checkpoint_flush_every);
    opts_.dir_cfg.durability = durability_.get();
  }
  opts_.dir_cfg.pool_messages = opts_.pool_messages;

  dir_addr_ = net::Address{hosts_.back(), kServicePort};
  const net::Address dir_addr = dir_addr_;
  directory_ = std::make_unique<core::DirectoryManager>(proto, dir_addr,
                                                        *adapter_,
                                                        opts_.dir_cfg);

  if (opts_.cm_journal) {
    cm_journal_stores_.reserve(opts_.n_agents);
    for (std::size_t i = 0; i < opts_.n_agents; ++i) {
      cm_journal_stores_.push_back(
          std::make_unique<core::MemoryDurabilityStore>(
              opts_.cm_journal_flush_every));
    }
  }
  for (std::size_t i = 0; i < opts_.n_agents; ++i) {
    const net::Address addr{hosts_[i], kServicePort};
    agents_.push_back(std::make_unique<TravelAgent>(proto, addr, dir_addr,
                                                    agent_config(i)));
  }
  crashed_.assign(agents_.size(), false);
  spares_.resize(opts_.spare_hosts);
  spare_journals_.resize(opts_.spare_hosts);

  if (opts_.telemetry != nullptr) {
    wire_telemetry();
    schedule_telemetry_tick();
  }
}

TravelAgent::Config FleccTestbed::agent_config(std::size_t i) {
  TravelAgent::Config cfg;
  if (opts_.trace != nullptr) {
    cfg.trace = opts_.trace->make_buffer("cm." + std::to_string(i));
  }
  cfg.flights = assignment_.agent_flights[i];
  cfg.mode = opts_.mode;
  cfg.push_trigger = opts_.push_trigger;
  cfg.pull_trigger = opts_.pull_trigger;
  cfg.validity_trigger = opts_.validity_trigger;
  cfg.think_time = opts_.think_time;
  cfg.trigger_poll = opts_.trigger_poll;
  cfg.retry = opts_.retry;
  cfg.heartbeat_interval = opts_.heartbeat_interval;
  cfg.heartbeat_miss_limit = opts_.heartbeat_miss_limit;
  cfg.pool_messages = opts_.pool_messages;
  cfg.write_buffer_ops = opts_.write_buffer_ops;
  cfg.piggyback_heartbeats = opts_.piggyback_heartbeats;
  cfg.breaker_threshold = opts_.breaker_threshold;
  cfg.breaker_open_timeout = opts_.breaker_open_timeout;
  cfg.degrade_on_overload = opts_.degrade_on_overload;
  if (!cm_journal_stores_.empty()) {
    cfg.journal = cm_journal_stores_[i].get();
  }
  return cfg;
}

FleccTestbed::~FleccTestbed() {
  if (opts_.telemetry != nullptr) {
    opts_.telemetry->registry().remove_collector(telemetry_token_);
  }
}

void FleccTestbed::wire_telemetry() {
  // One read-only collector over the whole deployment. It captures
  // `this` (agents are replaced by restart_agent(), so per-agent
  // pointers would dangle) and runs on the sim thread inside
  // TelemetryHub::tick — it must never mutate protocol state.
  telemetry_token_ = opts_.telemetry->registry().add_collector(
      [this](obs::SampleFrame& f) {
    if (directory_ != nullptr && !dir_crashed_) {
      f.counters(directory_->stats(), "dm.");
      f.gauge("dm.views.registered",
              static_cast<double>(directory_->registered_count()));
      f.gauge("dm.migrations.inflight",
              static_cast<double>(directory_->migrations_inflight()));
      f.gauge("recovery.generation",
              static_cast<double>(directory_->generation()));
      f.gauge("health.recovery.rebuilding",
              directory_->rebuilding() ? 1.0 : 0.0);
    }
    f.gauge("health.dm.down", dir_crashed_ ? 1.0 : 0.0);
    f.counters(fabric_->counters(), "net.");
    if (batch_ != nullptr) f.counters(batch_->counters(), "logical.");

    // Cache-manager rollup plus per-view dimensional series. Crashed
    // agents keep contributing their frozen counters to the aggregate
    // (the object survives for post-mortem) but drop their per-view
    // series, so view-scoped alerts clear when a view dies; an agent
    // restart resets its counters, which the registry treats as a
    // counter reset.
    sim::CounterSet cm;
    double breakers_open = 0.0;
    double degraded = 0.0;
    const auto fold = [&](const TravelAgent& a) {
      for (const auto& [name, value] : a.cache().stats().all()) {
        cm.inc(name, value);
      }
      if (a.cache().breaker_state() == core::flow::BreakerState::kOpen) {
        breakers_open += 1.0;
      }
      if (a.cache().degraded()) degraded += 1.0;
    };
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      fold(*agents_[i]);
      if (crashed_[i]) continue;
      const TravelAgent& a = *agents_[i];
      obs::TsLabels view{{"view", std::to_string(i)}};
      f.gauge("view.queued_ops",
              static_cast<double>(a.cache().queued_ops()), view);
      f.gauge("view.breaker",
              static_cast<double>(a.cache().breaker_state()), view);
      f.counter("view.ops_completed",
                static_cast<double>(a.ops_completed()), view);
      f.counter("view.confirmed",
                static_cast<double>(a.view().confirmed_total()), view);
      f.stat("view.op_latency_us", a.op_latencies(), view);
    }
    for (const auto& spare : spares_) {
      if (spare != nullptr) fold(*spare);
    }
    f.counters(cm, "cm.");
    f.gauge("health.breaker.open", breakers_open);
    f.gauge("health.cm.degraded", degraded);

    // Per-object (flight) hot-set series, plus database truth.
    for (const auto& [number, flight] : db_) {
      f.counter("airline.flight.reserved",
                static_cast<double>(flight.reserved),
                {{"flight", std::to_string(number)}});
    }
    f.gauge("airline.db.total_reserved",
            static_cast<double>(db_.total_reserved()));
    f.counter("airline.db.rejected_seats",
              static_cast<double>(db_.rejected_seats()));
  });
}

void FleccTestbed::schedule_telemetry_tick() {
  sim::Duration interval = opts_.telemetry->options().interval;
  if (interval <= 0) interval = sim::msec(250);
  // Daemon: the sampler must not keep run() alive once the protocol
  // goes idle, and a pure read of protocol state cannot perturb the
  // event order either way — that is the telemetry-never-perturbs
  // guarantee.
  sim_.schedule_after(interval,
                      [this] {
                        opts_.telemetry->tick(sim_.now());
                        schedule_telemetry_tick();
                      },
                      /*daemon=*/true);
}

void FleccTestbed::init_all_agents() {
  for (auto& agent : agents_) agent->init();
  sim_.run();
}

void FleccTestbed::crash_agent(std::size_t i) {
  if (crashed_.at(i)) return;
  crashed_[i] = true;
  // Silent crash: the endpoint disappears mid-protocol and all local
  // activity (timers, retransmissions, heartbeats) stops. The directory
  // learns about it only through liveness eviction or round timeouts.
  agents_[i]->cache().halt();
  if (!cm_journal_stores_.empty()) {
    // The host died with the process: unflushed journal appends are gone.
    cm_journal_stores_[i]->crash();
  }
}

TravelAgent& FleccTestbed::restart_agent(std::size_t i) {
  if (!crashed_.at(i) || cm_journal_stores_.empty()) {
    return *agents_.at(i);
  }
  // The view-level sales counters die with the old object; fold them
  // into the retired total so database accounting stays exact.
  retired_confirmed_ += agents_[i]->view().net_sold();
  const net::Address addr{hosts_[i], kServicePort};
  // Destroy the old (halted) agent first: its endpoint is already
  // unbound, but the address must be free before the new bind.
  agents_[i].reset();
  agents_[i] = std::make_unique<TravelAgent>(protocol_fabric(), addr,
                                             dir_addr_, agent_config(i));
  crashed_[i] = false;
  return *agents_[i];
}

TravelAgent& FleccTestbed::spawn_destination(std::size_t src,
                                             std::size_t spare) {
  if (spares_.at(spare) != nullptr) {
    retired_confirmed_ += spares_[spare]->view().net_sold();
    spares_[spare].reset();
  }
  TravelAgent::Config cfg = agent_config(src);
  if (opts_.trace != nullptr) {
    cfg.trace = opts_.trace->make_buffer("cm.spare." + std::to_string(spare));
  }
  cfg.await_migration = true;
  if (opts_.cm_journal) {
    spare_journals_[spare] = std::make_unique<core::MemoryDurabilityStore>(
        opts_.cm_journal_flush_every);
    cfg.journal = spare_journals_[spare].get();
  } else {
    cfg.journal = nullptr;
  }
  const net::Address addr{hosts_[opts_.n_agents + spare], kServicePort};
  spares_[spare] = std::make_unique<TravelAgent>(protocol_fabric(), addr,
                                                 dir_addr_, std::move(cfg));
  return *spares_[spare];
}

void FleccTestbed::crash_spare(std::size_t i) {
  if (spares_.at(i) == nullptr) return;
  spares_[i]->cache().halt();
  if (spare_journals_[i] != nullptr) spare_journals_[i]->crash();
}

bool FleccTestbed::migrate_agent(std::size_t src, std::size_t spare) {
  if (directory_ == nullptr || spares_.at(spare) == nullptr) return false;
  return directory_->begin_migration(agents_.at(src)->cache().id(),
                                     spares_[spare]->cache().address());
}

void FleccTestbed::crash_directory() {
  if (dir_crashed_ || directory_ == nullptr) return;
  dir_crashed_ = true;
  // Destroying the manager unbinds its endpoint and cancels its timers:
  // every in-memory table dies, in-flight messages to it vanish, and
  // only the durability store survives — minus its unflushed WAL tail.
  directory_.reset();
  if (durability_ != nullptr) durability_->crash();
}

void FleccTestbed::restart_directory() {
  if (!dir_crashed_) return;
  dir_crashed_ = false;
  // The new incarnation reads the surviving checkpoint (generation
  // superblock + durable WAL prefix), bumps the generation, and probes
  // the checkpointed views; opts_.dir_cfg still carries the durability
  // pointer and the "dm" trace buffer, so the trace spans both lives.
  directory_ = std::make_unique<core::DirectoryManager>(protocol_fabric(),
                                                        dir_addr_, *adapter_,
                                                        opts_.dir_cfg);
}

void FleccTestbed::partition_agents(
    const std::vector<std::size_t>& agent_indices) {
  std::vector<net::Address> cut;
  cut.reserve(agent_indices.size());
  for (const std::size_t i : agent_indices) {
    cut.push_back(agents_.at(i)->cache().address());
  }
  std::vector<net::Address> rest;
  rest.push_back(directory_->address());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (std::find(agent_indices.begin(), agent_indices.end(), i) ==
        agent_indices.end()) {
      rest.push_back(agents_[i]->cache().address());
    }
  }
  fabric_->partition(cut, rest);
}

// ---- CoherenceTestbed --------------------------------------------------------

CoherenceTestbed::CoherenceTestbed(Protocol protocol, TestbedOptions opts)
    : protocol_(protocol),
      opts_(std::move(opts)),
      assignment_(assign_flight_groups(opts_.n_agents, opts_.group_size,
                                       opts_.flights_per_group)) {
  std::vector<net::NodeId> hosts;
  auto topo = make_lan(opts_.n_agents, opts_.lan_latency, hosts);
  fabric_ = std::make_unique<net::SimFabric>(sim_, std::move(topo),
                                             opts_.fabric_cfg);
  if (opts_.batch_fabric) {
    batch_ = std::make_unique<net::BatchFabric>(*fabric_, opts_.batch_cfg);
  }
  // Every protocol (Flecc and baselines) rides the same fabric stack so
  // the Figure-4 comparison stays apples-to-apples.
  net::Fabric& proto =
      batch_ != nullptr ? static_cast<net::Fabric&>(*batch_) : *fabric_;

  db_ = make_db(assignment_, opts_.capacity);
  adapter_ = std::make_unique<FlightDatabaseAdapter>(db_);

  if (opts_.trace != nullptr) {
    fabric_->set_trace_buffer(
        opts_.trace->make_buffer("fabric", kFabricTraceCapacity));
    opts_.dir_cfg.trace = opts_.trace->make_buffer("dm", kDirTraceCapacity);
  }
  opts_.dir_cfg.pool_messages = opts_.pool_messages;

  const net::Address coord_addr{hosts.back(), kServicePort};
  switch (protocol_) {
    case Protocol::kFlecc:
      directory_ = std::make_unique<core::DirectoryManager>(
          proto, coord_addr, *adapter_, opts_.dir_cfg);
      break;
    case Protocol::kTimeSharing:
      ts_coord_ = std::make_unique<baselines::TimeSharingCoordinator>(
          proto, coord_addr, *adapter_);
      break;
    case Protocol::kMulticast:
      mc_dir_ = std::make_unique<baselines::MulticastDirectory>(
          proto, coord_addr, *adapter_);
      break;
  }

  for (std::size_t i = 0; i < opts_.n_agents; ++i) {
    auto view =
        std::make_unique<TravelAgentView>(assignment_.agent_flights[i]);
    const net::Address addr{hosts[i], kServicePort};
    switch (protocol_) {
      case Protocol::kFlecc: {
        core::CacheManager::Config cfg;
        cfg.view_name = "air.TravelAgent";
        cfg.properties = view->properties();
        cfg.mode = opts_.mode;
        cfg.push_trigger = opts_.push_trigger;
        cfg.pull_trigger = opts_.pull_trigger;
        cfg.validity_trigger = opts_.validity_trigger;
        cfg.trigger_poll = opts_.trigger_poll;
        cfg.retry = opts_.retry;
        cfg.heartbeat_interval = opts_.heartbeat_interval;
        cfg.heartbeat_miss_limit = opts_.heartbeat_miss_limit;
        cfg.pool_messages = opts_.pool_messages;
        cfg.write_buffer_ops = opts_.write_buffer_ops;
        cfg.piggyback_heartbeats = opts_.piggyback_heartbeats;
        cfg.breaker_threshold = opts_.breaker_threshold;
        cfg.breaker_open_timeout = opts_.breaker_open_timeout;
        cfg.degrade_on_overload = opts_.degrade_on_overload;
        if (opts_.trace != nullptr) {
          cfg.trace = opts_.trace->make_buffer("cm." + std::to_string(i));
        }
        clients_.push_back(std::make_unique<baselines::FleccClient>(
            proto, addr, coord_addr, *view, std::move(cfg)));
        break;
      }
      case Protocol::kTimeSharing:
        clients_.push_back(std::make_unique<baselines::TimeSharingClient>(
            proto, addr, coord_addr, *view, "air.TravelAgent",
            view->properties()));
        break;
      case Protocol::kMulticast:
        clients_.push_back(std::make_unique<baselines::MulticastClient>(
            proto, addr, coord_addr, *view, "air.TravelAgent",
            view->properties()));
        break;
    }
    views_.push_back(std::move(view));
  }

  if (opts_.telemetry != nullptr) {
    wire_telemetry();
    schedule_telemetry_tick();
  }
}

CoherenceTestbed::~CoherenceTestbed() {
  if (opts_.telemetry != nullptr) {
    opts_.telemetry->registry().remove_collector(telemetry_token_);
  }
}

void CoherenceTestbed::wire_telemetry() {
  telemetry_token_ = opts_.telemetry->registry().add_collector(
      [this](obs::SampleFrame& f) {
    f.counters(fabric_->counters(), "net.");
    if (batch_ != nullptr) f.counters(batch_->counters(), "logical.");
    if (directory_ != nullptr) {
      f.counters(directory_->stats(), "dm.");
      f.gauge("dm.views.registered",
              static_cast<double>(directory_->registered_count()));
    }
    for (std::size_t i = 0; i < views_.size(); ++i) {
      f.counter("view.confirmed",
                static_cast<double>(views_[i]->confirmed_total()),
                {{"view", std::to_string(i)}});
    }
    for (const auto& [number, flight] : db_) {
      f.counter("airline.flight.reserved",
                static_cast<double>(flight.reserved),
                {{"flight", std::to_string(number)}});
    }
    f.gauge("airline.db.total_reserved",
            static_cast<double>(db_.total_reserved()));
    f.counter("airline.db.rejected_seats",
              static_cast<double>(db_.rejected_seats()));
  });
}

void CoherenceTestbed::schedule_telemetry_tick() {
  sim::Duration interval = opts_.telemetry->options().interval;
  if (interval <= 0) interval = sim::msec(250);
  sim_.schedule_after(interval,
                      [this] {
                        opts_.telemetry->tick(sim_.now());
                        schedule_telemetry_tick();
                      },
                      /*daemon=*/true);
}

void CoherenceTestbed::connect_all() {
  for (auto& client : clients_) client->connect({});
  sim_.run();
}

}  // namespace flecc::airline
