#include "airline/testbed.hpp"

#include <utility>

#include "baselines/flecc_client.hpp"

namespace flecc::airline {

const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kFlecc: return "flecc";
    case Protocol::kTimeSharing: return "time-sharing";
    case Protocol::kMulticast: return "multicast";
  }
  return "?";
}

namespace {

constexpr net::PortId kServicePort = 1;

net::Topology make_lan(std::size_t n_agents, sim::Duration latency,
                       std::vector<net::NodeId>& hosts) {
  net::LinkSpec link;
  link.latency = latency;
  // +1 host for the database/coordinator node.
  return net::Topology::lan(n_agents + 1, link, &hosts);
}

FlightDatabase make_db(const GroupAssignment& assignment,
                       std::int64_t capacity, FlightNumber base = 100) {
  return FlightDatabase::uniform(
      base, assignment.flight_count, capacity);
}

}  // namespace

// ---- FleccTestbed -----------------------------------------------------------

FleccTestbed::FleccTestbed(TestbedOptions opts)
    : opts_(std::move(opts)),
      assignment_(assign_flight_groups(opts_.n_agents, opts_.group_size,
                                       opts_.flights_per_group)) {
  std::vector<net::NodeId> hosts;
  auto topo = make_lan(opts_.n_agents, opts_.lan_latency, hosts);
  fabric_ = std::make_unique<net::SimFabric>(sim_, std::move(topo));

  db_ = make_db(assignment_, opts_.capacity);
  adapter_ = std::make_unique<FlightDatabaseAdapter>(db_);

  const net::Address dir_addr{hosts.back(), kServicePort};
  directory_ = std::make_unique<core::DirectoryManager>(*fabric_, dir_addr,
                                                        *adapter_,
                                                        opts_.dir_cfg);

  for (std::size_t i = 0; i < opts_.n_agents; ++i) {
    TravelAgent::Config cfg;
    cfg.flights = assignment_.agent_flights[i];
    cfg.mode = opts_.mode;
    cfg.push_trigger = opts_.push_trigger;
    cfg.pull_trigger = opts_.pull_trigger;
    cfg.validity_trigger = opts_.validity_trigger;
    cfg.think_time = opts_.think_time;
    cfg.trigger_poll = opts_.trigger_poll;
    const net::Address addr{hosts[i], kServicePort};
    agents_.push_back(
        std::make_unique<TravelAgent>(*fabric_, addr, dir_addr, std::move(cfg)));
  }
}

FleccTestbed::~FleccTestbed() = default;

void FleccTestbed::init_all_agents() {
  for (auto& agent : agents_) agent->init();
  sim_.run();
}

// ---- CoherenceTestbed --------------------------------------------------------

CoherenceTestbed::CoherenceTestbed(Protocol protocol, TestbedOptions opts)
    : protocol_(protocol),
      opts_(std::move(opts)),
      assignment_(assign_flight_groups(opts_.n_agents, opts_.group_size,
                                       opts_.flights_per_group)) {
  std::vector<net::NodeId> hosts;
  auto topo = make_lan(opts_.n_agents, opts_.lan_latency, hosts);
  fabric_ = std::make_unique<net::SimFabric>(sim_, std::move(topo));

  db_ = make_db(assignment_, opts_.capacity);
  adapter_ = std::make_unique<FlightDatabaseAdapter>(db_);

  const net::Address coord_addr{hosts.back(), kServicePort};
  switch (protocol_) {
    case Protocol::kFlecc:
      directory_ = std::make_unique<core::DirectoryManager>(
          *fabric_, coord_addr, *adapter_, opts_.dir_cfg);
      break;
    case Protocol::kTimeSharing:
      ts_coord_ = std::make_unique<baselines::TimeSharingCoordinator>(
          *fabric_, coord_addr, *adapter_);
      break;
    case Protocol::kMulticast:
      mc_dir_ = std::make_unique<baselines::MulticastDirectory>(
          *fabric_, coord_addr, *adapter_);
      break;
  }

  for (std::size_t i = 0; i < opts_.n_agents; ++i) {
    auto view =
        std::make_unique<TravelAgentView>(assignment_.agent_flights[i]);
    const net::Address addr{hosts[i], kServicePort};
    switch (protocol_) {
      case Protocol::kFlecc: {
        core::CacheManager::Config cfg;
        cfg.view_name = "air.TravelAgent";
        cfg.properties = view->properties();
        cfg.mode = opts_.mode;
        cfg.push_trigger = opts_.push_trigger;
        cfg.pull_trigger = opts_.pull_trigger;
        cfg.validity_trigger = opts_.validity_trigger;
        cfg.trigger_poll = opts_.trigger_poll;
        clients_.push_back(std::make_unique<baselines::FleccClient>(
            *fabric_, addr, coord_addr, *view, std::move(cfg)));
        break;
      }
      case Protocol::kTimeSharing:
        clients_.push_back(std::make_unique<baselines::TimeSharingClient>(
            *fabric_, addr, coord_addr, *view, "air.TravelAgent",
            view->properties()));
        break;
      case Protocol::kMulticast:
        clients_.push_back(std::make_unique<baselines::MulticastClient>(
            *fabric_, addr, coord_addr, *view, "air.TravelAgent",
            view->properties()));
        break;
    }
    views_.push_back(std::move(view));
  }
}

CoherenceTestbed::~CoherenceTestbed() = default;

void CoherenceTestbed::connect_all() {
  for (auto& client : clients_) client->connect({});
  sim_.run();
}

}  // namespace flecc::airline
