#include "airline/reservation_client.hpp"

#include <stdexcept>
#include <utility>

#include "sim/script.hpp"

namespace flecc::airline {

const char* to_string(ClientKind k) noexcept {
  return k == ClientKind::kViewer ? "viewer" : "buyer";
}

ReservationClient::ReservationClient(TravelAgent& agent, Config cfg)
    : agent_(agent), cfg_(cfg), kind_(cfg.kind) {}

void ReservationClient::run(Done done) {
  if (started_) {
    throw std::logic_error("ReservationClient::run called twice");
  }
  started_ = true;
  sim::Script script;
  for (std::size_t i = 0; i < cfg_.requests; ++i) {
    if (cfg_.upgrade_at.has_value() && *cfg_.upgrade_at == i) {
      script.then([this](sim::Script::Next next) { upgrade(std::move(next)); });
    }
    script.then([this](sim::Script::Next next) {
      if (kind_ == ClientKind::kViewer) {
        browse_once(std::move(next));
      } else {
        buy_once(std::move(next));
      }
    });
  }
  std::move(script).run(std::move(done));
}

void ReservationClient::browse_once(Done done) {
  // Browsing tolerates stale data: a read-only pull (never triggers a
  // demand-fetch round under the read/write-semantics extension)
  // followed by a local availability lookup.
  agent_.cache().set_intent(core::AccessIntent::kReadOnly);
  agent_.pull_now([this, done = std::move(done)] {
    ++browses_;
    last_observed_availability_ = agent_.view().available(cfg_.flight);
    if (done) done();
  });
}

void ReservationClient::buy_once(Done done) {
  agent_.cache().set_intent(core::AccessIntent::kReadWrite);
  ++purchase_attempts_;
  const std::int64_t confirmed_before = agent_.view().confirmed_total();
  // In strong mode startUseImage acquires fresh state; in weak mode an
  // explicit fetch-fresh pull precedes the purchase.
  const bool pull_first = agent_.cache().mode() == core::Mode::kWeak;
  agent_.reserve_once(
      cfg_.flight, cfg_.seats_per_purchase, pull_first,
      [this, confirmed_before, done = std::move(done)] {
        const std::int64_t got =
            agent_.view().confirmed_total() - confirmed_before;
        seats_bought_ += got;
        if (got < cfg_.seats_per_purchase) ++refused_purchases_;
        if (done) done();
      });
}

void ReservationClient::upgrade(Done done) {
  // "A viewer can become at any point a buyer and the travel agent
  // component should be able to provide the requested information in a
  // timely manner" (§5.1): the capability change maps to a run-time
  // consistency-level change on the agent's cache manager.
  kind_ = ClientKind::kBuyer;
  upgraded_ = true;
  if (cfg_.buy_in_strong_mode) {
    agent_.switch_mode(core::Mode::kStrong, std::move(done));
  } else if (done) {
    done();
  }
}

}  // namespace flecc::airline
