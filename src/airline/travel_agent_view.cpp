#include "airline/travel_agent_view.hpp"

#include <algorithm>
#include <utility>

namespace flecc::airline {

TravelAgentView::TravelAgentView(std::vector<FlightNumber> flights)
    : flights_(std::move(flights)) {
  for (const FlightNumber n : flights_) base_[n] = Seats{};
  refresh_vars();
}

props::PropertySet TravelAgentView::properties() const {
  std::set<props::Value> numbers;
  for (const FlightNumber n : flights_) numbers.insert(props::Value{n});
  props::PropertySet ps;
  ps.set(kFlightsProperty, props::Domain::discrete(std::move(numbers)));
  return ps;
}

std::int64_t TravelAgentView::confirm_tickets(FlightNumber flight,
                                              std::int64_t count) {
  if (count <= 0) return 0;
  auto it = base_.find(flight);
  if (it == base_.end()) {
    refused_total_ += count;
    refresh_vars();
    return 0;
  }
  const std::int64_t pending = pending_.count(flight) ? pending_[flight] : 0;
  const std::int64_t believed_free =
      it->second.capacity - it->second.reserved - pending;
  const std::int64_t confirmed = std::clamp<std::int64_t>(believed_free, 0,
                                                          count);
  if (confirmed > 0) pending_[flight] += confirmed;
  confirmed_total_ += confirmed;
  refused_total_ += count - confirmed;
  refresh_vars();
  return confirmed;
}

std::int64_t TravelAgentView::cancel_tickets(FlightNumber flight,
                                             std::int64_t count) {
  if (count <= 0) return 0;
  auto it = pending_.find(flight);
  if (it == pending_.end()) return 0;
  const std::int64_t cancelled = std::min(count, it->second);
  it->second -= cancelled;
  if (it->second == 0) pending_.erase(it);
  cancelled_total_ += cancelled;
  refresh_vars();
  return cancelled;
}

std::int64_t TravelAgentView::available(FlightNumber flight) const {
  auto it = base_.find(flight);
  if (it == base_.end()) return 0;
  const auto pit = pending_.find(flight);
  const std::int64_t pending = pit == pending_.end() ? 0 : pit->second;
  return std::max<std::int64_t>(
      0, it->second.capacity - it->second.reserved - pending);
}

std::int64_t TravelAgentView::pending_total() const {
  std::int64_t total = 0;
  for (const auto& [n, d] : pending_) {
    (void)n;
    total += d;
  }
  return total;
}

std::int64_t TravelAgentView::base_reserved(FlightNumber flight) const {
  auto it = base_.find(flight);
  return it == base_.end() ? 0 : it->second.reserved;
}

core::ObjectImage TravelAgentView::extract_from_view(
    const props::PropertySet& vpl) {
  const props::Domain* scope = vpl.find(kFlightsProperty);
  core::ObjectImage image;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto [n, delta] = *it;
    if (delta != 0 &&
        (scope == nullptr || scope->contains(props::Value{n}))) {
      image.set_int(key_delta(n), delta);
      it = pending_.erase(it);  // the delta now travels with the image
    } else {
      ++it;
    }
  }
  refresh_vars();
  return image;
}

core::ObjectImage TravelAgentView::peek_from_view(
    const props::PropertySet& vpl) const {
  const props::Domain* scope = vpl.find(kFlightsProperty);
  core::ObjectImage image;
  for (const auto& [n, delta] : pending_) {
    if (delta != 0 &&
        (scope == nullptr || scope->contains(props::Value{n}))) {
      image.set_int(key_delta(n), delta);
    }
  }
  return image;
}

void TravelAgentView::merge_into_view(const core::ObjectImage& image,
                                      const props::PropertySet& vpl) {
  const props::Domain* scope = vpl.find(kFlightsProperty);
  for (const FlightNumber n : flights_) {
    if (scope != nullptr && !scope->contains(props::Value{n})) continue;
    if (const auto cap = image.get_int(key_capacity(n))) {
      base_[n].capacity = *cap;
    }
    if (const auto res = image.get_int(key_reserved(n))) {
      base_[n].reserved = *res;
    }
  }
  refresh_vars();
}

void TravelAgentView::refresh_vars() {
  vars_.set("pendingSales", static_cast<double>(pending_total()));
  vars_.set("confirmedSales", static_cast<double>(confirmed_total_));
  vars_.set("refusedSales", static_cast<double>(refused_total_));
  vars_.set("cancelledSales", static_cast<double>(cancelled_total_));
}

}  // namespace flecc::airline
