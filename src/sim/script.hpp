// Sequencing helper for event-driven workloads.
//
// Simulation-mode application code is callback-based (nothing may
// block). Script chains asynchronous steps so workload definitions stay
// linear and readable, mirroring the sequential pseudo-code of the
// paper's Figure 3.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace flecc::sim {

class Script {
 public:
  using Next = std::function<void()>;
  /// A step receives a continuation it must eventually invoke exactly
  /// once (synchronously or from a later event).
  using Step = std::function<void(Next)>;

  /// Append a step.
  Script& then(Step step) {
    steps_.push_back(std::move(step));
    return *this;
  }

  /// Append `count` repetitions of a step; the step receives the
  /// iteration index.
  Script& repeat(std::size_t count,
                 std::function<void(std::size_t, Next)> step) {
    for (std::size_t i = 0; i < count; ++i) {
      steps_.push_back(
          [i, step](Next next) { step(i, std::move(next)); });
    }
    return *this;
  }

  /// Run all steps in order, then `on_complete`. The Script object may
  /// be destroyed once run() returns; state is kept alive internally.
  void run(std::function<void()> on_complete = {}) && {
    auto state = std::make_shared<State>();
    state->steps = std::move(steps_);
    state->on_complete = std::move(on_complete);
    advance(state, 0);
  }

 private:
  struct State {
    std::vector<Step> steps;
    std::function<void()> on_complete;
  };

  static void advance(const std::shared_ptr<State>& state, std::size_t i) {
    if (i >= state->steps.size()) {
      if (state->on_complete) state->on_complete();
      return;
    }
    state->steps[i]([state, i] { advance(state, i + 1); });
  }

  std::vector<Step> steps_;
};

}  // namespace flecc::sim
