#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace flecc::sim {

EventId EventQueue::push(Time when, std::function<void()> fn, bool daemon) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(fn), daemon});
  pending_.emplace(id, daemon);
  if (!daemon) ++non_daemon_live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Cancelled entries stay in the heap and are skipped lazily when they
  // reach the top (drop_dead_head).
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  if (!it->second) --non_daemon_live_;
  pending_.erase(it);
  return true;
}

Time EventQueue::next_time() const {
  drop_dead_head();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_head();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  // priority_queue::top() returns const&; we move the callback out and
  // pop immediately after, so the mutation is not observable.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.when, top.id, std::move(top.fn), top.daemon};
  heap_.pop();
  if (!out.daemon) --non_daemon_live_;
  pending_.erase(out.id);
  return out;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  pending_.clear();
  non_daemon_live_ = 0;
}

void EventQueue::drop_dead_head() const {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

}  // namespace flecc::sim
