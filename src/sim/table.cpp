#include "sim/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace flecc::sim {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&cell)) {
    return std::to_string(*u);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", std::get<double>(cell));
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  widths.reserve(columns_.size());
  for (const auto& c : columns_) widths.push_back(c.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(render(row[i]));
      widths[i] = std::max(widths[i], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << "  ";
      os << cells[i];
      if (i + 1 < cells.size()) {
        os << std::string(widths[i] - cells[i].size(), ' ');
      }
    }
    os << "\n";
  };
  emit_row(columns_);
  for (const auto& row : rendered) emit_row(row);
  return os.str();
}

std::string Table::csv_escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) os << ",";
    os << csv_escape(columns_[i]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ",";
      os << csv_escape(render(row[i]));
    }
    os << "\n";
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace flecc::sim
