// Tabular results for benches: aligned stdout rendering plus CSV export
// so figure data can be re-plotted without scraping logs.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace flecc::sim {

class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, std::uint64_t, double>;

  explicit Table(std::vector<std::string> columns);

  /// Append a row; must match the column count.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept {
    return columns_.size();
  }

  /// Aligned fixed-width text (header + rows).
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (values containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Write the CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  static std::string render(const Cell& cell);
  static std::string csv_escape(const std::string& value);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace flecc::sim
