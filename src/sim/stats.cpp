#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace flecc::sim {

namespace {

/// Log2 bucket index for a sample: 0 for x < 1 (including negatives),
/// else 1 + floor(log2(x)), clamped to the last bucket.
std::size_t log2_bucket(double x) noexcept {
  if (!(x >= 1.0)) return 0;  // also catches NaN
  const auto v = static_cast<std::uint64_t>(std::min(
      x, 9.2e18));  // below 2^63 so the shift below stays defined
  std::size_t i = 1;
  for (std::uint64_t w = v; w > 1; w >>= 1) ++i;
  return std::min(i, RunningStat::kBuckets - 1);
}

}  // namespace

void RunningStat::add(double x) noexcept {
  ++buckets_[log2_bucket(x)];
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::bucket_lo(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

double RunningStat::quantile_est(double q) const noexcept {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) < target) continue;
    const double lo = bucket_lo(i);
    const double hi = bucket_lo(i + 1);
    const double frac =
        (target - before) / static_cast<double>(buckets_[i]);
    const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(est, min_, max_);
  }
  return max_;
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double combined = n + m;
  m2_ = m2_ + other.m2_ + delta * delta * n * m / combined;
  mean_ = (n * mean_ + m * other.mean_) / combined;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("SampleSet::quantile on empty set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("SampleSet::quantile: q outside [0,1]");
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= bins_.size()) i = bins_.size() - 1;  // fp edge
    ++bins_[i];
  }
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto bar = bins_[i] * bar_width / peak;
    os << "[" << bin_lo(i) << ", " << bin_lo(i + 1) << ") "
       << std::string(bar, '#') << " " << bins_[i] << "\n";
  }
  return os.str();
}

std::uint64_t CounterSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t CounterSet::total() const {
  std::uint64_t t = 0;
  for (const auto& [_, v] : counters_) t += v;
  return t;
}

std::string CounterSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << "=" << v << "\n";
  return os.str();
}

RunningStat TimeSeries::summarize() const {
  RunningStat s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

}  // namespace flecc::sim
