// Simulated-time primitives for the Flecc discrete-event kernel.
//
// All simulated clocks in the project use a single integral tick type
// (microseconds). Keeping time integral makes event ordering exact and
// runs bit-reproducible across platforms.
#pragma once

#include <cstdint>

namespace flecc::sim {

/// Absolute simulated time, in microseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in microseconds.
using Duration = std::int64_t;

/// The simulation epoch.
inline constexpr Time kTimeZero = 0;

/// A sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeInfinity = INT64_MAX;

/// Construct a Duration from microseconds.
constexpr Duration usec(std::int64_t n) noexcept { return n; }

/// Construct a Duration from milliseconds.
constexpr Duration msec(std::int64_t n) noexcept { return n * 1000; }

/// Construct a Duration from seconds.
constexpr Duration seconds(std::int64_t n) noexcept { return n * 1000 * 1000; }

/// Convert a Time/Duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) noexcept {
  return static_cast<double>(d) / 1000.0;
}

/// Convert a Time/Duration to fractional seconds (for reporting).
constexpr double to_sec(Duration d) noexcept {
  return static_cast<double>(d) / 1'000'000.0;
}

}  // namespace flecc::sim
