#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace flecc::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection kept simple).
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace flecc::sim
