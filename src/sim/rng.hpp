// Deterministic pseudo-random number generation for workloads.
//
// xoshiro256** seeded via SplitMix64. Every experiment takes an explicit
// seed so runs are reproducible; nothing in the library reads entropy
// from the environment.
#pragma once

#include <cstdint>
#include <vector>

namespace flecc::sim {

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box–Muller).
  double normal(double mean, double stddev) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly pick one element. Precondition: !v.empty().
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace flecc::sim
