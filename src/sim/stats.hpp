// Measurement plumbing shared by tests, benches, and the protocol
// implementations: streaming moments, quantile-capable sample sets,
// histograms, named counters, and timestamped series.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace flecc::sim {

/// Streaming mean/variance/min/max (Welford's algorithm), plus a
/// fixed set of power-of-two buckets over the non-negative range so
/// tail quantiles (p99, p99.9) can be estimated without retaining
/// samples. Bucket i counts values in [2^(i-1), 2^i) (bucket 0 is
/// [0, 1)); negative values land in bucket 0.
class RunningStat {
 public:
  /// Number of log2 buckets; covers the whole non-negative double
  /// range that fits in 63 bits (plenty for microsecond latencies).
  static constexpr std::size_t kBuckets = 64;

  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Count in log2 bucket `i` (see class comment for the ranges).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }
  /// Lower edge of bucket i: 0 for bucket 0, else 2^(i-1).
  [[nodiscard]] static double bucket_lo(std::size_t i) noexcept;
  /// Estimated quantile from the log2 buckets (linear interpolation
  /// inside the bucket, clamped to [min, max]); q in [0,1]. Returns 0
  /// on an empty stat. Coarse by design — exact quantiles need a
  /// SampleSet — but honest for tails: the estimate never leaves the
  /// bucket the true value falls in.
  [[nodiscard]] double quantile_est(double q) const noexcept;

  /// Merge another stat into this one (parallel reduction friendly).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// Stores every sample; supports exact quantiles. Use for small-N series.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact quantile by linear interpolation, q in [0,1]. Pre: !empty().
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width linear-bin histogram over [lo, hi); out-of-range samples
/// land in underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return bins_.at(i);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Left edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  /// Render a terminal-friendly bar chart.
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> bins_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Named monotonic counters ("messages.pull", "bytes.total", ...).
/// The transparent comparator lets hot paths bump existing counters
/// from a string_view without materializing a heap key; only the
/// first-ever hit of a name allocates (the stored map key).
class CounterSet {
 public:
  void inc(std::string_view name, std::uint64_t by = 1) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), 0).first;
    }
    it->second += by;
  }
  /// inc(prefix + suffix) without the concatenation temporary — the
  /// per-message-type counters ("msg.sent.<type>") are bumped once per
  /// send, which made the key concat a measurable allocation source.
  void inc_cat(std::string_view prefix, std::string_view suffix,
               std::uint64_t by = 1) {
    char buf[96];
    if (prefix.size() + suffix.size() <= sizeof(buf)) {
      std::memcpy(buf, prefix.data(), prefix.size());
      std::memcpy(buf + prefix.size(), suffix.data(), suffix.size());
      inc(std::string_view(buf, prefix.size() + suffix.size()), by);
    } else {
      std::string key(prefix);
      key += suffix;
      inc(key, by);
    }
  }
  /// Raise `name` to at least `v` — a peak gauge (e.g. the maximum
  /// queue depth "flow.queue.peak") living alongside the monotonic
  /// counters so snapshots/exports need no second container.
  void set_max(std::string_view name, std::uint64_t v) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      counters_.emplace(std::string(name), v);
    } else if (it->second < v) {
      it->second = v;
    }
  }
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  all() const {
    return counters_;
  }
  void reset() { counters_.clear(); }
  /// "name=value" lines, sorted by name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// A value sampled against simulated time.
struct TimePoint {
  Time at;
  double value;
};

/// An append-only (time, value) series for plotting figure data.
class TimeSeries {
 public:
  void add(Time at, double value) { points_.push_back({at, value}); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const TimePoint& at(std::size_t i) const {
    return points_.at(i);
  }
  [[nodiscard]] const std::vector<TimePoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] RunningStat summarize() const;
  void clear() { points_.clear(); }

 private:
  std::vector<TimePoint> points_;
};

}  // namespace flecc::sim
