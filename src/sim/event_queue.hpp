// A deterministic pending-event set for discrete-event simulation.
//
// Events scheduled for the same instant execute in scheduling order
// (FIFO), which makes simulations reproducible regardless of heap
// internals. Cancellation is O(1) amortized via lazy deletion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace flecc::sim {

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned when no event exists.
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed callbacks with deterministic same-time ordering.
///
/// Events may be marked *daemon*: recurring maintenance (trigger polls,
/// gossip ticks) that should not keep a run-to-quiescence loop alive.
/// The queue tracks how many live events are non-daemon so the
/// simulator can stop once only daemons remain.
class EventQueue {
 public:
  /// Insert a callback to fire at absolute time `when`.
  /// Returns a handle that can later be passed to `cancel`.
  EventId push(Time when, std::function<void()> fn, bool daemon = false);

  /// Cancel a pending event. Returns true if the event was still pending
  /// (i.e., not yet popped and not already cancelled).
  bool cancel(EventId id);

  /// True if the given event is still pending.
  [[nodiscard]] bool pending(EventId id) const {
    return pending_.count(id) != 0;
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// True if at least one live non-daemon event remains.
  [[nodiscard]] bool has_non_daemon() const { return non_daemon_live_ > 0; }

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest live event.
  /// Precondition: !empty().
  struct Popped {
    Time when;
    EventId id;
    std::function<void()> fn;
    bool daemon = false;
  };
  Popped pop();

  /// Drop every pending event.
  void clear();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
    bool daemon;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Pops heap entries whose ids are no longer pending (cancelled).
  void drop_dead_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, bool> pending_;  // id -> daemon flag
  std::size_t non_daemon_live_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace flecc::sim
