#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace flecc::sim {

EventId Simulator::schedule_at(Time when, std::function<void()> fn,
                               bool daemon) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.push(when, std::move(fn), daemon);
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn,
                                  bool daemon) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return queue_.push(now_ + delay, std::move(fn), daemon);
}

std::size_t Simulator::run() {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && queue_.has_non_daemon()) {
    auto ev = queue_.pop();
    now_ = ev.when;
    ++executed_;
    ++n;
    ev.fn();
  }
  return n;
}

std::size_t Simulator::run_until(Time until) {
  if (until < now_) {
    throw std::invalid_argument("Simulator::run_until: time in the past");
  }
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= until) {
    auto ev = queue_.pop();
    now_ = ev.when;
    ++executed_;
    ++n;
    ev.fn();
  }
  if (!stop_requested_) now_ = until;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

}  // namespace flecc::sim
