// The discrete-event simulator driving all `SimFabric`-based runs.
//
// A single-threaded kernel: handlers scheduled with `schedule_*` run in
// timestamp order; same-time handlers run in scheduling order. Handlers
// may schedule further events, cancel events, or stop the run.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace flecc::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  /// Daemon events (recurring maintenance such as trigger polls) do not
  /// keep run() alive: run() returns once only daemons remain.
  EventId schedule_at(Time when, std::function<void()> fn,
                      bool daemon = false);

  /// Schedule `fn` after `delay` (must be >= 0).
  EventId schedule_after(Duration delay, std::function<void()> fn,
                         bool daemon = false);

  /// Cancel a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if the event has neither run nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Execute events until only daemon events (or nothing) remain, or
  /// stop() is called — i.e. run the system to quiescence. Returns the
  /// number of events executed by this call.
  std::size_t run();

  /// Execute events with timestamp <= `until`, then advance the clock to
  /// `until` (if it is past the last executed event). Returns the number
  /// of events executed by this call.
  std::size_t run_until(Time until);

  /// Execute exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Request that the current run()/run_until() return after the
  /// currently-executing handler finishes. Callable from handlers.
  void stop() noexcept { stop_requested_ = true; }

  /// Total events executed since construction.
  [[nodiscard]] std::size_t executed_events() const noexcept {
    return executed_;
  }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::size_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace flecc::sim
