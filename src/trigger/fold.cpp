#include <utility>

#include "trigger/ast.hpp"
#include "trigger/errors.hpp"
#include "trigger/trigger.hpp"

namespace flecc::trigger {

namespace {

/// An Env with no variables at all: evaluation succeeds only for
/// variable-free subtrees.
class EmptyEnv : public Env {
 public:
  [[nodiscard]] std::optional<double> lookup(
      const std::string&) const override {
    return std::nullopt;
  }
};

bool is_constant(const Node& n) {
  switch (n.kind) {
    case Node::Kind::kNumber:
      return true;
    case Node::Kind::kVariable:
      return false;
    case Node::Kind::kUnary:
      return is_constant(*n.lhs);
    case Node::Kind::kBinary:
      return is_constant(*n.lhs) && is_constant(*n.rhs);
    case Node::Kind::kCall:
      for (const auto& a : n.args) {
        if (!is_constant(*a)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

NodePtr clone(const Node& n) {
  switch (n.kind) {
    case Node::Kind::kNumber:
      return Node::make_number(n.number);
    case Node::Kind::kVariable:
      return Node::make_variable(n.name);
    case Node::Kind::kUnary:
      return Node::make_unary(n.uop, clone(*n.lhs));
    case Node::Kind::kBinary:
      return Node::make_binary(n.bop, clone(*n.lhs), clone(*n.rhs));
    case Node::Kind::kCall: {
      std::vector<NodePtr> args;
      args.reserve(n.args.size());
      for (const auto& a : n.args) args.push_back(clone(*a));
      return Node::make_call(n.name, std::move(args));
    }
  }
  throw EvalError("corrupt expression tree");
}

NodePtr fold_constants(NodePtr root) {
  if (!root) return root;
  // Fold children first.
  switch (root->kind) {
    case Node::Kind::kUnary:
      root->lhs = fold_constants(std::move(root->lhs));
      break;
    case Node::Kind::kBinary:
      root->lhs = fold_constants(std::move(root->lhs));
      root->rhs = fold_constants(std::move(root->rhs));
      break;
    case Node::Kind::kCall:
      for (auto& a : root->args) a = fold_constants(std::move(a));
      break;
    case Node::Kind::kNumber:
    case Node::Kind::kVariable:
      return root;
  }
  if (!is_constant(*root)) return root;
  try {
    const double value = eval(*root, EmptyEnv{});
    return Node::make_number(value);
  } catch (const EvalError&) {
    // e.g. a constant division by zero: keep the tree so the error
    // surfaces when (and only when) the trigger is evaluated.
    return root;
  }
}

}  // namespace flecc::trigger
