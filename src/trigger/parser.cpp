#include "trigger/parser.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "trigger/lexer.hpp"

namespace flecc::trigger {

const char* to_string(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* to_string(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
  }
  return "?";
}

NodePtr Node::make_number(double v) {
  auto n = std::make_unique<Node>();
  n->kind = Kind::kNumber;
  n->number = v;
  return n;
}

NodePtr Node::make_variable(std::string name) {
  auto n = std::make_unique<Node>();
  n->kind = Kind::kVariable;
  n->name = std::move(name);
  return n;
}

NodePtr Node::make_unary(UnaryOp op, NodePtr child) {
  auto n = std::make_unique<Node>();
  n->kind = Kind::kUnary;
  n->uop = op;
  n->lhs = std::move(child);
  return n;
}

NodePtr Node::make_binary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_unique<Node>();
  n->kind = Kind::kBinary;
  n->bop = op;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

NodePtr Node::make_call(std::string name, std::vector<NodePtr> args) {
  auto n = std::make_unique<Node>();
  n->kind = Kind::kCall;
  n->name = std::move(name);
  n->args = std::move(args);
  return n;
}

bool is_builtin_function(const std::string& name) noexcept {
  return name == "min" || name == "max" || name == "abs" ||
         name == "floor" || name == "ceil" || name == "clamp";
}

std::string check_builtin_arity(const std::string& name, std::size_t argc) {
  if (name == "min" || name == "max") {
    if (argc < 2) return name + " needs at least 2 arguments";
    return {};
  }
  if (name == "abs" || name == "floor" || name == "ceil") {
    if (argc != 1) return name + " needs exactly 1 argument";
    return {};
  }
  if (name == "clamp") {
    if (argc != 3) return "clamp needs exactly 3 arguments (x, lo, hi)";
    return {};
  }
  return "unknown function '" + name + "'";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : tokens_(tokenize(src)) {}

  NodePtr parse_all() {
    NodePtr root = parse_or();
    if (peek().kind != TokenKind::kEnd) {
      throw ParseError(std::string("unexpected ") + to_string(peek().kind) +
                           " after expression",
                       peek().pos);
    }
    return root;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }
  bool accept(TokenKind k) {
    if (peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_or() {
    NodePtr lhs = parse_and();
    while (accept(TokenKind::kOrOr)) {
      lhs = Node::make_binary(BinaryOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  NodePtr parse_and() {
    NodePtr lhs = parse_equality();
    while (accept(TokenKind::kAndAnd)) {
      lhs = Node::make_binary(BinaryOp::kAnd, std::move(lhs),
                              parse_equality());
    }
    return lhs;
  }

  NodePtr parse_equality() {
    NodePtr lhs = parse_relational();
    for (;;) {
      if (accept(TokenKind::kEqEq)) {
        lhs = Node::make_binary(BinaryOp::kEq, std::move(lhs),
                                parse_relational());
      } else if (accept(TokenKind::kNotEq)) {
        lhs = Node::make_binary(BinaryOp::kNe, std::move(lhs),
                                parse_relational());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parse_relational() {
    NodePtr lhs = parse_additive();
    for (;;) {
      BinaryOp op;
      if (accept(TokenKind::kLt)) op = BinaryOp::kLt;
      else if (accept(TokenKind::kLe)) op = BinaryOp::kLe;
      else if (accept(TokenKind::kGt)) op = BinaryOp::kGt;
      else if (accept(TokenKind::kGe)) op = BinaryOp::kGe;
      else return lhs;
      lhs = Node::make_binary(op, std::move(lhs), parse_additive());
    }
  }

  NodePtr parse_additive() {
    NodePtr lhs = parse_multiplicative();
    for (;;) {
      if (accept(TokenKind::kPlus)) {
        lhs = Node::make_binary(BinaryOp::kAdd, std::move(lhs),
                                parse_multiplicative());
      } else if (accept(TokenKind::kMinus)) {
        lhs = Node::make_binary(BinaryOp::kSub, std::move(lhs),
                                parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  NodePtr parse_multiplicative() {
    NodePtr lhs = parse_unary();
    for (;;) {
      BinaryOp op;
      if (accept(TokenKind::kStar)) op = BinaryOp::kMul;
      else if (accept(TokenKind::kSlash)) op = BinaryOp::kDiv;
      else if (accept(TokenKind::kPercent)) op = BinaryOp::kMod;
      else return lhs;
      lhs = Node::make_binary(op, std::move(lhs), parse_unary());
    }
  }

  NodePtr parse_unary() {
    if (accept(TokenKind::kNot)) {
      return Node::make_unary(UnaryOp::kNot, parse_unary());
    }
    if (accept(TokenKind::kMinus)) {
      return Node::make_unary(UnaryOp::kNeg, parse_unary());
    }
    return parse_primary();
  }

  NodePtr parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kNumber: {
        const double v = tok.number;
        take();
        return Node::make_number(v);
      }
      case TokenKind::kTrue:
        take();
        return Node::make_number(1.0);
      case TokenKind::kFalse:
        take();
        return Node::make_number(0.0);
      case TokenKind::kIdentifier: {
        std::string name = tok.text;
        const std::size_t name_pos = tok.pos;
        take();
        if (peek().kind != TokenKind::kLParen) {
          return Node::make_variable(std::move(name));
        }
        // Function call: identifier '(' expr (',' expr)* ')'. Only
        // builtins exist; anything else is an error at parse time.
        if (!is_builtin_function(name)) {
          throw ParseError("unknown function '" + name + "'", name_pos);
        }
        take();  // '('
        std::vector<NodePtr> args;
        if (peek().kind != TokenKind::kRParen) {
          args.push_back(parse_or());
          while (accept(TokenKind::kComma)) {
            args.push_back(parse_or());
          }
        }
        if (!accept(TokenKind::kRParen)) {
          throw ParseError("expected ')' after arguments of '" + name + "'",
                           peek().pos);
        }
        if (const std::string complaint =
                check_builtin_arity(name, args.size());
            !complaint.empty()) {
          throw ParseError(complaint, name_pos);
        }
        return Node::make_call(std::move(name), std::move(args));
      }
      case TokenKind::kLParen: {
        take();
        NodePtr inner = parse_or();
        if (!accept(TokenKind::kRParen)) {
          throw ParseError("expected ')'", peek().pos);
        }
        return inner;
      }
      default:
        throw ParseError(std::string("unexpected ") + to_string(tok.kind),
                         tok.pos);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

void collect(const Node& n, std::set<std::string>& out) {
  switch (n.kind) {
    case Node::Kind::kVariable:
      out.insert(n.name);
      break;
    case Node::Kind::kUnary:
      collect(*n.lhs, out);
      break;
    case Node::Kind::kBinary:
      collect(*n.lhs, out);
      collect(*n.rhs, out);
      break;
    case Node::Kind::kCall:
      for (const auto& a : n.args) collect(*a, out);
      break;
    case Node::Kind::kNumber:
      break;
  }
}

void render(const Node& n, std::ostringstream& os) {
  switch (n.kind) {
    case Node::Kind::kNumber:
      os << n.number;
      break;
    case Node::Kind::kVariable:
      os << n.name;
      break;
    case Node::Kind::kUnary:
      os << to_string(n.uop) << "(";
      render(*n.lhs, os);
      os << ")";
      break;
    case Node::Kind::kBinary:
      os << "(";
      render(*n.lhs, os);
      os << " " << to_string(n.bop) << " ";
      render(*n.rhs, os);
      os << ")";
      break;
    case Node::Kind::kCall: {
      os << n.name << "(";
      bool first = true;
      for (const auto& a : n.args) {
        if (!first) os << ", ";
        first = false;
        render(*a, os);
      }
      os << ")";
      break;
    }
  }
}

}  // namespace

NodePtr parse(std::string_view source) {
  return Parser(source).parse_all();
}

std::vector<std::string> collect_variables(const Node& root) {
  std::set<std::string> names;
  collect(root, names);
  return {names.begin(), names.end()};
}

std::string to_string(const Node& root) {
  std::ostringstream os;
  render(root, os);
  return os.str();
}

}  // namespace flecc::trigger
