// Variable environments for trigger evaluation.
//
// The paper's prototype read view variables via Java reflection. Our
// substitution is an explicit per-view VariableStore that the view (or
// its driver) keeps up to date; the cache manager snapshots it whenever
// it evaluates a trigger. This preserves application-neutrality: Flecc
// never interprets the variables, it just reads numbers by name.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flecc::trigger {

/// Read-only variable lookup used by the evaluator.
class Env {
 public:
  virtual ~Env() = default;
  /// The value of `name`, or nullopt if undefined.
  [[nodiscard]] virtual std::optional<double> lookup(
      const std::string& name) const = 0;
};

/// A mutable name→value map implementing Env.
class VariableStore : public Env {
 public:
  VariableStore() = default;
  VariableStore(std::initializer_list<std::pair<const std::string, double>> init)
      : vars_(init) {}

  void set(const std::string& name, double value) { vars_[name] = value; }
  bool erase(const std::string& name) { return vars_.erase(name) != 0; }
  [[nodiscard]] bool has(const std::string& name) const {
    return vars_.count(name) != 0;
  }
  [[nodiscard]] std::optional<double> lookup(
      const std::string& name) const override;
  [[nodiscard]] std::size_t size() const noexcept { return vars_.size(); }
  [[nodiscard]] const std::map<std::string, double>& all() const noexcept {
    return vars_;
  }
  void clear() { vars_.clear(); }

 private:
  std::map<std::string, double> vars_;
};

/// An Env overlay: reads `front` first, then `back`. Used to layer the
/// builtin time variable `t` (and directory metadata such as `_age`)
/// over the view's own variables without copying.
class LayeredEnv : public Env {
 public:
  LayeredEnv(const Env& front, const Env& back) : front_(front), back_(back) {}
  [[nodiscard]] std::optional<double> lookup(
      const std::string& name) const override {
    if (auto v = front_.lookup(name)) return v;
    return back_.lookup(name);
  }

 private:
  const Env& front_;
  const Env& back_;
};

/// Convenience: an Env backed by a lambda.
class FnEnv : public Env {
 public:
  using Fn = std::function<std::optional<double>(const std::string&)>;
  explicit FnEnv(Fn fn) : fn_(std::move(fn)) {}
  [[nodiscard]] std::optional<double> lookup(
      const std::string& name) const override {
    return fn_(name);
  }

 private:
  Fn fn_;
};

}  // namespace flecc::trigger
