// Error types raised by the trigger language.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace flecc::trigger {

/// Raised on malformed trigger source (bad token, unbalanced parens...).
/// Carries the byte offset of the offending position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t pos_;
};

/// Raised when evaluation fails (unknown variable, division by zero).
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace flecc::trigger
