#include "trigger/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace flecc::trigger {

const char* to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kEnd: return "end of expression";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.';
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind k, std::size_t pos, std::string text = {}) {
    out.push_back(Token{k, std::move(text), 0.0, pos});
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '.')) {
        ++j;
      }
      // optional exponent
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k])) != 0) {
          while (k < n &&
                 std::isdigit(static_cast<unsigned char>(src[k])) != 0) {
            ++k;
          }
          j = k;
        }
      }
      const std::string text(src.substr(i, j - i));
      char* endp = nullptr;
      const double value = std::strtod(text.c_str(), &endp);
      if (endp == nullptr || *endp != '\0') {
        throw ParseError("malformed number '" + text + "'", start);
      }
      Token t{TokenKind::kNumber, text, value, start};
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string text(src.substr(i, j - i));
      if (text == "true") {
        push(TokenKind::kTrue, start, std::move(text));
      } else if (text == "false") {
        push(TokenKind::kFalse, start, std::move(text));
      } else if (text == "and") {
        push(TokenKind::kAndAnd, start, std::move(text));
      } else if (text == "or") {
        push(TokenKind::kOrOr, start, std::move(text));
      } else if (text == "not") {
        push(TokenKind::kNot, start, std::move(text));
      } else {
        push(TokenKind::kIdentifier, start, std::move(text));
      }
      i = j;
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && src[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '<':
        if (two('=')) { push(TokenKind::kLe, start); i += 2; }
        else { push(TokenKind::kLt, start); ++i; }
        break;
      case '>':
        if (two('=')) { push(TokenKind::kGe, start); i += 2; }
        else { push(TokenKind::kGt, start); ++i; }
        break;
      case '=':
        if (two('=')) { push(TokenKind::kEqEq, start); i += 2; }
        else throw ParseError("unexpected '='; did you mean '=='?", start);
        break;
      case '!':
        if (two('=')) { push(TokenKind::kNotEq, start); i += 2; }
        else { push(TokenKind::kNot, start); ++i; }
        break;
      case '&':
        if (two('&')) { push(TokenKind::kAndAnd, start); i += 2; }
        else throw ParseError("unexpected '&'; did you mean '&&'?", start);
        break;
      case '|':
        if (two('|')) { push(TokenKind::kOrOr, start); i += 2; }
        else throw ParseError("unexpected '|'; did you mean '||'?", start);
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         start);
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace flecc::trigger
