// Tokenizer for trigger expressions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trigger/errors.hpp"
#include "trigger/token.hpp"

namespace flecc::trigger {

/// Tokenize `source`; the result always ends with a kEnd token.
/// Throws ParseError on unrecognized input.
std::vector<Token> tokenize(std::string_view source);

}  // namespace flecc::trigger
