// Compiled quality triggers (paper §4.1, Definition 4).
//
//   T_v(t, x1, x2, ...) : T × V_v* → {true, false}
//
// A Trigger wraps a parsed boolean expression. Evaluation takes an Env
// supplying the view variables; the builtin `t` (current discrete time,
// in simulation ticks) is layered on top by `evaluate(t, env)`.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trigger/ast.hpp"
#include "trigger/env.hpp"

namespace flecc::trigger {

/// Evaluate an AST against an environment. Booleans are doubles with
/// C semantics (0 = false). Throws EvalError on unknown variables,
/// division/modulo by zero.
double eval(const Node& root, const Env& env);

/// A parsed, reusable trigger expression.
class Trigger {
 public:
  /// Compile from source. Throws ParseError on malformed input.
  explicit Trigger(std::string_view source);

  Trigger(Trigger&&) noexcept = default;
  Trigger& operator=(Trigger&&) noexcept = default;
  Trigger(const Trigger& other);
  Trigger& operator=(const Trigger& other);

  /// Evaluate with explicit time `t` layered over `env`.
  [[nodiscard]] bool evaluate(double t, const Env& env) const;

  /// Evaluate against env only (env must define `t` if referenced).
  [[nodiscard]] bool evaluate(const Env& env) const;

  /// The original source text.
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Distinct variable names referenced (sorted), including `t`.
  [[nodiscard]] const std::vector<std::string>& variables() const noexcept {
    return variables_;
  }

  /// True if the expression references the builtin time variable `t`.
  [[nodiscard]] bool references_time() const noexcept;

 private:
  std::string source_;
  NodePtr root_;
  std::vector<std::string> variables_;
};

/// A view's optional trigger bundle: push / pull / validity
/// (paper Figure 3 passes all three to the cache manager constructor).
struct TriggerSet {
  std::optional<Trigger> push;
  std::optional<Trigger> pull;
  std::optional<Trigger> validity;

  /// Build from (possibly empty) source strings; empty string → absent.
  static TriggerSet from_sources(std::string_view push_src,
                                 std::string_view pull_src,
                                 std::string_view validity_src);
};

}  // namespace flecc::trigger
