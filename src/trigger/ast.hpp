// Abstract syntax tree for trigger expressions.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace flecc::trigger {

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

const char* to_string(BinaryOp op) noexcept;
const char* to_string(UnaryOp op) noexcept;

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind { kNumber, kVariable, kUnary, kBinary, kCall } kind;

  // kNumber
  double number = 0.0;
  // kVariable name, or kCall function name
  std::string name;
  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kAdd;
  NodePtr lhs;  // also the sole child of a unary node
  NodePtr rhs;
  // kCall
  std::vector<NodePtr> args;

  static NodePtr make_number(double v);
  static NodePtr make_variable(std::string name);
  static NodePtr make_unary(UnaryOp op, NodePtr child);
  static NodePtr make_binary(BinaryOp op, NodePtr lhs, NodePtr rhs);
  static NodePtr make_call(std::string name, std::vector<NodePtr> args);
};

/// Builtin functions usable in trigger expressions:
///   min(a, b...), max(a, b...), abs(x), floor(x), ceil(x), clamp(x, lo, hi).
/// Returns false if `name` is not a builtin.
bool is_builtin_function(const std::string& name) noexcept;

/// Validate a builtin call's arity: empty string if valid, otherwise a
/// human-readable complaint (used as the ParseError message).
std::string check_builtin_arity(const std::string& name, std::size_t argc);

/// Deep copy of an expression tree.
NodePtr clone(const Node& root);

/// Constant folding: collapse every variable-free subtree into a number
/// node. Subtrees whose evaluation would fail (division by zero) are
/// left untouched so errors still surface at evaluation time.
NodePtr fold_constants(NodePtr root);

/// Collect the distinct variable names referenced by the tree (sorted).
std::vector<std::string> collect_variables(const Node& root);

/// Round-trip rendering with full parenthesization (for diagnostics).
std::string to_string(const Node& root);

}  // namespace flecc::trigger
