#include "trigger/env.hpp"

namespace flecc::trigger {

std::optional<double> VariableStore::lookup(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) return std::nullopt;
  return it->second;
}

}  // namespace flecc::trigger
