// Tokens of the quality-trigger expression language (paper §4.1).
//
// Triggers are boolean expressions over discrete time `t` and view
// variables, e.g. "(t > 1500) && (pendingSales >= 3)".
#pragma once

#include <string>

namespace flecc::trigger {

enum class TokenKind {
  kNumber,      // integer or floating literal
  kIdentifier,  // variable name (including the builtin `t`)
  kLParen,
  kRParen,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEqEq,
  kNotEq,
  kAndAnd,
  kOrOr,
  kNot,
  kTrue,   // literal `true`
  kFalse,  // literal `false`
  kEnd,
};

/// Human-readable name of a token kind, for diagnostics.
const char* to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier name or literal spelling
  double number = 0.0; // valid when kind == kNumber
  std::size_t pos = 0; // byte offset into the source expression
};

}  // namespace flecc::trigger
