#include "trigger/trigger.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "trigger/errors.hpp"
#include "trigger/parser.hpp"

namespace flecc::trigger {

double eval(const Node& n, const Env& env) {
  switch (n.kind) {
    case Node::Kind::kNumber:
      return n.number;
    case Node::Kind::kVariable: {
      const auto v = env.lookup(n.name);
      if (!v) throw EvalError("undefined variable '" + n.name + "'");
      return *v;
    }
    case Node::Kind::kUnary: {
      const double x = eval(*n.lhs, env);
      switch (n.uop) {
        case UnaryOp::kNeg: return -x;
        case UnaryOp::kNot: return x == 0.0 ? 1.0 : 0.0;
      }
      break;
    }
    case Node::Kind::kCall: {
      std::vector<double> args;
      args.reserve(n.args.size());
      for (const auto& a : n.args) args.push_back(eval(*a, env));
      if (n.name == "min") {
        double m = args[0];
        for (const double x : args) m = std::min(m, x);
        return m;
      }
      if (n.name == "max") {
        double m = args[0];
        for (const double x : args) m = std::max(m, x);
        return m;
      }
      if (n.name == "abs") return std::fabs(args[0]);
      if (n.name == "floor") return std::floor(args[0]);
      if (n.name == "ceil") return std::ceil(args[0]);
      if (n.name == "clamp") {
        return std::min(std::max(args[0], args[1]), args[2]);
      }
      throw EvalError("unknown function '" + n.name + "'");
    }
    case Node::Kind::kBinary: {
      // Short-circuit logical operators.
      if (n.bop == BinaryOp::kAnd) {
        if (eval(*n.lhs, env) == 0.0) return 0.0;
        return eval(*n.rhs, env) != 0.0 ? 1.0 : 0.0;
      }
      if (n.bop == BinaryOp::kOr) {
        if (eval(*n.lhs, env) != 0.0) return 1.0;
        return eval(*n.rhs, env) != 0.0 ? 1.0 : 0.0;
      }
      const double a = eval(*n.lhs, env);
      const double b = eval(*n.rhs, env);
      switch (n.bop) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv:
          if (b == 0.0) throw EvalError("division by zero");
          return a / b;
        case BinaryOp::kMod:
          if (b == 0.0) throw EvalError("modulo by zero");
          return std::fmod(a, b);
        case BinaryOp::kLt: return a < b ? 1.0 : 0.0;
        case BinaryOp::kLe: return a <= b ? 1.0 : 0.0;
        case BinaryOp::kGt: return a > b ? 1.0 : 0.0;
        case BinaryOp::kGe: return a >= b ? 1.0 : 0.0;
        case BinaryOp::kEq: return a == b ? 1.0 : 0.0;
        case BinaryOp::kNe: return a != b ? 1.0 : 0.0;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          break;  // handled above
      }
      break;
    }
  }
  throw EvalError("corrupt expression tree");
}

Trigger::Trigger(std::string_view source)
    : source_(source), root_(fold_constants(parse(source))) {
  variables_ = collect_variables(*root_);
}

Trigger::Trigger(const Trigger& other) : Trigger(other.source_) {}

Trigger& Trigger::operator=(const Trigger& other) {
  if (this != &other) *this = Trigger(other.source_);
  return *this;
}

bool Trigger::evaluate(double t, const Env& env) const {
  VariableStore time_env;
  time_env.set("t", t);
  LayeredEnv layered(time_env, env);
  return eval(*root_, layered) != 0.0;
}

bool Trigger::evaluate(const Env& env) const {
  return eval(*root_, env) != 0.0;
}

bool Trigger::references_time() const noexcept {
  for (const auto& v : variables_) {
    if (v == "t") return true;
  }
  return false;
}

TriggerSet TriggerSet::from_sources(std::string_view push_src,
                                    std::string_view pull_src,
                                    std::string_view validity_src) {
  TriggerSet ts;
  if (!push_src.empty()) ts.push.emplace(push_src);
  if (!pull_src.empty()) ts.pull.emplace(pull_src);
  if (!validity_src.empty()) ts.validity.emplace(validity_src);
  return ts;
}

}  // namespace flecc::trigger
