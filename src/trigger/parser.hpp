// Recursive-descent parser for trigger expressions.
//
// Grammar (lowest precedence first):
//   expr     := or
//   or       := and ( '||' and )*
//   and      := equality ( '&&' equality )*
//   equality := relational ( ('=='|'!=') relational )*
//   relational := additive ( ('<'|'<='|'>'|'>=') additive )*
//   additive := multiplicative ( ('+'|'-') multiplicative )*
//   multiplicative := unary ( ('*'|'/'|'%') unary )*
//   unary    := ('!'|'-') unary | primary
//   primary  := number | identifier | 'true' | 'false' | '(' expr ')'
#pragma once

#include <string_view>

#include "trigger/ast.hpp"
#include "trigger/errors.hpp"

namespace flecc::trigger {

/// Parse a full expression; throws ParseError on any malformed input
/// (including trailing tokens).
NodePtr parse(std::string_view source);

}  // namespace flecc::trigger
