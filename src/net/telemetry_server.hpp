// TelemetryServer: the repo's first real-socket code — a deliberately
// minimal blocking-accept/poll HTTP/1.1 listener that serves the
// TelemetryHub's scrape surfaces (GET /metrics, /healthz, /varz) to
// curl, Prometheus, and tools/flecc_top. One request per connection
// (Connection: close), GET only, loopback by default; this is a
// diagnostics port, not a web framework — and a stepping stone toward
// the ROADMAP item 5 socket fabric.
//
// Threading: the server owns one background thread that polls the
// listening socket and handles one request at a time. Handlers run on
// that thread, so everything they touch must be thread-safe —
// TelemetryHub's renderers are. The simulation thread is never
// involved, which is how serving cannot perturb determinism.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace flecc::obs {
class TelemetryHub;
}  // namespace flecc::obs

namespace flecc::net {

/// What a handler returns for one request.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal single-threaded HTTP listener.
class TelemetryServer {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port()).
  /// `host` must be a dotted-quad; keep the default loopback unless
  /// you really mean to expose the diagnostics port.
  explicit TelemetryServer(std::uint16_t port = 0,
                           const std::string& host = "127.0.0.1");
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// False if bind/listen failed (port taken, no permission).
  [[nodiscard]] bool listening() const { return listen_fd_ >= 0; }
  /// The bound port (resolved after an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  using Handler = std::function<HttpResponse()>;
  /// Serve `path` (exact match, e.g. "/metrics") with `handler`.
  void route(const std::string& path, Handler handler);

  /// Wait up to `timeout_ms` for one connection and serve it fully.
  /// Returns true if a request was handled.
  bool poll_once(int timeout_ms);

  /// Start the background accept loop.
  void serve_background();
  /// Stop the loop and join the thread (idempotent; also run by the
  /// destructor).
  void stop();

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load();
  }

 private:
  bool handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::pair<std::string, Handler>> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
};

/// Register the three scrape endpoints for `hub` on `server`:
/// /metrics (Prometheus text exposition), /healthz (JSON rollup),
/// /varz (JSON windows). Also routes "/" to a tiny index page.
void serve_telemetry(obs::TelemetryHub& hub, TelemetryServer& server);

/// Blocking one-shot HTTP GET (used by flecc_top and the tests).
/// Returns the response body on HTTP 200, nullopt on connect/read
/// failure or any other status.
[[nodiscard]] std::optional<std::string> http_get(const std::string& host,
                                                  std::uint16_t port,
                                                  const std::string& path,
                                                  int timeout_ms = 2000);

}  // namespace flecc::net
