// Typed, size-annotated messages.
//
// Payloads are type-erased (`std::any`); receivers cast to the concrete
// protocol struct. `type` is a dotted tag ("flecc.pull_req") used for
// counting and tracing; `bytes` is the simulated wire size used for
// transmission-delay modeling.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "net/address.hpp"
#include "net/pool.hpp"

namespace flecc::net {

struct Message {
  std::uint64_t id = 0;
  Address from;
  Address to;
  std::string type;
  std::any payload;
  std::size_t bytes = 0;
  /// Sender's Lamport clock at send time (obs causal tracing); 0 when
  /// the sender has no clock registered or tracing is compiled out.
  /// Metadata only — protocol FSMs never read it.
  std::uint64_t clock = 0;
};

/// Cast a message payload to its concrete protocol struct. Senders may
/// box the struct by value or hand over a pooled PoolPtr<T> handle
/// (message pooling, see net/pool.hpp) — receivers see the same const
/// reference either way. Throws std::bad_any_cast on a genuine type
/// mismatch (a protocol bug).
template <typename T>
const T& payload_as(const Message& m) {
  if (const auto* pooled = std::any_cast<PoolPtr<T>>(&m.payload)) {
    return **pooled;
  }
  return std::any_cast<const T&>(m.payload);
}

}  // namespace flecc::net
