// Slab pool for protocol payloads — the raw-speed layer's allocator.
//
// Every protocol message used to travel as a value struct boxed into
// `std::any`, costing one heap allocation per send (plus the container
// allocations inside image-carrying payloads). PoolPtr<T> replaces the
// box with an 8-byte refcounted handle: it satisfies libstdc++'s
// small-object criteria (pointer-sized, nothrow-move), so constructing
// a `std::any` from it never allocates, and copying the any (dedup
// windows, retransmission caches) only bumps a refcount — zero-copy
// replay. Slots recycle through a bounded freelist, so in steady state
// acquiring a payload reuses a previous slot *including the capacity of
// its containers* (ObjectImage buffers, echo vectors): the hot
// push/ack path allocates nothing.
//
// Reuse contract: acquire() returns a slot with UNSPECIFIED previous
// content — the sender must assign every field before handing the
// pointer to the fabric (copy-assignment into the stale containers is
// what reuses their capacity). After sending, the slot must be treated
// as immutable: the fabric, dedup windows, and replay caches may all
// hold references to it.
//
// Lifetime: slots carry a pointer to a shared core (the same detached-
// control-block idiom as the obs layer's ring buffers use for sink
// teardown). Destroying the pool frees the freelist immediately;
// payloads still referenced by in-flight messages or dedup windows keep
// their slots alive and self-delete when the last reference drops.
//
// Thread-safety: refcounts are atomic and the freelist is mutex-guarded
// so PoolPtr copies may cross threads (rt::ThreadFabric). Under the
// single-threaded simulator the mutex is uncontended.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace flecc::net {

template <typename T>
class ObjectPool;

namespace detail {

/// Running totals for one pool; see ObjectPool::stats().
struct PoolStats {
  std::uint64_t acquired = 0;   // total acquire() calls
  std::uint64_t reused = 0;     // served from the freelist
  std::uint64_t allocated = 0;  // served by operator new (pool "miss")
  std::uint64_t recycled = 0;   // slots returned to the freelist
  std::uint64_t freed = 0;      // slots deleted (freelist full/pool gone)
};

template <typename T>
struct PoolCore {
  struct Slot {
    std::atomic<std::uint32_t> refs{1};
    PoolCore* core = nullptr;
    T value{};
  };

  std::mutex mu;
  std::vector<Slot*> free;
  PoolStats stats;
  std::size_t max_free;
  bool attached = true;     // false once the owning ObjectPool died
  std::size_t outstanding = 0;  // live slots not on the freelist

  /// Called at refcount zero. Deletes `this` when the pool is gone and
  /// no slot references remain.
  void recycle(Slot* s) {
    bool delete_core = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      --outstanding;
      if (attached && free.size() < max_free) {
        s->refs.store(1, std::memory_order_relaxed);
        free.push_back(s);
        ++stats.recycled;
        s = nullptr;
      } else {
        ++stats.freed;
      }
      delete_core = !attached && outstanding == 0;
    }
    delete s;
    if (delete_core) delete this;
  }
};

}  // namespace detail

/// Refcounted handle to a pooled payload. Pointer-sized and
/// nothrow-movable on purpose: `std::any` stores it inline.
template <typename T>
class PoolPtr {
  using Slot = typename detail::PoolCore<T>::Slot;

 public:
  PoolPtr() noexcept = default;
  PoolPtr(const PoolPtr& o) noexcept : slot_(o.slot_) {
    if (slot_ != nullptr) {
      slot_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PoolPtr(PoolPtr&& o) noexcept : slot_(std::exchange(o.slot_, nullptr)) {}
  PoolPtr& operator=(const PoolPtr& o) noexcept {
    PoolPtr tmp(o);
    std::swap(slot_, tmp.slot_);
    return *this;
  }
  PoolPtr& operator=(PoolPtr&& o) noexcept {
    std::swap(slot_, o.slot_);
    return *this;
  }
  ~PoolPtr() { reset(); }

  void reset() noexcept {
    Slot* s = std::exchange(slot_, nullptr);
    if (s != nullptr &&
        s->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      s->core->recycle(s);
    }
  }

  [[nodiscard]] T* operator->() const noexcept { return &slot_->value; }
  [[nodiscard]] T& operator*() const noexcept { return slot_->value; }
  [[nodiscard]] T* get() const noexcept {
    return slot_ != nullptr ? &slot_->value : nullptr;
  }
  explicit operator bool() const noexcept { return slot_ != nullptr; }

 private:
  friend class ObjectPool<T>;
  explicit PoolPtr(Slot* s) noexcept : slot_(s) {}
  Slot* slot_ = nullptr;
};

/// A pool of T slots with a bounded freelist. Growth on exhaustion is
/// graceful: an empty freelist falls back to operator new (counted as a
/// miss in stats().allocated) rather than failing.
template <typename T>
class ObjectPool {
  using Core = detail::PoolCore<T>;

 public:
  explicit ObjectPool(std::size_t max_free = 64) : core_(new Core) {
    core_->max_free = max_free;
  }
  ~ObjectPool() {
    std::vector<typename Core::Slot*> drop;
    bool delete_core = false;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->attached = false;
      drop.swap(core_->free);
      core_->stats.freed += drop.size();
      delete_core = core_->outstanding == 0;
    }
    for (auto* s : drop) delete s;
    if (delete_core) delete core_;
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Get a slot (refcount 1). Previous content is unspecified — assign
  /// every field before use; stale container capacity is the point.
  [[nodiscard]] PoolPtr<T> acquire() {
    typename Core::Slot* s = nullptr;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      ++core_->stats.acquired;
      ++core_->outstanding;
      if (!core_->free.empty()) {
        s = core_->free.back();
        core_->free.pop_back();
        ++core_->stats.reused;
      } else {
        ++core_->stats.allocated;
      }
    }
    if (s == nullptr) {
      s = new typename Core::Slot;
      s->core = core_;
    }
    return PoolPtr<T>(s);
  }

  [[nodiscard]] detail::PoolStats stats() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->stats;
  }
  [[nodiscard]] std::size_t free_slots() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->free.size();
  }

 private:
  Core* core_;  // self-deletes once detached and unreferenced
};

/// One lazily-created ObjectPool per payload type — the allocator a
/// CacheManager/DirectoryManager owns when message pooling is enabled.
class PoolSet {
 public:
  explicit PoolSet(std::size_t max_free_per_type = 64)
      : max_free_(max_free_per_type) {}

  template <typename T>
  [[nodiscard]] PoolPtr<T> acquire() {
    auto& holder = pools_[std::type_index(typeid(T))];
    if (holder == nullptr) {
      holder = std::make_unique<Holder<T>>(max_free_);
    }
    return static_cast<Holder<T>*>(holder.get())->pool.acquire();
  }

  template <typename T>
  [[nodiscard]] detail::PoolStats stats() const {
    auto it = pools_.find(std::type_index(typeid(T)));
    if (it == pools_.end()) return {};
    return static_cast<const Holder<T>*>(it->second.get())->pool.stats();
  }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T>
  struct Holder : HolderBase {
    explicit Holder(std::size_t max_free) : pool(max_free) {}
    ObjectPool<T> pool;
  };

  std::size_t max_free_;
  std::unordered_map<std::type_index, std::unique_ptr<HolderBase>> pools_;
};

}  // namespace flecc::net
