// The transport abstraction the coherence protocols are written against.
//
// Both runtimes implement it:
//   * net::SimFabric — deterministic discrete-event delivery (tests,
//     benches, figure reproduction);
//   * rt::ThreadFabric — real threads, one mailbox thread per endpoint.
//
// Contract: an endpoint's handlers (`on_message`, timer callbacks) are
// never invoked concurrently with each other. Under SimFabric this is
// trivial (single thread); under ThreadFabric it is guaranteed by the
// per-endpoint mailbox.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>

#include "net/address.hpp"
#include "net/message.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace flecc::obs {
class CausalClock;
}  // namespace flecc::obs

namespace flecc::net {

/// A message handler attached to an address.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Message& m) = 0;
};

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Current time: simulated (SimFabric) or wall-clock-derived
  /// (ThreadFabric). Monotonic, microseconds.
  [[nodiscard]] virtual sim::Time now() const = 0;

  /// Attach an endpoint at `addr`. The endpoint must outlive the binding.
  /// Rebinding an address after unbind() attaches the new endpoint in
  /// its place — directory crash-recovery relies on this (a restarted
  /// DirectoryManager rebinds its predecessor's address; messages that
  /// raced the gap were dropped as "unbound").
  virtual void bind(const Address& addr, Endpoint& ep) = 0;

  /// Detach the endpoint at `addr`; in-flight messages to it are dropped.
  virtual void unbind(const Address& addr) = 0;

  /// Send a message. Never blocks; delivery is asynchronous.
  virtual void send(Address from, Address to, std::string type,
                    std::any payload, std::size_t bytes) = 0;

  /// Run `fn` after `delay`, serialized with `owner`'s message handlers.
  virtual TimerId schedule(const Address& owner, sim::Duration delay,
                           std::function<void()> fn) = 0;

  /// Like schedule(), but for recurring maintenance (trigger polls,
  /// gossip ticks): under SimFabric such timers do not keep
  /// Simulator::run() alive — the run-to-quiescence loop may end with
  /// daemon timers still pending. ThreadFabric treats both identically.
  virtual TimerId schedule_daemon(const Address& owner, sim::Duration delay,
                                  std::function<void()> fn) {
    return schedule(owner, delay, std::move(fn));
  }

  /// Cancel a pending timer; returns true if it had not fired yet.
  virtual bool cancel_timer(TimerId id) = 0;

  /// Register the Lamport clock of the endpoint at `addr` (obs causal
  /// tracing): sends from `addr` tick it into Message::clock, and
  /// deliveries to `addr` observe the sender's stamp. nullptr
  /// unregisters (call before unbind — the fabric does not own the
  /// clock). Default: fabric does not propagate clocks.
  virtual void set_clock(const Address& addr, obs::CausalClock* clock) {
    (void)addr;
    (void)clock;
  }

  /// Traffic counters: msg.sent.<type>, msg.delivered.<type>,
  /// bytes.sent.<type>, msg.dropped.*.
  [[nodiscard]] virtual sim::CounterSet& counters() = 0;
  [[nodiscard]] virtual const sim::CounterSet& counters() const = 0;
};

/// A delivered-message observation for tracing (Figure-2 style output).
struct TraceEntry {
  std::uint64_t msg_id;
  Address from;
  Address to;
  std::string type;
  std::size_t bytes;
  sim::Time sent_at;
  sim::Time delivered_at;
};

using TraceHook = std::function<void(const TraceEntry&)>;

}  // namespace flecc::net
