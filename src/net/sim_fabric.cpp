#include "net/sim_fabric.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace flecc::net {

SimFabric::SimFabric(sim::Simulator& simulator, Topology topology, Config cfg)
    : sim_(simulator),
      topology_(std::move(topology)),
      cfg_(cfg),
      loss_rng_(cfg.seed) {}

void SimFabric::bind(const Address& addr, Endpoint& ep) {
  auto [it, inserted] = endpoints_.emplace(addr, &ep);
  (void)it;
  if (!inserted) {
    throw std::logic_error("SimFabric::bind: address already bound: " +
                           addr.to_string());
  }
}

void SimFabric::unbind(const Address& addr) { endpoints_.erase(addr); }

void SimFabric::set_clock(const Address& addr, obs::CausalClock* clock) {
  if (clock == nullptr) {
    clocks_.erase(addr);
  } else {
    clocks_[addr] = clock;
  }
}

void SimFabric::send(Address from, Address to, std::string type,
                     std::any payload, std::size_t bytes) {
  ++sent_;
  counters_.inc_cat("msg.sent.", type);
  counters_.inc("msg.sent");
  counters_.inc("bytes.sent", bytes);

  if (partition_blocks(from.node, to.node)) {
    counters_.inc("msg.dropped.partition");
    FLECC_TRACE_EVENT(obs_trace_, sim_.now(), obs::EventKind::kMsgDropped,
                      obs::Role::kFabric, obs::agent_key(from), 0,
                      type.c_str(), obs::kDropPartition, obs::agent_key(to));
    return;
  }
  if (cfg_.loss_probability > 0.0 && loss_rng_.chance(cfg_.loss_probability)) {
    counters_.inc("msg.dropped.loss");
    FLECC_TRACE_EVENT(obs_trace_, sim_.now(), obs::EventKind::kMsgDropped,
                      obs::Role::kFabric, obs::agent_key(from), 0,
                      type.c_str(), obs::kDropLoss, obs::agent_key(to));
    return;
  }
  const auto route = topology_.route(from.node, to.node);
  if (!route) {
    counters_.inc("msg.dropped.no_route");
    FLECC_TRACE_EVENT(obs_trace_, sim_.now(), obs::EventKind::kMsgDropped,
                      obs::Role::kFabric, obs::agent_key(from), 0,
                      type.c_str(), obs::kDropNoRoute, obs::agent_key(to));
    return;
  }
  sim::Duration delay =
      (cfg_.model_contention ? contended_delay(*route, bytes)
                             : Topology::transfer_delay(*route, bytes)) +
      cfg_.per_message_overhead;
  if (!endpoint_delay_.empty()) {
    if (auto dit = endpoint_delay_.find(to); dit != endpoint_delay_.end()) {
      delay += dit->second;  // slow-endpoint service-time inflation
    }
  }

  // Flow control: bulk messages toward a destination whose queue is
  // past the high watermark are shed with a synthesized Busy instead of
  // growing the queue. Depth tracking runs whenever a lane classifier
  // is installed so an unbounded baseline still reports its peak.
  bool tracked = false;
  if (cfg_.flow.is_control && !cfg_.flow.is_control(type)) {
    DestFlow& df = dest_flow_[to];
    if (cfg_.flow.enabled()) {
      if (df.shedding && df.outstanding <= cfg_.flow.low()) {
        df.shedding = false;
      }
      if (!df.shedding && df.outstanding >= cfg_.flow.high()) {
        df.shedding = true;
      }
      if (df.shedding) {
        counters_.inc("flow.shed");
        counters_.inc_cat("flow.shed.", type);
        FLECC_TRACE_EVENT(obs_trace_, sim_.now(), obs::EventKind::kMsgDropped,
                          obs::Role::kFabric, obs::agent_key(from), 0,
                          type.c_str(), obs::kDropOverload,
                          obs::agent_key(to));
        if (cfg_.flow.make_busy) {
          Message shed;
          shed.from = from;
          shed.to = to;
          shed.type = std::move(type);
          shed.payload = std::move(payload);
          shed.bytes = bytes;
          BusyReply busy = cfg_.flow.make_busy(shed, cfg_.flow.retry_after);
          if (!busy.type.empty()) {
            // The Busy is a normal control-lane message: it pays the
            // return latency and is subject to loss like anything else.
            send(to, from, std::move(busy.type), std::move(busy.payload),
                 busy.bytes);
          }
        }
        return;
      }
    }
    ++df.outstanding;
    counters_.set_max("flow.queue.peak", df.outstanding);
    tracked = true;
  }

  Message msg;
  msg.id = next_msg_id_++;
  msg.from = from;
  msg.to = to;
  msg.type = std::move(type);
  msg.payload = std::move(payload);
  msg.bytes = bytes;
  if (auto cit = clocks_.find(from); cit != clocks_.end()) {
    msg.clock = cit->second->tick();
  }

  const sim::Time sent_at = sim_.now();
  sim_.schedule_after(delay, [this, msg = std::move(msg), sent_at,
                              tracked]() mutable {
    if (tracked) note_drained(msg.to);
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) {
      counters_.inc("msg.dropped.unbound");
      FLECC_TRACE_EVENT(obs_trace_, sim_.now(), obs::EventKind::kMsgDropped,
                        obs::Role::kFabric, obs::agent_key(msg.from), 0,
                        msg.type.c_str(), obs::kDropUnbound,
                        obs::agent_key(msg.to));
      return;
    }
    ++delivered_;
    counters_.inc_cat("msg.delivered.", msg.type);
    counters_.inc("msg.delivered");
    if (trace_) {
      trace_(TraceEntry{msg.id, msg.from, msg.to, msg.type, msg.bytes,
                        sent_at, sim_.now()});
    }
    if (auto cit = clocks_.find(msg.to); cit != clocks_.end()) {
      cit->second->observe(msg.clock);
    }
    it->second->on_message(msg);
  });
}

void SimFabric::note_drained(const Address& to) {
  auto it = dest_flow_.find(to);
  if (it == dest_flow_.end() || it->second.outstanding == 0) return;
  --it->second.outstanding;
  if (it->second.shedding && it->second.outstanding <= cfg_.flow.low()) {
    it->second.shedding = false;
  }
}

sim::Duration SimFabric::contended_delay(const Route& route,
                                         std::size_t bytes) {
  sim::Time at = sim_.now();
  for (const LinkId link : route.links) {
    const LinkSpec& spec = topology_.link(link);
    auto& free_at = link_free_at_[link];
    const sim::Time start = std::max(at, free_at);
    if (start > at) counters_.inc("msg.queued");
    const auto tx = static_cast<sim::Duration>(
        static_cast<double>(bytes) / spec.bandwidth_bytes_per_us);
    free_at = start + tx;            // the link is busy while transmitting
    at = start + tx + spec.latency;  // then the bits propagate
  }
  return at - sim_.now();
}

void SimFabric::partition(const std::vector<Address>& group_a,
                          const std::vector<Address>& group_b) {
  partition_a_.clear();
  partition_b_.clear();
  for (const Address& a : group_a) partition_a_.insert(a.node);
  for (const Address& b : group_b) partition_b_.insert(b.node);
}

void SimFabric::heal() {
  partition_a_.clear();
  partition_b_.clear();
}

bool SimFabric::partition_blocks(NodeId from, NodeId to) const {
  if (partition_a_.empty() || partition_b_.empty()) return false;
  const bool a_to_b =
      partition_a_.count(from) != 0 && partition_b_.count(to) != 0;
  const bool b_to_a =
      partition_b_.count(from) != 0 && partition_a_.count(to) != 0;
  return a_to_b || b_to_a;
}

TimerId SimFabric::schedule(const Address& owner, sim::Duration delay,
                            std::function<void()> fn) {
  // Under the single-threaded simulator no extra serialization per owner
  // is needed; the owner address matters only for ThreadFabric.
  (void)owner;
  return sim_.schedule_after(delay, std::move(fn));
}

TimerId SimFabric::schedule_daemon(const Address& owner, sim::Duration delay,
                                   std::function<void()> fn) {
  (void)owner;
  return sim_.schedule_after(delay, std::move(fn), /*daemon=*/true);
}

bool SimFabric::cancel_timer(TimerId id) { return sim_.cancel(id); }

void TraceRecorder::attach(SimFabric& fabric) {
  fabric.set_trace_hook(
      [this](const TraceEntry& e) { entries_.push_back(e); });
}

std::string TraceRecorder::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "t=" << e.delivered_at << "us  " << e.from.to_string() << " -> "
       << e.to.to_string() << "  " << e.type << " (" << e.bytes << "B)\n";
  }
  return os.str();
}

}  // namespace flecc::net
