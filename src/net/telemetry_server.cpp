#include "net/telemetry_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/telemetry.hpp"

namespace flecc::net {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string render_response(const HttpResponse& r) {
  std::ostringstream out;
  out << "HTTP/1.1 " << r.status << " " << status_text(r.status) << "\r\n"
      << "Content-Type: " << r.content_type << "\r\n"
      << "Content-Length: " << r.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << r.body;
  return out.str();
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read until the request head terminator (or a size cap — the
/// endpoints take no bodies, so anything longer is garbage).
bool read_head(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

TelemetryServer::TelemetryServer(std::uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
}

TelemetryServer::~TelemetryServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TelemetryServer::route(const std::string& path, Handler handler) {
  routes_.emplace_back(path, std::move(handler));
}

bool TelemetryServer::handle_connection(int fd) {
  std::string head;
  if (!read_head(fd, &head)) {
    ::close(fd);
    return false;
  }
  // Request line: METHOD SP PATH SP VERSION.
  std::istringstream line(head.substr(0, head.find('\n')));
  std::string method, target;
  line >> method >> target;
  // Ignore any query string — the endpoints take no parameters.
  const std::size_t q = target.find('?');
  if (q != std::string::npos) target.resize(q);

  HttpResponse resp;
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else {
    resp.status = 404;
    resp.body = "no such endpoint: " + target + "\n";
    for (const auto& [path, handler] : routes_) {
      if (path == target) {
        resp = handler();
        break;
      }
    }
  }
  send_all(fd, render_response(resp));
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  ++requests_;
  return true;
}

bool TelemetryServer::poll_once(int timeout_ms) {
  if (listen_fd_ < 0) return false;
  pollfd pfd{listen_fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return false;
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return false;
  return handle_connection(fd);
}

void TelemetryServer::serve_background() {
  if (listen_fd_ < 0 || thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] {
    while (!stop_.load()) poll_once(/*timeout_ms=*/50);
  });
}

void TelemetryServer::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void serve_telemetry(obs::TelemetryHub& hub, TelemetryServer& server) {
  obs::TelemetryHub* h = &hub;
  server.route("/metrics", [h] {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = h->render_metrics();
    h->note_http_request(true);
    return r;
  });
  server.route("/healthz", [h] {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = h->render_healthz();
    h->note_http_request(true);
    return r;
  });
  server.route("/varz", [h] {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = h->render_varz();
    h->note_http_request(true);
    return r;
  });
  server.route("/", [h] {
    HttpResponse r;
    r.content_type = "text/html";
    r.body =
        "<html><body><h1>flecc telemetry</h1><ul>"
        "<li><a href=\"/metrics\">/metrics</a> Prometheus exposition</li>"
        "<li><a href=\"/healthz\">/healthz</a> health rollup</li>"
        "<li><a href=\"/varz\">/varz</a> windowed series (JSON)</li>"
        "</ul></body></html>\n";
    h->note_http_request(true);
    return r;
  });
}

std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }

  std::string resp;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (resp.rfind("HTTP/1.1 200", 0) != 0 && resp.rfind("HTTP/1.0 200", 0) != 0) {
    return std::nullopt;
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return resp.substr(body + 4);
}

}  // namespace flecc::net
