// Discrete-event Fabric implementation.
//
// Messages traverse the Topology's minimum-latency route; end-to-end
// delay is propagation + bottleneck transmission + a fixed software
// overhead. Optional loss injection drops messages with a configured
// probability (deterministic given the seed).
#pragma once

#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace flecc::net {

class SimFabric : public Fabric {
 public:
  struct Config {
    /// Per-message software overhead added to every delivery.
    sim::Duration per_message_overhead = sim::usec(50);
    /// Probability that any message is silently dropped (fault injection).
    double loss_probability = 0.0;
    /// Seed for the loss process.
    std::uint64_t seed = 1;
    /// Model per-link transmission contention: each link serializes
    /// transmissions (store-and-forward), so bursts through a shared
    /// link queue behind each other. Off by default: the uncontended
    /// model keeps message-count experiments independent of burst
    /// timing.
    bool model_contention = false;
    /// Bounded per-destination queues + Busy synthesis (net/flow.hpp).
    /// Depth tracking (the flow.queue.peak gauge) engages as soon as
    /// `flow.is_control` is set, even with queue_capacity == 0, so an
    /// unbounded baseline run still reports its peak; shedding needs
    /// flow.enabled(). Default: fully off, zero behavior change.
    FlowControl flow{};
  };

  SimFabric(sim::Simulator& simulator, Topology topology, Config cfg);
  SimFabric(sim::Simulator& simulator, Topology topology)
      : SimFabric(simulator, std::move(topology), Config{}) {}

  [[nodiscard]] sim::Time now() const override { return sim_.now(); }
  void bind(const Address& addr, Endpoint& ep) override;
  void unbind(const Address& addr) override;
  void send(Address from, Address to, std::string type, std::any payload,
            std::size_t bytes) override;
  TimerId schedule(const Address& owner, sim::Duration delay,
                   std::function<void()> fn) override;
  TimerId schedule_daemon(const Address& owner, sim::Duration delay,
                          std::function<void()> fn) override;
  bool cancel_timer(TimerId id) override;
  void set_clock(const Address& addr, obs::CausalClock* clock) override;
  [[nodiscard]] sim::CounterSet& counters() override { return counters_; }
  [[nodiscard]] const sim::CounterSet& counters() const override {
    return counters_;
  }

  /// The underlying graph (mutable for fault injection in tests).
  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const Topology& topology() const noexcept {
    return topology_;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Observe every delivered message (nullptr to disable).
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Protocol-event sink (obs layer, not owned; nullptr disables). The
  /// fabric contributes msg_dropped events with the drop reason — the
  /// one protocol fact endpoints cannot see themselves.
  void set_trace_buffer(obs::TraceBuffer* buffer) { obs_trace_ = buffer; }

  /// Loss injection control.
  void set_loss_probability(double p) { cfg_.loss_probability = p; }

  /// Inflate delivery latency into one endpoint (a "slow DM" for
  /// overload experiments): every message to `addr` pays `extra` on top
  /// of the modeled network delay. 0 removes the inflation.
  void set_endpoint_delay(const Address& addr, sim::Duration extra) {
    if (extra <= 0) {
      endpoint_delay_.erase(addr);
    } else {
      endpoint_delay_[addr] = extra;
    }
  }

  /// Bulk (sheddable-lane) messages currently queued toward `addr`;
  /// 0 unless Config::flow installs a lane classifier.
  [[nodiscard]] std::size_t outstanding_to(const Address& addr) const {
    auto it = dest_flow_.find(addr);
    return it == dest_flow_.end() ? 0 : it->second.outstanding;
  }

  /// Cut every link between the two address groups: messages whose
  /// endpoints fall on opposite sides are dropped
  /// (counter `msg.dropped.partition`) until heal() is called. Grouping
  /// is by node — ports on one node are never split. Calling partition()
  /// again replaces the previous partition.
  void partition(const std::vector<Address>& group_a,
                 const std::vector<Address>& group_b);
  /// Restore connectivity cut by partition().
  void heal();
  /// True while a partition() cut is in effect.
  [[nodiscard]] bool partitioned() const noexcept {
    return !partition_a_.empty() && !partition_b_.empty();
  }

  /// Total protocol messages successfully delivered so far.
  [[nodiscard]] std::uint64_t delivered_count() const noexcept {
    return delivered_;
  }
  /// Total messages sent (delivered or not).
  [[nodiscard]] std::uint64_t sent_count() const noexcept { return sent_; }

 private:
  /// End-to-end delay under the contention model: per hop, wait for the
  /// link to free up, transmit (bytes/bandwidth), then propagate; link
  /// busy times advance as a side effect.
  sim::Duration contended_delay(const Route& route, std::size_t bytes);

  [[nodiscard]] bool partition_blocks(NodeId from, NodeId to) const;

  /// Per-destination bulk-queue state (flow control). `shedding` is the
  /// watermark hysteresis latch: set at high(), cleared at low().
  struct DestFlow {
    std::size_t outstanding = 0;
    bool shedding = false;
  };

  /// A tracked bulk delivery completed toward `to`.
  void note_drained(const Address& to);

  sim::Simulator& sim_;
  Topology topology_;
  Config cfg_;
  sim::Rng loss_rng_;
  std::set<NodeId> partition_a_;
  std::set<NodeId> partition_b_;
  std::unordered_map<LinkId, sim::Time> link_free_at_;
  std::unordered_map<Address, Endpoint*, AddressHash> endpoints_;
  std::unordered_map<Address, obs::CausalClock*, AddressHash> clocks_;
  std::unordered_map<Address, DestFlow, AddressHash> dest_flow_;
  std::unordered_map<Address, sim::Duration, AddressHash> endpoint_delay_;
  sim::CounterSet counters_;
  TraceHook trace_;
  obs::TraceBuffer* obs_trace_ = nullptr;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Collects TraceEntries for later rendering (used by examples/tests).
class TraceRecorder {
 public:
  /// Install onto a fabric; entries accumulate in order of delivery.
  void attach(SimFabric& fabric);
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  void clear() { entries_.clear(); }
  /// Render "t=... A -> B type (bytes)" lines.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace flecc::net
