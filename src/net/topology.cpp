#include "net/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace flecc::net {

NodeId Topology::add_node(std::string name,
                          std::map<std::string, std::string> attrs) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "node" + std::to_string(id);
  nodes_.push_back(NodeSpec{std::move(name), std::move(attrs)});
  adjacency_.emplace_back();
  route_cache_.clear();
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, LinkSpec spec) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Topology::add_link: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("Topology::add_link: self link");
  }
  if (spec.latency < 0 || spec.bandwidth_bytes_per_us <= 0.0) {
    throw std::invalid_argument("Topology::add_link: bad link spec");
  }
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(spec);
  link_ends_.emplace_back(a, b);
  adjacency_[a].push_back(Edge{b, id});
  adjacency_[b].push_back(Edge{a, id});
  route_cache_.clear();
  return id;
}

const NodeSpec& Topology::node(NodeId id) const { return nodes_.at(id); }
const LinkSpec& Topology::link(LinkId id) const { return links_.at(id); }

std::pair<NodeId, NodeId> Topology::link_ends(LinkId id) const {
  return link_ends_.at(id);
}

void Topology::set_link_up(LinkId id, bool up) {
  links_.at(id).up = up;
  route_cache_.clear();
}

void Topology::set_link_secure(LinkId id, bool secure) {
  links_.at(id).secure = secure;
  route_cache_.clear();
}

void Topology::set_link_latency(LinkId id, sim::Duration latency) {
  if (latency < 0) {
    throw std::invalid_argument("Topology::set_link_latency: negative");
  }
  links_.at(id).latency = latency;
  route_cache_.clear();
}

std::optional<Route> Topology::route(NodeId src, NodeId dst) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("Topology::route: unknown node");
  }
  if (src == dst) {
    return Route{{}, 0, std::numeric_limits<double>::infinity(), true};
  }
  const auto key = std::make_pair(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    return it->second;
  }

  // Dijkstra over latency.
  constexpr sim::Duration kInf = sim::kTimeInfinity;
  std::vector<sim::Duration> dist(nodes_.size(), kInf);
  std::vector<std::optional<Edge>> prev(nodes_.size());
  using QEntry = std::pair<sim::Duration, NodeId>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  dist[src] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    if (u == dst) break;
    for (const Edge& e : adjacency_[u]) {
      const LinkSpec& ls = links_[e.link];
      if (!ls.up) continue;
      const sim::Duration nd = d + ls.latency;
      if (nd < dist[e.peer]) {
        dist[e.peer] = nd;
        prev[e.peer] = Edge{u, e.link};
        pq.emplace(nd, e.peer);
      }
    }
  }

  std::optional<Route> result;
  if (dist[dst] != kInf) {
    Route r;
    r.latency = dist[dst];
    r.min_bandwidth = std::numeric_limits<double>::infinity();
    r.all_secure = true;
    for (NodeId at = dst; at != src;) {
      const Edge& back = *prev[at];
      r.links.push_back(back.link);
      const LinkSpec& ls = links_[back.link];
      r.min_bandwidth = std::min(r.min_bandwidth, ls.bandwidth_bytes_per_us);
      r.all_secure = r.all_secure && ls.secure;
      at = back.peer;
    }
    std::reverse(r.links.begin(), r.links.end());
    result = std::move(r);
  }
  route_cache_[key] = result;
  return result;
}

sim::Duration Topology::transfer_delay(const Route& r, std::size_t bytes) {
  if (r.links.empty()) return 0;  // local delivery
  const double tx =
      static_cast<double>(bytes) / r.min_bandwidth;  // microseconds
  return r.latency + static_cast<sim::Duration>(tx);
}

Topology Topology::lan(std::size_t n, LinkSpec host_link,
                       std::vector<NodeId>* hosts_out) {
  Topology t;
  std::vector<NodeId> hosts;
  hosts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hosts.push_back(t.add_node("host" + std::to_string(i)));
  }
  const NodeId hub = t.add_node("switch");
  for (const NodeId h : hosts) {
    // Each host-switch hop contributes half the desired host-to-host
    // latency so pairs see `host_link.latency` end to end.
    LinkSpec half = host_link;
    half.latency = host_link.latency / 2;
    t.add_link(h, hub, half);
  }
  if (hosts_out != nullptr) *hosts_out = std::move(hosts);
  return t;
}

}  // namespace flecc::net
