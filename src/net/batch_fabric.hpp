// Fabric-level send batching — one framed hop per message train.
//
// BatchFabric is a decorator over any inner Fabric. Messages between
// the same pair of nodes are coalesced into a single BatchFrame that
// traverses the inner fabric as ONE message (one per-hop software
// overhead, one loss/partition roll, one `msg.sent` hop), then fan out
// to their individual endpoints on arrival. A pending batch is flushed
// when it reaches `max_batch` messages or when its `batch_window` timer
// fires, whichever comes first; a batch holding a single message is
// sent unwrapped (no framing overhead, exactly the unbatched path).
//
// Semantics preserved:
//   * per-type traffic counters (`msg.sent.<type>`, `msg.delivered.<type>`,
//     `bytes.sent`) still count every sub-message exactly once — only
//     the bare `msg.sent`/`msg.delivered` hop counters see frames;
//   * causal clocks: a sub-message is stamped from the sender's clock
//     when it enters the batch, and the receiver's clock observes each
//     sub-message stamp at unbatch, so Lamport causality is identical
//     to the unbatched fabric;
//   * frame delivery replays sub-messages in send order, so ordering
//     within one (sender node, receiver node) train is FIFO — stronger
//     than the inner fabric's size-dependent delivery, never weaker in
//     a way the protocol could observe (the protocol already tolerates
//     reordering);
//   * a dropped frame drops its whole train (correlated loss); the
//     reliability layer's retransmissions recover exactly as they do
//     for independent losses.
//
// Determinism: flush timers run on the inner fabric's scheduler and the
// batch keyed state is touched only from sends and those timers, so a
// simulated run is bit-for-bit reproducible. A mutex guards the pending
// state for rt::ThreadFabric use.
//
// Counters (on the inner fabric's CounterSet, `net.` prefix when
// aggregated by the benches — see OBSERVABILITY.md):
//   batch.frames          frames sent (multi-message flushes)
//   batch.subs            messages that traveled inside frames
//   batch.coalesced       hops saved (subs - frames)
//   batch.flush.window    flushes forced by the window timer
//   batch.flush.capacity  flushes forced by max_batch
//   batch.flush.pressure  flushes forced by the max_buffered bound
//   batch.flush.single    single-message flushes sent unwrapped
//   batch.sub.unbound     sub-messages whose endpoint vanished mid-hop
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "net/fabric.hpp"

namespace flecc::net {

/// Wire type tag of a batch frame on the inner fabric.
inline constexpr const char* kBatchFrame = "net.batch.frame";
/// Terminal port frames travel between (one per node, lazily bound);
/// chosen far outside the application port range.
inline constexpr PortId kBatchPort = 0xfffffffe;
/// Simulated framing overhead added to the sum of sub-message bytes.
inline constexpr std::size_t kBatchHeaderBytes = 16;

/// The payload of a kBatchFrame message: the coalesced sub-messages,
/// in send order, each with its original addressing/type/clock intact.
struct BatchFrame {
  std::vector<Message> subs;
};

class BatchFabric : public Fabric {
 public:
  struct Config {
    /// How long a pending batch may wait for more traffic to coalesce
    /// with before it is flushed. Also the latency cost of batching.
    sim::Duration batch_window = sim::usec(25);
    /// Flush immediately once this many messages are pending.
    std::size_t max_batch = 16;
    /// Bound on messages buffered across ALL pending trains (0 =
    /// unbounded). Reaching it force-flushes the train being appended
    /// to — backpressure by flushing early, never by dropping — so the
    /// decorator's buffer cannot grow without limit under overload.
    std::size_t max_buffered = 0;
  };

  BatchFabric(Fabric& inner, Config cfg);
  ~BatchFabric() override;

  BatchFabric(const BatchFabric&) = delete;
  BatchFabric& operator=(const BatchFabric&) = delete;

  [[nodiscard]] sim::Time now() const override { return inner_.now(); }
  void bind(const Address& addr, Endpoint& ep) override;
  void unbind(const Address& addr) override;
  void send(Address from, Address to, std::string type, std::any payload,
            std::size_t bytes) override;
  TimerId schedule(const Address& owner, sim::Duration delay,
                   std::function<void()> fn) override {
    return inner_.schedule(owner, delay, std::move(fn));
  }
  TimerId schedule_daemon(const Address& owner, sim::Duration delay,
                          std::function<void()> fn) override {
    return inner_.schedule_daemon(owner, delay, std::move(fn));
  }
  bool cancel_timer(TimerId id) override { return inner_.cancel_timer(id); }
  void set_clock(const Address& addr, obs::CausalClock* clock) override;
  [[nodiscard]] sim::CounterSet& counters() override {
    return inner_.counters();
  }
  [[nodiscard]] const sim::CounterSet& counters() const override {
    return inner_.counters();
  }

  [[nodiscard]] Fabric& inner() noexcept { return inner_; }

  /// Flush every pending batch now (tests / orderly shutdown).
  void flush_all();

 private:
  /// One pending train: same (sender node -> receiver node) pair.
  struct PendKey {
    NodeId from_node;
    NodeId to_node;
    friend auto operator<=>(const PendKey&, const PendKey&) = default;
  };
  struct Pending {
    std::vector<Message> subs;
    TimerId timer = kInvalidTimerId;
  };

  /// Receives kBatchFrame messages at a node's terminal port and fans
  /// the sub-messages out to their bound endpoints.
  class Unbatcher : public Endpoint {
   public:
    explicit Unbatcher(BatchFabric& parent) : parent_(parent) {}
    void on_message(const Message& m) override { parent_.deliver_frame(m); }

   private:
    BatchFabric& parent_;
  };

  enum class FlushReason { kWindow, kCapacity, kPressure };
  void flush(PendKey key, FlushReason reason);
  void deliver_frame(const Message& frame);
  /// Bind the shared unbatcher at `node`'s terminal port once.
  void ensure_terminal(NodeId node);

  Fabric& inner_;
  Config cfg_;
  std::mutex mu_;
  std::map<PendKey, Pending> pending_;
  std::size_t buffered_ = 0;  // subs across all pending trains
  std::map<Address, Endpoint*> endpoints_;
  std::map<Address, obs::CausalClock*> clocks_;
  std::set<NodeId> terminals_;
  Unbatcher unbatcher_;
  std::uint64_t next_sub_id_ = 1;
};

}  // namespace flecc::net
