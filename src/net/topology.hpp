// The simulated network graph: nodes and attributed links.
//
// Links carry latency (one-way propagation), bandwidth (bytes per
// simulated microsecond), a `secure` flag (used by the PSF planner to
// decide where encryptor pairs are needed), and an `up` flag (fault
// injection). Routing picks the minimum-latency path (Dijkstra); the
// route cache is invalidated by any topology mutation.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace flecc::net {

using LinkId = std::uint32_t;

struct LinkSpec {
  sim::Duration latency = sim::usec(100);  // one-way propagation delay
  double bandwidth_bytes_per_us = 1000.0;  // ~1 GB/s default
  bool secure = true;
  bool up = true;
};

struct NodeSpec {
  std::string name;
  /// Free-form attributes consumed by the PSF planner ("domain", ...).
  std::map<std::string, std::string> attrs;
};

struct Route {
  std::vector<LinkId> links;     // links traversed, in order
  sim::Duration latency = 0;     // summed propagation latency
  double min_bandwidth = 0.0;    // bottleneck bandwidth along the path
  bool all_secure = true;        // every traversed link is secure
};

class Topology {
 public:
  /// Add a node; returns its id (dense, starting at 0).
  NodeId add_node(std::string name = {},
                  std::map<std::string, std::string> attrs = {});

  /// Add a bidirectional link between two existing nodes.
  LinkId add_link(NodeId a, NodeId b, LinkSpec spec = {});

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }

  [[nodiscard]] const NodeSpec& node(NodeId id) const;
  [[nodiscard]] const LinkSpec& link(LinkId id) const;
  [[nodiscard]] std::pair<NodeId, NodeId> link_ends(LinkId id) const;

  /// Mutators (invalidate the route cache).
  void set_link_up(LinkId id, bool up);
  void set_link_secure(LinkId id, bool secure);
  void set_link_latency(LinkId id, sim::Duration latency);

  /// Minimum-latency route between two nodes over `up` links.
  /// nullopt if the nodes are disconnected. src == dst yields an empty
  /// route with zero latency and infinite bandwidth.
  [[nodiscard]] std::optional<Route> route(NodeId src, NodeId dst) const;

  /// Convenience: end-to-end delay for a message of `bytes` along the
  /// route: propagation + bottleneck transmission time.
  [[nodiscard]] static sim::Duration transfer_delay(const Route& r,
                                                    std::size_t bytes);

  /// Build a single-switch LAN: `n` hosts, all pairs connected through a
  /// hub node (added last). Returns the host ids.
  static Topology lan(std::size_t n, LinkSpec host_link = {},
                      std::vector<NodeId>* hosts_out = nullptr);

 private:
  struct Edge {
    NodeId peer;
    LinkId link;
  };

  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::vector<std::pair<NodeId, NodeId>> link_ends_;
  std::vector<std::vector<Edge>> adjacency_;
  mutable std::map<std::pair<NodeId, NodeId>, std::optional<Route>>
      route_cache_;
};

}  // namespace flecc::net
