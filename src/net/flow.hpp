// Fabric-level flow control: bounded queues with watermark hysteresis
// and Busy synthesis.
//
// Every fabric (SimFabric, ThreadFabric, BatchFabric) historically let
// its pending set grow without limit, so a hot-object storm turned into
// unbounded memory growth instead of a bounded, observable brown-out.
// A FlowControl config bounds the per-destination queue and, instead of
// silently dropping excess *bulk* traffic, answers the sender with a
// protocol-level Busy carrying a retry_after hint.
//
// The net layer stays protocol-agnostic: it does not know what a
// "flecc.busy" looks like or which message types are sheddable. Both
// decisions are injected as hooks (`is_control`, `make_busy`); the
// canonical Flecc wiring lives in core/flow_control.hpp
// (flow::make_fabric_flow) and is installed by the testbed.
//
// Defaults leave flow control OFF (queue_capacity == 0): the lossless
// default path adds zero messages and zero behavior change.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace flecc::net {

struct Message;

/// A reply synthesized by a fabric on behalf of an overloaded
/// destination. An empty `type` means "no reply" (the shed message is
/// not one the protocol can answer — it is dropped with a counter).
struct BusyReply {
  std::string type;
  std::any payload;
  std::size_t bytes = 0;
};

/// Per-destination queue bound with high/low watermark hysteresis.
///
/// Shedding engages when a destination's outstanding (queued, not yet
/// delivered) depth reaches the high watermark and disengages once it
/// drains to the low watermark, so a queue hovering at the boundary
/// does not flap. Control-lane messages (acks, heartbeats, recovery,
/// grants — anything `is_control` says yes to) are NEVER shed: they are
/// what drains the queue. Bulk messages over the bound are answered
/// with `make_busy` instead of being enqueued.
struct FlowControl {
  /// Hard bound on sheddable (bulk) messages queued toward one
  /// destination. 0 = unbounded: flow control off (the default).
  std::size_t queue_capacity = 0;
  /// Shedding engages at this depth; 0 means queue_capacity.
  std::size_t high_watermark = 0;
  /// Shedding disengages at this depth; 0 means high()/2.
  std::size_t low_watermark = 0;
  /// retry_after hint stamped into synthesized Busy replies.
  sim::Duration retry_after = sim::msec(100);
  /// Lane classifier: true = control lane (never shed). Unset treats
  /// everything as control, i.e. nothing is ever shed.
  std::function<bool(std::string_view type)> is_control;
  /// Busy factory: given the shed message, build the protocol-level
  /// reply sent back to its sender. Unset = shed silently (counted).
  std::function<BusyReply(const Message& shed, sim::Duration retry_after)>
      make_busy;

  [[nodiscard]] bool enabled() const noexcept { return queue_capacity > 0; }
  [[nodiscard]] std::size_t high() const noexcept {
    return high_watermark != 0 ? high_watermark : queue_capacity;
  }
  [[nodiscard]] std::size_t low() const noexcept {
    return low_watermark != 0 ? low_watermark : high() / 2;
  }
  /// True when `type` rides the control lane (or no classifier is set).
  [[nodiscard]] bool control(std::string_view type) const {
    return !is_control || is_control(type);
  }
};

}  // namespace flecc::net
