#include "net/batch_fabric.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace flecc::net {

BatchFabric::BatchFabric(Fabric& inner, Config cfg)
    : inner_(inner), cfg_(cfg), unbatcher_(*this) {
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
}

BatchFabric::~BatchFabric() {
  // Pending batches die with the fabric, like any in-flight message at
  // teardown. Terminal bindings are ours to release; pass-through
  // endpoint bindings belong to their owners.
  std::vector<TimerId> timers;
  std::vector<NodeId> terminals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, p] : pending_) {
      if (p.timer != kInvalidTimerId) timers.push_back(p.timer);
    }
    pending_.clear();
    buffered_ = 0;
    terminals.assign(terminals_.begin(), terminals_.end());
    terminals_.clear();
  }
  for (const TimerId t : timers) inner_.cancel_timer(t);
  for (const NodeId n : terminals) inner_.unbind(Address{n, kBatchPort});
}

void BatchFabric::bind(const Address& addr, Endpoint& ep) {
  inner_.bind(addr, ep);  // throws on duplicates, same as unbatched
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[addr] = &ep;
}

void BatchFabric::unbind(const Address& addr) {
  inner_.unbind(addr);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(addr);
}

void BatchFabric::set_clock(const Address& addr, obs::CausalClock* clock) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (clock == nullptr) {
      clocks_.erase(addr);
    } else {
      clocks_[addr] = clock;
    }
  }
  inner_.set_clock(addr, clock);
}

void BatchFabric::ensure_terminal(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!terminals_.insert(node).second) return;
  }
  inner_.bind(Address{node, kBatchPort}, unbatcher_);
}

void BatchFabric::send(Address from, Address to, std::string type,
                       std::any payload, std::size_t bytes) {
  const PendKey key{from.node, to.node};
  FlushReason why = FlushReason::kWindow;
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Message sub;
    sub.id = next_sub_id_++;
    sub.from = from;
    sub.to = to;
    sub.type = std::move(type);
    sub.payload = std::move(payload);
    sub.bytes = bytes;
    // Stamp the sender's clock as the message enters the batch; the
    // inner fabric only sees the frame (whose terminal has no clock).
    if (auto it = clocks_.find(from); it != clocks_.end()) {
      sub.clock = it->second->tick();
    }
    Pending& p = pending_[key];
    p.subs.push_back(std::move(sub));
    ++buffered_;
    if (p.subs.size() >= cfg_.max_batch) {
      flush_now = true;
      why = FlushReason::kCapacity;
    } else if (cfg_.max_buffered != 0 && buffered_ >= cfg_.max_buffered) {
      // Total buffered bound hit: flush the train being appended to
      // rather than letting the decorator's buffer grow under overload.
      flush_now = true;
      why = FlushReason::kPressure;
    } else if (p.timer == kInvalidTimerId) {
      // Plain (non-daemon) timer: a pending batch must hold a
      // run-to-quiescence simulation open until it is delivered.
      p.timer = inner_.schedule(from, cfg_.batch_window, [this, key] {
        flush(key, FlushReason::kWindow);
      });
    }
  }
  if (flush_now) flush(key, why);
}

void BatchFabric::flush(PendKey key, FlushReason reason) {
  std::vector<Message> subs;
  TimerId timer = kInvalidTimerId;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(key);
    if (it == pending_.end()) return;
    subs.swap(it->second.subs);
    timer = it->second.timer;
    pending_.erase(it);
    buffered_ -= subs.size();
  }
  if (timer != kInvalidTimerId && reason != FlushReason::kWindow) {
    inner_.cancel_timer(timer);
  }
  if (subs.empty()) return;

  sim::CounterSet& ctr = inner_.counters();
  if (subs.size() == 1) {
    // No train to coalesce: skip the framing entirely. The inner fabric
    // counts this send (and re-stamps the clock — monotonic, harmless).
    ctr.inc("batch.flush.single");
    Message& m = subs.front();
    inner_.send(m.from, m.to, std::move(m.type), std::move(m.payload),
                m.bytes);
    return;
  }

  ctr.inc(reason == FlushReason::kWindow     ? "batch.flush.window"
          : reason == FlushReason::kPressure ? "batch.flush.pressure"
                                             : "batch.flush.capacity");
  ctr.inc("batch.frames");
  ctr.inc("batch.subs", subs.size());
  ctr.inc("batch.coalesced", subs.size() - 1);
  std::size_t frame_bytes = kBatchHeaderBytes;
  for (const Message& s : subs) {
    frame_bytes += s.bytes;
    // Per-type accounting stays per sub-message; only the inner
    // fabric's bare hop counters (msg.sent, bytes.sent) see the frame.
    ctr.inc_cat("msg.sent.", s.type);
  }
  ensure_terminal(key.to_node);
  BatchFrame frame;
  frame.subs = std::move(subs);
  inner_.send(Address{key.from_node, kBatchPort},
              Address{key.to_node, kBatchPort}, kBatchFrame,
              std::any(std::move(frame)), frame_bytes);
}

void BatchFabric::flush_all() {
  std::vector<PendKey> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(pending_.size());
    for (const auto& [key, p] : pending_) keys.push_back(key);
  }
  for (const PendKey& key : keys) flush(key, FlushReason::kCapacity);
}

void BatchFabric::deliver_frame(const Message& m) {
  const BatchFrame& frame = payload_as<BatchFrame>(m);
  sim::CounterSet& ctr = inner_.counters();
  for (const Message& sub : frame.subs) {
    Endpoint* ep = nullptr;
    obs::CausalClock* clock = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto it = endpoints_.find(sub.to); it != endpoints_.end()) {
        ep = it->second;
      }
      if (auto it = clocks_.find(sub.to); it != clocks_.end()) {
        clock = it->second;
      }
    }
    if (ep == nullptr) {
      // The endpoint unbound while the frame was in flight — the same
      // fate a direct message to it would have met.
      ctr.inc("batch.sub.unbound");
      ctr.inc("msg.dropped.unbound");
      continue;
    }
    ctr.inc_cat("msg.delivered.", sub.type);
    if (clock != nullptr) clock->observe(sub.clock);
    ep->on_message(sub);
  }
}

}  // namespace flecc::net
