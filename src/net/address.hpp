// Network addressing.
//
// An endpoint lives at (node, port). Nodes are vertices of the simulated
// topology; ports distinguish endpoints colocated on one node (e.g. a
// component and its directory manager).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace flecc::net {

using NodeId = std::uint32_t;
using PortId = std::uint32_t;

struct Address {
  NodeId node = 0;
  PortId port = 0;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(node) + ":" + std::to_string(port);
  }
};

struct AddressHash {
  std::size_t operator()(const Address& a) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(a.node) << 32) | a.port);
  }
};

}  // namespace flecc::net
