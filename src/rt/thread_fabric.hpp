// ThreadFabric — the Fabric contract over real threads.
//
// Every bound endpoint gets a mailbox drained by its own worker thread,
// so an endpoint's handlers are serialized (the Fabric contract) while
// different endpoints run genuinely concurrently. A dedicated scheduler
// thread applies message delays and timer deadlines.
//
// The protocol classes (DirectoryManager, CacheManager, baselines) are
// written against net::Fabric only, so the exact same code that runs
// deterministically under SimFabric runs multi-threaded here. Latency
// modeling is intentionally simple (one fixed per-message delay);
// ThreadFabric exists to exercise true concurrency, not to model
// networks — use SimFabric for figure reproduction.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace flecc::rt {

class ThreadFabric : public net::Fabric {
 public:
  struct Config {
    /// Fixed one-way delivery delay applied to every message.
    sim::Duration message_delay = sim::usec(0);
    /// Optional topology: when set, each message additionally pays its
    /// route's propagation + transmission delay (as under SimFabric's
    /// uncontended model), and unroutable messages are dropped.
    std::optional<net::Topology> topology;
    /// Probability that any message is silently dropped (fault
    /// injection; exercises the reliability layer under real threads).
    double loss_probability = 0.0;
    /// Seed for the loss process. Note drop *decisions* are
    /// deterministic per draw, but thread interleaving makes the draw
    /// order — hence the run — nondeterministic; use SimFabric for
    /// bit-reproducible loss experiments.
    std::uint64_t loss_seed = 1;
    /// Protocol-event sink (obs layer, not owned; nullptr disables).
    /// The fabric contributes msg_dropped events; emission is
    /// serialized internally (sends happen on many threads).
    obs::TraceBuffer* trace = nullptr;
    /// Bounded mailboxes + Busy synthesis (net/flow.hpp). When
    /// enabled, a mailbox past its high watermark refuses bulk-lane
    /// messages — the sender gets a synthesized Busy instead of the
    /// queue growing without limit — while control-lane messages
    /// (classified by flow.is_control) always get through. Default:
    /// off, mailboxes stay unbounded.
    net::FlowControl flow{};
  };

  explicit ThreadFabric(Config cfg);
  ThreadFabric() : ThreadFabric(Config{}) {}
  ~ThreadFabric() override;

  ThreadFabric(const ThreadFabric&) = delete;
  ThreadFabric& operator=(const ThreadFabric&) = delete;

  [[nodiscard]] sim::Time now() const override;
  void bind(const net::Address& addr, net::Endpoint& ep) override;
  void unbind(const net::Address& addr) override;
  void send(net::Address from, net::Address to, std::string type,
            std::any payload, std::size_t bytes) override;
  net::TimerId schedule(const net::Address& owner, sim::Duration delay,
                        std::function<void()> fn) override;
  bool cancel_timer(net::TimerId id) override;
  void set_clock(const net::Address& addr, obs::CausalClock* clock) override;

  /// Thread-safe internally; read totals only after quiescing (e.g.
  /// after drain()).
  [[nodiscard]] sim::CounterSet& counters() override { return counters_; }
  [[nodiscard]] const sim::CounterSet& counters() const override {
    return counters_;
  }

  /// Locked copy of the counters, safe to take mid-run from any thread
  /// (live telemetry samples through this; the references above are
  /// only stable after drain()).
  [[nodiscard]] sim::CounterSet counters_snapshot() const {
    std::lock_guard<std::mutex> lock(counters_mu_);
    return counters_;
  }

  /// Block until no messages or due timers are in flight and every
  /// mailbox is empty. Pending *future* timers do not count.
  void drain();

  /// Deepest any mailbox has ever been (all lanes). Also published as
  /// the flow.queue.peak counter; read after drain() for a stable value.
  [[nodiscard]] std::size_t peak_mailbox_depth() const noexcept {
    return peak_depth_.load(std::memory_order_relaxed);
  }

  /// Run `task` on the mailbox thread of the endpoint bound at `addr`,
  /// serialized with its handlers. This is how application threads must
  /// invoke endpoint APIs (e.g. CacheManager::start_use_image): protocol
  /// objects are not internally locked — their thread-safety comes from
  /// the per-endpoint mailbox. Dropped (with a counter) if unbound.
  void post(const net::Address& addr, std::function<void()> task) {
    inflight_.fetch_add(1);
    post_to(addr, std::move(task));
  }

 private:
  class Mailbox {
   public:
    /// `capacity`/`low` bound the bulk lane (0 = unbounded); `peak`
    /// is the fabric-wide high-water gauge this mailbox raises.
    Mailbox(net::Endpoint& ep, std::atomic<std::int64_t>& inflight,
            std::condition_variable& idle_cv, std::mutex& idle_mu,
            std::size_t capacity, std::size_t low,
            std::atomic<std::size_t>& peak);
    ~Mailbox();
    void post(std::function<void()> task);
    /// Enqueue a delivery. Control-lane messages always enter; bulk
    /// messages are refused (false) while the watermark latch is shut:
    /// set when the queue reaches `capacity`, cleared once it drains
    /// to `low`. The caller synthesizes the Busy on refusal. `clock`
    /// (nullable) is the receiver's causal clock, observed on the
    /// mailbox thread just before the handler.
    [[nodiscard]] bool post_message(std::shared_ptr<const net::Message> msg,
                                    bool control, obs::CausalClock* clock);
    void stop();

   private:
    void loop();

    net::Endpoint& ep_;
    std::atomic<std::int64_t>& inflight_;
    std::condition_variable& idle_cv_;
    std::mutex& idle_mu_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    const std::size_t capacity_;
    const std::size_t low_;
    bool shedding_ = false;
    std::atomic<std::size_t>& peak_;
    std::thread thread_;
  };

  struct TimedTask {
    std::chrono::steady_clock::time_point due;
    net::TimerId id;
    net::Address owner;
    std::function<void()> fn;
  };

  void scheduler_loop();
  void post_to(const net::Address& addr, std::function<void()> task);
  /// Registered Lamport clock of `addr`, or nullptr. The registry is
  /// mutex-guarded (sends run on many threads); the clock itself is
  /// atomic, so tick/observe need no further locking.
  obs::CausalClock* clock_of(const net::Address& addr);
  void enqueue_timed(TimedTask task);
  std::shared_ptr<Mailbox> lookup(const net::Address& addr);
  void count(std::string_view name, std::uint64_t by = 1);
  void count_cat(std::string_view prefix, std::string_view suffix);
  /// Emit a msg_dropped trace event; serialized under counters_mu_
  /// because the obs ring is single-writer and sends run on any thread.
  void trace_drop(const net::Address& from, const net::Address& to,
                  const std::string& type, std::uint64_t reason);
  void note_idle_if_done();

  Config cfg_;
  std::mutex topo_mu_;  // guards cfg_.topology's route cache
  std::mutex loss_mu_;  // guards loss_rng_
  std::mutex clocks_mu_;  // guards clocks_ (not the clocks themselves)
  std::unordered_map<net::Address, obs::CausalClock*, net::AddressHash>
      clocks_;
  sim::Rng loss_rng_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex endpoints_mu_;
  std::unordered_map<net::Address, std::shared_ptr<Mailbox>,
                     net::AddressHash>
      endpoints_;

  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::multimap<std::chrono::steady_clock::time_point, TimedTask> timed_;
  std::unordered_map<net::TimerId, bool> cancelled_;  // live timer ids
  net::TimerId next_timer_id_ = 1;
  bool stopping_ = false;
  std::thread scheduler_;

  // quiescence accounting: messages + due timer callbacks not yet run
  std::atomic<std::int64_t> inflight_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  mutable std::mutex counters_mu_;
  sim::CounterSet counters_;
  std::atomic<std::uint64_t> next_msg_id_{1};
  std::atomic<std::size_t> peak_depth_{0};
};

/// Run an async operation and block the calling thread until its
/// completion callback fires. For Figure-3-style linear application
/// code over ThreadFabric (never call from a mailbox thread).
template <typename Start>
void wait_for(Start&& start) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  start([&] {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
}

}  // namespace flecc::rt
