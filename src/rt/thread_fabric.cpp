#include "rt/thread_fabric.hpp"

#include <utility>

namespace flecc::rt {

using Clock = std::chrono::steady_clock;

// ---- Mailbox ---------------------------------------------------------------

ThreadFabric::Mailbox::Mailbox(net::Endpoint& ep,
                               std::atomic<std::int64_t>& inflight,
                               std::condition_variable& idle_cv,
                               std::mutex& idle_mu, std::size_t capacity,
                               std::size_t low,
                               std::atomic<std::size_t>& peak)
    : ep_(ep),
      inflight_(inflight),
      idle_cv_(idle_cv),
      idle_mu_(idle_mu),
      capacity_(capacity),
      low_(low),
      peak_(peak) {
  thread_ = std::thread([this] { loop(); });
}

ThreadFabric::Mailbox::~Mailbox() { stop(); }

void ThreadFabric::Mailbox::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadFabric::Mailbox::post_message(
    std::shared_ptr<const net::Message> msg, bool control,
    obs::CausalClock* clock) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return true;  // swallowed, like post() on teardown
    const std::size_t depth = queue_.size();
    if (capacity_ != 0) {
      if (shedding_ && depth <= low_) shedding_ = false;
      if (!shedding_ && depth >= capacity_) shedding_ = true;
      if (shedding_ && !control) return false;
    }
    std::size_t cur = peak_.load(std::memory_order_relaxed);
    while (depth + 1 > cur && !peak_.compare_exchange_weak(
                                  cur, depth + 1, std::memory_order_relaxed)) {
    }
    // The receiver clock is observed on the mailbox thread right before
    // the handler runs, so handler trace emissions always see a clock
    // past the sender's stamp.
    queue_.push_back([this, msg = std::move(msg), clock] {
      if (clock != nullptr) clock->observe(msg->clock);
      ep_.on_message(*msg);
    });
  }
  cv_.notify_one();
  return true;
}

void ThreadFabric::Mailbox::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) {
    if (thread_.get_id() == std::this_thread::get_id()) {
      thread_.detach();  // endpoint tore itself down from a handler
    } else {
      thread_.join();
    }
  }
}

void ThreadFabric::Mailbox::loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // drop queued tasks on teardown
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    if (inflight_.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(idle_mu_);
      idle_cv_.notify_all();
    }
  }
}

// ---- ThreadFabric ------------------------------------------------------------

ThreadFabric::ThreadFabric(Config cfg)
    : cfg_(cfg), loss_rng_(cfg.loss_seed), epoch_(Clock::now()) {
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

ThreadFabric::~ThreadFabric() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    stopping_ = true;
  }
  sched_cv_.notify_one();
  if (scheduler_.joinable()) scheduler_.join();
  std::lock_guard<std::mutex> lock(endpoints_mu_);
  for (auto& [addr, mb] : endpoints_) {
    (void)addr;
    mb->stop();
  }
  endpoints_.clear();
}

sim::Time ThreadFabric::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void ThreadFabric::bind(const net::Address& addr, net::Endpoint& ep) {
  std::lock_guard<std::mutex> lock(endpoints_mu_);
  const std::size_t capacity = cfg_.flow.enabled() ? cfg_.flow.high() : 0;
  const std::size_t low = cfg_.flow.enabled() ? cfg_.flow.low() : 0;
  auto [it, inserted] = endpoints_.emplace(
      addr, std::make_shared<Mailbox>(ep, inflight_, idle_cv_, idle_mu_,
                                      capacity, low, peak_depth_));
  (void)it;
  if (!inserted) {
    throw std::logic_error("ThreadFabric::bind: address already bound: " +
                           addr.to_string());
  }
}

void ThreadFabric::unbind(const net::Address& addr) {
  std::shared_ptr<Mailbox> mb;
  {
    std::lock_guard<std::mutex> lock(endpoints_mu_);
    auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) return;
    mb = std::move(it->second);
    endpoints_.erase(it);
  }
  mb->stop();
}

std::shared_ptr<ThreadFabric::Mailbox> ThreadFabric::lookup(
    const net::Address& addr) {
  std::lock_guard<std::mutex> lock(endpoints_mu_);
  auto it = endpoints_.find(addr);
  return it == endpoints_.end() ? nullptr : it->second;
}

void ThreadFabric::count(std::string_view name, std::uint64_t by) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.inc(name, by);
}

void ThreadFabric::count_cat(std::string_view prefix,
                             std::string_view suffix) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  counters_.inc_cat(prefix, suffix);
}

void ThreadFabric::set_clock(const net::Address& addr,
                             obs::CausalClock* clock) {
  std::lock_guard<std::mutex> lock(clocks_mu_);
  if (clock == nullptr) {
    clocks_.erase(addr);
  } else {
    clocks_[addr] = clock;
  }
}

obs::CausalClock* ThreadFabric::clock_of(const net::Address& addr) {
  std::lock_guard<std::mutex> lock(clocks_mu_);
  auto it = clocks_.find(addr);
  return it == clocks_.end() ? nullptr : it->second;
}

void ThreadFabric::trace_drop(const net::Address& from, const net::Address& to,
                              const std::string& type, std::uint64_t reason) {
#if FLECC_TRACE_ENABLED
  if (cfg_.trace == nullptr) return;
  std::lock_guard<std::mutex> lock(counters_mu_);
  cfg_.trace->emit(obs::make_event(now(), obs::EventKind::kMsgDropped,
                                   obs::Role::kFabric, obs::agent_key(from),
                                   0, type.c_str(), reason,
                                   obs::agent_key(to)));
#else
  (void)from;
  (void)to;
  (void)type;
  (void)reason;
#endif
}

void ThreadFabric::note_idle_if_done() {
  if (inflight_.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadFabric::post_to(const net::Address& addr,
                           std::function<void()> task) {
  auto mb = lookup(addr);
  if (!mb) {
    count("task.dropped.unbound");
    note_idle_if_done();
    return;
  }
  mb->post(std::move(task));
}

void ThreadFabric::send(net::Address from, net::Address to, std::string type,
                        std::any payload, std::size_t bytes) {
  count_cat("msg.sent.", type);
  count("msg.sent");
  count("bytes.sent", bytes);

  if (cfg_.loss_probability > 0.0) {
    bool drop;
    {
      std::lock_guard<std::mutex> lock(loss_mu_);
      drop = loss_rng_.chance(cfg_.loss_probability);
    }
    if (drop) {
      count("msg.dropped.loss");
      trace_drop(from, to, type, obs::kDropLoss);
      return;
    }
  }

  auto message = std::make_shared<net::Message>();
  message->id = next_msg_id_.fetch_add(1);
  message->from = from;
  message->to = to;
  message->type = std::move(type);
  message->payload = std::move(payload);
  message->bytes = bytes;
  if (obs::CausalClock* c = clock_of(from)) message->clock = c->tick();

  sim::Duration delay = cfg_.message_delay;
  if (cfg_.topology.has_value()) {
    // Topology's route cache is not thread-safe; serialize lookups.
    std::lock_guard<std::mutex> lock(topo_mu_);
    const auto route = cfg_.topology->route(from.node, to.node);
    if (!route.has_value()) {
      count("msg.dropped.no_route");
      trace_drop(from, to, message->type, obs::kDropNoRoute);
      return;
    }
    delay += net::Topology::transfer_delay(*route, bytes);
  }

  inflight_.fetch_add(1);
  auto do_post = [this, message] {
    auto mb = lookup(message->to);
    if (!mb) {
      count("msg.dropped.unbound");
      trace_drop(message->from, message->to, message->type,
                 obs::kDropUnbound);
      note_idle_if_done();
      return;
    }
    const bool control = cfg_.flow.control(message->type);
    if (!mb->post_message(message, control, clock_of(message->to))) {
      // Mailbox full: shed the bulk message and answer its sender with
      // a synthesized Busy (a regular control-lane send) instead of
      // letting the queue grow without limit.
      count("flow.shed");
      count_cat("flow.shed.", message->type);
      trace_drop(message->from, message->to, message->type,
                 obs::kDropOverload);
      note_idle_if_done();
      if (cfg_.flow.make_busy) {
        net::BusyReply busy =
            cfg_.flow.make_busy(*message, cfg_.flow.retry_after);
        if (!busy.type.empty()) {
          send(message->to, message->from, std::move(busy.type),
               std::move(busy.payload), busy.bytes);
        }
      }
      return;
    }
    count_cat("msg.delivered.", message->type);
    count("msg.delivered");
  };

  if (delay <= 0) {
    do_post();
    return;
  }
  TimedTask tt;
  tt.due = Clock::now() + std::chrono::microseconds(delay);
  tt.id = 0;  // messages are not cancellable
  tt.owner = to;
  tt.fn = std::move(do_post);
  enqueue_timed(std::move(tt));
}

net::TimerId ThreadFabric::schedule(const net::Address& owner,
                                    sim::Duration delay,
                                    std::function<void()> fn) {
  TimedTask tt;
  tt.due = Clock::now() + std::chrono::microseconds(delay);
  tt.owner = owner;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    tt.id = next_timer_id_++;
  }
  const net::TimerId id = tt.id;
  tt.fn = [this, owner, fn = std::move(fn)] {
    inflight_.fetch_add(1);
    post_to(owner, fn);
  };
  enqueue_timed(std::move(tt));
  return id;
}

bool ThreadFabric::cancel_timer(net::TimerId id) {
  if (id == net::kInvalidTimerId) return false;
  std::lock_guard<std::mutex> lock(sched_mu_);
  for (auto it = timed_.begin(); it != timed_.end(); ++it) {
    if (it->second.id == id) {
      timed_.erase(it);
      return true;
    }
  }
  return false;
}

void ThreadFabric::enqueue_timed(TimedTask task) {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    const auto due = task.due;
    timed_.emplace(due, std::move(task));
  }
  sched_cv_.notify_one();
}

void ThreadFabric::scheduler_loop() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  for (;;) {
    if (stopping_) return;
    if (timed_.empty()) {
      sched_cv_.wait(lock, [this] { return stopping_ || !timed_.empty(); });
      continue;
    }
    const auto due = timed_.begin()->first;
    if (Clock::now() < due) {
      sched_cv_.wait_until(lock, due);
      continue;
    }
    TimedTask task = std::move(timed_.begin()->second);
    timed_.erase(timed_.begin());
    lock.unlock();
    task.fn();
    lock.lock();
  }
}

void ThreadFabric::drain() {
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] { return inflight_.load() == 0; });
  }
  // Publish the mailbox high-water mark now that the fabric is quiet.
  const std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
  if (peak > 0) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.set_max("flow.queue.peak", peak);
  }
}

}  // namespace flecc::rt
