#include "obs/prom.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace flecc::obs::prom {

namespace {

bool name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool name_char(char c) {
  return name_start(c) || (c >= '0' && c <= '9');
}
bool label_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool label_char(char c) {
  return label_start(c) || (c >= '0' && c <= '9');
}

}  // namespace

std::string metric_name(std::string_view dotted) {
  std::string out = "flecc_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) out += name_char(c) ? c : '_';
  return out;
}

std::string label_key(std::string_view raw) {
  if (raw.empty()) return "_";
  std::string out;
  out.reserve(raw.size() + 1);
  if (!label_start(raw.front())) out += '_';
  for (char c : raw) out += label_char(c) ? c : '_';
  return out;
}

std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

namespace {

// The labeled-family table. Order matters: the first family whose
// dotted path appears as a whole segment run wins, so put the more
// specific (longer) families before any shorter family they contain.
// Every entry here must be reflected in OBSERVABILITY.md's Prometheus
// section.
struct FamilyRule {
  std::string_view family;  // dotted family base
  std::string_view key;     // label key carrying the trailing segment
};
constexpr FamilyRule kFamilyRules[] = {
    {"trace.msgs.dropped", "reason"},  // before msg.dropped-alikes
    {"trace.trigger.fired", "trigger"},
    {"op.latency_us", "op"},  // monitor.op.latency_us.<op> summaries
    {"flow.shed", "type"},
    {"msg.sent", "type"},
    {"msg.delivered", "type"},
    {"msg.dropped", "reason"},
    {"msg.duplicate", "type"},
    {"msg.stale", "type"},
    {"batch.flush", "reason"},
    {"breaker", "event"},  // closed/open/half_open transitions + degrade/restore
    {"shed.pull", "scope"},
    {"migrate.aborted", "reason"},
    {"alerts.active", "alert"},
};

}  // namespace

std::optional<FamilySplit> split_family(std::string_view dotted) {
  for (const FamilyRule& rule : kFamilyRules) {
    // Accept the family at the start of the name or after a '.', and
    // require a non-empty trailing segment after it.
    std::size_t pos = 0;
    while (true) {
      pos = dotted.find(rule.family, pos);
      if (pos == std::string_view::npos) break;
      const bool starts_ok = pos == 0 || dotted[pos - 1] == '.';
      const std::size_t after = pos + rule.family.size();
      const bool ends_ok = after + 1 < dotted.size() && dotted[after] == '.';
      if (starts_ok && ends_ok) {
        FamilySplit split;
        split.base = std::string(dotted.substr(0, after));
        split.label_k = std::string(rule.key);
        split.label_v = std::string(dotted.substr(after + 1));
        return split;
      }
      ++pos;
    }
  }
  return std::nullopt;
}

// ---- Writer -----------------------------------------------------------

Writer::Family* Writer::find(const std::string& name) {
  for (Family& f : families_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void Writer::family(const std::string& name, std::string_view type,
                    std::string_view help) {
  if (find(name) != nullptr) return;
  families_.push_back({name, std::string(type), std::string(help), {}});
}

void Writer::sample(const std::string& family, Labels labels, double value) {
  child_sample(family, "", std::move(labels), value);
}

void Writer::child_sample(const std::string& family, std::string_view suffix,
                          Labels labels, double value) {
  Family* f = find(family);
  if (f == nullptr) {
    families_.push_back({family, "untyped", "", {}});
    f = &families_.back();
  }
  std::sort(labels.begin(), labels.end());
  for (SampleLine& line : f->samples) {
    if (line.suffix == suffix && line.labels == labels) {
      line.value += value;  // merged collision (two names, one series)
      return;
    }
  }
  f->samples.push_back({std::string(suffix), std::move(labels), value});
}

std::string Writer::str() const {
  std::ostringstream out;
  for (const Family& f : families_) {
    if (!f.help.empty()) {
      out << "# HELP " << f.name << " " << escape_help(f.help) << "\n";
    }
    out << "# TYPE " << f.name << " " << f.type << "\n";
    for (const SampleLine& s : f.samples) {
      out << f.name << s.suffix;
      if (!s.labels.empty()) {
        out << "{";
        bool first = true;
        for (const auto& [k, v] : s.labels) {
          if (!first) out << ",";
          first = false;
          out << k << "=\"" << escape_label_value(v) << "\"";
        }
        out << "}";
      }
      out << " " << format_value(s.value) << "\n";
    }
  }
  return out.str();
}

// ---- validate ---------------------------------------------------------

std::string Issue::to_string() const {
  std::ostringstream out;
  out << "line " << line << ": " << message;
  return out.str();
}

namespace {

struct FamilyState {
  bool has_help = false;
  bool has_type = false;
  bool has_samples = false;
  bool finished = false;  // a different family's samples came after ours
  std::string type = "untyped";
};

struct Validator {
  std::vector<Issue> issues;
  std::map<std::string, FamilyState> families;
  std::set<std::string> seen_series;
  std::string current_family;
  std::size_t line_no = 0;

  void issue(std::string msg) { issues.push_back({line_no, std::move(msg)}); }

  static bool valid_name(std::string_view s) {
    if (s.empty() || !name_start(s[0])) return false;
    return std::all_of(s.begin(), s.end(), name_char);
  }
  static bool valid_label_key(std::string_view s) {
    if (s.empty() || !label_start(s[0])) return false;
    return std::all_of(s.begin(), s.end(), label_char);
  }

  // Map a sample name to the family it belongs to: summary/histogram
  // children attach to their declared parent.
  std::string family_of(const std::string& name) {
    static constexpr std::string_view kChildSuffixes[] = {"_sum", "_count",
                                                          "_bucket"};
    for (std::string_view suffix : kChildSuffixes) {
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        const std::string base = name.substr(0, name.size() - suffix.size());
        auto it = families.find(base);
        if (it != families.end() &&
            (it->second.type == "summary" || it->second.type == "histogram")) {
          return base;
        }
      }
    }
    return name;
  }

  void enter_family(const std::string& fam) {
    if (fam == current_family) return;
    if (!current_family.empty()) families[current_family].finished = true;
    FamilyState& st = families[fam];
    if (st.finished) {
      issue("family '" + fam + "' reopened after other families' samples");
      st.finished = false;
    }
    current_family = fam;
  }

  void on_meta(const std::string& kind, std::string_view rest) {
    // rest = "<name> <payload>"
    const std::size_t sp = rest.find(' ');
    const std::string name(rest.substr(0, sp));
    if (!valid_name(name)) {
      issue("# " + kind + " with invalid metric name '" + name + "'");
      return;
    }
    enter_family(name);
    FamilyState& st = families[name];
    if (st.has_samples) {
      issue("# " + kind + " for '" + name + "' after its samples");
    }
    if (kind == "HELP") {
      if (st.has_help) issue("duplicate # HELP for '" + name + "'");
      st.has_help = true;
      const std::string_view help =
          sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
      for (std::size_t i = 0; i < help.size(); ++i) {
        if (help[i] != '\\') continue;
        if (i + 1 >= help.size() || (help[i + 1] != '\\' && help[i + 1] != 'n')) {
          issue("invalid escape in HELP text for '" + name + "'");
          break;
        }
        ++i;
      }
    } else {
      if (st.has_type) issue("duplicate # TYPE for '" + name + "'");
      st.has_type = true;
      std::string type(sp == std::string_view::npos ? std::string_view{}
                                                    : rest.substr(sp + 1));
      static const std::set<std::string> kTypes = {"counter", "gauge", "summary",
                                                   "histogram", "untyped"};
      if (kTypes.count(type) == 0) {
        issue("unknown TYPE '" + type + "' for '" + name + "'");
        type = "untyped";
      }
      if (type == "counter" && name.size() >= 6 &&
          name.compare(name.size() - 6, 6, "_total") != 0) {
        issue("counter '" + name + "' does not end in _total");
      }
      st.type = type;
    }
  }

  // Parse the label block starting after '{' at `pos`; returns the
  // index one past the closing '}' or npos on error (issue reported).
  std::size_t parse_labels(const std::string& line, std::size_t pos,
                           Labels* out) {
    std::set<std::string> keys;
    while (true) {
      while (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos < line.size() && line[pos] == '}') return pos + 1;
      std::size_t key_end = pos;
      while (key_end < line.size() && label_char(line[key_end])) ++key_end;
      const std::string key = line.substr(pos, key_end - pos);
      if (!valid_label_key(key)) {
        issue("invalid label key '" + key + "'");
        return std::string::npos;
      }
      if (!keys.insert(key).second) issue("duplicate label key '" + key + "'");
      pos = key_end;
      if (pos >= line.size() || line[pos] != '=') {
        issue("expected '=' after label key '" + key + "'");
        return std::string::npos;
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        issue("label value for '" + key + "' is not quoted");
        return std::string::npos;
      }
      ++pos;
      std::string value;
      bool closed = false;
      while (pos < line.size()) {
        const char c = line[pos];
        if (c == '\\') {
          if (pos + 1 >= line.size()) break;
          const char e = line[pos + 1];
          if (e != '\\' && e != '"' && e != 'n') {
            issue("invalid escape '\\" + std::string(1, e) +
                  "' in label value for '" + key + "'");
          }
          value += e == 'n' ? '\n' : e;
          pos += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++pos;
          break;
        }
        value += c;
        ++pos;
      }
      if (!closed) {
        issue("unterminated label value for '" + key + "'");
        return std::string::npos;
      }
      out->push_back({key, value});
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') return pos + 1;
      issue("expected ',' or '}' after label value for '" + key + "'");
      return std::string::npos;
    }
  }

  void on_sample(const std::string& line) {
    std::size_t pos = 0;
    while (pos < line.size() && name_char(line[pos])) ++pos;
    const std::string name = line.substr(0, pos);
    if (!valid_name(name)) {
      issue("invalid metric name '" + name + "'");
      return;
    }
    Labels labels;
    if (pos < line.size() && line[pos] == '{') {
      pos = parse_labels(line, pos + 1, &labels);
      if (pos == std::string::npos) return;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      issue("expected ' ' before the value of '" + name + "'");
      return;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t val_end = line.find(' ', pos);
    const std::string value_str =
        line.substr(pos, val_end == std::string::npos ? std::string::npos
                                                      : val_end - pos);
    char* end = nullptr;
    std::strtod(value_str.c_str(), &end);
    const bool special = value_str == "+Inf" || value_str == "-Inf" ||
                         value_str == "Inf" || value_str == "NaN";
    if (!special && (value_str.empty() || end != value_str.c_str() +
                                                     value_str.size())) {
      issue("unparsable value '" + value_str + "' for '" + name + "'");
    }
    if (val_end != std::string::npos) {
      const std::string ts = line.substr(val_end + 1);
      if (ts.empty() ||
          !std::all_of(ts.begin(), ts.end(), [](char c) {
            return (c >= '0' && c <= '9') || c == '-' || c == '+';
          })) {
        issue("trailing garbage (bad timestamp?) after value of '" + name +
              "'");
      }
    }

    const std::string fam = family_of(name);
    enter_family(fam);
    FamilyState& st = families[fam];
    st.has_samples = true;

    if (st.type == "histogram" && name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      const bool has_le =
          std::any_of(labels.begin(), labels.end(),
                      [](const Label& l) { return l.first == "le"; });
      if (!has_le) issue("histogram bucket '" + name + "' missing le label");
    }
    if (st.type == "summary" && fam == name) {
      for (const auto& [k, v] : labels) {
        if (k != "quantile") continue;
        char* qend = nullptr;
        const double q = std::strtod(v.c_str(), &qend);
        if (qend != v.c_str() + v.size() || q < 0.0 || q > 1.0) {
          issue("summary quantile '" + v + "' outside [0, 1] on '" + name +
                "'");
        }
      }
    }

    std::sort(labels.begin(), labels.end());
    std::string series = name;
    for (const auto& [k, v] : labels) {
      if (st.type == "summary" && k == "quantile") series += "|quantile=" + v;
      else if (st.type == "histogram" && k == "le") series += "|le=" + v;
      else series += "|" + k + "=" + v;
    }
    if (!seen_series.insert(series).second) {
      issue("duplicate series '" + name + "' with identical labels");
    }
  }

  void run(std::string_view text) {
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t nl = text.find('\n', start);
      const bool last = nl == std::string_view::npos;
      const std::string line(text.substr(start, last ? std::string_view::npos
                                                     : nl - start));
      ++line_no;
      start = last ? text.size() + 1 : nl + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        if (line.rfind("# HELP ", 0) == 0) on_meta("HELP", line.substr(7));
        else if (line.rfind("# TYPE ", 0) == 0) on_meta("TYPE", line.substr(7));
        // any other '#' line is a free-form comment
        continue;
      }
      on_sample(line);
    }
  }
};

}  // namespace

std::vector<Issue> validate(std::string_view text) {
  Validator v;
  v.run(text);
  return v.issues;
}

}  // namespace flecc::obs::prom
