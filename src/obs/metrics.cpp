#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace flecc::obs {

void MetricsRegistry::absorb(const sim::CounterSet& src,
                             const std::string& prefix) {
  for (const auto& [name, value] : src.all()) {
    counters_.inc(prefix + name, value);
  }
}

sim::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, sim::Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  stats_[name].add(value);
  samples_[name].add(value);
  auto it = hists_.find(name);
  if (it != hists_.end()) it->second.add(value);
}

const sim::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : counters_.all()) {
    out << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, st] : stats_) {
    out << "stat," << name << ",count," << st.count() << "\n";
    out << "stat," << name << ",mean," << fmt(st.mean()) << "\n";
    out << "stat," << name << ",stddev," << fmt(st.stddev()) << "\n";
    out << "stat," << name << ",min," << fmt(st.min()) << "\n";
    out << "stat," << name << ",max," << fmt(st.max()) << "\n";
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    out << "quantile," << name << ",p50," << fmt(ss.quantile(0.5)) << "\n";
    out << "quantile," << name << ",p90," << fmt(ss.quantile(0.9)) << "\n";
    out << "quantile," << name << ",p99," << fmt(ss.quantile(0.99)) << "\n";
    out << "quantile," << name << ",p999," << fmt(ss.quantile(0.999)) << "\n";
  }
  return out.str();
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

namespace {

/// "op.pull.latency_us" -> "flecc_op_pull_latency_us"; anything
/// outside [a-zA-Z0-9_] becomes '_' so exporters never see an
/// invalid metric name.
std::string prom_name(const std::string& name) {
  std::string out = "flecc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_.all()) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " summary\n";
    out << p << "{quantile=\"0.5\"} " << fmt(ss.quantile(0.5)) << "\n";
    out << p << "{quantile=\"0.9\"} " << fmt(ss.quantile(0.9)) << "\n";
    out << p << "{quantile=\"0.99\"} " << fmt(ss.quantile(0.99)) << "\n";
    out << p << "{quantile=\"0.999\"} " << fmt(ss.quantile(0.999)) << "\n";
    out << p << "_sum " << fmt(ss.mean() * static_cast<double>(ss.count()))
        << "\n";
    out << p << "_count " << ss.count() << "\n";
  }
  for (const auto& [name, st] : stats_) {
    if (samples_.count(name) != 0) continue;  // already a summary
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << fmt(st.mean()) << "\n";
  }
  for (const auto& [name, h] : hists_) {
    if (h.total() == 0) continue;
    const std::string p = prom_name(name) + "_hist";
    out << "# TYPE " << p << " histogram\n";
    std::size_t cum = h.underflow();
    for (std::size_t i = 0; i < h.bins(); ++i) {
      cum += h.bin_count(i);
      out << p << "_bucket{le=\"" << fmt(h.bin_lo(i + 1)) << "\"} " << cum
          << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.total() << "\n";
    out << p << "_count " << h.total() << "\n";
  }
  return out.str();
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_prometheus();
  return static_cast<bool>(f);
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream out;
  if (!counters_.all().empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters_.all()) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    out << name << ": n=" << ss.count() << " mean=" << fmt(ss.mean())
        << " p50=" << fmt(ss.quantile(0.5)) << " p99=" << fmt(ss.quantile(0.99))
        << " max=" << fmt(ss.quantile(1.0)) << "\n";
  }
  for (const auto& [name, h] : hists_) {
    if (h.total() == 0) continue;
    out << name << " histogram:\n" << h.to_string() << "\n";
  }
  return out.str();
}

}  // namespace flecc::obs
