#include "obs/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/prom.hpp"

namespace flecc::obs {

void MetricsRegistry::absorb(const sim::CounterSet& src,
                             const std::string& prefix) {
  for (const auto& [name, value] : src.all()) {
    counters_.inc(prefix + name, value);
  }
}

sim::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, sim::Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  stats_[name].add(value);
  samples_[name].add(value);
  auto it = hists_.find(name);
  if (it != hists_.end()) it->second.add(value);
}

const sim::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : counters_.all()) {
    out << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, st] : stats_) {
    out << "stat," << name << ",count," << st.count() << "\n";
    out << "stat," << name << ",mean," << fmt(st.mean()) << "\n";
    out << "stat," << name << ",stddev," << fmt(st.stddev()) << "\n";
    out << "stat," << name << ",min," << fmt(st.min()) << "\n";
    out << "stat," << name << ",max," << fmt(st.max()) << "\n";
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    out << "quantile," << name << ",p50," << fmt(ss.quantile(0.5)) << "\n";
    out << "quantile," << name << ",p90," << fmt(ss.quantile(0.9)) << "\n";
    out << "quantile," << name << ",p99," << fmt(ss.quantile(0.99)) << "\n";
    out << "quantile," << name << ",p999," << fmt(ss.quantile(0.999)) << "\n";
  }
  return out.str();
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string MetricsRegistry::to_prometheus() const {
  prom::Writer w;
  for (const auto& [name, value] : counters_.all()) {
    const auto split = prom::split_family(name);
    const std::string& base = split ? split->base : name;
    const std::string fam = prom::metric_name(base) + "_total";
    w.family(fam, "counter",
             "Cumulative count of '" + base + "'; see OBSERVABILITY.md.");
    prom::Labels labels;
    if (split) {
      labels.push_back({prom::label_key(split->label_k), split->label_v});
    }
    w.sample(fam, std::move(labels), static_cast<double>(value));
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    const auto split = prom::split_family(name);
    const std::string& base = split ? split->base : name;
    const std::string fam = prom::metric_name(base);
    w.family(fam, "summary",
             "Distribution of '" + base + "'; see OBSERVABILITY.md.");
    prom::Labels dims;
    if (split) {
      dims.push_back({prom::label_key(split->label_k), split->label_v});
    }
    for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
      prom::Labels labels = dims;
      labels.push_back({"quantile", q});
      w.sample(fam, std::move(labels), ss.quantile(std::atof(q)));
    }
    w.child_sample(fam, "_sum", dims,
                   ss.mean() * static_cast<double>(ss.count()));
    w.child_sample(fam, "_count", dims, static_cast<double>(ss.count()));
  }
  for (const auto& [name, st] : stats_) {
    if (samples_.count(name) != 0) continue;  // already a summary
    const std::string fam = prom::metric_name(name);
    w.family(fam, "gauge", "Mean of '" + name + "'; see OBSERVABILITY.md.");
    w.sample(fam, {}, st.mean());
  }
  for (const auto& [name, h] : hists_) {
    if (h.total() == 0) continue;
    const std::string fam = prom::metric_name(name) + "_hist";
    w.family(fam, "histogram",
             "Linear-bin histogram of '" + name + "'; see OBSERVABILITY.md.");
    std::size_t cum = h.underflow();
    for (std::size_t i = 0; i < h.bins(); ++i) {
      cum += h.bin_count(i);
      w.child_sample(fam, "_bucket", {{"le", fmt(h.bin_lo(i + 1))}},
                     static_cast<double>(cum));
    }
    w.child_sample(fam, "_bucket", {{"le", "+Inf"}},
                   static_cast<double>(h.total()));
    w.child_sample(fam, "_count", {}, static_cast<double>(h.total()));
  }
  return w.str();
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_prometheus();
  return static_cast<bool>(f);
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream out;
  if (!counters_.all().empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters_.all()) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  for (const auto& [name, ss] : samples_) {
    if (ss.empty()) continue;
    out << name << ": n=" << ss.count() << " mean=" << fmt(ss.mean())
        << " p50=" << fmt(ss.quantile(0.5)) << " p99=" << fmt(ss.quantile(0.99))
        << " max=" << fmt(ss.quantile(1.0)) << "\n";
  }
  for (const auto& [name, h] : hists_) {
    if (h.total() == 0) continue;
    out << name << " histogram:\n" << h.to_string() << "\n";
  }
  return out.str();
}

}  // namespace flecc::obs
