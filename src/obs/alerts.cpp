#include "obs/alerts.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace flecc::obs {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

bool fail(std::string* error, std::string_view msg) {
  if (error != nullptr) *error = std::string(msg);
  return false;
}

const char* cmp_str(AlertRule::Cmp c) {
  switch (c) {
    case AlertRule::Cmp::kGt: return ">";
    case AlertRule::Cmp::kGe: return ">=";
    case AlertRule::Cmp::kLt: return "<";
    case AlertRule::Cmp::kLe: return "<=";
  }
  return "?";
}

}  // namespace

std::optional<AlertRule> AlertRule::parse(std::string_view text,
                                          std::string* error) {
  AlertRule r;
  text = trim(text);
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    fail(error, "missing ':' after the rule name");
    return std::nullopt;
  }
  r.name = std::string(trim(text.substr(0, colon)));
  if (r.name.empty()) {
    fail(error, "empty rule name");
    return std::nullopt;
  }

  std::istringstream in{std::string(text.substr(colon + 1))};
  std::string metric, cmp, threshold;
  if (!(in >> metric >> cmp >> threshold)) {
    fail(error, "expected '<metric>[/s] <cmp> <threshold>' after ':'");
    return std::nullopt;
  }
  if (metric.size() > 2 && metric.compare(metric.size() - 2, 2, "/s") == 0) {
    r.rate = true;
    metric.resize(metric.size() - 2);
  }
  r.metric = metric;
  if (cmp == ">") r.cmp = Cmp::kGt;
  else if (cmp == ">=") r.cmp = Cmp::kGe;
  else if (cmp == "<") r.cmp = Cmp::kLt;
  else if (cmp == "<=") r.cmp = Cmp::kLe;
  else {
    fail(error, "comparison must be one of > >= < <=, got '" + cmp + "'");
    return std::nullopt;
  }
  char* end = nullptr;
  r.threshold = std::strtod(threshold.c_str(), &end);
  if (end != threshold.c_str() + threshold.size()) {
    fail(error, "unparsable threshold '" + threshold + "'");
    return std::nullopt;
  }

  std::string word;
  if (in >> word) {
    std::string n;
    if (word != "for" || !(in >> n)) {
      fail(error, "expected 'for <N>' after the threshold");
      return std::nullopt;
    }
    const long sustain = std::strtol(n.c_str(), &end, 10);
    if (end != n.c_str() + n.size() || sustain < 1) {
      fail(error, "sustain count must be a positive integer, got '" + n + "'");
      return std::nullopt;
    }
    r.sustain = static_cast<std::size_t>(sustain);
    if (in >> word) {
      fail(error, "trailing garbage '" + word + "'");
      return std::nullopt;
    }
  }
  return r;
}

std::string AlertRule::to_string() const {
  std::ostringstream out;
  out << name << ": " << metric << (rate ? "/s" : "") << " " << cmp_str(cmp)
      << " " << threshold;
  if (sustain != 1) out << " for " << sustain;
  return out.str();
}

bool AlertRule::breaches(double value) const {
  switch (cmp) {
    case Cmp::kGt: return value > threshold;
    case Cmp::kGe: return value >= threshold;
    case Cmp::kLt: return value < threshold;
    case Cmp::kLe: return value <= threshold;
  }
  return false;
}

bool AlertEngine::add_rule(std::string_view text, std::string* error) {
  auto rule = AlertRule::parse(text, error);
  if (!rule) return false;
  add_rule(std::move(*rule));
  return true;
}

void AlertEngine::evaluate(const TelemetryWindow& w) {
  struct Change {
    EventKind kind;
    std::string rule;
    SeriesId series;
    double value;
  };
  std::vector<Change> changes;
  std::vector<ActiveAlert> next_active;

  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const AlertRule& rule = rules_[ri];
    // Visit every labeled series of the watched family. A series that
    // disappears from the window (restarted agent) resets its streak
    // and clears its alert below, because absent keys keep breaching=0.
    std::map<SeriesId, double> observed;
    const SeriesId lo{rule.metric, {}};
    for (auto it = w.series.lower_bound(lo);
         it != w.series.end() && it->first.name == rule.metric; ++it) {
      const SeriesSample& s = it->second;
      observed[it->first] = rule.rate ? s.rate : s.value;
    }
    // Update streaks for observed series; sweep stale streak entries
    // of this rule so cleared series emit alert_cleared exactly once.
    for (auto it = streaks_.lower_bound({ri, SeriesId{}});
         it != streaks_.end() && it->first.first == ri; ++it) {
      if (observed.count(it->first.second) == 0 && it->second.active) {
        changes.push_back({EventKind::kAlertCleared, rule.name,
                           it->first.second, 0.0});
        it->second = Streak{};
      }
    }
    for (const auto& [id, value] : observed) {
      Streak& st = streaks_[{ri, id}];
      if (rule.breaches(value)) {
        ++st.breaching;
        if (!st.active && st.breaching >= rule.sustain) {
          st.active = true;
          changes.push_back({EventKind::kAlertRaised, rule.name, id, value});
        }
      } else {
        st.breaching = 0;
        if (st.active) {
          st.active = false;
          changes.push_back({EventKind::kAlertCleared, rule.name, id, value});
        }
      }
      if (st.active) {
        next_active.push_back({rule.name, id, value, w.end, w.index});
      }
    }
  }

  std::uint64_t raised = 0, cleared = 0;
  for (const Change& c : changes) {
    if (c.kind == EventKind::kAlertRaised) ++raised;
    else ++cleared;
    if (trace_ != nullptr) {
      trace_->emit(make_event(w.end, c.kind, Role::kOther, /*agent=*/0,
                              /*span=*/0, c.rule.c_str(), /*a=*/w.index,
                              /*b=*/0));
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++evaluated_;
  raised_ += raised;
  cleared_ += cleared;
  // Keep the original raise time for alerts that were already active.
  for (ActiveAlert& a : next_active) {
    for (const ActiveAlert& prev : active_) {
      if (prev.rule == a.rule && prev.series == a.series) {
        a.since = prev.since;
        a.window = prev.window;
        break;
      }
    }
  }
  active_ = std::move(next_active);
}

std::vector<ActiveAlert> AlertEngine::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::uint64_t AlertEngine::raised_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return raised_;
}

std::uint64_t AlertEngine::cleared_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cleared_;
}

std::uint64_t AlertEngine::windows_evaluated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluated_;
}

sim::CounterSet AlertEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  sim::CounterSet out;
  out.inc("alerts.raised", raised_);
  out.inc("alerts.cleared", cleared_);
  out.inc("alerts.evaluations", evaluated_);
  return out;
}

}  // namespace flecc::obs
