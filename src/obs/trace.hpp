// Protocol observability: typed trace events, per-agent single-writer
// ring buffers, and the instrumentation macros used by the FSMs and
// fabrics (ISSUE: observability layer; OBSERVABILITY.md is the
// canonical event reference).
//
// Design constraints:
//   * Zero overhead when compiled out. Building with -DFLECC_TRACE=OFF
//     defines FLECC_TRACE_ENABLED=0; the FLECC_TRACE_EVENT macro then
//     expands to nothing (arguments are not even evaluated) and
//     TraceBuffer becomes an empty shell, so instrumented hot paths are
//     byte-for-byte identical to un-instrumented ones. The TraceEvent
//     struct and the sink/analysis APIs stay defined in both
//     configurations so trace_io, tools/flecc_trace and the tests
//     always compile.
//   * Near-zero overhead when compiled in but idle: every emission site
//     is a single branch on a nullable TraceBuffer*.
//   * Lock-free recording. Each protocol agent (one cache manager, the
//     directory, one fabric) owns a private TraceBuffer and is its only
//     writer, so emission is one relaxed load, one 80-byte store and
//     one release store — no CAS, no mutex, no allocation (plus one
//     virtual call when a TraceSink is attached). Buffers are
//     bounded rings: when full the oldest events are overwritten and a
//     drop counter advances (observability must never OOM the system
//     it observes).
//
// This layer is intentionally independent of net::Fabric's older
// message-level TraceRecorder (net/sim_fabric.hpp), which records
// *delivered* payloads for debugging. obs events are cheaper, typed,
// cover drops/retries/lifecycle, and carry span ids.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

#if !defined(FLECC_TRACE_ENABLED)
#define FLECC_TRACE_ENABLED 1
#endif

namespace flecc::obs {

/// True when the build records trace events (FLECC_TRACE=ON). Tests use
/// this to skip recording-dependent assertions under FLECC_TRACE=OFF.
inline constexpr bool kTraceEnabled = FLECC_TRACE_ENABLED != 0;

/// Everything the protocol can tell the trace about itself. One event
/// kind per observable protocol fact; see OBSERVABILITY.md for the
/// per-kind semantics of the `a`/`b` detail fields.
enum class EventKind : std::uint8_t {
  kOpEnqueued,        ///< user op queued behind the in-flight one (CM)
  kOpStarted,         ///< user op issued for the first time (CM)
  kOpCompleted,       ///< user op's reply accepted, callback fired (CM)
  kMsgSent,           ///< first transmission of a protocol message
  kMsgReceived,       ///< message accepted by an endpoint FSM
  kMsgDropped,        ///< fabric dropped a message (loss/partition/...)
  kMsgRetransmitted,  ///< re-transmission (CM op retry or DM command resend)
  kDedupHit,          ///< duplicate suppressed or replayed from cache
  kHeartbeatMiss,     ///< heartbeat tick found the previous one unacked
  kViewEvicted,       ///< directory evicted a silent view (liveness)
  kTriggerFired,      ///< quality trigger demanded work (push/pull/validity)
  kMergeApplied,        ///< directory merged a dirty image into the primary
  kModeSwitch,          ///< consistency mode changed (weak <-> strong)
  kInvariantViolation,  ///< conformance monitor: protocol invariant broken
  kMonitorWarning,      ///< conformance monitor: liveness/health warning
  kMsgFenced,           ///< stale-generation message rejected (recovery)
  kRecoveryBegin,       ///< directory restarted; rebuild round opened
  kRecoveryEnd,         ///< rebuild finished; normal processing resumed
  kLoadShed,            ///< admission control refused a request (Busy sent)
  kBreakerTransition,   ///< CM circuit breaker changed state (a=from, b=to)
  kRetryExhausted,      ///< retry deadline/budget spent; op abandoned (CM)
  kMigrateBegin,        ///< view migration opened (a=view, b=epoch)
  kMigrateDone,         ///< view rebound to its destination (a=view, b=epoch)
  kMigrateAborted,      ///< migration aborted; view stays put (a=view, b=epoch)
  kJournalReplay,       ///< CM restarted from its journal (a=view, b=intents)
  kAlertRaised,         ///< SLO alert rule began firing (a=window index)
  kAlertCleared,        ///< SLO alert rule stopped firing (a=window index)
};

/// Highest EventKind value. Keep in sync when appending kinds: the
/// JSONL parser iterates `[0, kMaxEventKind]`, so a kind past this
/// bound round-trips to "malformed line" instead of an event.
inline constexpr EventKind kMaxEventKind = EventKind::kAlertCleared;

/// Which protocol role emitted an event.
enum class Role : std::uint8_t {
  kCacheManager,  ///< a view's cache manager
  kDirectory,     ///< the directory manager
  kFabric,        ///< a message fabric (sim or thread)
  kOther,         ///< benches / tests / tools
};

/// Stable lower_snake_case name for JSONL/CSV output ("op_started", ...).
[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kOpEnqueued: return "op_enqueued";
    case EventKind::kOpStarted: return "op_started";
    case EventKind::kOpCompleted: return "op_completed";
    case EventKind::kMsgSent: return "msg_sent";
    case EventKind::kMsgReceived: return "msg_received";
    case EventKind::kMsgDropped: return "msg_dropped";
    case EventKind::kMsgRetransmitted: return "msg_retransmitted";
    case EventKind::kDedupHit: return "dedup_hit";
    case EventKind::kHeartbeatMiss: return "heartbeat_miss";
    case EventKind::kViewEvicted: return "view_evicted";
    case EventKind::kTriggerFired: return "trigger_fired";
    case EventKind::kMergeApplied: return "merge_applied";
    case EventKind::kModeSwitch: return "mode_switch";
    case EventKind::kInvariantViolation: return "invariant_violation";
    case EventKind::kMonitorWarning: return "monitor_warning";
    case EventKind::kMsgFenced: return "msg_fenced";
    case EventKind::kRecoveryBegin: return "recovery_begin";
    case EventKind::kRecoveryEnd: return "recovery_end";
    case EventKind::kLoadShed: return "load_shed";
    case EventKind::kBreakerTransition: return "breaker_transition";
    case EventKind::kRetryExhausted: return "retry_exhausted";
    case EventKind::kMigrateBegin: return "migrate_begin";
    case EventKind::kMigrateDone: return "migrate_done";
    case EventKind::kMigrateAborted: return "migrate_aborted";
    case EventKind::kJournalReplay: return "journal_replay";
    case EventKind::kAlertRaised: return "alert_raised";
    case EventKind::kAlertCleared: return "alert_cleared";
  }
  return "unknown";
}

[[nodiscard]] constexpr const char* to_string(Role r) noexcept {
  switch (r) {
    case Role::kCacheManager: return "cm";
    case Role::kDirectory: return "dm";
    case Role::kFabric: return "fabric";
    case Role::kOther: return "other";
  }
  return "unknown";
}

/// Reason codes carried in TraceEvent::a by kMsgDropped events.
enum DropReason : std::uint64_t {
  kDropLoss = 0,       ///< random loss (fabric loss_rate / chaos)
  kDropPartition = 1,  ///< sender and receiver in separate partitions
  kDropNoRoute = 2,    ///< no fabric route between the nodes
  kDropUnbound = 3,    ///< destination endpoint not bound at delivery
  kDropOverload = 4,   ///< bounded queue shed the message (flow control)
};

/// Packs a fabric address into the 64-bit `agent` field of an event.
[[nodiscard]] constexpr std::uint64_t agent_key(net::Address a) noexcept {
  return (static_cast<std::uint64_t>(a.node) << 32) |
         static_cast<std::uint64_t>(a.port);
}

/// Recovers the address packed by agent_key().
[[nodiscard]] constexpr net::Address agent_addr(std::uint64_t key) noexcept {
  return net::Address{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xffffffffu)};
}

/// Span (operation lifecycle) id: every framed request is uniquely
/// identified protocol-wide by (cache-manager address, request id), and
/// both ends can compute it — the CM from (self, op.req), the directory
/// from (msg.from, rid). Collision-free while node ids stay below 2^16
/// and request ids below 2^32, which holds for every bench and test in
/// this repo. Span 0 means "no associated operation".
[[nodiscard]] constexpr std::uint64_t span_id(net::Address cache,
                                              std::uint64_t req) noexcept {
  if (req == 0) return 0;
  return (static_cast<std::uint64_t>(cache.node) << 48) ^
         (static_cast<std::uint64_t>(cache.port) << 32) ^ req;
}

/// One trace record. Trivially copyable and fixed-size so ring storage
/// is a flat array and emission is a struct store. The `label` is a
/// short NUL-terminated tag (message type, op kind, trigger kind, drop
/// detail); longer strings are truncated.
struct TraceEvent {
  /// Label capacity including the terminating NUL.
  static constexpr std::size_t kLabelCap = 30;

  sim::Time at = 0;          ///< fabric time, microseconds
  std::uint64_t span = 0;    ///< operation lifecycle id; 0 = none
  std::uint64_t a = 0;       ///< kind-specific detail (OBSERVABILITY.md)
  std::uint64_t b = 0;       ///< kind-specific detail (OBSERVABILITY.md)
  std::uint64_t agent = 0;   ///< emitting endpoint, agent_key() packed
  /// Lamport clock of the emitting agent at emission time; 0 when the
  /// emitter carries no clock (fabric drop events, old traces). Gives
  /// cross-node events a causal order independent of wall-clock ties.
  std::uint64_t clock = 0;
  EventKind kind = EventKind::kOpEnqueued;
  Role role = Role::kOther;
  char label[kLabelCap] = {};
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) <= 80, "keep events small; rings are flat");

/// Builds an event, truncating `label` to TraceEvent::kLabelCap-1.
[[nodiscard]] inline TraceEvent make_event(sim::Time at, EventKind kind,
                                           Role role, std::uint64_t agent,
                                           std::uint64_t span,
                                           const char* label,
                                           std::uint64_t a = 0,
                                           std::uint64_t b = 0) noexcept {
  TraceEvent e;
  e.at = at;
  e.span = span;
  e.a = a;
  e.b = b;
  e.agent = agent;
  e.kind = kind;
  e.role = role;
  if (label != nullptr) {
    std::strncpy(e.label, label, TraceEvent::kLabelCap - 1);
    e.label[TraceEvent::kLabelCap - 1] = '\0';
  }
  return e;
}

/// Push-style consumer of trace events, attached to buffers via
/// TraceRecorder::attach_sink (or TraceBuffer::set_sink). on_event runs
/// inline on the emitting agent's thread, synchronously after the ring
/// store — implementations must be cheap and must never call back into
/// the protocol (observers may not perturb the observed system).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

#if FLECC_TRACE_ENABLED

/// Per-agent Lamport clock. The owning endpoint registers it with its
/// fabric (net::Fabric::set_clock) so sends tick it and deliveries
/// observe the sender's stamp, and with its TraceBuffer so every
/// emitted event carries the current value. Atomic because ThreadFabric
/// ticks from sender threads while the owner emits from its mailbox.
class CausalClock {
 public:
  /// Local/send step: advance and return the new value.
  std::uint64_t tick() noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Delivery step: advance past the received stamp (max(local, other)+1).
  std::uint64_t observe(std::uint64_t other) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    std::uint64_t next = 0;
    do {
      next = (cur > other ? cur : other) + 1;
    } while (!v_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
    return next;
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Bounded single-writer ring of trace events.
///
/// Exactly one thread may call emit() (each protocol agent owns its
/// buffer); snapshot()/counters may be called from any thread once the
/// writer has quiesced (simulation drained, fabric stopped). A
/// concurrent snapshot is safe memory-wise but may observe a torn
/// in-flight event at the write head; offline analysis should read
/// post-run.
class TraceBuffer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit TraceBuffer(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Stamp every emitted event with this agent's Lamport clock
  /// (nullptr disables stamping; events then carry clock 0). Set by the
  /// owning endpoint before it starts emitting.
  void set_clock(const CausalClock* clock) noexcept { clock_ = clock; }

  /// Forward every emitted event to `sink` (after the ring store);
  /// nullptr detaches. Must be set before the writer emits concurrently
  /// — see TraceRecorder::attach_sink for the ordering contract.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }

  /// Append one event (single writer). When the ring is full the
  /// oldest retained event is overwritten; dropped() advances.
  void emit(const TraceEvent& e) noexcept {
    TraceEvent stamped = e;
    if (clock_ != nullptr) stamped.clock = clock_->value();
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(h) & mask_] = stamped;
    head_.store(h + 1, std::memory_order_release);
    if (sink_ != nullptr) sink_->on_event(stamped);
  }

  /// Total events ever emitted (including overwritten ones).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > ring_.size() ? h - ring_.size() : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, ring_.size());
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
    }
    return out;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  const CausalClock* clock_ = nullptr;
  TraceSink* sink_ = nullptr;
};

/// Owns one TraceBuffer per protocol agent and merges them into a
/// single time-ordered event stream for the sinks and the analysis
/// tool. Buffer creation is not thread-safe (wire agents up before the
/// run); recording into distinct buffers is concurrent by design.
class TraceRecorder {
 public:
  /// `default_capacity` sizes buffers created without an explicit
  /// capacity; 4096 events comfortably covers one agent's lifetime in
  /// every bench while keeping a 100-agent soak around 30 MB.
  explicit TraceRecorder(std::size_t default_capacity = 4096)
      : default_capacity_(default_capacity) {}

  /// Creates (or returns the existing) buffer named `name`. The pointer
  /// stays valid for the recorder's lifetime. A sink attached via
  /// attach_sink() is propagated to buffers created later, so attaching
  /// before agents are wired up covers the whole run.
  TraceBuffer* make_buffer(const std::string& name, std::size_t capacity = 0) {
    for (auto& [n, b] : buffers_) {
      if (n == name) return b.get();
    }
    buffers_.emplace_back(name, std::make_unique<TraceBuffer>(
                                    capacity ? capacity : default_capacity_));
    TraceBuffer* buf = buffers_.back().second.get();
    if (sink_ != nullptr) buf->set_sink(sink_);
    return buf;
  }

  /// Attach `sink` to every buffer this recorder owns — existing ones
  /// now, future make_buffer() calls as they happen (benches typically
  /// attach the monitor before the testbed creates per-agent buffers).
  /// Ordering contract: attach before any buffer's writer emits from
  /// another thread; set_sink is a plain store, not synchronized with
  /// emit(). All SimFabric-driven runs are single-threaded, and
  /// ThreadFabric benches attach before starting the fabric.
  /// nullptr detaches everywhere.
  void attach_sink(TraceSink* sink) noexcept {
    sink_ = sink;
    for (auto& [name, b] : buffers_) b->set_sink(sink);
  }

  [[nodiscard]] std::size_t buffer_count() const noexcept {
    return buffers_.size();
  }

  [[nodiscard]] std::uint64_t total_emitted() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [name, b] : buffers_) n += b->emitted();
    return n;
  }

  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [name, b] : buffers_) n += b->dropped();
    return n;
  }

  /// All retained events, merged and stably sorted by timestamp (ties
  /// keep buffer registration order, then ring order — deterministic).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    for (const auto& [name, b] : buffers_) {
      auto part = b->snapshot();
      out.insert(out.end(), part.begin(), part.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& x, const TraceEvent& y) {
                       return x.at < y.at;
                     });
    return out;
  }

 private:
  std::size_t default_capacity_;
  std::vector<std::pair<std::string, std::unique_ptr<TraceBuffer>>> buffers_;
  TraceSink* sink_ = nullptr;
};

#else  // FLECC_TRACE_ENABLED == 0: recording compiles away entirely.

/// No-op shell (FLECC_TRACE=OFF); see the enabled variant above. Keeps
/// the tick/observe surface so fabric and FSM code compiles unchanged;
/// stamps are never produced, so Message::clock and TraceEvent::clock
/// stay 0 in this configuration.
class CausalClock {
 public:
  std::uint64_t tick() noexcept { return 0; }
  std::uint64_t observe(std::uint64_t) noexcept { return 0; }
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

/// No-op shell (FLECC_TRACE=OFF). Same surface as the recording
/// version so instrumented code and tests compile unchanged.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t = 0) noexcept {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;
  void set_clock(const CausalClock*) noexcept {}
  void set_sink(TraceSink*) noexcept {}
  void emit(const TraceEvent&) noexcept {}
  [[nodiscard]] std::uint64_t emitted() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::vector<TraceEvent> snapshot() const { return {}; }
};

/// No-op shell (FLECC_TRACE=OFF); see the enabled variant above.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t = 4096) noexcept {}
  TraceBuffer* make_buffer(const std::string& name, std::size_t = 0) {
    for (auto& [n, b] : buffers_) {
      if (n == name) return b.get();
    }
    buffers_.emplace_back(name, std::make_unique<TraceBuffer>());
    return buffers_.back().second.get();
  }
  void attach_sink(TraceSink*) noexcept {}
  [[nodiscard]] std::size_t buffer_count() const noexcept {
    return buffers_.size();
  }
  [[nodiscard]] std::uint64_t total_emitted() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t total_dropped() const noexcept { return 0; }
  [[nodiscard]] std::vector<TraceEvent> snapshot() const { return {}; }

 private:
  std::vector<std::pair<std::string, std::unique_ptr<TraceBuffer>>> buffers_;
};

#endif  // FLECC_TRACE_ENABLED

}  // namespace flecc::obs

// ---- instrumentation macros -------------------------------------------
//
// FLECC_TRACE_EVENT(sink, at, kind, role, agent, span, label[, a[, b]])
// emits into the nullable obs::TraceBuffer* `sink`. Under
// FLECC_TRACE=OFF the arguments are not evaluated, so hot paths carry
// no residue; consequently trace arguments must be side-effect free.
//
// FLECC_TRACE_ONLY(...) compiles its argument only when tracing is on —
// for trace-only statements (bookkeeping fields, helper locals).
#if FLECC_TRACE_ENABLED
#define FLECC_TRACE_EVENT(sink, ...)                          \
  do {                                                        \
    if ((sink) != nullptr) {                                  \
      (sink)->emit(::flecc::obs::make_event(__VA_ARGS__));    \
    }                                                         \
  } while (0)
#define FLECC_TRACE_ONLY(...) __VA_ARGS__
#else
#define FLECC_TRACE_EVENT(sink, ...)        \
  do {                                      \
    (void)sizeof(sink); /* unevaluated */   \
  } while (0)
#define FLECC_TRACE_ONLY(...)
#endif
