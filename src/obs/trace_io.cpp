#include "obs/trace_io.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>

namespace flecc::obs {

namespace {

/// Labels are short protocol tags ([a-z._0-9:] in practice), but escape
/// defensively so arbitrary bytes cannot break the JSONL framing.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

/// Minimal scanner for the flat one-line objects this module writes.
/// Finds `"key":` and returns the raw value token after it (quoted
/// string contents unescaped for the simple escapes we emit).
std::optional<std::string> find_field(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    std::string out;
    for (++i; i < line.size() && line[i] != '"'; ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        // Decode the escapes append_escaped() emits: \" \\ and \u00XX
        // (control characters; labels are plain ASCII tags).
        if (line[i] == 'u' && i + 4 < line.size()) {
          unsigned code = 0;
          const auto* first = line.data() + i + 1;
          const auto [p, ec] = std::from_chars(first, first + 4, code, 16);
          if (ec != std::errc{} || p != first + 4) return std::nullopt;
          out += static_cast<char>(code & 0xff);
          i += 4;
        } else {
          out += line[i];
        }
      } else {
        out += line[i];
      }
    }
    if (i >= line.size()) return std::nullopt;  // unterminated string
    return out;
  }
  std::string out;
  while (i < line.size() && line[i] != ',' && line[i] != '}') {
    out += line[i++];
  }
  while (!out.empty() &&
         std::isspace(static_cast<unsigned char>(out.back()))) {
    out.pop_back();
  }
  if (out.empty()) return std::nullopt;
  return out;
}

template <typename T>
std::optional<T> parse_uint(const std::string& s) {
  T v{};
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [p, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || p != last) return std::nullopt;
  return v;
}

}  // namespace

std::optional<EventKind> parse_kind(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(kMaxEventKind); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<Role> parse_role(const std::string& name) {
  for (int r = 0; r <= static_cast<int>(Role::kOther); ++r) {
    const auto role = static_cast<Role>(r);
    if (name == to_string(role)) return role;
  }
  return std::nullopt;
}

std::string to_jsonl(const TraceEvent& e) {
  const net::Address agent = agent_addr(e.agent);
  std::string out;
  out.reserve(160);
  out += "{\"t\":";
  out += std::to_string(e.at);
  out += ",\"kind\":\"";
  out += to_string(e.kind);
  out += "\",\"role\":\"";
  out += to_string(e.role);
  out += "\",\"agent\":\"";
  out += std::to_string(agent.node);
  out += ':';
  out += std::to_string(agent.port);
  out += "\",\"span\":\"";
  out += std::to_string(e.span);
  out += "\",\"label\":\"";
  append_escaped(out, e.label);
  out += "\",\"a\":";
  out += std::to_string(e.a);
  out += ",\"b\":";
  out += std::to_string(e.b);
  out += ",\"clock\":";
  out += std::to_string(e.clock);
  out += "}";
  return out;
}

std::optional<TraceEvent> from_jsonl(const std::string& line) {
  const auto t = find_field(line, "t");
  const auto kind_s = find_field(line, "kind");
  const auto role_s = find_field(line, "role");
  const auto agent_s = find_field(line, "agent");
  const auto span_s = find_field(line, "span");
  if (!t || !kind_s || !role_s || !agent_s || !span_s) return std::nullopt;

  const auto kind = parse_kind(*kind_s);
  const auto role = parse_role(*role_s);
  const auto at = parse_uint<std::uint64_t>(*t);
  const auto span = parse_uint<std::uint64_t>(*span_s);
  if (!kind || !role || !at || !span) return std::nullopt;

  const auto colon = agent_s->find(':');
  if (colon == std::string::npos) return std::nullopt;
  const auto node = parse_uint<std::uint32_t>(agent_s->substr(0, colon));
  const auto port = parse_uint<std::uint32_t>(agent_s->substr(colon + 1));
  if (!node || !port) return std::nullopt;

  std::uint64_t a = 0;
  std::uint64_t b = 0;
  if (const auto f = find_field(line, "a")) {
    const auto v = parse_uint<std::uint64_t>(*f);
    if (!v) return std::nullopt;
    a = *v;
  }
  if (const auto f = find_field(line, "b")) {
    const auto v = parse_uint<std::uint64_t>(*f);
    if (!v) return std::nullopt;
    b = *v;
  }
  const auto label = find_field(line, "label");

  TraceEvent e = make_event(static_cast<sim::Time>(*at), *kind, *role,
                            agent_key(net::Address{*node, *port}), *span,
                            label ? label->c_str() : "", a, b);
  // Optional (absent in pre-clock traces; readers default it to 0).
  if (const auto f = find_field(line, "clock")) {
    const auto v = parse_uint<std::uint64_t>(*f);
    if (!v) return std::nullopt;
    e.clock = *v;
  }
  return e;
}

bool write_jsonl(const std::vector<TraceEvent>& events,
                 const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  for (const auto& e : events) f << to_jsonl(e) << "\n";
  return static_cast<bool>(f);
}

std::vector<TraceEvent> read_jsonl(std::istream& in, std::size_t* bad_lines) {
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto e = from_jsonl(line)) {
      out.push_back(*e);
    } else {
      ++bad;
    }
  }
  if (bad_lines != nullptr) *bad_lines = bad;
  return out;
}

std::vector<TraceEvent> read_jsonl_file(const std::string& path,
                                        std::size_t* bad_lines) {
  std::ifstream f(path);
  if (!f) {
    if (bad_lines != nullptr) *bad_lines = 0;
    return {};
  }
  return read_jsonl(f, bad_lines);
}

std::string to_csv(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  // Schema is append-only: new columns go at the end so existing
  // consumers indexing by position keep working.
  out << "t,kind,role,agent,span,label,a,b,clock\n";
  for (const auto& e : events) {
    const net::Address agent = agent_addr(e.agent);
    out << e.at << ',' << to_string(e.kind) << ',' << to_string(e.role) << ','
        << agent.node << ':' << agent.port << ',' << e.span << ',' << e.label
        << ',' << e.a << ',' << e.b << ',' << e.clock << "\n";
  }
  return out.str();
}

bool write_csv(const std::vector<TraceEvent>& events,
               const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv(events);
  return static_cast<bool>(f);
}

}  // namespace flecc::obs
