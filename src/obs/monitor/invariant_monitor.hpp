// Online protocol conformance monitor (ISSUE: observability layer;
// PROTOCOL.md "Invariants" states I1-I4 formally, OBSERVABILITY.md
// documents the monitor's events and metrics).
//
// The monitor is a TraceSink: attach it to a TraceRecorder before the
// run (TraceRecorder::attach_sink) and it rebuilds a shadow model of
// the protocol from the event stream — which view each agent holds,
// who is exclusive, which dirty extractions are in flight, each
// agent's Lamport clock — and checks the coherence invariants on the
// fly:
//
//   I1 exclusivity      After a strong-mode AcquireGrant, no other
//                       conflicting view may still hold a copy the
//                       directory never asked to invalidate.
//   I2 exactly-once     Every dirty extraction (FetchReply,
//                       InvalidateAck, push/kill image) merges into
//                       the primary at most once, across the live,
//                       late-straggler and push-borne echo paths.
//   I3 no-lost-update   Every dirty extraction merges at least once;
//                       a push/kill that completes without its prior
//                       extractions having merged lost updates.
//   I4 mode quiescence  No weak-mode pull ISSUED for a view causally
//                       after its switch to STRONG mode (pulls already
//                       queued at the switch ack drain legitimately).
//   causality           Per-agent Lamport clocks never regress, and a
//                       span's directory-side events are causally
//                       after the requester's first transmission.
//
// Liveness problems (ops pending past a threshold, unacked heartbeat
// streaks, extractions unconfirmed at end of trace) are reported as
// warnings, not violations.
//
// The same engine runs online (sink) and offline (run() over a sorted
// snapshot or a JSONL trace via tools/flecc_check). on_event is
// mutex-serialized so ThreadFabric agents may emit concurrently; it
// never calls back into the protocol. Events of kind
// kInvariantViolation/kMonitorWarning are ignored on input so a
// monitor can feed its own findings into a traced buffer without
// feedback.
//
// The monitor is deliberately compiled in both FLECC_TRACE configs
// (it is analysis-side code, like trace_io); under FLECC_TRACE=OFF it
// simply never receives events.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flecc::obs::monitor {

/// The checked invariants (PROTOCOL.md "Invariants").
enum class Invariant : std::uint8_t {
  kExclusivity,      ///< I1: strong-mode holders are invalidated first
  kExactlyOnceMerge, ///< I2: an extraction merges at most once
  kNoLostUpdate,     ///< I3: an extraction merges at least once
  kModeQuiescence,   ///< I4: no weak grant after a strong switch
  kCausality,        ///< Lamport stamps never regress / invert
};

/// Stable short name ("I1.exclusivity", ...), used as the label of
/// emitted kInvariantViolation events.
[[nodiscard]] const char* to_string(Invariant inv) noexcept;

/// One finding. `agent` is the agent_key of the endpoint the finding
/// concerns (0 when unattributable), `span` the operation involved.
struct Finding {
  Invariant invariant = Invariant::kExclusivity;
  sim::Time at = 0;
  std::uint64_t agent = 0;
  std::uint64_t span = 0;
  std::string detail;
};

/// Online/offline protocol conformance checker (see file comment).
class InvariantMonitor : public TraceSink {
 public:
  /// Knobs; the zero-argument constructor uses the defaults below.
  struct Config {
    /// Treat every pair of views as conflicting for I1. Sound for all
    /// bundled benches and the airline example (every view shares the
    /// seat data); set false to disable I1 when disjoint strong views
    /// legitimately coexist (the trace carries no property sets, so
    /// the monitor cannot derive dynConfl itself).
    bool assume_conflicting = true;
    /// Warn when an op stays pending longer than this (liveness
    /// watchdog); 0 disables. Measured in fabric time against the
    /// newest event seen.
    sim::Duration max_op_age = 0;
    /// Warn when a cache manager's unacked-heartbeat streak reaches
    /// this; 0 disables.
    std::uint64_t heartbeat_warn_streak = 3;
    /// Optional buffer to emit kInvariantViolation / kMonitorWarning
    /// events into (so findings appear in the exported trace). Not
    /// owned. The monitor ignores those kinds on input, so attaching
    /// the monitor to this very buffer does not feed back.
    TraceBuffer* out = nullptr;
  };

  InvariantMonitor() : InvariantMonitor(Config()) {}
  explicit InvariantMonitor(Config cfg);

  /// Online entry point (thread-safe; serialized by an internal mutex).
  void on_event(const TraceEvent& e) override;

  /// Offline entry point: feed a whole (time-sorted) trace, then
  /// finalize. Equivalent to on_event per element + finalize().
  void run(const std::vector<TraceEvent>& events);

  /// End-of-run checks: unmerged extractions, still-pending ops.
  /// Idempotent; called automatically by run().
  void finalize();

  // ---- results (read after the run / finalize) -----------------------

  [[nodiscard]] const std::vector<Finding>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const std::vector<Finding>& warnings() const noexcept {
    return warnings_;
  }
  [[nodiscard]] std::uint64_t violation_count(Invariant inv) const;
  [[nodiscard]] std::uint64_t check_count(Invariant inv) const;
  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_;
  }

  /// Number of directory recovery epochs that began (recovery_begin)
  /// but never completed (recovery_end) — nonzero means the trace ends
  /// with the directory still rebuilding, so the run's final state is
  /// not trustworthy even if no invariant tripped.
  [[nodiscard]] std::uint64_t unresolved_recovery_epochs() const;

  /// Number of migration epochs that began (migrate_begin) but reached
  /// neither migrate_done nor migrate_aborted — nonzero means the trace
  /// ends with a view mid-handoff, so its ownership is indeterminate.
  [[nodiscard]] std::uint64_t unresolved_migration_epochs() const;

  /// Human-readable per-invariant pass/violation table plus the
  /// first few findings; ends with "monitor: PASS" or
  /// "monitor: N violation(s)".
  [[nodiscard]] std::string health_report() const;

  /// Fold the monitor's state into `reg` as "monitor." metrics:
  /// per-invariant check/violation counters, warning counters, op
  /// latency distributions and per-view staleness gauges (see
  /// OBSERVABILITY.md for the canonical names).
  void export_metrics(MetricsRegistry& reg) const;

 private:
  /// Extraction ledger key: invalidate-epoch vs fetch-token namespaces
  /// (kNsFetch/kNsInvalidate, id = source view) unify the live, late
  /// and echo merge paths of one extraction; push/kill images are
  /// identified by their op span (kNsSpan, id = span).
  enum : std::uint8_t { kNsFetch = 0, kNsInvalidate = 1, kNsSpan = 2 };
  using ExtractKey = std::tuple<std::uint8_t, std::uint64_t, std::uint64_t>;

  /// One dirty extraction's merge ledger entry.
  struct Extraction {
    sim::Time at = 0;
    std::uint64_t agent = 0;
    std::uint64_t view = 0;
    std::uint64_t clock = 0;  ///< sender stamp, for the causality check
    int merges = 0;
    bool reported = false;  ///< an I3 finding already covers it
    /// Recovery epoch the extraction was made in. A directory restart
    /// bumps the monitor's epoch; extractions from earlier epochs are
    /// exempt from the push/kill-completion I3 check (their echoes may
    /// still be settling through the revive path) and extractions that
    /// merged pre-crash earn one legal re-merge in the new epoch.
    std::uint64_t epoch = 0;
  };

  /// An op_started span awaiting its op_completed.
  struct PendingOp {
    std::string label;
    sim::Time started_at = 0;
    std::uint64_t agent = 0;
    std::uint64_t first_send_clock = 0;  ///< requester's first transmission
    std::uint64_t first_dm_clock = 0;    ///< directory's first span event
    bool age_warned = false;
  };

  /// Shadow state per cache-manager endpoint.
  struct AgentState {
    std::uint64_t view = 0;  ///< current view id (0 = not yet learned)
    bool strong = false;
    /// I4: pulls enqueued before the strong switch ack are allowed to
    /// complete after it (FIFO drains the queue); each weak-mode
    /// enqueue earns a credit that one completion consumes.
    std::uint64_t weak_pull_credits = 0;
    std::uint64_t last_clock = 0;
    std::uint64_t hb_streak = 0;
    sim::Time last_sync_at = 0;  ///< last completed init/pull/acquire/push
  };

  /// I1 bookkeeping for a view granted strong exclusivity.
  struct Holder {
    bool invalidated_since_grant = false;
    sim::Time granted_at = 0;
  };

  void process(const TraceEvent& e);
  void on_cm_event(const TraceEvent& e);
  void on_dm_event(const TraceEvent& e);
  void begin_recovery(const TraceEvent& e);
  void end_recovery(const TraceEvent& e);
  void begin_migration(const TraceEvent& e);
  void end_migration(const TraceEvent& e, bool aborted);
  void record_extraction(std::uint8_t ns, std::uint64_t round,
                         std::uint64_t id, const TraceEvent& e);
  void check_span_causality(const TraceEvent& e);
  void violation(Invariant inv, const TraceEvent& e, std::uint64_t span,
                 std::string detail);
  void warning(const TraceEvent& e, std::uint64_t span, std::string detail);
  void emit_finding(EventKind kind, const Finding& f);
  AgentState& agent(std::uint64_t key) { return agents_[key]; }

  Config cfg_;
  mutable std::mutex mu_;
  bool finalized_ = false;

  std::uint64_t events_seen_ = 0;
  sim::Time last_at_ = 0;

  std::unordered_map<std::uint64_t, AgentState> agents_;
  std::unordered_map<std::uint64_t, std::uint64_t> view_agent_;
  std::set<std::uint64_t> evicted_views_;
  std::map<std::uint64_t, Holder> holders_;  ///< I1: exclusive views
  std::map<ExtractKey, Extraction> extractions_;
  std::unordered_map<std::uint64_t, PendingOp> pending_;

  // ---- crash-recovery epochs (directory restarts) --------------------
  std::uint64_t epoch_ = 0;  ///< bumps at each recovery_begin
  std::uint64_t recovery_epochs_seen_ = 0;
  std::uint64_t fenced_messages_ = 0;  ///< msg_fenced events (either role)
  /// Open recoveries: generation → recovery_begin time; drained by
  /// recovery_end, leftovers are unresolved at end of trace.
  std::map<std::uint64_t, sim::Time> open_recoveries_;
  sim::SampleSet rebuild_duration_us_;

  // ---- migration epochs (live view handoffs) -------------------------
  /// One inflight ViewMove: the migrating view and when it began.
  struct OpenMigration {
    std::uint64_t view = 0;
    sim::Time began = 0;
  };
  /// Open migrations keyed by migration epoch; drained by
  /// migrate_done / migrate_aborted, leftovers unresolved at trace end.
  std::map<std::uint64_t, OpenMigration> open_migrations_;
  /// Settled epochs → aborted flag. One legal ownership transfer per
  /// epoch: a migrate_done for an epoch already settled (done OR
  /// aborted) is an exclusivity violation.
  std::map<std::uint64_t, bool> closed_migrations_;
  std::uint64_t migration_epochs_seen_ = 0;
  std::uint64_t migrations_aborted_ = 0;
  std::uint64_t journal_replays_ = 0;  ///< CM journal_replay events
  std::uint64_t journal_replayed_intents_ = 0;
  sim::SampleSet migration_duration_us_;

  std::map<std::string, sim::SampleSet> op_latency_us_;
  std::uint64_t checks_[5] = {};
  std::uint64_t fails_[5] = {};
  std::vector<Finding> violations_;
  std::vector<Finding> warnings_;
};

}  // namespace flecc::obs::monitor
