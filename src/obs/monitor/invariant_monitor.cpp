#include "obs/monitor/invariant_monitor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace flecc::obs::monitor {

namespace {

// Wire-type labels carried by msg_sent/msg_received events. Literal
// mirrors of core/messages.hpp — the monitor stays below the core
// layer on purpose (flecc_check links only flecc_obs), and the strings
// are part of the stable trace format; monitor_protocol_test pins them
// against the real protocol.
constexpr const char* kPushUpdate = "flecc.push_update";
constexpr const char* kKillReq = "flecc.kill_req";
constexpr const char* kRegisterReq = "flecc.register_req";
constexpr const char* kInvalidateAck = "flecc.invalidate_ack";
constexpr const char* kFetchReply = "flecc.fetch_reply";
constexpr const char* kInvalidateReq = "flecc.invalidate_req";
constexpr const char* kAcquireGrant = "flecc.acquire_grant";

bool is(const char* label, const char* name) {
  return std::strcmp(label, name) == 0;
}

/// How often the op-age watchdog sweeps the pending-op table; a sweep
/// is O(pending), so amortize it instead of paying it per event.
constexpr std::uint64_t kAgeSweepPeriod = 1024;

constexpr std::size_t idx(Invariant inv) noexcept {
  return static_cast<std::size_t>(inv);
}

const char* metric_slug(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kExclusivity: return "i1";
    case Invariant::kExactlyOnceMerge: return "i2";
    case Invariant::kNoLostUpdate: return "i3";
    case Invariant::kModeQuiescence: return "i4";
    case Invariant::kCausality: return "causality";
  }
  return "unknown";
}

}  // namespace

const char* to_string(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kExclusivity: return "I1.exclusivity";
    case Invariant::kExactlyOnceMerge: return "I2.exactly_once_merge";
    case Invariant::kNoLostUpdate: return "I3.no_lost_update";
    case Invariant::kModeQuiescence: return "I4.mode_quiescence";
    case Invariant::kCausality: return "causality";
  }
  return "unknown";
}

InvariantMonitor::InvariantMonitor(Config cfg) : cfg_(cfg) {}

void InvariantMonitor::on_event(const TraceEvent& e) {
  // Feedback prevention: the monitor's own findings (possibly emitted
  // into a buffer this monitor is attached to) are not protocol facts.
  // Checked before the lock so a same-thread feedback emit cannot
  // deadlock either.
  if (e.kind == EventKind::kInvariantViolation ||
      e.kind == EventKind::kMonitorWarning) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  process(e);
}

void InvariantMonitor::run(const std::vector<TraceEvent>& events) {
  for (const auto& e : events) on_event(e);
  finalize();
}

void InvariantMonitor::process(const TraceEvent& e) {
  ++events_seen_;
  if (e.at > last_at_) last_at_ = e.at;

  // Causality: a Lamport stamp never moves backwards within one agent
  // (each agent is the single writer of its buffer, so its events
  // reach the sink in emission order). Stamp 0 means "no clock"
  // (fabric drop events, FLECC_TRACE=OFF senders, old traces) — skip.
  if (e.clock != 0) {
    AgentState& st = agent(e.agent);
    ++checks_[idx(Invariant::kCausality)];
    if (e.clock < st.last_clock) {
      std::ostringstream d;
      d << "Lamport clock regressed at agent " << e.agent << ": "
        << e.clock << " after " << st.last_clock;
      violation(Invariant::kCausality, e, e.span, d.str());
    } else {
      st.last_clock = e.clock;
    }
  }

  // Crash-recovery bookkeeping is role-independent: msg_fenced is
  // emitted by both endpoints, and the recovery_begin/end pair frames
  // an epoch all shadow state must respect.
  switch (e.kind) {
    case EventKind::kMsgFenced:
      ++fenced_messages_;
      break;
    case EventKind::kRecoveryBegin:
      begin_recovery(e);
      break;
    case EventKind::kRecoveryEnd:
      end_recovery(e);
      break;
    default:
      break;
  }

  switch (e.role) {
    case Role::kCacheManager:
      on_cm_event(e);
      break;
    case Role::kDirectory:
      on_dm_event(e);
      break;
    case Role::kFabric:
    case Role::kOther:
      break;
  }

  // Liveness watchdog: ops pending too long (amortized sweep).
  if (cfg_.max_op_age > 0 && (events_seen_ % kAgeSweepPeriod) == 0) {
    for (auto& [span, op] : pending_) {
      if (!op.age_warned && last_at_ - op.started_at > cfg_.max_op_age) {
        op.age_warned = true;
        std::ostringstream d;
        d << "op '" << op.label << "' pending for "
          << (last_at_ - op.started_at) << " us";
        Finding f{Invariant::kCausality, last_at_, op.agent, span, d.str()};
        warnings_.push_back(f);
        emit_finding(EventKind::kMonitorWarning, f);
      }
    }
  }
}

void InvariantMonitor::on_cm_event(const TraceEvent& e) {
  AgentState& st = agent(e.agent);
  switch (e.kind) {
    case EventKind::kOpEnqueued: {
      // A pull requested while the view is still (observably) weak may
      // legitimately drain after the strong switch ack — FIFO order.
      if (is(e.label, "pull") && !st.strong) ++st.weak_pull_credits;
      break;
    }

    case EventKind::kOpStarted: {
      if (e.a != 0) {
        st.view = e.a;
        view_agent_[e.a] = e.agent;
      }
      PendingOp& op = pending_[e.span];
      op.label = e.label;
      op.started_at = e.at;
      op.agent = e.agent;
      break;
    }

    case EventKind::kMsgSent:
    case EventKind::kMsgRetransmitted: {
      if (e.span != 0) {
        auto it = pending_.find(e.span);
        if (it != pending_.end() && it->second.first_send_clock == 0 &&
            e.clock != 0) {
          it->second.first_send_clock = e.clock;
        }
      }
      if ((is(e.label, kPushUpdate) || is(e.label, kKillReq)) && e.b == 1 &&
          e.span != 0) {
        // b=1: the op carries an extracted dirty image, keyed by span.
        record_extraction(kNsSpan, 0, e.span, e);
      } else if (is(e.label, kInvalidateAck)) {
        // Acking an invalidation surrenders the copy — the view is no
        // longer an exclusive holder whatever the ack carries.
        if (st.view != 0) holders_.erase(st.view);
        if (e.b == 1 && st.view != 0) {
          record_extraction(kNsInvalidate, e.a, st.view, e);
        }
      } else if (is(e.label, kFetchReply) && e.b == 1 && st.view != 0) {
        record_extraction(kNsFetch, e.a, st.view, e);
      } else if (is(e.label, kRegisterReq)) {
        // (Re)registration invalidates the previous incarnation's copy.
        if (st.view != 0) holders_.erase(st.view);
      }
      break;
    }

    case EventKind::kOpCompleted: {
      auto it = pending_.find(e.span);
      const bool known = it != pending_.end();
      if (known) {
        op_latency_us_[it->second.label].add(
            static_cast<double>(e.at - it->second.started_at));
        // Causality: the completion observes the directory's reply, so
        // its stamp must be past the directory's first span event.
        if (e.clock != 0 && it->second.first_dm_clock != 0) {
          ++checks_[idx(Invariant::kCausality)];
          if (e.clock <= it->second.first_dm_clock) {
            std::ostringstream d;
            d << "op '" << it->second.label << "' completed at clock "
              << e.clock << ", not after the directory's span clock "
              << it->second.first_dm_clock;
            violation(Invariant::kCausality, e, e.span, d.str());
          }
        }
      }
      const char* label = known ? it->second.label.c_str() : e.label;

      // I4: a completed pull is a weak-mode grant; it must not be
      // REQUESTED while the view is in STRONG mode (reads there
      // require an acquire — a pull delivers data without
      // exclusivity). Pulls already queued when the switch ack landed
      // drain legitimately (weak_pull_credits); a pull with no
      // weak-mode enqueue on record was issued after the switch.
      if (is(label, "pull")) {
        ++checks_[idx(Invariant::kModeQuiescence)];
        if (st.weak_pull_credits > 0) {
          --st.weak_pull_credits;
        } else if (st.strong) {
          std::ostringstream d;
          d << "weak-mode pull for view " << st.view
            << " issued while in STRONG mode (causally after the switch ack)";
          violation(Invariant::kModeQuiescence, e, e.span, d.str());
        }
      }

      // I3: a completed push/kill confirmed the unconfirmed-echo
      // snapshot taken when the op was issued — every dirty extraction
      // this agent made before that point must have merged by now.
      if ((is(label, "push") || is(label, "kill")) && known) {
        const sim::Time issued = it->second.started_at;
        for (auto& [key, ex] : extractions_) {
          if (ex.agent != e.agent || ex.merges != 0 || ex.reported) continue;
          if (ex.at >= issued) continue;  // made after the echo snapshot
          // A pre-restart extraction's echo may still be settling
          // through the directory's revive path; only finalize() can
          // judge it. Same-epoch extractions get the strict check.
          if (ex.epoch != epoch_) continue;
          // A push/kill image whose own op is still pending is not
          // lost — the op carries it and is still retrying (ops can
          // reorder across a directory-restart reconnect, so a later
          // op may complete first). finalize() judges abandoned ones.
          if (std::get<0>(key) == kNsSpan &&
              pending_.count(std::get<2>(key)) != 0) {
            continue;
          }
          ex.reported = true;
          std::ostringstream d;
          d << "dirty extraction from view " << ex.view << " ("
            << (std::get<0>(key) == kNsFetch
                    ? "fetch round "
                    : std::get<0>(key) == kNsInvalidate ? "invalidate epoch "
                                                        : "op span ")
            << (std::get<0>(key) == kNsSpan ? std::get<2>(key)
                                            : std::get<1>(key))
            << ") never merged, though a later " << label
            << " completed and should have carried its echo";
          if (evicted_views_.count(ex.view) != 0) {
            warning(e, e.span, d.str() + " (view evicted — discarded)");
          } else {
            violation(Invariant::kNoLostUpdate, e, e.span, d.str());
          }
        }
      }

      if (is(label, "init") || is(label, "pull") || is(label, "acquire") ||
          is(label, "push")) {
        st.last_sync_at = e.at;
      }
      if (known) pending_.erase(it);
      break;
    }

    case EventKind::kModeSwitch: {
      // Entering strong invalidates the copy; leaving strong
      // surrenders exclusivity. Either way the view stops holding.
      st.strong = is(e.label, "strong");
      if (st.view != 0) holders_.erase(st.view);
      break;
    }

    case EventKind::kJournalReplay: {
      // A cache manager restarted and replayed its write-ahead journal
      // (a = view, b = replayed strong intents). Its re-issued pushes
      // reuse the pre-crash (address, req) spans, so the extraction
      // ledger and the directory's merged-ops dedup line up — nothing
      // to reset here, just account for it.
      ++journal_replays_;
      journal_replayed_intents_ += e.b;
      if (e.a != 0) {
        st.view = e.a;
        view_agent_[e.a] = e.agent;
      }
      break;
    }

    case EventKind::kHeartbeatMiss: {
      const std::uint64_t streak = e.a;
      if (cfg_.heartbeat_warn_streak != 0 &&
          streak >= cfg_.heartbeat_warn_streak &&
          st.hb_streak < cfg_.heartbeat_warn_streak) {
        std::ostringstream d;
        d << "view " << st.view << ": " << streak
          << " consecutive unacked heartbeats";
        warning(e, 0, d.str());
      }
      st.hb_streak = streak;
      break;
    }

    default:
      break;
  }
}

void InvariantMonitor::on_dm_event(const TraceEvent& e) {
  if (e.span != 0) check_span_causality(e);

  switch (e.kind) {
    case EventKind::kMsgSent:
    case EventKind::kMsgRetransmitted: {
      if (is(e.label, kInvalidateReq)) {
        // b = target view: the directory is doing its invalidation
        // duty for this holder before the next grant.
        auto it = holders_.find(e.b);
        if (it != holders_.end()) it->second.invalidated_since_grant = true;
      } else if (is(e.label, kAcquireGrant)) {
        auto pit = pending_.find(e.span);
        const std::uint64_t requester =
            pit != pending_.end() ? agent(pit->second.agent).view : 0;
        if (requester != 0) {
          ++checks_[idx(Invariant::kExclusivity)];
          if (cfg_.assume_conflicting) {
            for (const auto& [view, holder] : holders_) {
              if (view == requester || holder.invalidated_since_grant) {
                continue;
              }
              std::ostringstream d;
              d << "grant to view " << requester << " while view " << view
                << " (granted at " << holder.granted_at
                << " us) still holds a copy the directory never asked to"
                << " invalidate";
              violation(Invariant::kExclusivity, e, e.span, d.str());
            }
          }
          // The grant settles the round: previous holders either acked,
          // were evicted, or timed out (presumed crashed).
          holders_.clear();
          holders_[requester] = Holder{false, e.at};
        }
      }
      break;
    }

    case EventKind::kMergeApplied: {
      ++checks_[idx(Invariant::kExactlyOnceMerge)];
      ExtractKey key{};
      bool keyed = true;
      if (is(e.label, "push") || is(e.label, "kill")) {
        if (e.span == 0) keyed = false;  // unframed op: no identity
        key = {kNsSpan, 0, e.span};
      } else if (is(e.label, "migrate")) {
        // Handoff delta merged at the directory under the source's
        // (address, handoff req) span — the same span a journal-replayed
        // push of that delta uses, so the ledger dedups the two paths.
        if (e.span == 0) keyed = false;
        key = {kNsSpan, 0, e.span};
      } else if (is(e.label, "fetch") || is(e.label, "late_fetch") ||
                 is(e.label, "echo.fetch")) {
        key = {kNsFetch, e.a, e.b};
      } else if (is(e.label, "invalidate") || is(e.label, "late_invalidate") ||
                 is(e.label, "echo.invalidate")) {
        key = {kNsInvalidate, e.a, e.b};
      } else {
        keyed = false;  // pre-monitor trace without merge-path labels
      }
      if (!keyed) break;

      auto [it, inserted] = extractions_.try_emplace(key);
      Extraction& ex = it->second;
      if (inserted) {
        // Merge whose extraction event we never saw (ring-truncated or
        // partial trace): track it so a second merge still trips I2,
        // but it cannot support an I3/causality verdict.
        ex.at = e.at;
        ex.view = e.b;
        ex.reported = true;
        ex.merges = 1;
        ex.epoch = epoch_;
        break;
      }
      if (ex.merges >= 1) {
        std::ostringstream d;
        d << "extraction from view " << ex.view << " (path '" << e.label
          << "', round " << e.a << ", span " << e.span << ") merged "
          << (ex.merges + 1) << " times";
        violation(Invariant::kExactlyOnceMerge, e, e.span, d.str());
      } else if (ex.clock != 0 && e.clock != 0) {
        ++checks_[idx(Invariant::kCausality)];
        if (e.clock <= ex.clock) {
          std::ostringstream d;
          d << "merge (path '" << e.label << "') at clock " << e.clock
            << " not causally after its extraction at clock " << ex.clock;
          violation(Invariant::kCausality, e, e.span, d.str());
        }
      }
      ++ex.merges;
      break;
    }

    case EventKind::kViewEvicted: {
      evicted_views_.insert(e.a);
      holders_.erase(e.a);
      break;
    }

    case EventKind::kMigrateBegin: {
      begin_migration(e);
      break;
    }

    case EventKind::kMigrateDone: {
      end_migration(e, /*aborted=*/false);
      break;
    }

    case EventKind::kMigrateAborted: {
      end_migration(e, /*aborted=*/true);
      break;
    }

    case EventKind::kModeSwitch: {
      // b = view. Leaving strong surrenders exclusivity directory-side.
      if (is(e.label, "weak")) holders_.erase(e.b);
      break;
    }

    default:
      break;
  }
}

void InvariantMonitor::record_extraction(std::uint8_t ns, std::uint64_t round,
                                         std::uint64_t id,
                                         const TraceEvent& e) {
  auto [it, inserted] =
      extractions_.try_emplace(ExtractKey{ns, round, id});
  if (!inserted) return;  // retransmission re-sends the same extraction
  ++checks_[idx(Invariant::kNoLostUpdate)];
  Extraction& ex = it->second;
  ex.at = e.at;
  ex.agent = e.agent;
  ex.view = agent(e.agent).view;
  ex.clock = e.clock;
  ex.epoch = epoch_;
}

void InvariantMonitor::begin_recovery(const TraceEvent& e) {
  ++epoch_;
  ++recovery_epochs_seen_;
  open_recoveries_[e.a] = e.at;
  // The restarted directory holds no grant state; exclusivity is
  // re-established by the rebuild round, so pre-crash holders cannot
  // support an I1 verdict against post-restart grants.
  holders_.clear();
  // An extraction that merged pre-crash may legally merge once more:
  // if the crash ate the WAL record of the merge (checkpoint lag), the
  // revived round replays the echo and the directory re-applies it.
  // Grant one re-merge per epoch — a second merge within the new epoch
  // still trips I2. reported=true exempts it from I3/finalize (it
  // already merged; a replay is optional).
  for (auto& [key, ex] : extractions_) {
    if (ex.merges >= 1) {
      ex.merges = 0;
      ex.reported = true;
    }
  }
}

void InvariantMonitor::end_recovery(const TraceEvent& e) {
  auto it = open_recoveries_.find(e.a);
  if (it == open_recoveries_.end()) return;
  rebuild_duration_us_.add(static_cast<double>(e.at - it->second));
  open_recoveries_.erase(it);
}

void InvariantMonitor::begin_migration(const TraceEvent& e) {
  // a = view, b = migration epoch.
  ++migration_epochs_seen_;
  open_migrations_[e.b] = OpenMigration{e.a, e.at};
}

void InvariantMonitor::end_migration(const TraceEvent& e, bool aborted) {
  // a = view, b = migration epoch. One legal ownership transfer per
  // epoch: a migrate_done for an epoch that already settled — whether
  // it completed or aborted — means the directory rebound the same
  // view twice under one epoch, i.e. two components both believe they
  // own the view.
  const std::uint64_t epoch = e.b;
  auto closed = closed_migrations_.find(epoch);
  if (closed != closed_migrations_.end()) {
    if (!aborted) {
      std::ostringstream d;
      d << "second ownership transfer for migration epoch " << epoch
        << " (view " << e.a << "): epoch already settled as "
        << (closed->second ? "aborted" : "done");
      violation(Invariant::kExclusivity, e, 0, d.str());
    }
    return;  // duplicate abort is harmless (resent Done{aborted})
  }
  auto it = open_migrations_.find(epoch);
  if (it != open_migrations_.end()) {
    migration_duration_us_.add(static_cast<double>(e.at - it->second.began));
    open_migrations_.erase(it);
  }
  closed_migrations_[epoch] = aborted;
  if (aborted) {
    ++migrations_aborted_;
  } else {
    ++checks_[idx(Invariant::kExclusivity)];
    // Ownership moved: the source surrendered its copy with the
    // handoff, so it can no longer support an I1 verdict as a holder.
    // The destination re-establishes holding via its own grants.
    holders_.erase(e.a);
  }
}

void InvariantMonitor::check_span_causality(const TraceEvent& e) {
  auto it = pending_.find(e.span);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  if (e.clock == 0) return;
  if (op.first_dm_clock == 0) op.first_dm_clock = e.clock;
  if (op.first_send_clock != 0) {
    ++checks_[idx(Invariant::kCausality)];
    if (e.clock <= op.first_send_clock) {
      std::ostringstream d;
      d << "directory event for span " << e.span << " at clock " << e.clock
        << " not causally after the requester's first send at clock "
        << op.first_send_clock;
      violation(Invariant::kCausality, e, e.span, d.str());
    }
  }
}

void InvariantMonitor::violation(Invariant inv, const TraceEvent& e,
                                 std::uint64_t span, std::string detail) {
  ++fails_[idx(inv)];
  Finding f{inv, e.at, e.agent, span, std::move(detail)};
  violations_.push_back(f);
  emit_finding(EventKind::kInvariantViolation, f);
}

void InvariantMonitor::warning(const TraceEvent& e, std::uint64_t span,
                               std::string detail) {
  Finding f{Invariant::kCausality, e.at, e.agent, span, std::move(detail)};
  warnings_.push_back(f);
  emit_finding(EventKind::kMonitorWarning, f);
}

void InvariantMonitor::emit_finding(EventKind kind, const Finding& f) {
  if (cfg_.out == nullptr) return;
  cfg_.out->emit(make_event(f.at, kind, Role::kOther, f.agent, f.span,
                            kind == EventKind::kInvariantViolation
                                ? to_string(f.invariant)
                                : "monitor",
                            static_cast<std::uint64_t>(f.invariant)));
}

void InvariantMonitor::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  finalized_ = true;

  for (auto& [key, ex] : extractions_) {
    if (ex.merges != 0 || ex.reported) continue;
    ex.reported = true;
    std::ostringstream d;
    d << "dirty extraction from view " << ex.view
      << " unmerged at end of trace";
    if (evicted_views_.count(ex.view) != 0) d << " (view evicted)";
    Finding f{Invariant::kNoLostUpdate, last_at_, ex.agent, 0, d.str()};
    warnings_.push_back(f);
    emit_finding(EventKind::kMonitorWarning, f);
  }

  for (const auto& [gen, began] : open_recoveries_) {
    std::ostringstream d;
    d << "directory recovery (generation " << gen << ", began at " << began
      << " us) never completed — trace ends mid-rebuild";
    Finding f{Invariant::kCausality, last_at_, 0, 0, d.str()};
    warnings_.push_back(f);
    emit_finding(EventKind::kMonitorWarning, f);
  }

  for (const auto& [epoch, mig] : open_migrations_) {
    std::ostringstream d;
    d << "migration epoch " << epoch << " (view " << mig.view
      << ", began at " << mig.began
      << " us) never settled — trace ends mid-handoff";
    Finding f{Invariant::kCausality, last_at_, 0, 0, d.str()};
    warnings_.push_back(f);
    emit_finding(EventKind::kMonitorWarning, f);
  }

  if (cfg_.max_op_age > 0) {
    for (auto& [span, op] : pending_) {
      if (op.age_warned || last_at_ - op.started_at <= cfg_.max_op_age) {
        continue;
      }
      op.age_warned = true;
      std::ostringstream d;
      d << "op '" << op.label << "' still pending after "
        << (last_at_ - op.started_at) << " us at end of trace";
      Finding f{Invariant::kCausality, last_at_, op.agent, span, d.str()};
      warnings_.push_back(f);
      emit_finding(EventKind::kMonitorWarning, f);
    }
  }
}

std::uint64_t InvariantMonitor::unresolved_recovery_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_recoveries_.size();
}

std::uint64_t InvariantMonitor::unresolved_migration_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_migrations_.size();
}

std::uint64_t InvariantMonitor::violation_count(Invariant inv) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fails_[idx(inv)];
}

std::uint64_t InvariantMonitor::check_count(Invariant inv) const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_[idx(inv)];
}

std::string InvariantMonitor::health_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "invariant monitor: " << events_seen_ << " events, "
      << agents_.size() << " agents\n";
  constexpr Invariant kAll[] = {
      Invariant::kExclusivity, Invariant::kExactlyOnceMerge,
      Invariant::kNoLostUpdate, Invariant::kModeQuiescence,
      Invariant::kCausality};
  for (const Invariant inv : kAll) {
    char row[96];
    std::snprintf(row, sizeof(row), "  %-24s checks=%-8llu violations=%llu\n",
                  to_string(inv),
                  static_cast<unsigned long long>(checks_[idx(inv)]),
                  static_cast<unsigned long long>(fails_[idx(inv)]));
    out << row;
  }
  out << "  warnings: " << warnings_.size() << "\n";
  if (recovery_epochs_seen_ != 0 || fenced_messages_ != 0) {
    out << "  recovery: epochs=" << recovery_epochs_seen_
        << " unresolved=" << open_recoveries_.size()
        << " fenced=" << fenced_messages_ << "\n";
  }
  if (migration_epochs_seen_ != 0 || journal_replays_ != 0) {
    out << "  migration: epochs=" << migration_epochs_seen_
        << " aborted=" << migrations_aborted_
        << " unresolved=" << open_migrations_.size()
        << " journal_replays=" << journal_replays_ << "\n";
  }
  const std::size_t kShow = 5;
  for (std::size_t i = 0; i < violations_.size() && i < kShow; ++i) {
    const Finding& f = violations_[i];
    out << "  VIOLATION [" << to_string(f.invariant) << "] t=" << f.at
        << " span=" << f.span << ": " << f.detail << "\n";
  }
  if (violations_.size() > kShow) {
    out << "  ... " << (violations_.size() - kShow) << " more\n";
  }
  for (std::size_t i = 0; i < warnings_.size() && i < 3; ++i) {
    const Finding& f = warnings_[i];
    out << "  warning t=" << f.at << ": " << f.detail << "\n";
  }
  if (warnings_.size() > 3) {
    out << "  ... " << (warnings_.size() - 3) << " more warnings\n";
  }
  out << (violations_.empty()
              ? "monitor: PASS"
              : "monitor: " + std::to_string(violations_.size()) +
                    " violation(s)")
      << "\n";
  return out.str();
}

void InvariantMonitor::export_metrics(MetricsRegistry& reg) const {
  std::lock_guard<std::mutex> lock(mu_);
  reg.inc("monitor.events", events_seen_);
  reg.inc("monitor.agents", agents_.size());
  constexpr Invariant kAll[] = {
      Invariant::kExclusivity, Invariant::kExactlyOnceMerge,
      Invariant::kNoLostUpdate, Invariant::kModeQuiescence,
      Invariant::kCausality};
  for (const Invariant inv : kAll) {
    const std::string base = std::string("monitor.") + metric_slug(inv);
    reg.inc(base + ".checks", checks_[idx(inv)]);
    reg.inc(base + ".violations", fails_[idx(inv)]);
  }
  reg.inc("monitor.violations", violations_.size());
  reg.inc("monitor.warnings", warnings_.size());
  reg.inc("monitor.recovery.epochs", recovery_epochs_seen_);
  reg.inc("monitor.recovery.unresolved", open_recoveries_.size());
  reg.inc("monitor.recovery.fenced", fenced_messages_);
  for (const double v : rebuild_duration_us_.samples()) {
    reg.observe("monitor.recovery.rebuild_us", v);
  }
  reg.inc("monitor.migration.epochs", migration_epochs_seen_);
  reg.inc("monitor.migration.aborted", migrations_aborted_);
  reg.inc("monitor.migration.unresolved", open_migrations_.size());
  reg.inc("monitor.journal.replays", journal_replays_);
  reg.inc("monitor.journal.replayed_intents", journal_replayed_intents_);
  for (const double v : migration_duration_us_.samples()) {
    reg.observe("monitor.migration.duration_us", v);
  }
  for (const auto& [label, lat] : op_latency_us_) {
    for (const double v : lat.samples()) {
      reg.observe("monitor.op.latency_us." + label, v);
    }
  }
  // Per-view staleness gauge: time since the view's copy last synced
  // with the primary (init/pull/acquire completion or acked push),
  // measured against the newest event in the trace.
  for (const auto& [key, st] : agents_) {
    if (st.last_sync_at == 0) continue;
    reg.observe("monitor.view.staleness_us",
                static_cast<double>(last_at_ - st.last_sync_at));
  }
  reg.inc("monitor.views.tracked", view_agent_.size());
}

}  // namespace flecc::obs::monitor
