#include "obs/telemetry.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "obs/prom.hpp"

namespace flecc::obs {

namespace {

TimeSeriesRegistry::Config registry_config(const TelemetryOptions& opts) {
  TimeSeriesRegistry::Config cfg;
  cfg.interval = opts.interval;
  cfg.capacity = opts.window_capacity;
  return cfg;
}

}  // namespace

TelemetryHub::TelemetryHub(TelemetryOptions opts)
    : opts_(opts), registry_(registry_config(opts_)) {}

void TelemetryHub::tick(sim::Time now) {
  registry_.sample(now);
  if (const auto w = registry_.latest()) alerts_.evaluate(*w);
  if (opts_.pace_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.pace_ms));
  }
}

namespace {

prom::Labels to_prom_labels(const TsLabels& in) {
  prom::Labels out;
  out.reserve(in.size());
  for (const TsLabel& l : in) {
    out.push_back({prom::label_key(l.key), l.value});
  }
  return out;
}

}  // namespace

std::string TelemetryHub::render_metrics() const {
  prom::Writer w;
  const auto window = registry_.latest();

  if (window) {
    for (const auto& [id, s] : window->series) {
      if (s.kind == SeriesKind::kCounter) {
        const std::string total = prom::metric_name(id.name) + "_total";
        w.family(total, "counter",
                 "Cumulative count of '" + id.name +
                     "'; see OBSERVABILITY.md.");
        w.sample(total, to_prom_labels(id.labels), s.value);
      } else {
        const std::string fam = prom::metric_name(id.name);
        w.family(fam, "gauge",
                 "Instantaneous value of '" + id.name +
                     "'; see OBSERVABILITY.md.");
        w.sample(fam, to_prom_labels(id.labels), s.value);
      }
    }
    // Second pass so every _per_sec family sits after the _total
    // families rather than interleaving with them.
    for (const auto& [id, s] : window->series) {
      if (s.kind != SeriesKind::kCounter) continue;
      const std::string rate = prom::metric_name(id.name) + "_per_sec";
      w.family(rate, "gauge",
               "Per-second rate of '" + id.name +
                   "' over the last telemetry window.");
      w.sample(rate, to_prom_labels(id.labels), s.rate);
    }
    for (const auto& [id, sw] : window->stats) {
      const std::string fam = prom::metric_name(id.name);
      w.family(fam, "summary",
               "Window-scoped distribution of '" + id.name +
                   "' (quantiles/_sum/_count cover only the last "
                   "telemetry window).");
      const prom::Labels dims = to_prom_labels(id.labels);
      const std::pair<const char*, double> quants[] = {
          {"0.5", sw.p50}, {"0.9", sw.p90}, {"0.99", sw.p99}};
      for (const auto& [q, v] : quants) {
        prom::Labels labels = dims;
        labels.push_back({"quantile", q});
        w.sample(fam, std::move(labels), v);
      }
      w.child_sample(fam, "_sum", dims,
                     sw.mean * static_cast<double>(sw.count));
      w.child_sample(fam, "_count", dims, static_cast<double>(sw.count));
    }
  }

  // alerts.* family.
  w.family("flecc_alerts_raised_total", "counter",
           "Alert rules that began firing (alert_raised events).");
  w.sample("flecc_alerts_raised_total", {},
           static_cast<double>(alerts_.raised_total()));
  w.family("flecc_alerts_cleared_total", "counter",
           "Alert rules that stopped firing (alert_cleared events).");
  w.sample("flecc_alerts_cleared_total", {},
           static_cast<double>(alerts_.cleared_total()));
  w.family("flecc_alerts_evaluations_total", "counter",
           "Telemetry windows evaluated against the alert rules.");
  w.sample("flecc_alerts_evaluations_total", {},
           static_cast<double>(alerts_.windows_evaluated()));
  w.family("flecc_alerts_active", "gauge",
           "1 for each (rule, series) currently firing.");
  for (const ActiveAlert& a : alerts_.active()) {
    prom::Labels labels = to_prom_labels(a.series.labels);
    labels.push_back({"alert", a.rule});
    labels.push_back({"metric", a.series.name});
    w.sample("flecc_alerts_active", std::move(labels), 1.0);
  }

  // telemetry.* meta family.
  w.family("flecc_telemetry_windows_total", "counter",
           "Telemetry windows closed since start.");
  w.sample("flecc_telemetry_windows_total", {},
           static_cast<double>(registry_.windows_closed()));
  w.family("flecc_telemetry_series", "gauge",
           "Distinct labeled series in the latest window.");
  w.sample("flecc_telemetry_series", {},
           static_cast<double>(registry_.series_count()));
  w.family("flecc_telemetry_interval_us", "gauge",
           "Sampling interval in simulated microseconds.");
  w.sample("flecc_telemetry_interval_us", {},
           static_cast<double>(opts_.interval));
  w.family("flecc_telemetry_window_end_us", "gauge",
           "Simulated time (us) at which the latest window closed.");
  w.sample("flecc_telemetry_window_end_us", {},
           window ? static_cast<double>(window->end) : 0.0);
  w.family("flecc_telemetry_http_requests_total", "counter",
           "HTTP requests served by the telemetry server.");
  w.sample("flecc_telemetry_http_requests_total", {},
           static_cast<double>(http_requests_.load()));
  w.family("flecc_telemetry_http_errors_total", "counter",
           "HTTP requests answered with a non-200 status.");
  w.sample("flecc_telemetry_http_errors_total", {},
           static_cast<double>(http_errors_.load()));
  return w.str();
}

namespace {

void json_labels(std::ostringstream& out, const TsLabels& labels) {
  out << "{";
  bool first = true;
  for (const TsLabel& l : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"" << prom::json_escape(l.key) << "\":\""
        << prom::json_escape(l.value) << "\"";
  }
  out << "}";
}

void json_window(std::ostringstream& out, const TelemetryWindow& w) {
  out << "{\"index\":" << w.index << ",\"start_us\":" << w.start
      << ",\"end_us\":" << w.end << ",\"series\":[";
  bool first = true;
  for (const auto& [id, s] : w.series) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << prom::json_escape(id.name) << "\",\"labels\":";
    json_labels(out, id.labels);
    out << ",\"kind\":\""
        << (s.kind == SeriesKind::kCounter ? "counter" : "gauge")
        << "\",\"value\":" << prom::format_value(s.value)
        << ",\"delta\":" << prom::format_value(s.delta)
        << ",\"rate\":" << prom::format_value(s.rate) << "}";
  }
  out << "],\"stats\":[";
  first = true;
  for (const auto& [id, sw] : w.stats) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << prom::json_escape(id.name) << "\",\"labels\":";
    json_labels(out, id.labels);
    out << ",\"count\":" << sw.count
        << ",\"mean\":" << prom::format_value(sw.mean)
        << ",\"p50\":" << prom::format_value(sw.p50)
        << ",\"p90\":" << prom::format_value(sw.p90)
        << ",\"p99\":" << prom::format_value(sw.p99) << "}";
  }
  out << "]}";
}

void json_alerts(std::ostringstream& out, const AlertEngine& alerts) {
  out << "{\"rules\":" << alerts.rules().size()
      << ",\"raised\":" << alerts.raised_total()
      << ",\"cleared\":" << alerts.cleared_total() << ",\"active\":[";
  bool first = true;
  for (const ActiveAlert& a : alerts.active()) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":\"" << prom::json_escape(a.rule) << "\",\"metric\":\""
        << prom::json_escape(a.series.name) << "\",\"labels\":";
    json_labels(out, a.series.labels);
    out << ",\"value\":" << prom::format_value(a.value)
        << ",\"since_us\":" << a.since << ",\"window\":" << a.window << "}";
  }
  out << "]}";
}

}  // namespace

std::string TelemetryHub::render_varz() const {
  std::ostringstream out;
  const auto windows = registry_.recent(opts_.varz_windows);
  out << "{\"interval_us\":" << opts_.interval
      << ",\"windows_closed\":" << registry_.windows_closed()
      << ",\"now_us\":" << (windows.empty() ? 0 : windows.back().end)
      << ",\"status\":\"" << health_status() << "\",\"windows\":[";
  bool first = true;
  for (const TelemetryWindow& w : windows) {
    if (!first) out << ",";
    first = false;
    json_window(out, w);
  }
  out << "],\"alerts\":";
  json_alerts(out, alerts_);
  out << "}";
  return out.str();
}

std::string TelemetryHub::health_status() const {
  if (!alerts_.active().empty()) return "alerting";
  if (const auto w = registry_.latest()) {
    for (const auto& [id, s] : w->series) {
      if (s.kind == SeriesKind::kGauge &&
          id.name.rfind("health.", 0) == 0 && s.value != 0.0) {
        return "degraded";
      }
    }
  }
  return "ok";
}

std::string TelemetryHub::render_healthz() const {
  std::ostringstream out;
  const auto w = registry_.latest();
  out << "{\"status\":\"" << health_status() << "\",\"now_us\":"
      << (w ? w->end : 0) << ",\"windows\":" << registry_.windows_closed()
      << ",\"series\":" << registry_.series_count();
  out << ",\"health\":{";
  bool first = true;
  if (w) {
    for (const auto& [id, s] : w->series) {
      if (s.kind != SeriesKind::kGauge || id.name.rfind("health.", 0) != 0) {
        continue;
      }
      if (!first) out << ",";
      first = false;
      out << "\"" << prom::json_escape(id.name.substr(7));
      if (!id.labels.empty()) {
        out << "|";
        for (std::size_t i = 0; i < id.labels.size(); ++i) {
          if (i != 0) out << ",";
          out << prom::json_escape(id.labels[i].key) << "="
              << prom::json_escape(id.labels[i].value);
        }
      }
      out << "\":" << prom::format_value(s.value);
    }
  }
  out << "},\"recovery\":{";
  first = true;
  if (w) {
    for (const auto& [id, s] : w->series) {
      if (id.name.rfind("recovery.", 0) != 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << prom::json_escape(id.name.substr(9))
          << "\":" << prom::format_value(s.value);
    }
  }
  out << "},\"alerts\":";
  json_alerts(out, alerts_);
  out << "}";
  return out.str();
}

}  // namespace flecc::obs
