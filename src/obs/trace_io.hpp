// Trace sinks and loaders: serialize obs::TraceEvent streams to JSONL
// (one event per line, the interchange format consumed by
// tools/flecc_trace and by jq-style ad-hoc analysis) and to CSV (for
// spreadsheets/gnuplot), and parse JSONL back. Works identically under
// FLECC_TRACE=OFF (snapshots are just empty).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace flecc::obs {

/// One event as a JSONL line (no trailing newline), e.g.
/// {"t":1500,"kind":"op_started","role":"cm","agent":"3:1",
///  "span":"844429225099265","label":"pull","a":0,"b":0}
/// `agent` is "node:port"; `span` is a decimal string because span ids
/// use all 64 bits and would lose precision as JSON numbers.
[[nodiscard]] std::string to_jsonl(const TraceEvent& e);

/// Parse one JSONL line; std::nullopt on malformed input.
[[nodiscard]] std::optional<TraceEvent> from_jsonl(const std::string& line);

/// Parse "op_started" → EventKind; nullopt for unknown names.
[[nodiscard]] std::optional<EventKind> parse_kind(const std::string& name);
/// Parse "cm" → Role; nullopt for unknown names.
[[nodiscard]] std::optional<Role> parse_role(const std::string& name);

/// Write events as JSONL; returns false on I/O failure.
bool write_jsonl(const std::vector<TraceEvent>& events,
                 const std::string& path);

/// Read a JSONL trace, skipping blank lines; malformed lines are
/// counted in `*bad_lines` (if given) and skipped.
[[nodiscard]] std::vector<TraceEvent> read_jsonl(std::istream& in,
                                                 std::size_t* bad_lines =
                                                     nullptr);
[[nodiscard]] std::vector<TraceEvent> read_jsonl_file(const std::string& path,
                                                      std::size_t* bad_lines =
                                                          nullptr);

/// CSV with header "t,kind,role,agent,span,label,a,b".
[[nodiscard]] std::string to_csv(const std::vector<TraceEvent>& events);
bool write_csv(const std::vector<TraceEvent>& events, const std::string& path);

}  // namespace flecc::obs
