#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace flecc::obs {

const char* drop_reason_name(std::uint64_t code) {
  switch (code) {
    case kDropLoss: return "loss";
    case kDropPartition: return "partition";
    case kDropNoRoute: return "no_route";
    case kDropUnbound: return "unbound";
    case kDropOverload: return "overload";
    default: return "other";
  }
}

TraceSummary summarize(const std::vector<TraceEvent>& events) {
  TraceSummary s;
  s.total_events = events.size();
  // span → (label, started-at) for latency pairing.
  std::unordered_map<std::uint64_t, std::pair<std::string, sim::Time>> open;
  // generation → recovery_begin time, for rebuild-duration pairing.
  std::unordered_map<std::uint64_t, sim::Time> open_recoveries;
  // Latest recovery_begin seen: ops open across it were interrupted by
  // the restart (re-issued under the new generation), not truncated.
  sim::Time last_recovery_at = 0;
  bool any_recovery = false;
  // migration epoch → migrate_begin time, for settle-duration pairing.
  std::unordered_map<std::uint64_t, sim::Time> open_migrations;

  bool first = true;
  for (const auto& e : events) {
    if (first || e.at < s.first_at) s.first_at = e.at;
    if (first || e.at > s.last_at) s.last_at = e.at;
    first = false;

    switch (e.kind) {
      case EventKind::kOpEnqueued:
        ++s.ops_enqueued;
        break;
      case EventKind::kOpStarted:
        ++s.ops_started;
        if (e.span != 0) open[e.span] = {e.label, e.at};
        break;
      case EventKind::kOpCompleted: {
        ++s.ops_completed;
        auto it = open.find(e.span);
        if (it != open.end()) {
          s.op_latency_us[it->second.first].add(
              static_cast<double>(e.at - it->second.second));
          open.erase(it);
        }
        break;
      }
      case EventKind::kMsgSent:
        ++s.msgs_sent;
        break;
      case EventKind::kMsgReceived:
        ++s.msgs_received;
        break;
      case EventKind::kMsgDropped:
        ++s.drops;
        ++s.drops_by_reason[drop_reason_name(e.a)];
        break;
      case EventKind::kMsgRetransmitted:
        ++s.retransmits;
        break;
      case EventKind::kDedupHit:
        ++s.dedup_hits;
        break;
      case EventKind::kHeartbeatMiss:
        ++s.heartbeat_misses;
        break;
      case EventKind::kViewEvicted:
        ++s.evictions;
        break;
      case EventKind::kTriggerFired:
        ++s.trigger_fires[e.label];
        break;
      case EventKind::kMergeApplied:
        ++s.merges;
        break;
      case EventKind::kModeSwitch:
        ++s.mode_switches;
        break;
      case EventKind::kInvariantViolation:
        ++s.invariant_violations;
        break;
      case EventKind::kMonitorWarning:
        ++s.monitor_warnings;
        break;
      case EventKind::kMsgFenced:
        ++s.fenced_messages;
        break;
      case EventKind::kRecoveryBegin:
        ++s.recovery_epochs;
        s.wal_replayed += e.b;
        open_recoveries[e.a] = e.at;
        last_recovery_at = std::max(last_recovery_at, e.at);
        any_recovery = true;
        break;
      case EventKind::kRecoveryEnd: {
        s.reannouncements += e.b;
        auto it = open_recoveries.find(e.a);
        if (it != open_recoveries.end()) {
          s.rebuild_duration_us.add(static_cast<double>(e.at - it->second));
          open_recoveries.erase(it);
        }
        break;
      }
      case EventKind::kLoadShed:
        ++s.load_sheds;
        break;
      case EventKind::kBreakerTransition:
        ++s.breaker_transitions;
        break;
      case EventKind::kRetryExhausted:
        ++s.retries_exhausted;
        break;
      case EventKind::kMigrateBegin:
        ++s.migration_epochs;
        open_migrations[e.b] = e.at;
        break;
      case EventKind::kMigrateAborted:
        ++s.migrations_aborted;
        [[fallthrough]];
      case EventKind::kMigrateDone: {
        auto it = open_migrations.find(e.b);
        if (it != open_migrations.end()) {
          s.migration_duration_us.add(static_cast<double>(e.at - it->second));
          open_migrations.erase(it);
        }
        break;
      }
      case EventKind::kJournalReplay:
        ++s.journal_replays;
        s.journal_replayed += e.b;
        break;
      case EventKind::kAlertRaised:
        ++s.alerts_raised;
        break;
      case EventKind::kAlertCleared:
        ++s.alerts_cleared;
        break;
    }
  }
  s.recovery_unresolved = open_recoveries.size();
  s.migration_unresolved = open_migrations.size();
  for (const auto& [span, info] : open) {
    (void)span;
    if (any_recovery && info.second <= last_recovery_at) {
      ++s.ops_unfinished_recovery;
    } else {
      ++s.ops_unfinished;
    }
  }
  return s;
}

void export_metrics(const TraceSummary& s, MetricsRegistry& reg) {
  reg.inc("trace.events", s.total_events);
  reg.inc("trace.ops.enqueued", s.ops_enqueued);
  reg.inc("trace.ops.started", s.ops_started);
  reg.inc("trace.ops.completed", s.ops_completed);
  reg.inc("trace.ops.unfinished", s.ops_unfinished);
  reg.inc("trace.ops.unfinished.recovery", s.ops_unfinished_recovery);
  reg.inc("trace.msgs.sent", s.msgs_sent);
  reg.inc("trace.msgs.received", s.msgs_received);
  reg.inc("trace.msgs.retransmitted", s.retransmits);
  reg.inc("trace.dedup.hits", s.dedup_hits);
  reg.inc("trace.msgs.dropped", s.drops);
  for (const auto& [reason, n] : s.drops_by_reason) {
    reg.inc("trace.msgs.dropped." + reason, n);
  }
  reg.inc("trace.heartbeat.misses", s.heartbeat_misses);
  reg.inc("trace.views.evicted", s.evictions);
  reg.inc("trace.merges", s.merges);
  for (const auto& [label, n] : s.trigger_fires) {
    reg.inc("trace.trigger.fired." + label, n);
  }
  reg.inc("trace.mode.switches", s.mode_switches);
  reg.inc("trace.invariant.violations", s.invariant_violations);
  reg.inc("trace.monitor.warnings", s.monitor_warnings);
  reg.inc("recovery.epochs", s.recovery_epochs);
  reg.inc("recovery.unresolved_epochs", s.recovery_unresolved);
  reg.inc("recovery.fenced_messages", s.fenced_messages);
  reg.inc("recovery.wal_replayed", s.wal_replayed);
  reg.inc("recovery.reannouncements", s.reannouncements);
  {
    auto& ss = reg.samples("recovery.rebuild_duration_us");
    for (double v : s.rebuild_duration_us.samples()) ss.add(v);
  }
  reg.inc("trace.load.sheds", s.load_sheds);
  reg.inc("trace.breaker.transitions", s.breaker_transitions);
  reg.inc("trace.retries.exhausted", s.retries_exhausted);
  reg.inc("migrate.epochs", s.migration_epochs);
  reg.inc("migrate.aborted", s.migrations_aborted);
  reg.inc("migrate.unresolved_epochs", s.migration_unresolved);
  reg.inc("journal.replays", s.journal_replays);
  reg.inc("journal.replayed_records", s.journal_replayed);
  reg.inc("trace.alerts.raised", s.alerts_raised);
  reg.inc("trace.alerts.cleared", s.alerts_cleared);
  {
    auto& ss = reg.samples("migrate.duration_us");
    for (double v : s.migration_duration_us.samples()) ss.add(v);
  }
  for (const auto& [label, lat] : s.op_latency_us) {
    auto& ss = reg.samples("op." + label + ".latency_us");
    for (double v : lat.samples()) ss.add(v);
  }
}

namespace {

std::string fmt_us(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace

std::string render_report(const TraceSummary& s) {
  std::ostringstream out;
  out << "trace: " << s.total_events << " events, "
      << (s.last_at - s.first_at) << " us span\n\n";

  out << "per-op latency (us):\n";
  char head[160];
  std::snprintf(head, sizeof(head), "  %-12s %8s %10s %10s %10s %10s %10s\n",
                "op", "count", "mean", "p50", "p99", "p99.9", "max");
  out << head;
  if (s.op_latency_us.empty()) {
    out << "  (no completed ops in trace)\n";
  }
  for (const auto& [label, lat] : s.op_latency_us) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "  %-12s %8zu %10s %10s %10s %10s %10s\n", label.c_str(),
                  lat.count(), fmt_us(lat.mean()).c_str(),
                  fmt_us(lat.quantile(0.5)).c_str(),
                  fmt_us(lat.quantile(0.99)).c_str(),
                  fmt_us(lat.quantile(0.999)).c_str(),
                  fmt_us(lat.quantile(1.0)).c_str());
    out << row;
  }
  if (s.ops_unfinished != 0) {
    out << "  unfinished ops: " << s.ops_unfinished
        << " (crashed views or truncated trace)\n";
  }
  if (s.ops_unfinished_recovery != 0) {
    out << "  ops interrupted by DM restart: " << s.ops_unfinished_recovery
        << " (re-issued under the new generation)\n";
  }

  if (!s.op_latency_us.empty()) {
    out << "\nlatency histogram (log2 buckets, us):\n";
    for (const auto& [label, lat] : s.op_latency_us) {
      sim::RunningStat st;
      for (double v : lat.samples()) st.add(v);
      out << "  " << label << ":";
      for (std::size_t i = 0; i < sim::RunningStat::kBuckets; ++i) {
        if (st.bucket(i) == 0) continue;
        out << " [" << fmt_us(sim::RunningStat::bucket_lo(i)) << ","
            << fmt_us(sim::RunningStat::bucket_lo(i + 1)) << ")="
            << st.bucket(i);
      }
      out << "\n";
    }
  }

  out << "\nops: enqueued=" << s.ops_enqueued << " started=" << s.ops_started
      << " completed=" << s.ops_completed << "\n";
  out << "messages: sent=" << s.msgs_sent << " received=" << s.msgs_received
      << " retransmitted=" << s.retransmits << "\n";
  out << "dedup hits: " << s.dedup_hits << "\n";
  out << "drops: " << s.drops;
  if (!s.drops_by_reason.empty()) {
    out << " (";
    bool first = true;
    for (const auto& [reason, n] : s.drops_by_reason) {
      if (!first) out << ", ";
      out << reason << "=" << n;
      first = false;
    }
    out << ")";
  }
  out << "\n";
  out << "heartbeat misses: " << s.heartbeat_misses
      << "  evictions: " << s.evictions << "  merges: " << s.merges
      << "  mode switches: " << s.mode_switches << "\n";
  if (!s.trigger_fires.empty()) {
    out << "trigger fires:";
    for (const auto& [label, n] : s.trigger_fires) {
      out << " " << label << "=" << n;
    }
    out << "\n";
  }
  if (s.invariant_violations != 0 || s.monitor_warnings != 0) {
    out << "monitor findings: violations=" << s.invariant_violations
        << " warnings=" << s.monitor_warnings << "\n";
  }
  if (s.recovery_epochs != 0 || s.fenced_messages != 0) {
    out << "recovery: epochs=" << s.recovery_epochs
        << " unresolved=" << s.recovery_unresolved
        << " wal_replayed=" << s.wal_replayed
        << " reannouncements=" << s.reannouncements
        << " fenced=" << s.fenced_messages;
    if (s.rebuild_duration_us.count() != 0) {
      out << " rebuild_mean_us=" << fmt_us(s.rebuild_duration_us.mean());
    }
    out << "\n";
  }
  if (s.migration_epochs != 0 || s.journal_replays != 0) {
    out << "migration: epochs=" << s.migration_epochs
        << " aborted=" << s.migrations_aborted
        << " unresolved=" << s.migration_unresolved
        << " journal_replays=" << s.journal_replays
        << " journal_replayed=" << s.journal_replayed;
    if (s.migration_duration_us.count() != 0) {
      out << " settle_mean_us=" << fmt_us(s.migration_duration_us.mean());
    }
    out << "\n";
  }
  if (s.alerts_raised != 0 || s.alerts_cleared != 0) {
    out << "alerts: raised=" << s.alerts_raised
        << " cleared=" << s.alerts_cleared << "\n";
  }
  return out.str();
}

std::vector<SpanInfo> list_spans(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, SpanInfo> by_span;
  for (const auto& e : events) {
    if (e.span == 0) continue;
    auto& info = by_span[e.span];
    info.span = e.span;
    ++info.events;
    if (e.kind == EventKind::kOpStarted) info.label = e.label;
  }
  std::vector<SpanInfo> out;
  out.reserve(by_span.size());
  for (auto& [span, info] : by_span) out.push_back(std::move(info));
  std::sort(out.begin(), out.end(), [](const SpanInfo& x, const SpanInfo& y) {
    if (x.events != y.events) return x.events > y.events;
    return x.span < y.span;
  });
  return out;
}

std::string render_sequence(const std::vector<TraceEvent>& events,
                            std::uint64_t span) {
  std::vector<TraceEvent> seq;
  for (const auto& e : events) {
    if (e.span == span) seq.push_back(e);
  }
  std::stable_sort(seq.begin(), seq.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.at < y.at;
                   });
  std::ostringstream out;
  out << "span " << span << ": " << seq.size() << " events\n";
  if (seq.empty()) {
    out << "  (span not present in trace)\n";
    return out.str();
  }
  const sim::Time t0 = seq.front().at;
  for (const auto& e : seq) {
    const net::Address agent = agent_addr(e.agent);
    char row[192];
    std::snprintf(row, sizeof(row),
                  "  +%8lld us  %-6s %4u:%-4u  %-18s %-22s a=%llu b=%llu\n",
                  static_cast<long long>(e.at - t0), to_string(e.role),
                  agent.node, agent.port, to_string(e.kind), e.label,
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out << row;
  }
  return out.str();
}

}  // namespace flecc::obs
