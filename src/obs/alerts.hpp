// Declarative SLO rules over TimeSeriesRegistry windows. A rule names
// one series family, a comparison against either the cumulative/gauge
// value or the windowed per-second rate, and a sustain count: the
// alert raises only after the condition holds for N *consecutive*
// closed windows (so a single noisy window cannot page anyone) and
// clears on the first window where it no longer holds.
//
// Rules evaluate per labeled series — "view.queued_ops > 8 for 2"
// watches every {view=...} series independently and raises one alert
// per breaching view. Raises and clears emit alert_raised /
// alert_cleared trace events (label = rule name, a = window index)
// and bump the alerts.* counter family; TelemetryHub surfaces the
// active set in /healthz and /metrics.
//
// Text syntax (parse()):
//
//     <name>: <metric>[/s] <cmp> <threshold> [for <N>]
//
// e.g.  "breaker-storm: cm.breaker.open/s > 0 for 1"
//       "deep-queues: view.queued_ops >= 8 for 3"
// `/s` selects the windowed rate (counters only — gauges have no
// rate); cmp is one of > >= < <=; `for N` defaults to 1.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"

namespace flecc::obs {

/// One declarative SLO rule.
struct AlertRule {
  enum class Cmp : std::uint8_t { kGt, kGe, kLt, kLe };

  std::string name;         ///< rule id; appears in events/labels
  std::string metric;       ///< series family name to watch
  bool rate = false;        ///< compare the windowed per-second rate
  Cmp cmp = Cmp::kGt;
  double threshold = 0.0;
  std::size_t sustain = 1;  ///< consecutive breaching windows to raise

  /// Parse the text syntax above; on failure returns nullopt and (if
  /// non-null) stores a one-line reason in *error.
  [[nodiscard]] static std::optional<AlertRule> parse(
      std::string_view text, std::string* error = nullptr);
  /// Render back into the text syntax.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool breaches(double value) const;
};

/// An alert currently firing.
struct ActiveAlert {
  std::string rule;
  SeriesId series;            ///< the breaching labeled series
  double value = 0.0;         ///< last breaching observation
  sim::Time since = 0;        ///< end of the window that raised it
  std::uint64_t window = 0;   ///< index of the window that raised it
};

/// Evaluates every rule against every matching labeled series of each
/// closed window. evaluate() must be called from one thread (the
/// sampling thread); the snapshot accessors are safe from any thread.
class AlertEngine {
 public:
  void add_rule(AlertRule r) { rules_.push_back(std::move(r)); }
  /// Parse-and-add; returns false (and *error) on a syntax error.
  bool add_rule(std::string_view text, std::string* error = nullptr);
  [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }

  /// Raised/cleared events go to this buffer (may be null).
  void set_trace(TraceBuffer* buf) { trace_ = buf; }

  /// Evaluate one closed window (windows must arrive in order).
  void evaluate(const TelemetryWindow& w);

  [[nodiscard]] std::vector<ActiveAlert> active() const;
  [[nodiscard]] std::uint64_t raised_total() const;
  [[nodiscard]] std::uint64_t cleared_total() const;
  [[nodiscard]] std::uint64_t windows_evaluated() const;
  /// The alerts.* counter family (alerts.raised, alerts.cleared,
  /// alerts.evaluations) — snapshot copy, safe from any thread.
  [[nodiscard]] sim::CounterSet counters() const;

 private:
  /// Per-(rule, series) consecutive-breach bookkeeping.
  struct Streak {
    std::size_t breaching = 0;  // consecutive breaching windows
    bool active = false;
  };

  std::vector<AlertRule> rules_;
  TraceBuffer* trace_ = nullptr;
  // Keyed by (rule index, series); only touched by evaluate().
  std::map<std::pair<std::size_t, SeriesId>, Streak> streaks_;

  mutable std::mutex mu_;  // guards the published snapshot below
  std::vector<ActiveAlert> active_;
  std::uint64_t raised_ = 0;
  std::uint64_t cleared_ = 0;
  std::uint64_t evaluated_ = 0;
};

}  // namespace flecc::obs
