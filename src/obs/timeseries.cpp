#include "obs/timeseries.hpp"

#include <algorithm>

#include "obs/prom.hpp"

namespace flecc::obs {

namespace {

SeriesId make_id(std::string_view name, TsLabels labels) {
  std::sort(labels.begin(), labels.end());
  return SeriesId{std::string(name), std::move(labels)};
}

/// Quantile of the observations that landed in this window, from the
/// per-window log2 bucket deltas (linear interpolation inside the
/// winning bucket — same estimator as RunningStat::quantile_est, but
/// over the delta histogram).
double window_quantile(const std::uint64_t (&db)[sim::RunningStat::kBuckets],
                       std::uint64_t dcount, double q) {
  if (dcount == 0) return 0.0;
  const double target = q * static_cast<double>(dcount);
  double cum = 0.0;
  for (std::size_t i = 0; i < sim::RunningStat::kBuckets; ++i) {
    if (db[i] == 0) continue;
    const double next = cum + static_cast<double>(db[i]);
    if (next >= target) {
      const double lo = sim::RunningStat::bucket_lo(i);
      const double hi = i + 1 < sim::RunningStat::kBuckets
                            ? sim::RunningStat::bucket_lo(i + 1)
                            : lo * 2.0;
      const double frac =
          (target - cum) / static_cast<double>(db[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return sim::RunningStat::bucket_lo(sim::RunningStat::kBuckets - 1);
}

}  // namespace

void SampleFrame::counter(std::string_view name, double cumulative,
                          TsLabels labels) {
  SeriesSample& s = series_[make_id(name, std::move(labels))];
  s.kind = SeriesKind::kCounter;
  s.value += cumulative;  // += so two reports of one id accumulate
}

void SampleFrame::gauge(std::string_view name, double value, TsLabels labels) {
  SeriesSample& s = series_[make_id(name, std::move(labels))];
  s.kind = SeriesKind::kGauge;
  s.value += value;
}

void SampleFrame::stat(std::string_view name, const sim::RunningStat& st,
                       TsLabels labels) {
  StatReading& r = stats_[make_id(name, std::move(labels))];
  r.count += st.count();
  r.sum += st.sum();
  for (std::size_t i = 0; i < sim::RunningStat::kBuckets; ++i) {
    r.buckets[i] += st.bucket(i);
  }
}

void SampleFrame::stat(std::string_view name, const sim::SampleSet& s,
                       TsLabels labels) {
  sim::RunningStat rs;
  for (const double v : s.samples()) rs.add(v);
  stat(name, rs, std::move(labels));
}

void SampleFrame::counters(const sim::CounterSet& set, std::string_view prefix,
                           const TsLabels& labels) {
  for (const auto& [name, value] : set.all()) {
    std::string full(prefix);
    full += name;
    TsLabels series_labels = labels;
    const auto split = prom::split_family(full);
    if (split) {
      series_labels.push_back({split->label_k, split->label_v});
      full = split->base;
    }
    counter(full, static_cast<double>(value), std::move(series_labels));
  }
}

std::size_t TimeSeriesRegistry::add_collector(Collector c) {
  const std::size_t token = next_token_++;
  collectors_.emplace_back(token, std::move(c));
  return token;
}

void TimeSeriesRegistry::remove_collector(std::size_t token) {
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == token) {
      collectors_.erase(it);
      return;
    }
  }
}

void TimeSeriesRegistry::sample(sim::Time now) {
  // Simulated time running backwards means a fresh run (new simulator)
  // took over a long-lived hub — restart the window clock so the new
  // run's first window doesn't span into the previous run's timeline.
  if (now < last_sample_) last_sample_ = 0;

  SampleFrame frame;
  for (const auto& [token, c] : collectors_) c(frame);

  TelemetryWindow w;
  w.start = last_sample_;
  w.end = now;
  const double span_sec =
      sim::to_sec(now > last_sample_ ? now - last_sample_ : 0);

  for (auto& [id, s] : frame.series_) {
    if (s.kind == SeriesKind::kCounter) {
      const auto prev = prev_counter_.find(id);
      const double before = prev == prev_counter_.end() ? 0.0 : prev->second;
      // A shrinking counter is a reset (restarted agent, migrated
      // view): count the new value as this window's increase.
      s.delta = s.value >= before ? s.value - before : s.value;
      s.rate = span_sec > 0.0 ? s.delta / span_sec : 0.0;
      prev_counter_[id] = s.value;
    }
    w.series.emplace(id, s);
  }

  for (const auto& [id, cur] : frame.stats_) {
    const auto it = prev_stat_.find(id);
    SampleFrame::StatReading prev;
    if (it != prev_stat_.end()) prev = it->second;
    StatWindow sw;
    std::uint64_t db[sim::RunningStat::kBuckets];
    const bool reset = cur.count < prev.count;
    for (std::size_t i = 0; i < sim::RunningStat::kBuckets; ++i) {
      db[i] = reset ? cur.buckets[i] : cur.buckets[i] - prev.buckets[i];
    }
    sw.count = reset ? cur.count : cur.count - prev.count;
    const double dsum = reset ? cur.sum : cur.sum - prev.sum;
    sw.mean = sw.count > 0 ? dsum / static_cast<double>(sw.count) : 0.0;
    sw.p50 = window_quantile(db, sw.count, 0.50);
    sw.p90 = window_quantile(db, sw.count, 0.90);
    sw.p99 = window_quantile(db, sw.count, 0.99);
    prev_stat_[id] = cur;
    w.stats.emplace(id, sw);
  }

  last_sample_ = now;

  std::lock_guard<std::mutex> lock(mu_);
  w.index = closed_++;
  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.capacity) ring_.pop_front();
}

std::uint64_t TimeSeriesRegistry::windows_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::optional<TelemetryWindow> TimeSeriesRegistry::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::vector<TelemetryWindow> TimeSeriesRegistry::recent(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t take = std::min(n, ring_.size());
  return std::vector<TelemetryWindow>(ring_.end() - static_cast<long>(take),
                                      ring_.end());
}

std::size_t TimeSeriesRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0;
  return ring_.back().series.size() + ring_.back().stats.size();
}

}  // namespace flecc::obs
