// Prometheus text-exposition plumbing (text/plain; version 0.0.4)
// shared by every exporter in the repo: MetricsRegistry's end-of-run
// snapshot, the TelemetryHub's live /metrics rendering, tools/prom_lint,
// and the format tests. Three concerns live here so they cannot drift
// apart:
//
//   1. Escaping/sanitization — dotted metric paths to legal metric
//      names, label-value and HELP escaping per the format spec.
//   2. Family labeling — dotted counter families whose last segment is
//      a dimension ("flow.shed.Pull") are split into a base series plus
//      a label ({type="Pull"}) instead of a name-mangled series per
//      value. split_family() is the single source of truth for which
//      families get this treatment.
//   3. Validation — validate() checks an exposition document against
//      the rules the emitters promise (charsets, escapes, HELP/TYPE
//      placement, family grouping, duplicate series, counter naming).
//      Tests and the CI telemetry job both run it, so a malformed
//      emitter cannot land.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flecc::obs::prom {

/// One label as (key, value); keys must already be legal (see
/// label_key), values are escaped at render time.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Map a dotted metric path to a legal metric name: "flecc_" prefix,
/// then every character outside [a-zA-Z0-9_:] replaced by '_'
/// ("op.pull.latency_us" -> "flecc_op_pull_latency_us").
[[nodiscard]] std::string metric_name(std::string_view dotted);

/// Coerce `raw` into a legal label key ([a-zA-Z_][a-zA-Z0-9_]*):
/// illegal characters become '_', a leading digit gets a '_' prefix,
/// empty input becomes "_".
[[nodiscard]] std::string label_key(std::string_view raw);

/// Escape a label value for emission between double quotes: backslash,
/// double-quote, and newline become \\ , \" and \n.
[[nodiscard]] std::string escape_label_value(std::string_view raw);

/// Escape HELP text: backslash and newline become \\ and \n (quotes
/// are legal verbatim in HELP).
[[nodiscard]] std::string escape_help(std::string_view raw);

/// Escape a string for embedding inside a JSON string literal (used by
/// the /varz and /healthz renderers): quotes, backslashes, and control
/// characters.
[[nodiscard]] std::string json_escape(std::string_view raw);

/// Shortest round-trippable rendering of a sample value: integers
/// print without a decimal point, everything else as %.6g.
[[nodiscard]] std::string format_value(double v);

/// A dotted counter name recognized as `<prefix><family>.<dimension>`:
/// the series keeps the family as its base name and carries the last
/// segment as a label ("net.flow.shed.Pull" -> base "net.flow.shed",
/// {type="Pull"}).
struct FamilySplit {
  std::string base;     ///< dotted base, original prefix preserved
  std::string label_k;  ///< label key for the dimension
  std::string label_v;  ///< dimension value (the trailing segment(s))
};

/// Recognize the dotted families whose trailing segment is a dimension
/// (message type, drop reason, flush reason, breaker event, shed
/// scope, ...). Matches the family at any prefix depth, so absorbed
/// names like "cm.3.msg.sent.PushUpdate" split too. Returns nullopt
/// for names that are not part of a labeled family.
[[nodiscard]] std::optional<FamilySplit> split_family(std::string_view dotted);

/// Grouped exposition writer. Families render in first-registration
/// order, each as one `# HELP` + `# TYPE` block followed by all of its
/// samples, so the output is grouping-valid by construction. Duplicate
/// (family, labelset) samples are summed rather than emitted twice —
/// two dotted names can sanitize to the same series.
class Writer {
 public:
  /// Register family `name` (a legal metric name, e.g. from
  /// metric_name()) with its TYPE and HELP; later registrations of the
  /// same name are ignored.
  void family(const std::string& name, std::string_view type,
              std::string_view help);
  /// Append one series line under `family` (which must be registered).
  void sample(const std::string& family, Labels labels, double value);
  /// Append a series line named `family + suffix` inside `family`'s
  /// block — for summary/histogram children ("_sum", "_count",
  /// "_bucket").
  void child_sample(const std::string& family, std::string_view suffix,
                    Labels labels, double value);
  /// Render the document.
  [[nodiscard]] std::string str() const;

 private:
  /// One sample row pending render.
  struct SampleLine {
    std::string suffix;  // empty for the family series itself
    Labels labels;
    double value;
  };
  /// One metric family: HELP/TYPE plus its sample rows, rendered as a
  /// contiguous block.
  struct Family {
    std::string name;
    std::string type;
    std::string help;
    std::vector<SampleLine> samples;
  };
  Family* find(const std::string& name);
  std::vector<Family> families_;
};

/// One problem found by validate(); `line` is 1-based within the
/// document (0 for document-level issues).
struct Issue {
  std::size_t line = 0;
  std::string message;
  [[nodiscard]] std::string to_string() const;
};

/// Validate a text-exposition document against the discipline the
/// in-repo emitters promise:
///   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label keys
///     match [a-zA-Z_][a-zA-Z0-9_]*;
///   - label values use only the \\ , \" , \n escapes and are
///     properly quoted/terminated;
///   - sample values parse as floats (Inf/NaN spellings allowed),
///     optional timestamps as integers;
///   - at most one HELP and one TYPE per family, placed before its
///     samples; TYPE is one of counter|gauge|summary|histogram|untyped;
///   - a family's lines are consecutive (no interleaving or reopening);
///   - no duplicate series (same name + same label set);
///   - counter families end in "_total"; histogram "_bucket" lines
///     carry an `le` label; summary quantile labels parse in [0, 1].
/// Returns the empty vector for a clean document.
[[nodiscard]] std::vector<Issue> validate(std::string_view text);

}  // namespace flecc::obs::prom
